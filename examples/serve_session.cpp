// The estimation service as a library: ServeSession is everything
// `gpuperf serve` does minus the sockets — a resident trained
// estimator with DCA caching, micro-batched predictions and metrics.
// Useful when the consumer is another C++ loop (a NAS search, a DSE
// sweep) rather than a remote client.
//
//   ./serve_session [model]
//
// Defaults to MobileNetV2.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cnn/zoo.hpp"
#include "gpu/device_db.hpp"
#include "serve/session.hpp"

int main(int argc, char** argv) {
  using namespace gpuperf;
  using Clock = std::chrono::steady_clock;

  const std::string model = argc > 1 ? argv[1] : "MobileNetV2";
  if (!cnn::zoo::has_model(model)) {
    std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
    return 1;
  }

  // Train once at startup, exactly like `gpuperf serve`.  The small
  // subset keeps the demo quick; drop train_models for the full zoo.
  serve::ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2",
                          "vgg16", "resnet50v2"};
  std::printf("training %s estimator...\n", options.regressor_id.c_str());
  serve::ServeSession session(options);

  // First predict pays for dynamic code analysis; the repeat is a
  // cache lookup.
  const auto timed = [&](const char* label, const std::string& device) {
    const auto t0 = Clock::now();
    const double ipc = session.predict(model, device);
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();
    std::printf("  %-28s %-12s ipc %.4f   (%.3f ms)\n", label,
                device.c_str(), ipc, ms);
  };
  std::printf("\npredictions for %s:\n", model.c_str());
  timed("cold (runs DCA)", "gtx1080ti");
  timed("result-cache hit", "gtx1080ti");
  timed("feature-cache hit", "v100s");  // same model, new device

  // Concurrent callers are grouped per model by the micro-batcher and
  // deduplicated by the single-flight caches.
  std::vector<std::thread> clients;
  for (const auto& device : gpu::device_database())
    clients.emplace_back(
        [&, name = device.name] { session.predict(model, name); });
  for (auto& client : clients) client.join();
  std::printf("\nranked via the line protocol:\n%s\n\n",
              session.handle_line("rank " + model).c_str());

  // The same counters the `stats` endpoint serves.
  std::printf("%s", session.summary().c_str());
  return 0;
}
