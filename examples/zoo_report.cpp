// Inspect any zoo architecture: per-layer shapes and parameters from
// the static analyzer, plus the kernel launches its PTX lowering
// produces.
//
//   ./zoo_report [model] [--layers] [--device <id>]
//
// With --device, also prints the per-layer latency attribution on that
// GPU (top 15 layers by time share).
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <map>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"
#include "ptx/counter.hpp"

int main(int argc, char** argv) {
  using namespace gpuperf;

  const std::string model_name = argc > 1 ? argv[1] : "MobileNetV2";
  bool per_layer = false;
  std::string device_name;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--layers") == 0) per_layer = true;
    if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc)
      device_name = argv[++i];
  }
  if (!cnn::zoo::has_model(model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }

  const cnn::Model model = cnn::zoo::build(model_name);
  const cnn::ModelReport report = cnn::StaticAnalyzer().analyze(model);
  std::printf("%s\n", to_string(report, per_layer).c_str());

  // Lower to PTX and count.
  const ptx::CodeGenerator codegen;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const ptx::InstructionCounter counter;
  const ptx::ModelInstructionProfile profile = counter.count(compiled);

  std::map<std::string, std::pair<std::int64_t, std::int64_t>> per_kernel;
  for (std::size_t i = 0; i < compiled.launches.size(); ++i) {
    auto& entry = per_kernel[compiled.launches[i].kernel];
    entry.first += 1;
    entry.second += profile.per_launch[i];
  }

  TextTable table("PTX lowering of " + model_name);
  table.set_header({"kernel", "launches", "dynamic instructions"});
  for (const auto& [kernel, stats] : per_kernel)
    table.add_row({kernel, std::to_string(stats.first),
                   with_commas(stats.second)});
  table.add_rule();
  table.add_row({"total", std::to_string(profile.launch_count),
                 with_commas(profile.total_instructions)});
  std::printf("%s", table.render().c_str());

  std::printf("\ninstruction mix:\n");
  for (int c = 0; c < ptx::kOpClassCount; ++c) {
    const double share =
        100.0 * static_cast<double>(profile.by_class[static_cast<std::size_t>(c)]) /
        static_cast<double>(profile.total_instructions);
    if (share < 0.05) continue;
    std::printf("  %-12s %5.1f%%\n",
                ptx::op_class_name(static_cast<ptx::OpClass>(c)), share);
  }

  if (!device_name.empty()) {
    if (!gpu::has_device(device_name)) {
      std::fprintf(stderr, "unknown device '%s'\n", device_name.c_str());
      return 1;
    }
    const gpu::Profiler profiler(0.0);
    auto layers = profiler.profile_layers(compiled, profile,
                                          gpu::device(device_name));
    std::sort(layers.begin(), layers.end(),
              [](const gpu::LayerProfile& a, const gpu::LayerProfile& b) {
                return a.time_us > b.time_us;
              });
    TextTable lt("Hottest layers on " + device_name);
    lt.set_header({"layer", "launches", "time (us)", "share"});
    std::size_t shown = 0;
    for (const auto& lp : layers) {
      if (++shown > 15) break;
      lt.add_row({lp.layer, std::to_string(lp.launch_count),
                  fixed(lp.time_us, 1),
                  fixed(100.0 * lp.time_share, 1) + "%"});
    }
    std::printf("\n%s", lt.render().c_str());
  }
  return 0;
}
