// Build a custom CNN with the Model API (the NAS use case from the
// paper's conclusion): analyze it statically, run the dynamic code
// analysis on its generated PTX, and predict its IPC on several GPUs —
// all without the architecture ever existing as a trained network.
#include <cstdio>

#include "cnn/static_analyzer.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "gpu/device_db.hpp"

namespace {

using namespace gpuperf;

/// A small custom residual classifier, as a NAS candidate might emit.
cnn::Model build_candidate() {
  using cnn::ActivationKind;
  using cnn::Layer;
  cnn::Model m("nas-candidate-17");
  cnn::NodeId x = m.add_input(160, 160, 3);
  x = m.conv_bn_act(x, 32, 3, 2);

  // Three residual stages.
  std::int64_t filters = 32;
  for (int stage = 0; stage < 3; ++stage) {
    filters *= 2;
    const cnn::NodeId shortcut =
        m.add(Layer::conv2d(filters, 1, 2, cnn::Padding::kSame, false), x);
    cnn::NodeId y = m.conv_bn_act(x, filters, 3, 2);
    y = m.conv_bn_act(y, filters, 3, 1, cnn::Padding::kSame,
                      ActivationKind::kLinear);
    x = m.add(Layer::add(), {shortcut, y});
    x = m.add(Layer::activation(ActivationKind::kReLU), x);
  }

  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(100, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace

int main() {
  const cnn::Model candidate = build_candidate();

  // Static analysis: the per-layer report a designer would inspect.
  const cnn::StaticAnalyzer analyzer;
  const cnn::ModelReport report = analyzer.analyze(candidate);
  std::printf("%s\n", to_string(report, /*per_layer=*/true).c_str());

  // Feature extraction (static + dynamic code analysis).
  core::FeatureExtractor extractor;
  const core::ModelFeatures features = extractor.compute(candidate);
  std::printf("executed PTX instructions (dynamic code analysis): %s\n",
              with_commas(features.executed_instructions).c_str());
  std::printf("dynamic code analysis time: %.3f s\n\n",
              features.dca_seconds);

  // Train the estimator on the standard zoo, then score the candidate
  // on a spread of devices.
  std::printf("training estimator on the standard zoo...\n");
  core::DatasetBuilder builder;
  core::PerformanceEstimator estimator("dt");
  estimator.train(builder.build());

  TextTable table("Predicted IPC of " + candidate.name());
  table.set_header({"device", "predicted IPC"});
  for (const char* device_name :
       {"gtx1080ti", "v100s", "teslat4", "jetsonxaviernx"}) {
    const double ipc = estimator.predict(
        core::FeatureExtractor::feature_vector(features,
                                               gpu::device(device_name)));
    table.add_row({device_name, fixed(ipc, 4)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
