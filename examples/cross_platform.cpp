// Cross-platform prediction: train on the paper's two GPUs only, then
// predict IPC on devices the model has never seen and compare against
// the simulator's ground truth.  This is the capability single-device
// predictors (the paper's [13]) cannot offer.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace gpuperf;

  std::printf("training on gtx1080ti + v100s only...\n");
  core::DatasetBuilder builder;  // default: the two training devices
  core::PerformanceEstimator estimator("dt");
  estimator.train(builder.build());

  const std::vector<std::string> unseen = {"teslat4", "rtx2080ti",
                                           "gtx1060", "quadrop1000"};
  const std::vector<std::string> models = {"resnet50v2", "MobileNetV2",
                                           "efficientnetb3", "vgg16"};

  const gpu::Profiler profiler(0.0);  // noise-free ground truth
  TextTable table("Cross-platform prediction on unseen devices");
  table.set_header({"CNN", "device", "predicted IPC", "measured IPC",
                    "error"});

  std::vector<double> actual, predicted;
  for (const auto& model_name : models) {
    const cnn::Model model = cnn::zoo::build(model_name);
    for (const auto& device_name : unseen) {
      const gpu::DeviceSpec& device = gpu::device(device_name);
      const double p = estimator.predict(model_name, device);
      const double a = profiler.profile(model, device).ipc;
      predicted.push_back(p);
      actual.push_back(a);
      table.add_row({model_name, device_name, fixed(p, 4), fixed(a, 4),
                     fixed(100.0 * (p - a) / a, 1) + "%"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\ncross-platform MAPE over %zu (CNN, device) pairs: %.2f%%\n",
              actual.size(), ml::mape(actual, predicted));
  std::printf(
      "note: unseen devices sit outside the 2-device training envelope, so\n"
      "errors are larger than on the training devices — the paper notes\n"
      "accuracy would improve with a wider range of training GPGPUs.\n");
  return 0;
}
