// Quickstart: build the training dataset, train the paper's Decision
// Tree estimator, and predict a CNN's IPC on a GPU — no hardware, no
// profiler.
//
//   ./quickstart [model] [device]
//
// Defaults to resnet50v2 on the GTX 1080 Ti.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/log.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "gpu/device_db.hpp"

int main(int argc, char** argv) {
  using namespace gpuperf;
  set_log_level(LogLevel::kInfo);

  const std::string model_name = argc > 1 ? argv[1] : "resnet50v2";
  const std::string device_name = argc > 2 ? argv[2] : "gtx1080ti";
  if (!cnn::zoo::has_model(model_name)) {
    std::fprintf(stderr, "unknown model '%s'; available models:\n",
                 model_name.c_str());
    for (const auto& e : cnn::zoo::all_models())
      std::fprintf(stderr, "  %s\n", e.name.c_str());
    return 1;
  }
  if (!gpu::has_device(device_name)) {
    std::fprintf(stderr, "unknown device '%s'; available devices:\n",
                 device_name.c_str());
    for (const auto& d : gpu::device_database())
      std::fprintf(stderr, "  %-16s %s\n", d.name.c_str(),
                   d.full_name.c_str());
    return 1;
  }

  // Phase 1: training dataset — 31 CNNs profiled (in simulation) on the
  // two training GPUs.
  std::printf("building training dataset (31 CNNs x 2 GPUs)...\n");
  core::DatasetBuilder builder;
  const ml::Dataset data = builder.build();
  std::printf("dataset: %zu observations, %zu features\n", data.size(),
              data.n_features());

  // Phase 2: train the predictive model.
  core::PerformanceEstimator estimator("dt");
  estimator.train(data);
  const ml::RegressionScore fit = estimator.evaluate(data);
  std::printf("decision tree trained (training-set MAPE %.2f%%)\n\n",
              fit.mape);

  // Predict.
  const gpu::DeviceSpec& device = gpu::device(device_name);
  const double ipc = estimator.predict(model_name, device);
  std::printf("predicted IPC of %s on %s (%s): %.4f\n", model_name.c_str(),
              device.full_name.c_str(), device.architecture.c_str(), ipc);
  std::printf("  dynamic code analysis took %.3f s, inference %.6f s\n",
              estimator.last_dca_seconds(),
              estimator.last_predict_seconds());
  return 0;
}
