// Design-space exploration: rank candidate GPGPUs for a CNN by
// predicted throughput, and show the time saved versus profiling every
// device (the paper's Section V application).
//
//   ./dse_explorer [model]
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "core/dse.hpp"
#include "gpu/device_db.hpp"

int main(int argc, char** argv) {
  using namespace gpuperf;

  const std::string model_name = argc > 1 ? argv[1] : "efficientnetb4";
  if (!cnn::zoo::has_model(model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }

  std::printf("training estimator...\n");
  core::DatasetBuilder builder;
  core::PerformanceEstimator estimator("dt");
  estimator.train(builder.build());
  core::DseExplorer dse(estimator);

  // Rank every device in the database, not just the training pair —
  // cross-platform prediction in action.
  std::vector<std::string> devices;
  for (const auto& d : gpu::device_database()) devices.push_back(d.name);
  const auto ranking = dse.rank_devices(model_name, devices);

  TextTable table("Device ranking for " + model_name +
                  " (best predicted throughput first)");
  table.set_header({"rank", "device", "architecture", "predicted IPC",
                    "throughput proxy"});
  int rank = 1;
  for (const auto& r : ranking) {
    const gpu::DeviceSpec& spec = gpu::device(r.device);
    table.add_row({std::to_string(rank++), spec.full_name,
                   spec.architecture, fixed(r.predicted_ipc, 4),
                   fixed(r.predicted_throughput / 1e6, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  const core::DseTiming timing = dse.time_model(model_name, devices);
  std::printf("cost to explore all %zu devices:\n", devices.size());
  std::printf("  naive profiling:  %.0f s\n",
              timing.t_measur(static_cast<int>(devices.size())));
  std::printf("  this estimator:   %.3f s  (%.0fx faster)\n",
              timing.t_est(static_cast<int>(devices.size())),
              timing.speedup(static_cast<int>(devices.size())));
  return 0;
}
