// Hardware-aware neural architecture search — the paper's concluding
// use case: "predict the performance of different generated CNN
// architectures for a wide range of GPGPUs without the need to execute
// the CNN on all of them."
//
// A random search samples residual-network candidates, scores each on
// accuracy-free proxies (parameters as a capacity proxy) and predicted
// IPC-derived throughput on a target device, and reports the Pareto
// front — every candidate scored purely by static + dynamic code
// analysis plus one tree walk.
//
//   ./nas_search [device] [n_candidates]
#include <algorithm>
#include <cstdio>

#include "cnn/static_analyzer.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "gpu/device_db.hpp"

namespace {

using namespace gpuperf;

struct Candidate {
  cnn::Model model;
  std::int64_t params = 0;
  double predicted_ipc = 0.0;
  double throughput_proxy = 0.0;  // IPC * SMs * clock / instructions
};

/// Sample a random residual classifier: depth, width, kernel sizes and
/// downsampling schedule drawn from a small search space.
cnn::Model sample_candidate(int index, Rng& rng) {
  using cnn::ActivationKind;
  using cnn::Layer;
  cnn::Model m("nas-" + std::to_string(index));
  const std::int64_t stem = 16 << rng.uniform_int(0, 2);  // 16/32/64
  cnn::NodeId x = m.add_input(128, 128, 3);
  x = m.conv_bn_act(x, stem, 3, 2);

  std::int64_t filters = stem;
  const int stages = static_cast<int>(rng.uniform_int(2, 4));
  for (int stage = 0; stage < stages; ++stage) {
    filters = std::min<std::int64_t>(filters * 2, 512);
    const int blocks = static_cast<int>(rng.uniform_int(1, 3));
    for (int b = 0; b < blocks; ++b) {
      const int stride = b == 0 ? 2 : 1;
      const int kernel = rng.uniform_int(0, 1) ? 3 : 5;
      cnn::NodeId shortcut = x;
      if (stride > 1) {
        shortcut = m.add(
            Layer::conv2d(filters, 1, stride, cnn::Padding::kSame, false),
            x);
        shortcut = m.add(Layer::batch_norm(), shortcut);
      }
      cnn::NodeId y = m.conv_bn_act(x, filters, kernel, stride);
      y = m.conv_bn_act(y, filters, kernel, 1, cnn::Padding::kSame,
                        ActivationKind::kLinear);
      x = m.add(Layer::add(), {shortcut, y});
      x = m.add(Layer::activation(ActivationKind::kReLU), x);
    }
  }
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string device_name = argc > 1 ? argv[1] : "teslat4";
  const int n_candidates = argc > 2 ? static_cast<int>(parse_int(argv[2]))
                                    : 24;
  if (!gpu::has_device(device_name)) {
    std::fprintf(stderr, "unknown device '%s'\n", device_name.c_str());
    return 1;
  }
  const gpu::DeviceSpec& device = gpu::device(device_name);

  std::printf("training estimator on the standard zoo...\n");
  core::DatasetBuilder builder;
  core::PerformanceEstimator estimator("dt");
  estimator.train(builder.build());

  std::printf("scoring %d random candidates on %s...\n\n", n_candidates,
              device.full_name.c_str());
  Rng rng(0xA5);
  core::FeatureExtractor extractor;
  const cnn::StaticAnalyzer analyzer;
  std::vector<Candidate> candidates;
  for (int i = 0; i < n_candidates; ++i) {
    Candidate c{sample_candidate(i, rng)};
    c.params = analyzer.analyze(c.model).trainable_params;
    const core::ModelFeatures features = extractor.compute(c.model);
    c.predicted_ipc = estimator.predict(
        core::FeatureExtractor::feature_vector(features, device));
    // Throughput proxy: instructions per second the device would
    // sustain at this IPC, normalized by the candidate's work.
    c.throughput_proxy =
        c.predicted_ipc * device.sm_count * device.boost_clock_mhz * 1e6 *
        32.0 / static_cast<double>(features.executed_instructions);
    candidates.push_back(std::move(c));
  }

  // Pareto front: maximize capacity (params) and throughput together.
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (candidates[j].params >= candidates[i].params &&
          candidates[j].throughput_proxy > candidates[i].throughput_proxy &&
          candidates[j].params > candidates[i].params) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].throughput_proxy > candidates[b].throughput_proxy;
  });

  TextTable table("Pareto front (capacity vs predicted throughput)");
  table.set_header({"candidate", "trainable params", "predicted IPC",
                    "inferences/s (proxy)"});
  for (std::size_t i : front)
    table.add_row({candidates[i].model.name(),
                   with_commas(candidates[i].params),
                   fixed(candidates[i].predicted_ipc, 4),
                   fixed(candidates[i].throughput_proxy, 1)});
  std::printf("%s", table.render().c_str());
  std::printf("\n%zu of %d candidates are Pareto-optimal; none were ever "
              "executed.\n",
              front.size(), n_candidates);
  return 0;
}
