#include "gpu/profiler.hpp"

#include <gtest/gtest.h>

#include "cnn/zoo.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::gpu {
namespace {

TEST(Profiler, EndToEndProfileProducesCounters) {
  const Profiler profiler(0.0);
  const ProfileResult r =
      profiler.profile(cnn::zoo::build("MobileNetV2"), device("gtx1080ti"));
  EXPECT_EQ(r.model_name, "MobileNetV2");
  EXPECT_EQ(r.device_name, "gtx1080ti");
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LT(r.ipc, 8.0);
  EXPECT_GT(r.total_cycles, 0.0);
  EXPECT_GT(r.elapsed_ms, 0.0);
  EXPECT_GT(r.thread_instructions, 0);
  EXPECT_GT(r.kernel_count, 0u);
  EXPECT_GE(r.memory_bound_fraction, 0.0);
  EXPECT_LE(r.memory_bound_fraction, 1.0);
  EXPECT_GT(r.profiling_wall_seconds, 10.0);  // nvprof replay model
}

TEST(Profiler, DeterministicForSameInputs) {
  const Profiler profiler(0.02, 7);
  const cnn::Model model = cnn::zoo::build("alexnet");
  const ProfileResult a = profiler.profile(model, device("v100s"));
  const ProfileResult b = profiler.profile(model, device("v100s"));
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.total_cycles, b.total_cycles);
}

TEST(Profiler, NoiseVariesAcrossModelDevicePairs) {
  const Profiler noisy(0.05, 1);
  const Profiler clean(0.0, 1);
  const cnn::Model model = cnn::zoo::build("alexnet");
  const double with_noise =
      noisy.profile(model, device("gtx1080ti")).total_cycles;
  const double without =
      clean.profile(model, device("gtx1080ti")).total_cycles;
  EXPECT_NE(with_noise, without);
  EXPECT_NEAR(with_noise / without, 1.0, 0.25);
}

TEST(Profiler, CrossDeviceDifferences) {
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("resnet50v2");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const ptx::ModelInstructionProfile instr = counter.count(compiled);

  const ProfileResult fast =
      profiler.profile_compiled(compiled, instr, device("v100s"));
  const ProfileResult slow =
      profiler.profile_compiled(compiled, instr, device("quadrop1000"));
  // A V100S finishes the same model far faster than a Quadro P1000.
  EXPECT_LT(fast.elapsed_ms * 3, slow.elapsed_ms);
  // Instruction counts are device-independent (same binary).
  EXPECT_EQ(fast.thread_instructions, slow.thread_instructions);
}

TEST(Profiler, CompiledPathMatchesConveniencePath) {
  const Profiler profiler(0.02, 3);
  const cnn::Model model = cnn::zoo::build("mobilenet");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const ptx::ModelInstructionProfile instr = counter.count(compiled);
  const ProfileResult a =
      profiler.profile_compiled(compiled, instr, device("gtx1080ti"));
  const ProfileResult b = profiler.profile(model, device("gtx1080ti"));
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}


namespace {
const DeviceSpec& device_db_entry() { return device("gtx1080ti"); }
}  // namespace

TEST(Profiler, PerLayerAttributionCoversWholeModel) {
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("MobileNetV2");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const ptx::ModelInstructionProfile instr = counter.count(compiled);
  const gpu::DeviceSpec& device = device_db_entry();

  const auto layers = profiler.profile_layers(compiled, instr, device);
  ASSERT_FALSE(layers.empty());

  double share = 0.0;
  std::size_t launches = 0;
  std::int64_t instructions = 0;
  for (const auto& lp : layers) {
    EXPECT_FALSE(lp.layer.empty());
    EXPECT_GT(lp.time_us, 0.0) << lp.layer;
    share += lp.time_share;
    launches += lp.launch_count;
    instructions += lp.thread_instructions;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_EQ(launches, compiled.launches.size());
  EXPECT_EQ(instructions, instr.total_instructions);
}

TEST(Profiler, ConvLayersDominateVggTime) {
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("vgg16");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const ptx::ModelInstructionProfile instr = counter.count(compiled);
  const auto layers =
      profiler.profile_layers(compiled, instr, device_db_entry());
  double conv_share = 0.0;
  for (const auto& lp : layers)
    if (lp.layer.find("Conv2D") != std::string::npos) conv_share += lp.time_share;
  // "Convolutional layers are responsible for over 90 % of the
  // computation" (paper Section I) — time share is similarly dominant.
  EXPECT_GT(conv_share, 0.75);
}

}  // namespace
}  // namespace gpuperf::gpu
