#include "gpu/workload.hpp"

#include <gtest/gtest.h>

#include "cnn/zoo.hpp"
#include "common/check.hpp"

namespace gpuperf::gpu {
namespace {

TEST(Workload, BuildFromCompiledModel) {
  const cnn::Model model = cnn::zoo::build("alexnet");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const ptx::ModelInstructionProfile profile = counter.count(compiled);

  const auto workloads = build_workloads(compiled, profile);
  ASSERT_EQ(workloads.size(), compiled.launches.size());

  std::int64_t total = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const KernelWorkload& w = workloads[i];
    EXPECT_EQ(w.kernel, compiled.launches[i].kernel);
    EXPECT_EQ(w.threads, compiled.launches[i].total_threads());
    EXPECT_EQ(w.thread_instructions, profile.per_launch[i]);
    EXPECT_EQ(w.bytes_read, compiled.stats[i].bytes_read);
    EXPECT_EQ(w.bytes_written, compiled.stats[i].bytes_written);
    std::int64_t class_sum = 0;
    for (std::int64_t c : w.class_counts) class_sum += c;
    EXPECT_EQ(class_sum, w.thread_instructions) << i;
    total += w.thread_instructions;
  }
  EXPECT_EQ(total, profile.total_instructions);
}

TEST(Workload, RejectsMismatchedInputs) {
  const cnn::Model model = cnn::zoo::build("alexnet");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  ptx::ModelInstructionProfile profile = counter.count(compiled);
  profile.per_launch.pop_back();
  EXPECT_THROW(build_workloads(compiled, profile), CheckError);
}

}  // namespace
}  // namespace gpuperf::gpu
