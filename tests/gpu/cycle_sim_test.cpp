#include "gpu/cycle_sim.hpp"

#include <gtest/gtest.h>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "gpu/device_db.hpp"
#include "gpu/simulator.hpp"

namespace gpuperf::gpu {
namespace {

KernelWorkload compute_workload() {
  KernelWorkload w;
  w.kernel = "synthetic_compute";
  w.threads = 1 << 16;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kFma)] = 1 << 24;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kIntAlu)] = 1 << 22;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kMove)] = 1 << 21;
  w.thread_instructions = 0;
  for (std::int64_t c : w.class_counts) w.thread_instructions += c;
  w.bytes_read = 1 << 20;
  w.bytes_written = 1 << 18;
  return w;
}

KernelWorkload memory_workload() {
  KernelWorkload w;
  w.kernel = "synthetic_memory";
  w.threads = 1 << 16;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kLoadGlobal)] =
      1 << 22;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kStoreGlobal)] =
      1 << 21;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kIntAlu)] = 1 << 22;
  w.thread_instructions = 0;
  for (std::int64_t c : w.class_counts) w.thread_instructions += c;
  w.bytes_read = 1LL << 30;
  w.bytes_written = 1LL << 28;
  return w;
}

TEST(CycleSim, ProducesPlausibleIpc) {
  const CycleLevelSimulator sim(device("gtx1080ti"));
  const CycleSimResult r = sim.simulate(compute_workload());
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.steady_ipc, 0.0);
  EXPECT_LT(r.steady_ipc, 8.0);
  EXPECT_GT(r.warp_instructions, 0.0);
}

TEST(CycleSim, SamplingKicksInForLongKernels) {
  const CycleLevelSimulator sim(device("gtx1080ti"));
  KernelWorkload big = compute_workload();
  for (auto& c : big.class_counts) c *= 64;  // ~22k instructions per warp
  big.thread_instructions *= 64;
  const CycleSimResult b = sim.simulate(big);
  EXPECT_FALSE(b.exact);

  const CycleSimResult s = sim.simulate(compute_workload());
  EXPECT_TRUE(s.exact);
  // Extrapolation keeps the per-instruction cost in the same ballpark
  // as exact simulation of the same mix.
  const double cost_big = b.cycles / b.warp_instructions;
  const double cost_small = s.cycles / s.warp_instructions;
  EXPECT_NEAR(cost_big, cost_small, 0.5 * cost_small);
}

TEST(CycleSim, MemoryBoundKernelsRespondToBandwidth) {
  DeviceSpec fast = device("gtx1080ti");
  DeviceSpec slow = fast;
  slow.memory_bandwidth_gbs /= 4;
  const double fast_cycles =
      CycleLevelSimulator(fast).simulate(memory_workload()).cycles;
  const double slow_cycles =
      CycleLevelSimulator(slow).simulate(memory_workload()).cycles;
  EXPECT_GT(slow_cycles, 1.5 * fast_cycles);
}

TEST(CycleSim, ComputeBoundKernelsRespondToCoreWidth) {
  DeviceSpec wide = device("gtx1080ti");
  DeviceSpec narrow = wide;
  narrow.cuda_cores /= 2;  // half the lanes per SM
  const double wide_cycles =
      CycleLevelSimulator(wide).simulate(compute_workload()).cycles;
  const double narrow_cycles =
      CycleLevelSimulator(narrow).simulate(compute_workload()).cycles;
  EXPECT_GT(narrow_cycles, 1.3 * wide_cycles);
}

TEST(CycleSim, AgreesDirectionallyWithAnalyticalModel) {
  // The two simulators are mechanistically different; they must still
  // order workloads the same way.
  const GpuSimulator analytical(device("v100s"));
  const CycleLevelSimulator cyclelevel(device("v100s"));
  const double a_compute = analytical.simulate(compute_workload()).cycles;
  const double a_memory = analytical.simulate(memory_workload()).cycles;
  const double c_compute =
      cyclelevel.simulate(compute_workload()).cycles;
  const double c_memory = cyclelevel.simulate(memory_workload()).cycles;
  EXPECT_EQ(a_memory > a_compute, c_memory > c_compute);
}

TEST(CycleSim, ModelAggregation) {
  const CycleLevelSimulator sim(device("gtx1080ti"));
  const std::vector<KernelWorkload> workloads = {compute_workload(),
                                                 memory_workload()};
  const CycleSimResult total = sim.simulate_model(workloads);
  const double sum = sim.simulate(workloads[0]).cycles +
                     sim.simulate(workloads[1]).cycles;
  EXPECT_NEAR(total.cycles, sum, 1e-6 * sum);
}

TEST(CycleSim, Deterministic) {
  const CycleLevelSimulator sim(device("teslat4"));
  EXPECT_DOUBLE_EQ(sim.simulate(memory_workload()).cycles,
                   sim.simulate(memory_workload()).cycles);
}

TEST(CycleSim, RejectsBadConfig) {
  CycleSimParams p;
  p.sample_instructions_per_warp = 10;
  p.warmup_instructions_per_warp = 20;
  EXPECT_THROW(CycleLevelSimulator(device("v100s"), p), CheckError);
  const CycleLevelSimulator sim(device("v100s"));
  EXPECT_THROW(sim.simulate_model({}), CheckError);
}

}  // namespace
}  // namespace gpuperf::gpu
