#include "gpu/dvfs.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"

namespace gpuperf::gpu {
namespace {

TEST(Dvfs, ScaleDeviceAdjustsClocksAndBandwidth) {
  const DeviceSpec base = device("gtx1080ti");
  const DeviceSpec scaled = scale_device(base, DvfsPoint{0.8, 1.2});
  EXPECT_DOUBLE_EQ(scaled.boost_clock_mhz, base.boost_clock_mhz * 0.8);
  EXPECT_DOUBLE_EQ(scaled.base_clock_mhz, base.base_clock_mhz * 0.8);
  EXPECT_DOUBLE_EQ(scaled.memory_bandwidth_gbs,
                   base.memory_bandwidth_gbs * 1.2);
  // Silicon is untouched.
  EXPECT_EQ(scaled.sm_count, base.sm_count);
  EXPECT_EQ(scaled.cuda_cores, base.cuda_cores);
  EXPECT_EQ(scaled.l2_cache_kb, base.l2_cache_kb);
  // The name encodes the operating point.
  EXPECT_EQ(scaled.name, "gtx1080ti@c0.80/m1.20");
}

TEST(Dvfs, IdentityPointIsNoop) {
  const DeviceSpec base = device("v100s");
  const DeviceSpec same = scale_device(base, DvfsPoint{1.0, 1.0});
  EXPECT_DOUBLE_EQ(same.boost_clock_mhz, base.boost_clock_mhz);
  EXPECT_DOUBLE_EQ(same.memory_bandwidth_gbs, base.memory_bandwidth_gbs);
}

TEST(Dvfs, RejectsImplausibleScales) {
  const DeviceSpec base = device("v100s");
  EXPECT_THROW(scale_device(base, DvfsPoint{0.0, 1.0}), CheckError);
  EXPECT_THROW(scale_device(base, DvfsPoint{1.0, 3.0}), CheckError);
}

TEST(Dvfs, GridEnumeratesAllCombinations) {
  const auto grid =
      dvfs_grid(device("gtx1080ti"), {0.8, 1.0}, {0.9, 1.0, 1.1});
  ASSERT_EQ(grid.size(), 6u);
  std::set<std::string> names;
  for (const auto& spec : grid) names.insert(spec.name);
  EXPECT_EQ(names.size(), 6u);  // all distinct
  EXPECT_THROW(dvfs_grid(device("gtx1080ti"), {}, {1.0}), CheckError);
}

TEST(Dvfs, SlowerCoreRaisesIpcOfMemoryBoundModels) {
  // IPC = instructions / cycles; a slower core makes memory-bound
  // kernels spend fewer (core) cycles per byte, so IPC rises.  This is
  // the physical signature DVFS experiments look for.
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("densenet121");
  const DeviceSpec base = device("gtx1080ti");
  const double ipc_slow =
      profiler.profile(model, scale_device(base, DvfsPoint{0.6, 1.0})).ipc;
  const double ipc_fast =
      profiler.profile(model, scale_device(base, DvfsPoint{1.2, 1.0})).ipc;
  EXPECT_GT(ipc_slow, ipc_fast);
}

TEST(Dvfs, MoreMemoryBandwidthRaisesIpc) {
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("densenet121");
  const DeviceSpec base = device("gtx1080ti");
  const double ipc_narrow =
      profiler.profile(model, scale_device(base, DvfsPoint{1.0, 0.6})).ipc;
  const double ipc_wide =
      profiler.profile(model, scale_device(base, DvfsPoint{1.0, 1.2})).ipc;
  EXPECT_GT(ipc_wide, ipc_narrow);
}

TEST(Dvfs, ScaledElapsedTimeMovesWithCoreClock) {
  // Wall time should drop when the core speeds up (compute-bound share)
  // and never increase.
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("vgg16");
  const DeviceSpec base = device("gtx1080ti");
  const double t_slow =
      profiler.profile(model, scale_device(base, DvfsPoint{0.6, 1.0}))
          .elapsed_ms;
  const double t_fast =
      profiler.profile(model, scale_device(base, DvfsPoint{1.2, 1.0}))
          .elapsed_ms;
  EXPECT_GT(t_slow, t_fast);
}

}  // namespace
}  // namespace gpuperf::gpu
