#include "gpu/device_db.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace gpuperf::gpu {
namespace {

TEST(DeviceDb, ContainsThePaperDevices) {
  EXPECT_TRUE(has_device("gtx1080ti"));
  EXPECT_TRUE(has_device("v100s"));
  EXPECT_TRUE(has_device("quadrop1000"));
  EXPECT_FALSE(has_device("gtx9090"));
  EXPECT_THROW(device("gtx9090"), CheckError);
}

TEST(DeviceDb, Gtx1080TiSpecs) {
  const DeviceSpec& d = device("gtx1080ti");
  EXPECT_EQ(d.sm_count, 28);
  EXPECT_EQ(d.cuda_cores, 3584);
  EXPECT_EQ(d.cores_per_sm(), 128);
  EXPECT_DOUBLE_EQ(d.memory_bandwidth_gbs, 484);
  EXPECT_EQ(d.l2_cache_kb, 2816);
  EXPECT_NEAR(d.fp32_tflops(), 11.3, 0.1);
}

TEST(DeviceDb, V100sSpecs) {
  const DeviceSpec& d = device("v100s");
  EXPECT_EQ(d.sm_count, 80);
  EXPECT_EQ(d.cores_per_sm(), 64);
  EXPECT_DOUBLE_EQ(d.memory_bandwidth_gbs, 1134);
}

TEST(DeviceDb, NamesUnique) {
  std::set<std::string> names;
  for (const auto& d : device_database()) names.insert(d.name);
  EXPECT_EQ(names.size(), device_database().size());
  EXPECT_GE(device_database().size(), 10u);
}

TEST(DeviceDb, TrainingAndDseDeviceListsResolve) {
  EXPECT_EQ(training_devices().size(), 2u);
  for (const auto& n : training_devices()) EXPECT_TRUE(has_device(n));
  EXPECT_EQ(dse_devices().size(), 7u);
  for (const auto& n : dse_devices()) EXPECT_TRUE(has_device(n));
}

TEST(DeviceSpec, FeatureVectorSchema) {
  const DeviceSpec& d = device("gtx1080ti");
  const auto features = d.features();
  const auto& names = DeviceSpec::feature_names();
  ASSERT_EQ(features.size(), names.size());
  EXPECT_EQ(names.front(), "mem_bandwidth_gbs");
  EXPECT_DOUBLE_EQ(features.front(), 484);
  for (double f : features) EXPECT_GT(f, 0.0);
}

TEST(DeviceSpec, BytesPerCycle) {
  const DeviceSpec& d = device("gtx1080ti");
  EXPECT_NEAR(d.bytes_per_cycle(), 484e9 / 1582e6, 1e-6);
}

TEST(DeviceSpec, AllEntriesWellFormed) {
  for (const auto& d : device_database()) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.sm_count, 0) << d.name;
    EXPECT_EQ(d.cuda_cores % d.sm_count, 0) << d.name;
    EXPECT_GT(d.memory_bandwidth_gbs, 0) << d.name;
    EXPECT_GT(d.boost_clock_mhz, d.base_clock_mhz * 0.5) << d.name;
    EXPECT_GT(d.l2_cache_kb, 0) << d.name;
  }
}

TEST(DeviceSpec, FleetEconomicsFieldsPresentForEveryEntry) {
  // The DSE constraint engine ranks on power and cost: every database
  // entry must carry both, and the has_* accessors must report them.
  for (const auto& d : device_database()) {
    EXPECT_TRUE(d.has_tdp_w()) << d.name;
    EXPECT_GT(d.tdp_w, 0.0) << d.name;
    EXPECT_TRUE(d.has_cost_usd()) << d.name;
    EXPECT_GT(d.cost_usd, 0.0) << d.name;
  }
  EXPECT_DOUBLE_EQ(device("gtx1080ti").cost_usd, 699.0);
}

TEST(DeviceSpec, HandBuiltSpecReportsUnknownEconomics) {
  DeviceSpec blank;
  blank.tdp_w = 0.0;
  EXPECT_FALSE(blank.has_tdp_w());
  EXPECT_FALSE(blank.has_cost_usd());
}

}  // namespace
}  // namespace gpuperf::gpu
