#include "gpu/simulator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::gpu {
namespace {

KernelWorkload sample_workload() {
  KernelWorkload w;
  w.kernel = "gp_gemm";
  w.threads = 1 << 18;
  w.thread_instructions = 1 << 26;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kFma)] = 1 << 24;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kIntAlu)] = 1 << 24;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kLoadGlobal)] =
      1 << 23;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kLoadShared)] =
      1 << 24;
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kMove)] = 1 << 23;
  w.bytes_read = 64 << 20;
  w.bytes_written = 16 << 20;
  return w;
}

TEST(Simulator, BasicSanity) {
  const GpuSimulator sim(device("gtx1080ti"));
  const KernelSimResult r = sim.simulate(sample_workload());
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.time_us, 0.0);
  EXPECT_GT(r.warp_instructions, 0.0);
}

TEST(Simulator, MoreBandwidthNeverSlowsMemoryBoundKernels) {
  KernelWorkload w = sample_workload();
  // Force memory-bound: huge traffic, light compute.
  w.class_counts.fill(0);
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kLoadGlobal)] =
      1 << 20;
  w.bytes_read = 1LL << 32;
  DeviceSpec fast = device("gtx1080ti");
  DeviceSpec slow = fast;
  slow.memory_bandwidth_gbs /= 2;
  const double fast_cycles = GpuSimulator(fast).simulate(w).cycles;
  const double slow_cycles = GpuSimulator(slow).simulate(w).cycles;
  EXPECT_LT(fast_cycles, slow_cycles);
  EXPECT_TRUE(GpuSimulator(fast).simulate(w).memory_bound);
}

TEST(Simulator, MoreInstructionsMoreCycles) {
  const GpuSimulator sim(device("v100s"));
  KernelWorkload small = sample_workload();
  KernelWorkload big = small;
  for (auto& c : big.class_counts) c *= 4;
  big.thread_instructions *= 4;
  EXPECT_GT(sim.simulate(big).cycles, sim.simulate(small).cycles);
}

TEST(Simulator, BiggerL2ReducesReuseTraffic) {
  KernelWorkload w = sample_workload();
  w.class_counts[static_cast<std::size_t>(ptx::OpClass::kLoadGlobal)] =
      1 << 26;  // heavy reuse traffic
  DeviceSpec small_l2 = device("gtx1080ti");
  DeviceSpec big_l2 = small_l2;
  // Large enough that the miss fraction leaves the clamp ceiling.
  big_l2.l2_cache_kb *= 64;
  const double small_cycles = GpuSimulator(small_l2).simulate(w).cycles;
  const double big_cycles = GpuSimulator(big_l2).simulate(w).cycles;
  EXPECT_GT(small_cycles, big_cycles);
}

TEST(Simulator, LowOccupancyPenalized) {
  const GpuSimulator sim(device("v100s"));
  KernelWorkload tiny = sample_workload();
  tiny.threads = 64;  // a fraction of one SM
  KernelWorkload wide = tiny;
  wide.threads = 1 << 20;
  // Same instruction totals, more threads -> better hiding -> fewer
  // cycles (or equal once saturated).
  EXPECT_GE(sim.simulate(tiny).cycles, sim.simulate(wide).cycles);
}

TEST(Simulator, ModelAggregationSumsKernels) {
  const GpuSimulator sim(device("gtx1080ti"));
  const KernelWorkload w = sample_workload();
  const ModelSimResult one = sim.simulate_model({w});
  const ModelSimResult two = sim.simulate_model({w, w});
  EXPECT_NEAR(two.total_cycles, 2 * one.total_cycles, 1e-6);
  EXPECT_EQ(two.kernel_count, 2u);
  EXPECT_NEAR(two.ipc, one.ipc, 1e-12);  // same mix, same IPC
}

TEST(Simulator, IpcWithinPhysicalBounds) {
  const GpuSimulator sim(device("gtx1080ti"));
  const ModelSimResult r = sim.simulate_model({sample_workload()});
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LT(r.ipc, 8.0);  // per-SM issue can't exceed scheduler width
}

TEST(Simulator, NoiseIsDeterministicPerSeed) {
  SimParams p;
  p.noise_stddev = 0.05;
  p.noise_seed = 1234;
  const GpuSimulator a(device("v100s"), p);
  const GpuSimulator b(device("v100s"), p);
  p.noise_seed = 99;
  const GpuSimulator c(device("v100s"), p);
  const std::vector<KernelWorkload> w = {sample_workload()};
  EXPECT_DOUBLE_EQ(a.simulate_model(w).total_cycles,
                   b.simulate_model(w).total_cycles);
  EXPECT_NE(a.simulate_model(w).total_cycles,
            c.simulate_model(w).total_cycles);
}

TEST(Simulator, NoiseFreeByDefault) {
  const GpuSimulator sim(device("v100s"));
  const std::vector<KernelWorkload> w = {sample_workload()};
  EXPECT_DOUBLE_EQ(sim.simulate_model(w).total_cycles,
                   sim.simulate_model(w).total_cycles);
}

TEST(Simulator, RejectsBadConfig) {
  EXPECT_THROW(GpuSimulator(DeviceSpec{}), CheckError);
  SimParams p;
  p.noise_stddev = 0.9;
  EXPECT_THROW(GpuSimulator(device("v100s"), p), CheckError);
  const GpuSimulator sim(device("v100s"));
  EXPECT_THROW(sim.simulate_model({}), CheckError);
}

TEST(Simulator, PowerModelWithinTdpEnvelope) {
  const GpuSimulator sim(device("gtx1080ti"));
  const ModelSimResult r = sim.simulate_model({sample_workload()});
  EXPECT_GT(r.average_power_w, 0.25 * device("gtx1080ti").tdp_w);
  EXPECT_LE(r.average_power_w, device("gtx1080ti").tdp_w + 1e-9);
  EXPECT_NEAR(r.energy_mj, r.average_power_w * r.elapsed_ms, 1e-9);
}

TEST(Simulator, BusierKernelsDrawMorePower) {
  const GpuSimulator sim(device("v100s"));
  KernelWorkload busy = sample_workload();
  busy.threads = 1 << 22;  // saturate occupancy: utilization ~ 1
  KernelWorkload idleish = sample_workload();
  idleish.threads = 256;   // latency-bound: low utilization
  const double p_busy = sim.simulate_model({busy}).average_power_w;
  const double p_idle = sim.simulate_model({idleish}).average_power_w;
  EXPECT_GT(p_busy, p_idle);
}

TEST(Simulator, SmallerBoardsDrawLessPower) {
  const std::vector<KernelWorkload> w = {sample_workload()};
  const double big =
      GpuSimulator(device("gtx1080ti")).simulate_model(w).average_power_w;
  const double small =
      GpuSimulator(device("jetsonxaviernx")).simulate_model(w).average_power_w;
  EXPECT_GT(big, 3.0 * small);
}

TEST(Workload, DerivedQuantities) {
  KernelWorkload w = sample_workload();
  EXPECT_EQ(w.warps(), (w.threads + 31) / 32);
  EXPECT_EQ(w.dram_bytes(), w.bytes_read + w.bytes_written);
}

}  // namespace
}  // namespace gpuperf::gpu
