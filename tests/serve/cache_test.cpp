#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace gpuperf::serve {
namespace {

using IntCache = ShardedLruCache<int>;

std::shared_ptr<const int> boxed(int v) {
  return std::make_shared<const int>(v);
}

TEST(ShardedLruCache, MissThenHit) {
  IntCache cache(8, 2);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return boxed(42);
  };
  EXPECT_EQ(*cache.get_or_compute("k", compute), 42);
  EXPECT_EQ(*cache.get_or_compute("k", compute), 42);
  EXPECT_EQ(computes, 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ShardedLruCache, GetAndPut) {
  IntCache cache(8, 1);
  EXPECT_EQ(cache.get("absent"), nullptr);
  cache.put("k", boxed(7));
  ASSERT_NE(cache.get("k"), nullptr);
  EXPECT_EQ(*cache.get("k"), 7);
  cache.put("k", boxed(9));  // overwrite keeps one entry
  EXPECT_EQ(*cache.get("k"), 9);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  IntCache cache(2, 1);  // single shard, two slots
  cache.put("a", boxed(1));
  cache.put("b", boxed(2));
  EXPECT_NE(cache.get("a"), nullptr);  // touch a; b is now LRU
  cache.put("c", boxed(3));
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCache, FailedComputeIsRetried) {
  IntCache cache(8, 1);
  int attempts = 0;
  const auto failing = [&]() -> std::shared_ptr<const int> {
    ++attempts;
    throw std::runtime_error("transient");
  };
  EXPECT_THROW(cache.get_or_compute("k", failing), std::runtime_error);
  EXPECT_EQ(cache.stats().size, 0u);  // the poisoned entry is gone
  EXPECT_EQ(*cache.get_or_compute("k", [&] { return boxed(5); }), 5);
  EXPECT_EQ(attempts, 1);
}

TEST(ShardedLruCache, SingleFlightUnderConcurrency) {
  IntCache cache(64, 4);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> seen(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto value = cache.get_or_compute("shared", [&] {
        ++computes;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return boxed(99);
      });
      seen[t] = *value;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(computes.load(), 1);  // everyone waited on one computation
  for (const int v : seen) EXPECT_EQ(v, 99);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ShardedLruCache, ConcurrentDistinctKeys) {
  IntCache cache(256, 8);
  constexpr int kThreads = 6;
  constexpr int kKeys = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round)
        for (int k = 0; k < kKeys; ++k) {
          const std::string key = "key" + std::to_string(k);
          const auto value =
              cache.get_or_compute(key, [&] { return boxed(k); });
          EXPECT_EQ(*value, k);
        }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every key cached (hash skew across shards could in principle evict,
  // so bound rather than pin the size).
  EXPECT_GT(cache.stats().size, 0u);
  EXPECT_LE(cache.stats().size, static_cast<std::size_t>(kKeys));
}

TEST(ShardedLruCache, ClearEmptiesEveryShard) {
  IntCache cache(64, 4);
  for (int k = 0; k < 20; ++k)
    cache.put("key" + std::to_string(k), boxed(k));
  EXPECT_GT(cache.stats().size, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.get("key3"), nullptr);
}

TEST(ShardedLruCache, RejectsZeroCapacity) {
  EXPECT_THROW(IntCache(0), CheckError);
}

}  // namespace
}  // namespace gpuperf::serve
