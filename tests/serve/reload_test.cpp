// Hot-reload, model_info and persistent feature store: the serve-side
// half of the registry subsystem (docs/REGISTRY.md).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "core/dataset_builder.hpp"
#include "registry/registry.hpp"
#include "serve/session.hpp"

namespace fs = std::filesystem;

namespace gpuperf::serve {
namespace {

const std::vector<std::string> kTinyModels = {"alexnet", "mobilenet",
                                              "MobileNetV2", "vgg16"};

const ml::Dataset& tiny_dataset() {
  static const ml::Dataset data = [] {
    core::DatasetOptions o;
    o.models = kTinyModels;
    return core::DatasetBuilder(o).build();
  }();
  return data;
}

/// A registry holding two bundles: v0001 is a decision tree, v0002 a
/// k-NN model (distinguishable via model_info's "regressor").
const std::string& two_bundle_registry() {
  static const std::string root = [] {
    const std::string dir = ::testing::TempDir() + "/gpuperf_reload_reg";
    fs::remove_all(dir);
    registry::ModelRegistry reg(dir);
    core::PerformanceEstimator dt("dt", 42);
    dt.train(tiny_dataset());
    registry::Manifest m1;
    m1.cv_folds = 5;
    m1.cv_mape = 10.0;
    reg.publish(dt, m1);
    core::PerformanceEstimator second("knn", 42);
    second.train(tiny_dataset());
    registry::Manifest m2;
    m2.cv_folds = 5;
    m2.cv_mape = 9.0;
    reg.publish(second, m2);
    return dir;
  }();
  return root;
}

ServeOptions registry_options(const std::string& version = "") {
  ServeOptions options;
  options.registry_dir = two_bundle_registry();
  options.registry_version = version;
  options.n_threads = 2;
  return options;
}

bool is_ok(const std::string& body) {
  return body.find("\"ok\":true") != std::string::npos;
}

TEST(ServeReload, ServesFromRegistryLatest) {
  ServeSession session(registry_options());
  EXPECT_EQ(session.live_version(), "v0002");
  EXPECT_EQ(session.estimator().regressor_id(), "knn");
  EXPECT_GT(session.predict("alexnet", "gtx1080ti"), 0.0);

  const std::string info = session.handle_line("model_info");
  ASSERT_TRUE(is_ok(info)) << info;
  EXPECT_NE(info.find("\"source\":\"registry\""), std::string::npos) << info;
  EXPECT_NE(info.find("\"version\":\"v0002\""), std::string::npos) << info;
  EXPECT_NE(info.find("\"regressor\":\"knn\""), std::string::npos)
      << info;
  EXPECT_NE(info.find("\"cv_mape\""), std::string::npos) << info;
}

TEST(ServeReload, PinsARequestedVersion) {
  ServeSession session(registry_options("v0001"));
  EXPECT_EQ(session.live_version(), "v0001");
  EXPECT_EQ(session.estimator().regressor_id(), "dt");
}

TEST(ServeReload, ReloadSwapsModelAndDropsResults) {
  ServeSession session(registry_options("v0001"));
  const double before = session.predict("alexnet", "gtx1080ti");
  EXPECT_GT(before, 0.0);

  const std::string body = session.handle_line("reload");
  ASSERT_TRUE(is_ok(body)) << body;
  EXPECT_NE(body.find("\"version\":\"v0002\""), std::string::npos) << body;
  EXPECT_EQ(session.live_version(), "v0002");
  EXPECT_EQ(session.reload_count(), 1u);
  EXPECT_EQ(session.estimator().regressor_id(), "knn");
  // The prediction cache was invalidated, DCA features stayed warm.
  EXPECT_EQ(session.result_cache_stats().size, 0u);
  EXPECT_GT(session.feature_cache_stats().size, 0u);

  // Rollback to a pinned version via the endpoint's --version flag.
  const std::string back = session.handle_line("reload --version v0001");
  ASSERT_TRUE(is_ok(back)) << back;
  EXPECT_EQ(session.live_version(), "v0001");
  EXPECT_DOUBLE_EQ(session.predict("alexnet", "gtx1080ti"), before);
}

TEST(ServeReload, ReloadWithoutRegistryIsAnError) {
  ServeOptions options;
  options.train_models = kTinyModels;
  options.n_threads = 2;
  ServeSession session(options);
  const std::string body = session.handle_line("reload");
  EXPECT_NE(body.find("\"ok\":false"), std::string::npos) << body;
  EXPECT_EQ(session.reload_count(), 0u);

  const std::string info = session.handle_line("model_info");
  ASSERT_TRUE(is_ok(info)) << info;
  EXPECT_NE(info.find("\"source\":\"trained\""), std::string::npos) << info;
}

TEST(ServeReload, CorruptBundleKeepsOldModelServing) {
  const std::string root =
      ::testing::TempDir() + "/gpuperf_reload_corrupt";
  fs::remove_all(root);
  registry::ModelRegistry reg(root);
  core::PerformanceEstimator dt("dt", 42);
  dt.train(tiny_dataset());
  reg.publish(dt, {});

  ServeOptions options;
  options.registry_dir = root;
  options.n_threads = 2;
  ServeSession session(options);
  const double before = session.predict("alexnet", "gtx1080ti");

  core::PerformanceEstimator second("knn", 42);
  second.train(tiny_dataset());
  reg.publish(second, {});
  {
    // Corrupt the freshly published bundle's model file.
    std::ofstream out(fs::path(root) / "v0002" / "model.txt",
                      std::ios::trunc);
    out << "garbage\n";
  }

  // A reload pinned to the corrupt version fails typed: the damaged
  // bundle is quarantined and the live model keeps serving.
  const std::string pinned =
      session.handle_line("reload --version v0002");
  EXPECT_NE(pinned.find("\"ok\":false"), std::string::npos) << pinned;
  EXPECT_NE(pinned.find("\"code\":\"model_unavailable\""),
            std::string::npos)
      << pinned;
  EXPECT_NE(pinned.find("checksum"), std::string::npos) << pinned;
  EXPECT_EQ(session.live_version(), "v0001");
  EXPECT_EQ(session.reload_count(), 0u);
  EXPECT_DOUBLE_EQ(session.predict("alexnet", "gtx1080ti"), before);
  EXPECT_TRUE(fs::is_directory(fs::path(root) / "quarantine" / "v0002"));

  // A LATEST reload falls back to the last good bundle instead of
  // failing (docs/ROBUSTNESS.md): still serving, still v0001.
  const std::string body = session.handle_line("reload");
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"version\":\"v0001\""), std::string::npos) << body;
  EXPECT_EQ(session.live_version(), "v0001");
  EXPECT_DOUBLE_EQ(session.predict("alexnet", "gtx1080ti"), before);
}

TEST(ServeReload, PredictsRacingHotReloadSeeNoErrors) {
  ServeSession session(registry_options("v0001"));
  constexpr int kReaderThreads = 6;
  constexpr int kPredictsPerThread = 40;
  constexpr int kReloads = 16;
  const std::vector<std::string> devices = {"gtx1080ti", "v100s",
                                            "teslat4"};

  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t)
    readers.emplace_back([&, t] {
      for (int i = 0; i < kPredictsPerThread; ++i) {
        const std::string body = session.handle_line(
            "predict " + kTinyModels[(t + i) % kTinyModels.size()] + " " +
            devices[i % devices.size()]);
        if (!is_ok(body)) errors.fetch_add(1);
      }
    });

  // Flip between the two bundles while the readers hammer predict.
  for (int i = 0; i < kReloads; ++i)
    session.reload(i % 2 == 0 ? "v0002" : "v0001");

  for (auto& reader : readers) reader.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(session.reload_count(),
            static_cast<std::uint64_t>(kReloads));
  // The final reload installed v0001; model_info agrees.
  const std::string info = session.handle_line("model_info");
  EXPECT_NE(info.find("\"version\":\"v0001\""), std::string::npos) << info;
}

TEST(ServeReload, FeatureStoreWarmStartSkipsDca) {
  const std::string store =
      ::testing::TempDir() + "/gpuperf_reload_store";
  fs::remove_all(store);

  ServeOptions options;
  options.train_models = kTinyModels;
  options.feature_store_dir = store;
  options.n_threads = 2;

  double cold_ipc = 0.0;
  {
    ServeSession cold(options);
    cold_ipc = cold.predict("alexnet", "gtx1080ti");
    cold.predict("mobilenet", "v100s");
    EXPECT_EQ(cold.dca_compute_count(), 2u);
    EXPECT_EQ(cold.feature_store_hit_count(), 0u);
  }

  // A restarted server finds both models in the persistent store and
  // never re-runs slicing/symexec.
  ServeSession warm(options);
  EXPECT_DOUBLE_EQ(warm.predict("alexnet", "gtx1080ti"), cold_ipc);
  warm.predict("mobilenet", "v100s");
  EXPECT_EQ(warm.dca_compute_count(), 0u);
  EXPECT_EQ(warm.feature_store_hit_count(), 2u);

  const std::string stats = warm.stats_json();
  EXPECT_NE(stats.find("\"dca\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"store_hits\""), std::string::npos) << stats;
}

TEST(ServeReload, PollingPicksUpNewBundles) {
  const std::string root = ::testing::TempDir() + "/gpuperf_reload_poll";
  fs::remove_all(root);
  registry::ModelRegistry reg(root);
  core::PerformanceEstimator dt("dt", 42);
  dt.train(tiny_dataset());
  reg.publish(dt, {});

  ServeOptions options;
  options.registry_dir = root;
  options.registry_poll_ms = 20;
  options.n_threads = 2;
  ServeSession session(options);
  EXPECT_EQ(session.live_version(), "v0001");

  core::PerformanceEstimator second("knn", 42);
  second.train(tiny_dataset());
  reg.publish(second, {});

  // The poller must notice LATEST moving without any client request.
  for (int i = 0; i < 250 && session.live_version() != "v0002"; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(session.live_version(), "v0002");
  EXPECT_GE(session.reload_count(), 1u);
}

#ifdef GPUPERF_FAULT_INJECTION
TEST(ServeReload, ReadinessDropsWhileThePollerIsFailing) {
  ServeOptions options;
  options.registry_dir = two_bundle_registry();
  options.registry_poll_ms = 20;
  options.n_threads = 2;
  ServeSession session(options);
  ASSERT_TRUE(is_ok(session.handle_line("ready")));
  EXPECT_NE(session.handle_line("ready").find("\"ready\":true"),
            std::string::npos);

  // A dead registry volume: every latest_version() read throws until
  // the site is disarmed.  Readiness must drop so a load balancer
  // stops routing here while the repair is in flight.
  fault::Spec spec;
  spec.action = fault::Action::kThrow;
  fault::arm("registry.latest", spec);
  std::string body;
  for (int i = 0; i < 250; ++i) {
    body = session.handle_line("ready");
    if (body.find("registry_poll_failing") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(body.find("\"ready\":false"), std::string::npos) << body;
  EXPECT_NE(body.find("registry_poll_failing"), std::string::npos)
      << body;

  // Repair lands: the next successful poll restores readiness.  The
  // poller backs off exponentially, so allow a few seconds.
  fault::disarm_all();
  for (int i = 0; i < 400; ++i) {
    body = session.handle_line("ready");
    if (body.find("\"ready\":true") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(body.find("\"ready\":true"), std::string::npos) << body;
}
#endif  // GPUPERF_FAULT_INJECTION

}  // namespace
}  // namespace gpuperf::serve
