// Chaos suite: every fault site in the serving stack is exercised with
// injected timeouts, failures, corruption and slow I/O, and the
// invariants of docs/ROBUSTNESS.md are asserted — the server never
// deadlocks, never leaks a waiter, and always answers with a typed
// machine-readable code (or a degraded prediction).
//
// Runs as its own ctest binary (`ctest -R chaos`) so CI can give it a
// dedicated job; everything is deterministic — faults fire on demand,
// not by chance.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/fault.hpp"
#include "core/dataset_builder.hpp"
#include "ptx/parser.hpp"
#include "ptx/symexec.hpp"
#include "registry/registry.hpp"
#include "serve/session.hpp"

#ifdef GPUPERF_FAULT_INJECTION

namespace fs = std::filesystem;

namespace gpuperf::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now() - start)
      .count();
}

bool has(const std::string& body, const std::string& needle) {
  return body.find(needle) != std::string::npos;
}

/// A loop the affine accelerator cannot close: the induction step
/// cycles 0,1,...,7 (via rem), so no three consecutive loop-head
/// snapshots ever show a constant delta, and the executor is forced to
/// simulate every iteration — hundreds of millions for p_n = INT32_MAX.
/// Without a deadline this would grind for minutes; with one it must
/// abort fast.
const ptx::PtxKernel& unresolvable_kernel() {
  static const ptx::PtxModule module = ptx::parse_ptx(R"(
.visible .entry chaos_spin(
  .param .u32 p_n
) {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, 0;
  mov.u32 %r2, 0;
  ld.param.u32 %r3, [p_n];
LOOP:
  add.s32 %r2, %r2, 1;
  rem.s32 %r2, %r2, 8;
  add.s32 %r1, %r1, %r2;
  setp.lt.s32 %p1, %r1, %r3;
  @%p1 bra LOOP;
  ret;
}
)");
  return module.kernels.front();
}

ptx::KernelLaunch spin_launch() {
  ptx::KernelLaunch launch;
  launch.kernel = "chaos_spin";
  launch.grid_dim = 1;
  launch.block_dim = 1;
  launch.args = {{"p_n", 2147483647}};
  return launch;
}

// ---------------------------------------------------------------------
// Bounded analysis: the tentpole acceptance criterion.

TEST(ChaosDeadline, UnresolvableLoopAbortsWithinTheBudget) {
  const ptx::SymbolicExecutor executor(unresolvable_kernel());
  const auto start = Clock::now();
  EXPECT_THROW(executor.run(spin_launch(), Deadline::after_ms(50)),
               AnalysisTimeout);
  // 50 ms budget, answered in well under 200 ms — not minutes.
  EXPECT_LT(ms_since(start), 200);
}

TEST(ChaosDeadline, StepBudgetAbortsWithoutAClock) {
  const ptx::SymbolicExecutor executor(unresolvable_kernel());
  Deadline deadline;
  deadline.with_step_budget(10'000);
  EXPECT_THROW(executor.run(spin_launch(), deadline), AnalysisTimeout);
}

TEST(ChaosDeadline, SixtyFourConcurrentAnalysesAllAbortNoStuckThreads) {
  const ptx::SymbolicExecutor executor(unresolvable_kernel());
  constexpr int kThreads = 64;
  std::atomic<int> timeouts{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      try {
        executor.run(spin_launch(), Deadline::after_ms(50));
        other.fetch_add(1);  // finishing would mean the loop resolved
      } catch (const AnalysisTimeout&) {
        timeouts.fetch_add(1);
      } catch (...) {
        other.fetch_add(1);
      }
    });
  // Joining every thread IS the no-stuck-threads assertion: a hung
  // analysis would hang the join (and the test's timeout would fire).
  for (auto& t : threads) t.join();
  EXPECT_EQ(timeouts.load(), kThreads);
  EXPECT_EQ(other.load(), 0);
}

// ---------------------------------------------------------------------
// Session-level degradation and typed errors.

ServeOptions chaos_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 4;
  return options;
}

class ChaosSession : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(ChaosSession, SlowDcaDegradesInsteadOfHanging) {
  ServeSession session(chaos_options());
  fault::Spec slow;
  slow.action = fault::Action::kDelay;
  slow.delay_ms = 5000;
  fault::ScopedFault fault("dca.compute", slow);

  const auto start = Clock::now();
  const std::string body =
      session.handle_line("predict alexnet v100s --deadline-ms 50");
  // The 5 s injected stall was converted into a fast degraded answer.
  EXPECT_LT(ms_since(start), 2000);
  EXPECT_TRUE(has(body, "\"ok\":true")) << body;
  EXPECT_TRUE(has(body, "\"degraded\":true")) << body;
  EXPECT_GE(session.metrics().counter_value("degraded"), 1u);
  EXPECT_GE(session.metrics().counter_value("analysis_timeouts"), 1u);
}

TEST_F(ChaosSession, NoDegradeReturnsTypedTimeoutAndRetriesClean) {
  ServeSession session(chaos_options());
  {
    fault::Spec slow;
    slow.action = fault::Action::kDelay;
    slow.delay_ms = 5000;
    fault::ScopedFault fault("dca.compute", slow);
    const std::string body = session.handle_line(
        "predict alexnet v100s --deadline-ms 50 --no-degrade");
    EXPECT_TRUE(has(body, "\"ok\":false")) << body;
    EXPECT_TRUE(has(body, "\"code\":\"analysis_timeout\"")) << body;
  }
  // The aborted compute was erased from the single-flight cache, so
  // the retry (fault now disarmed) starts fresh and succeeds.
  const std::string retry = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(retry, "\"ok\":true")) << retry;
  EXPECT_TRUE(has(retry, "\"degraded\":false")) << retry;
}

TEST_F(ChaosSession, TimeoutReachesEveryConcurrentWaiter) {
  ServeSession session(chaos_options());
  fault::Spec slow;
  slow.action = fault::Action::kDelay;
  slow.delay_ms = 5000;
  fault::arm("dca.compute", slow);

  constexpr int kThreads = 8;
  std::vector<std::string> bodies(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      bodies[i] = session.handle_line(
          "predict alexnet gtx1080ti --deadline-ms 50 --no-degrade");
    });
  for (auto& t : threads) t.join();
  for (const std::string& body : bodies) {
    EXPECT_TRUE(has(body, "\"ok\":false")) << body;
    EXPECT_TRUE(has(body, "\"code\":\"analysis_timeout\"")) << body;
  }

  fault::disarm_all();
  const std::string retry =
      session.handle_line("predict alexnet gtx1080ti");
  EXPECT_TRUE(has(retry, "\"ok\":true")) << retry;
}

TEST_F(ChaosSession, EveryRequestAnsweredWhenDcaAlwaysFails) {
  ServeSession session(chaos_options());
  fault::arm("dca.compute", fault::Spec{});  // throw, forever

  constexpr int kThreads = 64;
  const char* kModels[] = {"alexnet", "mobilenet", "MobileNetV2",
                           "vgg16"};
  const char* kDevices[] = {"gtx1080ti", "v100s", "teslat4"};
  std::atomic<int> answered{0};
  std::atomic<int> degraded{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      const std::string body = session.handle_line(
          std::string("predict ") + kModels[i % 4] + " " +
          kDevices[i % 3]);
      if (has(body, "\"ok\":")) answered.fetch_add(1);
      if (has(body, "\"degraded\":true")) degraded.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  // 100% DCA failure: the server still answers all 64 requests, every
  // one a degraded (static-features) prediction.
  EXPECT_EQ(answered.load(), kThreads);
  EXPECT_EQ(degraded.load(), kThreads);
  EXPECT_GE(session.metrics().counter_value("analysis_failures"),
            static_cast<std::uint64_t>(1));
}

TEST_F(ChaosSession, RankDegradesAsAWhole) {
  ServeSession session(chaos_options());
  fault::arm("dca.compute", fault::Spec{});
  const std::string body = session.handle_line("rank alexnet");
  EXPECT_TRUE(has(body, "\"ok\":true")) << body;
  EXPECT_TRUE(has(body, "\"degraded\":true")) << body;
}

TEST_F(ChaosSession, BatcherDispatchFaultFansOutAndRecovers) {
  ServeOptions options = chaos_options();
  options.degradation = false;  // see the raw fan-out, not the fallback
  ServeSession session(options);
  {
    fault::Spec spec;
    fault::ScopedFault fault("batcher.dispatch", spec);
    const std::string body =
        session.handle_line("predict mobilenet teslat4");
    EXPECT_TRUE(has(body, "\"ok\":false")) << body;
    EXPECT_TRUE(has(body, "\"code\":\"analysis_failed\"")) << body;
  }
  const std::string retry =
      session.handle_line("predict mobilenet teslat4");
  EXPECT_TRUE(has(retry, "\"ok\":true")) << retry;
}

TEST_F(ChaosSession, InFlightBoundShedsDeterministically) {
  ServeOptions options = chaos_options();
  options.max_in_flight = 1;
  ServeSession session(options);

  fault::Spec slow;
  slow.action = fault::Action::kDelay;
  slow.delay_ms = 2000;
  fault::arm("dca.compute", slow);

  std::string slow_body;
  std::thread occupant([&] {
    slow_body =
        session.handle_line("predict alexnet v100s --deadline-ms 150");
  });
  // Wait until the occupant is provably inside its DCA pass.
  while (fault::hits("dca.compute") == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const std::string shed_body =
      session.handle_line("predict mobilenet v100s");
  EXPECT_TRUE(has(shed_body, "\"code\":\"overloaded\"")) << shed_body;
  EXPECT_TRUE(has(shed_body, "\"retry_after_ms\"")) << shed_body;
  occupant.join();
  EXPECT_TRUE(has(slow_body, "\"ok\":true")) << slow_body;
  EXPECT_EQ(session.metrics().counter_value("shed_overloaded"), 1u);

  // Cheap verbs are never shed — the server stays observable.
  fault::disarm_all();
  EXPECT_TRUE(has(session.handle_line("ping"), "\"ok\":true"));
}

// ---------------------------------------------------------------------
// Registry and feature-store faults.

const std::string& one_bundle_registry() {
  static const std::string root = [] {
    const std::string dir = ::testing::TempDir() + "/gpuperf_chaos_reg";
    fs::remove_all(dir);
    registry::ModelRegistry reg(dir);
    core::DatasetOptions data_options;
    data_options.models = {"alexnet", "mobilenet", "MobileNetV2",
                           "vgg16"};
    core::PerformanceEstimator dt("dt", 42);
    dt.train(core::DatasetBuilder(data_options).build());
    reg.publish(dt, registry::Manifest{});
    return dir;
  }();
  return root;
}

TEST_F(ChaosSession, CorruptBundleReloadKeepsTheLiveModelServing) {
  ServeOptions options = chaos_options();
  options.registry_dir = one_bundle_registry();
  ServeSession session(options);
  ASSERT_EQ(session.live_version(), "v0001");

  fault::Spec corrupt;
  corrupt.action = fault::Action::kCorrupt;
  corrupt.remaining = 1;
  fault::arm("registry.load", corrupt);

  // The flipped byte trips the checksum gate; the client sees a typed
  // retryable code and the live model keeps serving.
  const std::string body = session.handle_line("reload");
  EXPECT_TRUE(has(body, "\"ok\":false")) << body;
  EXPECT_TRUE(has(body, "\"code\":\"model_unavailable\"")) << body;
  EXPECT_TRUE(has(body, "checksum")) << body;
  EXPECT_EQ(session.live_version(), "v0001");
  EXPECT_TRUE(
      has(session.handle_line("predict alexnet v100s"), "\"ok\":true"));

  // The corrupt spec was single-shot: the retry loads cleanly.
  EXPECT_TRUE(has(session.handle_line("reload"), "\"ok\":true"));
}

TEST_F(ChaosSession, DeadRegistryReloadIsTypedToo) {
  ServeOptions options = chaos_options();
  options.registry_dir = one_bundle_registry();
  ServeSession session(options);
  fault::ScopedFault fault("registry.latest", fault::Spec{});
  const std::string body = session.handle_line("reload");
  EXPECT_TRUE(has(body, "\"code\":\"model_unavailable\"")) << body;
}

TEST_F(ChaosSession, PollerBacksOffOnARepeatedlyFailingRegistry) {
  ServeOptions options = chaos_options();
  options.registry_dir = one_bundle_registry();
  options.registry_poll_ms = 5;
  ServeSession session(options);

  fault::arm("registry.latest", fault::Spec{});
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  const std::uint64_t polls = fault::hits("registry.latest");
  // Exponential backoff: 5+10+20+40+80+160+320 ms ≈ 7 polls in 700 ms.
  // An unthrottled 5 ms loop would have hammered the site ~140 times.
  EXPECT_GE(polls, 2u);
  EXPECT_LE(polls, 15u);
  EXPECT_GE(session.metrics().counter_value("registry_poll_failures"),
            polls);
}

TEST_F(ChaosSession, FeatureStoreFaultsAreSoft) {
  ServeOptions options = chaos_options();
  options.feature_store_dir =
      ::testing::TempDir() + "/gpuperf_chaos_store";
  fs::remove_all(options.feature_store_dir);
  ServeSession session(options);

  fault::arm("store.get", fault::Spec{});
  fault::arm("store.put", fault::Spec{});
  // A dead store volume degrades persistence, never the prediction:
  // the request succeeds at full (non-degraded) quality.
  const std::string body = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(body, "\"ok\":true")) << body;
  EXPECT_TRUE(has(body, "\"degraded\":false")) << body;
  EXPECT_GE(session.metrics().counter_value("store_read_failures"), 1u);
  EXPECT_GE(session.metrics().counter_value("store_write_failures"), 1u);

  // With the store healthy again the same session persists new work.
  fault::disarm_all();
  session.reset_caches();
  EXPECT_TRUE(
      has(session.handle_line("predict mobilenet v100s"), "\"ok\":true"));
  registry::FeatureStore store(options.feature_store_dir);
  EXPECT_GE(store.size(), 1u);
}

// ---------------------------------------------------------------------
// Per-module circuit breaker.

TEST_F(ChaosSession, BreakerOpensFastFailsAndRecoversViaHalfOpenProbe) {
  ServeOptions options = chaos_options();
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 800;
  ServeSession session(options);
  fault::arm("dca.compute", fault::Spec{});  // throw, forever

  // Two real DCA failures trip the breaker (degraded answers are not
  // cached, so the same model/device pair re-attempts the analysis).
  for (int i = 0; i < 2; ++i) {
    const std::string body = session.handle_line("predict alexnet v100s");
    EXPECT_TRUE(has(body, "\"degraded\":true")) << body;
  }
  EXPECT_EQ(session.metrics().counter_value("breaker_open"), 1u);

  // Open: the doomed analysis is skipped outright — the fault site
  // records no new hits — but the client still gets a degraded answer.
  const std::uint64_t hits_before = fault::hits("dca.compute");
  const std::string fast = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(fast, "\"degraded\":true")) << fast;
  EXPECT_EQ(fault::hits("dca.compute"), hits_before);
  EXPECT_GE(session.metrics().counter_value("breaker_fast_fail"), 1u);

  // The DCA recovers, the cooldown elapses: exactly one half-open
  // probe runs the real analysis and closes the breaker.
  fault::disarm_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  const std::string probe = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(probe, "\"degraded\":false")) << probe;
  EXPECT_GE(session.metrics().counter_value("breaker_half_open"), 1u);
  EXPECT_EQ(session.metrics().counter_value("breaker_open"), 1u);

  // Closed again: no further fast-fails.
  const std::uint64_t fast_fails =
      session.metrics().counter_value("breaker_fast_fail");
  EXPECT_TRUE(
      has(session.handle_line("predict alexnet v100s"), "\"ok\":true"));
  EXPECT_EQ(session.metrics().counter_value("breaker_fast_fail"),
            fast_fails);
}

TEST_F(ChaosSession, OpenBreakerWithNoDegradeIsATypedError) {
  ServeOptions options = chaos_options();
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60000;  // stays open for the test
  ServeSession session(options);
  fault::arm("dca.compute", fault::Spec{});

  EXPECT_TRUE(has(session.handle_line("predict vgg16 v100s"),
                  "\"degraded\":true"));
  const std::string body =
      session.handle_line("predict vgg16 teslat4 --no-degrade");
  EXPECT_TRUE(has(body, "\"ok\":false")) << body;
  EXPECT_TRUE(has(body, "\"code\":\"analysis_failed\"")) << body;
  EXPECT_TRUE(has(body, "circuit breaker open")) << body;
}

TEST_F(ChaosSession, BreakerIsPerModuleNotGlobal) {
  ServeOptions options = chaos_options();
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60000;
  ServeSession session(options);
  {
    fault::ScopedFault fault("dca.compute", fault::Spec{});
    EXPECT_TRUE(has(session.handle_line("predict alexnet v100s"),
                    "\"degraded\":true"));
  }
  // alexnet's breaker is open; mobilenet's is untouched and serves a
  // full-quality prediction.
  const std::string other = session.handle_line("predict mobilenet v100s");
  EXPECT_TRUE(has(other, "\"ok\":true")) << other;
  EXPECT_TRUE(has(other, "\"degraded\":false")) << other;
  const std::string opened = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(opened, "\"degraded\":true")) << opened;
  EXPECT_GE(session.metrics().counter_value("breaker_fast_fail"), 1u);
}

// ---------------------------------------------------------------------
// health / ready probes.

TEST_F(ChaosSession, HealthAndReadyVerbsAnswer) {
  ServeSession session(chaos_options());
  const std::string health = session.handle_line("health");
  EXPECT_TRUE(has(health, "\"status\":\"ok\"")) << health;
  EXPECT_TRUE(has(health, "\"uptime_ms\":")) << health;
  const std::string ready = session.handle_line("ready");
  EXPECT_TRUE(has(ready, "\"ready\":true")) << ready;
  EXPECT_TRUE(has(ready, "\"reasons\":[]")) << ready;
}

TEST_F(ChaosSession, ReadyReflectsTheInstalledProbe) {
  ServeSession session(chaos_options());
  bool draining = false;
  ServeSession::ReadyProbe probe;
  probe.draining = [&draining] { return draining; };
  probe.loop_healthy = [] { return true; };
  session.set_ready_probe(probe);
  EXPECT_TRUE(has(session.handle_line("ready"), "\"ready\":true"));
  draining = true;
  const std::string body = session.handle_line("ready");
  EXPECT_TRUE(has(body, "\"ready\":false")) << body;
  EXPECT_TRUE(has(body, "draining")) << body;
  session.set_ready_probe({});
  EXPECT_TRUE(has(session.handle_line("ready"), "\"ready\":true"));
}

TEST_F(ChaosSession, StatsReportTheChaos) {
  ServeSession session(chaos_options());
  {
    fault::Spec slow;
    slow.action = fault::Action::kDelay;
    slow.delay_ms = 5000;
    fault::ScopedFault fault("dca.compute", slow);
    session.handle_line("predict alexnet v100s --deadline-ms 50");
  }
  const std::string stats = session.handle_line("stats");
  EXPECT_TRUE(has(stats, "\"counters\"")) << stats;
  EXPECT_TRUE(has(stats, "\"degraded\":1")) << stats;
  EXPECT_TRUE(has(stats, "\"limits\"")) << stats;
}

}  // namespace
}  // namespace gpuperf::serve

#endif  // GPUPERF_FAULT_INJECTION
