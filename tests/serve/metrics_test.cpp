#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace gpuperf::serve {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(0.5), 0.0);
  EXPECT_EQ(histogram.mean_seconds(), 0.0);
  EXPECT_EQ(histogram.max_seconds(), 0.0);
}

TEST(LatencyHistogram, PercentilesBracketTheSamples) {
  LatencyHistogram histogram;
  // 90 fast requests at ~1 ms, 10 slow at ~1 s.
  for (int i = 0; i < 90; ++i) histogram.record(1e-3);
  for (int i = 0; i < 10; ++i) histogram.record(1.0);
  EXPECT_EQ(histogram.count(), 100u);
  const double p50 = histogram.percentile(0.50);
  const double p95 = histogram.percentile(0.95);
  // Geometric buckets are ~±15 % wide; assert the right decade.
  EXPECT_GT(p50, 0.5e-3);
  EXPECT_LT(p50, 2e-3);
  EXPECT_GT(p95, 0.5);
  EXPECT_LT(p95, 2.0);
  EXPECT_NEAR(histogram.mean_seconds(), (90 * 1e-3 + 10 * 1.0) / 100.0,
              1e-3);
  EXPECT_NEAR(histogram.max_seconds(), 1.0, 1e-6);
}

TEST(LatencyHistogram, ClampsOutOfRangeSamples) {
  LatencyHistogram histogram;
  histogram.record(-1.0);    // negative → treated as 0
  histogram.record(1e-9);    // below the first bucket
  histogram.record(1e6);     // beyond the last bucket
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_GT(histogram.percentile(1.0), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecording) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) histogram.record(1e-3);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistry, EndpointIsStable) {
  MetricsRegistry registry;
  EndpointMetrics& a = registry.endpoint("predict");
  EndpointMetrics& b = registry.endpoint("predict");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, ScopedRequestRecords) {
  MetricsRegistry registry;
  EndpointMetrics& endpoint = registry.endpoint("predict");
  {
    MetricsRegistry::ScopedRequest scope(registry, endpoint);
    EXPECT_EQ(registry.in_flight(), 1);
  }
  EXPECT_EQ(registry.in_flight(), 0);
  EXPECT_EQ(endpoint.requests.load(), 1u);
  EXPECT_EQ(endpoint.errors.load(), 0u);
  EXPECT_EQ(endpoint.latency.count(), 1u);
  {
    MetricsRegistry::ScopedRequest scope(registry, endpoint);
    scope.mark_error();
  }
  EXPECT_EQ(endpoint.errors.load(), 1u);
}

TEST(MetricsRegistry, JsonContainsEndpoints) {
  MetricsRegistry registry;
  { MetricsRegistry::ScopedRequest s(registry, registry.endpoint("rank")); }
  JsonWriter json;
  json.begin_object();
  registry.write_json(json);
  json.end_object();
  const std::string& text = json.str();
  EXPECT_NE(text.find("\"endpoints\""), std::string::npos);
  EXPECT_NE(text.find("\"rank\""), std::string::npos);
  EXPECT_NE(text.find("\"p95_ms\""), std::string::npos);
  EXPECT_NE(text.find("\"in_flight\":0"), std::string::npos);
}

TEST(MetricsRegistry, SummarySkipsIdleEndpoints) {
  MetricsRegistry registry;
  registry.endpoint("idle");
  { MetricsRegistry::ScopedRequest s(registry, registry.endpoint("busy")); }
  const std::string text = registry.summary();
  EXPECT_NE(text.find("busy"), std::string::npos);
  EXPECT_EQ(text.find("idle"), std::string::npos);
}

}  // namespace
}  // namespace gpuperf::serve
