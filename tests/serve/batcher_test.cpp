// The micro-batcher's fault-tolerance contract: a failing group fans
// its error out to *every* waiter, the batcher stays usable afterwards,
// and the outstanding-jobs bound sheds with a typed `overloaded`.
#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "gpu/device_db.hpp"
#include "serve/errors.hpp"

namespace gpuperf::serve {
namespace {

std::vector<double> ones(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

TEST(PredictBatcher, GroupFailureReachesEveryWaiter) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  PredictBatcher batcher(
      pool, [&](const std::string&,
                const std::vector<const gpu::DeviceSpec*>& devices,
                const Deadline&) -> std::vector<double> {
        calls.fetch_add(1);
        if (calls.load() == 1) throw std::runtime_error("group boom");
        return ones(devices.size());
      });

  const gpu::DeviceSpec& device = gpu::device_database().front();
  std::vector<std::future<double>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(batcher.submit("alexnet", device));
  int failures = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "group boom");
      ++failures;
    }
  }
  // Every waiter of the failed group(s) heard about the failure; none
  // hung and none got a silent default value.
  EXPECT_GT(failures, 0);
  pool.wait();

  // The batcher survives the failure and serves the next request.
  EXPECT_DOUBLE_EQ(batcher.submit("alexnet", device).get(), 1.0);
}

TEST(PredictBatcher, SizeMismatchIsAnErrorNotAWrongAnswer) {
  ThreadPool pool(2);
  PredictBatcher batcher(
      pool,
      [&](const std::string&, const std::vector<const gpu::DeviceSpec*>&,
          const Deadline&) { return ones(99); });
  auto future =
      batcher.submit("alexnet", gpu::device_database().front());
  EXPECT_THROW(future.get(), CheckError);
  pool.wait();
}

TEST(PredictBatcher, OutstandingBoundShedsWithTypedOverload) {
  ThreadPool pool(2);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  PredictBatcher batcher(
      pool,
      [&](const std::string&,
          const std::vector<const gpu::DeviceSpec*>& devices,
          const Deadline&) {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
        return ones(devices.size());
      },
      /*max_outstanding=*/3);

  const gpu::DeviceSpec& device = gpu::device_database().front();
  std::vector<std::future<double>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(batcher.submit("alexnet", device));

  // The bound is reached: the 4th submit sheds with a typed code
  // instead of queueing unboundedly behind the stuck group.
  try {
    batcher.submit("alexnet", device);
    FAIL() << "expected ServeError(kOverloaded)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
  }
  EXPECT_EQ(batcher.stats().shed, 1u);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& f : futures) EXPECT_DOUBLE_EQ(f.get(), 1.0);
  pool.wait();

  // Capacity freed: submits are accepted again.
  EXPECT_DOUBLE_EQ(batcher.submit("alexnet", device).get(), 1.0);
}

TEST(PredictBatcher, GroupDeadlineIsTheLoosestMember) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::vector<bool> unlimited_seen;
  PredictBatcher batcher(
      pool, [&](const std::string&,
                const std::vector<const gpu::DeviceSpec*>& devices,
                const Deadline& deadline) {
        std::lock_guard<std::mutex> lock(mutex);
        unlimited_seen.push_back(deadline.unlimited());
        return ones(devices.size());
      });
  const gpu::DeviceSpec& device = gpu::device_database().front();
  // A single tightly-bounded request keeps its own deadline...
  batcher.submit("alexnet", device, Deadline::after_ms(10'000)).get();
  // ...but is not allowed to tighten an unbounded batch-mate: that
  // combination must run unbounded.  (Single submits flush immediately,
  // so exercise loosest() directly for determinism.)
  const Deadline merged =
      Deadline::loosest(Deadline::after_ms(10), Deadline());
  EXPECT_TRUE(merged.unlimited());
  pool.wait();
  ASSERT_EQ(unlimited_seen.size(), 1u);
  EXPECT_FALSE(unlimited_seen[0]);
}

}  // namespace
}  // namespace gpuperf::serve
