#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace gpuperf::serve {
namespace {

TEST(ParseCommand, PositionalAndFlags) {
  const ParsedCommand cmd =
      parse_command({"resnet50v2", "teslat4", "--tree", "dt.txt"});
  ASSERT_EQ(cmd.positional.size(), 2u);
  EXPECT_EQ(cmd.positional[0], "resnet50v2");
  EXPECT_EQ(cmd.positional[1], "teslat4");
  EXPECT_EQ(cmd.flag_or("tree", ""), "dt.txt");
}

TEST(ParseCommand, BareFlagHasEmptyValue) {
  const ParsedCommand cmd = parse_command({"vgg16", "--layers"});
  EXPECT_TRUE(cmd.has_flag("layers"));
  EXPECT_EQ(cmd.flag_or("layers", "x"), "");
}

TEST(ParseCommand, FlagFollowedByFlagIsNotSwallowed) {
  // Historical CLI bug: `--out` at the end or followed by another flag
  // must not eat the next flag, and both flags must survive.
  const ParsedCommand cmd = parse_command({"--out", "--extended"});
  EXPECT_TRUE(cmd.has_flag("out"));
  EXPECT_EQ(cmd.flag_or("out", "x"), "");
  EXPECT_TRUE(cmd.has_flag("extended"));
}

TEST(ParseCommand, EqualsFormTakesValuesStartingWithDashes) {
  // The explicit form carries values the space form cannot.
  const ParsedCommand cmd =
      parse_command({"--out=--weird-name.csv", "--seed=42"});
  EXPECT_EQ(cmd.flag_or("out", ""), "--weird-name.csv");
  EXPECT_EQ(cmd.flag_or("seed", ""), "42");
}

TEST(ParseCommand, EqualsFormKeepsLaterEqualSigns) {
  const ParsedCommand cmd = parse_command({"--filter=a=b"});
  EXPECT_EQ(cmd.flag_or("filter", ""), "a=b");
}

TEST(ParseCommand, DoubleDashEndsFlagParsing) {
  const ParsedCommand cmd = parse_command({"--seed", "7", "--", "--model"});
  EXPECT_EQ(cmd.flag_or("seed", ""), "7");
  ASSERT_EQ(cmd.positional.size(), 1u);
  EXPECT_EQ(cmd.positional[0], "--model");
}

TEST(ParseRequest, VerbAndRemainder) {
  const Request request = parse_request("predict resnet50v2 teslat4\r");
  EXPECT_EQ(request.verb, "predict");
  ASSERT_EQ(request.cmd.positional.size(), 2u);
  EXPECT_EQ(request.cmd.positional[0], "resnet50v2");
}

TEST(ParseRequest, EmptyLine) {
  EXPECT_EQ(parse_request("").verb, "");
  EXPECT_EQ(parse_request("   \t ").verb, "");
}

TEST(ParseRequest, CollapsesWhitespace) {
  const Request request = parse_request("  rank   vgg16  ");
  EXPECT_EQ(request.verb, "rank");
  ASSERT_EQ(request.cmd.positional.size(), 1u);
  EXPECT_EQ(request.cmd.positional[0], "vgg16");
}

TEST(JsonWriter, ScalarsAndNesting) {
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("name", "alex\"net")
      .field("ipc", 2.5)
      .field("count", static_cast<std::int64_t>(-3));
  json.begin_object("inner").field("x", std::uint64_t{7}).end_object();
  json.begin_array("items");
  json.begin_object().field("a", 1.0).end_object();
  json.begin_object().field("a", 2.0).end_object();
  json.end_array().end_object();
  EXPECT_EQ(json.str(),
            "{\"ok\":true,\"name\":\"alex\\\"net\",\"ipc\":2.5,"
            "\"count\":-3,\"inner\":{\"x\":7},"
            "\"items\":[{\"a\":1},{\"a\":2}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_object()
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .end_object();
  EXPECT_EQ(json.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\x01"), "a\\nb\\tc\\u0001");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
}

TEST(JsonWriter, OutputHasNoNewline) {
  JsonWriter json;
  json.begin_object().field("text", "line1\nline2").end_object();
  EXPECT_EQ(json.str().find('\n'), std::string::npos);
}

TEST(ErrorResponse, Shape) {
  // Every error carries a machine-readable code; the legacy overload
  // classifies as invalid_request (docs/ROBUSTNESS.md).
  const Response response = error_response("boom");
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.shutdown_requested);
  EXPECT_EQ(response.body,
            "{\"ok\":false,\"code\":\"invalid_request\","
            "\"error\":\"boom\"}");
}

}  // namespace
}  // namespace gpuperf::serve
