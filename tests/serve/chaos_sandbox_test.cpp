// Sandbox chaos suite (docs/ROBUSTNESS.md "Crash isolation"): the
// worker-side fault sites — dca.crash (abort), dca.hang (wedge until
// the hard reaper fires), dca.oom (allocate until refusal / retained
// bloat) — are armed against a serving session running with
// isolate_dca, and the crash-only invariants are asserted: the parent
// never dies, every failure is typed analysis_crashed or served
// degraded, the breaker opens under a storm and recovers after it, and
// hard resource limits kill what cooperative deadlines cannot.
//
// Part of `ctest -R chaos` like the other chaos binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/fault.hpp"
#include "common/subprocess.hpp"
#include "sandbox/worker_pool.hpp"
#include "serve/session.hpp"

#ifdef GPUPERF_FAULT_INJECTION

namespace fs = std::filesystem;

namespace gpuperf::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now() - start)
      .count();
}

bool has(const std::string& body, const std::string& needle) {
  return body.find(needle) != std::string::npos;
}

ServeOptions isolated_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 4;
  options.isolate_dca = true;
  options.dca_workers = 2;
  options.breaker_cooldown_ms = 300;
  return options;
}

class SandboxChaos : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(SandboxChaos, WorkerCrashIsTypedAndTheServerSurvives) {
  ServeSession session(isolated_options());
  {
    fault::ScopedFault crash("dca.crash", fault::Spec{});
    const std::string body =
        session.handle_line("predict alexnet v100s --no-degrade");
    EXPECT_TRUE(has(body, "\"ok\":false")) << body;
    EXPECT_TRUE(has(body, "\"code\":\"analysis_crashed\"")) << body;
  }
  EXPECT_GE(session.metrics().counter_value("analysis_crashes"), 1u);
  // The crash domain was the worker: the parent answers, and a retry on
  // a fresh worker (fault disarmed) succeeds with full DCA.
  EXPECT_TRUE(has(session.handle_line("health"), "\"ok\":true"));
  const std::string retry = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(retry, "\"ok\":true")) << retry;
  EXPECT_TRUE(has(retry, "\"degraded\":false")) << retry;
}

TEST_F(SandboxChaos, CrashYieldsDegradedPredictionWhenAllowed) {
  ServeSession session(isolated_options());
  fault::ScopedFault crash("dca.crash", fault::Spec{});
  const std::string body = session.handle_line("predict alexnet v100s");
  EXPECT_TRUE(has(body, "\"ok\":true")) << body;
  EXPECT_TRUE(has(body, "\"degraded\":true")) << body;
  EXPECT_GE(session.metrics().counter_value("analysis_crashes"), 1u);
  EXPECT_GE(session.metrics().counter_value("degraded"), 1u);
}

// The acceptance scenario: dca.crash armed at 100%, 64 concurrent
// clients, zero parent deaths — every response is either a degraded
// prediction or a typed error, health/ready answer throughout, the
// breaker opens, and one cooldown after disarming the storm the
// session serves full-DCA predictions again.
TEST_F(SandboxChaos, CrashStormSixtyFourClientsServerStaysLive) {
  ServeSession session(isolated_options());
  fault::arm("dca.crash", fault::Spec{});  // every request, forever

  constexpr int kClients = 64;
  const char* kModels[] = {"alexnet", "mobilenet", "MobileNetV2"};
  std::atomic<int> typed{0};
  std::atomic<int> degraded{0};
  std::atomic<int> untyped{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      const std::string model = kModels[i % 3];
      const bool allow_degrade = i % 2 == 0;
      const std::string body = session.handle_line(
          "predict " + model + " v100s" +
          (allow_degrade ? "" : " --no-degrade"));
      if (has(body, "\"degraded\":true")) degraded.fetch_add(1);
      else if (has(body, "\"code\":\"analysis_crashed\"") ||
               has(body, "\"code\":\"analysis_failed\""))
        typed.fetch_add(1);
      else untyped.fetch_add(1);
      // Liveness probes race the storm: the cheap verbs always answer.
      EXPECT_TRUE(has(session.handle_line("health"), "\"ok\":true"));
      EXPECT_TRUE(has(session.handle_line("ready"), "\"ok\":true"));
    });
  for (auto& t : clients) t.join();

  EXPECT_EQ(untyped.load(), 0);
  EXPECT_EQ(typed.load() + degraded.load(), kClients);
  EXPECT_GT(degraded.load(), 0);
  // Sustained per-module failures opened the breaker at least once.
  EXPECT_GE(session.metrics().counter_value("breaker_open"), 1u);
  EXPECT_GE(session.metrics().counter_value("analysis_crashes"), 1u);

  // Storm over: within one breaker cooldown a half-open probe runs the
  // real analysis on a fresh worker and the session fully recovers.
  fault::disarm_all();
  const auto recover_start = Clock::now();
  bool recovered = false;
  while (ms_since(recover_start) < 10'000) {
    const std::string body =
        session.handle_line("predict alexnet v100s");
    if (has(body, "\"ok\":true") && has(body, "\"degraded\":false")) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(recovered);
}

TEST_F(SandboxChaos, HangIsHardKilledWithinTheConfiguredBudget) {
  ServeOptions options = isolated_options();
  options.dca_hard_timeout_ms = 1000;
  ServeSession session(options);
  fault::ScopedFault wedge("dca.hang", fault::Spec{});

  const auto start = Clock::now();
  const std::string body =
      session.handle_line("predict mobilenet v100s --no-degrade");
  // An infinite worker-side loop the cooperative Deadline cannot see:
  // only the SIGKILL reaper ends it, within the hard budget (+ slack).
  EXPECT_LT(ms_since(start), 5000);
  EXPECT_TRUE(has(body, "\"code\":\"analysis_crashed\"")) << body;
  EXPECT_TRUE(has(body, "hard deadline")) << body;
  EXPECT_GE(session.metrics().counter_value("analysis_crashes"), 1u);
}

TEST_F(SandboxChaos, CooperativeDeadlineStillWinsInsideTheWorker) {
  ServeSession session(isolated_options());
  fault::Spec slow;
  slow.action = fault::Action::kDelay;
  slow.delay_ms = 5000;
  fault::ScopedFault stall("dca.compute", slow);

  const auto start = Clock::now();
  const std::string body = session.handle_line(
      "predict alexnet v100s --deadline-ms 50 --no-degrade");
  // The worker's own Deadline fires long before the hard reaper: the
  // PR-3 timeout taxonomy is preserved under isolation.
  EXPECT_LT(ms_since(start), 3000);
  EXPECT_TRUE(has(body, "\"code\":\"analysis_timeout\"")) << body;
}

TEST_F(SandboxChaos, AddressSpaceLimitTurnsOomIntoATypedFailure) {
  sandbox::PoolOptions options;
  options.workers = 1;
  // Enough headroom over the test process's current mappings for the
  // worker to run, far too little for an unbounded allocation spree.
  options.worker_as_mb = self_vsize_kb() / 1024 + 512;
  sandbox::WorkerPool pool(options);
  fault::ScopedFault oom("dca.oom", fault::Spec{});
  try {
    pool.check_ptx(".visible .entry noop() { ret; }", Deadline());
    FAIL() << "oom site did not fire";
  } catch (const CheckError& e) {
    // bad_alloc under RLIMIT_AS → graceful typed refusal, not a crash.
    EXPECT_TRUE(has(e.what(), "allocation refused")) << e.what();
  }
  EXPECT_EQ(pool.stats().worker_crashes, 0u);
  EXPECT_EQ(pool.stats().worker_kills_timeout, 0u);
}

TEST_F(SandboxChaos, RetainedBloatTripsTheRssCeiling) {
  sandbox::PoolOptions options;
  options.workers = 1;
  options.worker_rss_mb = self_rss_kb() / 1024 + 64;
  sandbox::WorkerPool pool(options);
  fault::Spec bloat;
  bloat.action = fault::Action::kDelay;
  bloat.delay_ms = 128;  // dca.oom's parameter: retain 128 MiB
  bloat.remaining = 1;
  fault::arm("dca.oom", bloat);
  // The request itself succeeds — the ballast is retained, the parent
  // sees the self-reported RSS over the ceiling and kills the worker.
  pool.check_ptx(".visible .entry noop() { ret; }", Deadline());
  EXPECT_EQ(pool.stats().worker_kills_oom, 1u);
  // The next request gets a fresh, slim worker.
  pool.check_ptx(".visible .entry noop() { ret; }", Deadline());
  EXPECT_GE(pool.stats().worker_respawns, 1u);
}

TEST_F(SandboxChaos, CrashingFingerprintsLandInTheQuarantineLog) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("gpuperf_quarantine_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  ServeOptions options = isolated_options();
  options.dca_quarantine_dir = dir.string();
  {
    ServeSession session(options);
    fault::ScopedFault crash("dca.crash", fault::Spec{});
    session.handle_line("predict vgg16 v100s --no-degrade");
  }
  std::ifstream log(dir / "quarantine.log");
  ASSERT_TRUE(log.good());
  std::stringstream contents;
  contents << log.rdbuf();
  EXPECT_TRUE(has(contents.str(), "model=vgg16")) << contents.str();
  EXPECT_TRUE(has(contents.str(), "fingerprint=")) << contents.str();
  EXPECT_TRUE(has(contents.str(), "reason=crashed")) << contents.str();
  fs::remove_all(dir);
}

// Satellite of docs/ROBUSTNESS.md: the fuzz crash corpus replays
// through the sandboxed path — every corpus input either parses or is
// rejected with a typed error; none of them may kill a worker (a crash
// here is a real parser bug the sandbox just caught for free).
TEST_F(SandboxChaos, FuzzPtxCorpusReplaysWithoutWorkerCrashes) {
  const fs::path corpus = fs::path(GPUPERF_SOURCE_DIR) / "fuzz" /
                          "corpus" / "ptx";
  if (!fs::exists(corpus)) GTEST_SKIP() << "no corpus at " << corpus;
  sandbox::PoolOptions options;
  options.workers = 1;
  sandbox::WorkerPool pool(options);
  int replayed = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream bytes;
    bytes << in.rdbuf();
    try {
      pool.check_ptx(bytes.str(), Deadline::after_ms(30'000));
    } catch (const CheckError&) {
      // Typed rejection is a valid outcome for corpus inputs.
    }
    ++replayed;
  }
  EXPECT_GT(replayed, 0);
  EXPECT_EQ(pool.stats().worker_crashes, 0u);
  EXPECT_EQ(pool.stats().worker_kills_timeout, 0u);
}

}  // namespace
}  // namespace gpuperf::serve

#endif  // GPUPERF_FAULT_INJECTION
