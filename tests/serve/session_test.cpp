#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/mapped_buffer.hpp"
#include "core/dataset_builder.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::serve {
namespace {

ServeOptions tiny_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 2;
  return options;
}

ServeSession& shared_session() {
  static ServeSession session(tiny_options());
  return session;
}

/// Pull a numeric field out of a flat JSON response.
double json_number(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << body;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + pos + needle.size(), nullptr);
}

bool is_ok(const std::string& body) {
  return body.find("\"ok\":true") != std::string::npos;
}

TEST(ServeSession, PredictMatchesStandaloneEstimator) {
  // Same dataset, same seed, same regressor → bit-identical prediction.
  core::DatasetOptions dataset;
  dataset.models = tiny_options().train_models;
  core::PerformanceEstimator estimator("dt", 42);
  estimator.train(core::DatasetBuilder(dataset).build());
  const double expected =
      estimator.predict("alexnet", gpu::device("gtx1080ti"));

  EXPECT_DOUBLE_EQ(shared_session().predict("alexnet", "gtx1080ti"),
                   expected);
}

TEST(ServeSession, RepeatedPredictHitsResultCache) {
  ServeSession& session = shared_session();
  const CacheStats before = session.result_cache_stats();
  const std::string first =
      session.handle_line("predict MobileNetV2 teslat4");
  const std::string second =
      session.handle_line("predict MobileNetV2 teslat4");
  ASSERT_TRUE(is_ok(first)) << first;
  ASSERT_TRUE(is_ok(second)) << second;
  EXPECT_NE(first.find("\"cached\":false"), std::string::npos) << first;
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;
  EXPECT_DOUBLE_EQ(json_number(first, "ipc"), json_number(second, "ipc"));
  EXPECT_GT(session.result_cache_stats().hits, before.hits);
}

TEST(ServeSession, FeatureCacheSharedAcrossDevices) {
  ServeSession session(tiny_options());
  session.predict("alexnet", "gtx1080ti");
  const CacheStats after_first = session.feature_cache_stats();
  session.predict("alexnet", "v100s");  // same model, new device
  const CacheStats after_second = session.feature_cache_stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_second.misses, 1u);  // DCA ran exactly once
  EXPECT_GT(after_second.hits, after_first.hits);
}

TEST(ServeSession, ConcurrentPredictsAreConsistentAndBatched) {
  ServeSession session(tiny_options());
  const std::vector<std::string> devices = {"gtx1080ti", "v100s",
                                            "teslat4"};
  constexpr int kThreads = 9;
  std::vector<double> ipc(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      ipc[t] = session.predict("mobilenet", devices[t % devices.size()]);
    });
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_GT(ipc[t], 0.0);
    // Same (model, device) must agree regardless of batching order.
    EXPECT_DOUBLE_EQ(ipc[t], ipc[t % devices.size()]);
  }
  const CacheStats features = session.feature_cache_stats();
  EXPECT_EQ(features.misses, 1u);  // single-flight DCA
  EXPECT_GE(session.batcher_stats().batched_requests, 1u);
}

TEST(ServeSession, BatchingOffStillServes) {
  ServeOptions options = tiny_options();
  options.batching = false;
  ServeSession session(options);
  const double ipc = session.predict("alexnet", "teslat4");
  EXPECT_GT(ipc, 0.0);
  EXPECT_EQ(session.batcher_stats().batched_requests, 0u);
  EXPECT_DOUBLE_EQ(shared_session().predict("alexnet", "teslat4"), ipc);
}

TEST(ServeSession, AnalyzeMatchesStaticAnalyzer) {
  const std::string body =
      shared_session().handle_line("analyze MobileNetV2");
  ASSERT_TRUE(is_ok(body)) << body;
  const auto report =
      cnn::StaticAnalyzer().analyze(cnn::zoo::build("MobileNetV2"));
  EXPECT_EQ(static_cast<std::int64_t>(json_number(body, "trainable_params")),
            report.trainable_params);
  EXPECT_EQ(static_cast<std::int64_t>(json_number(body, "weighted_layers")),
            report.weighted_layers);
}

TEST(ServeSession, RankListsEveryDevice) {
  const std::string body = shared_session().handle_line("rank alexnet");
  ASSERT_TRUE(is_ok(body)) << body;
  for (const auto& device : gpu::device_database())
    EXPECT_NE(body.find("\"" + device.name + "\""), std::string::npos)
        << device.name;
  // Ranking is sorted by the throughput proxy, best first.
  const std::size_t first = body.find("\"throughput_proxy\":");
  ASSERT_NE(first, std::string::npos);
  double previous = json_number(body.substr(first), "throughput_proxy");
  for (std::size_t pos = body.find("\"throughput_proxy\":", first + 1);
       pos != std::string::npos;
       pos = body.find("\"throughput_proxy\":", pos + 1)) {
    const double value = json_number(body.substr(pos), "throughput_proxy");
    EXPECT_LE(value, previous + 1e-9);
    previous = value;
  }
}

TEST(ServeSession, StatsReportsEndpointsAndCaches) {
  ServeSession& session = shared_session();
  session.handle_line("predict alexnet gtx1080ti");
  const std::string body = session.handle_line("stats");
  ASSERT_TRUE(is_ok(body)) << body;
  for (const char* field :
       {"\"endpoints\"", "\"predict\"", "\"p50_ms\"", "\"p95_ms\"",
        "\"caches\"", "\"features\"", "\"results\"", "\"batch\"",
        "\"in_flight\"", "\"uptime_seconds\"", "\"regressor\""})
    EXPECT_NE(body.find(field), std::string::npos) << field;
  // Out-of-core graph counters are pre-registered, so they appear (at
  // least at zero) before any graph has ever spilled.
  for (const char* field : {"\"depgraph_csr_bytes\"", "\"dca_spill_files\"",
                            "\"dca_spill_bytes\""})
    EXPECT_NE(body.find(field), std::string::npos) << field;
}

TEST(ServeSession, SpillKnobsApplyBeforeAnyGraphIsBuilt) {
  // Regression: the knobs must hit the process-wide config while
  // `options_` initializes — a ServeSession member (FeatureExtractor's
  // InstructionCounter) builds the shared kernel-library graphs before
  // the constructor body runs, and those builds must already see the
  // requested budget.  Asserted here via the config round trip; the
  // ordering itself is pinned by the options_ initializer.
  const SpillConfig saved = dca_spill_config();
  ServeOptions options = tiny_options();
  options.dca_spill_dir = "/nonexistent-spill-dir";
  options.dca_spill_budget_bytes = 123456;
  ServeSession session(options);
  const SpillConfig applied = dca_spill_config();
  EXPECT_EQ(applied.dir, "/nonexistent-spill-dir");
  EXPECT_EQ(applied.resident_budget_bytes, 123456u);
  set_dca_spill_config(saved);
}

TEST(ServeSession, ErrorsAreResponsesNotExceptions) {
  ServeSession& session = shared_session();
  const std::string unknown_verb = session.handle_line("frobnicate");
  EXPECT_NE(unknown_verb.find("\"ok\":false"), std::string::npos);
  const std::string unknown_model =
      session.handle_line("predict notamodel gtx1080ti");
  EXPECT_NE(unknown_model.find("unknown model"), std::string::npos);
  const std::string unknown_device =
      session.handle_line("predict alexnet notadevice");
  EXPECT_NE(unknown_device.find("unknown device"), std::string::npos);
  const std::string missing_args = session.handle_line("predict");
  EXPECT_NE(missing_args.find("\"ok\":false"), std::string::npos);
  const std::string empty = session.handle_line("");
  EXPECT_NE(empty.find("\"ok\":false"), std::string::npos);
}

TEST(ServeSession, ShutdownVerbSignalsButResponds) {
  ServeSession session(tiny_options());
  const Response response = session.handle(parse_request("shutdown"));
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.shutdown_requested);
}

TEST(ServeSession, PingIsCheap) {
  const std::string body = shared_session().handle_line("ping");
  EXPECT_TRUE(is_ok(body)) << body;
}

TEST(ServeSession, ResetCachesForcesRecompute) {
  ServeSession session(tiny_options());
  session.predict("alexnet", "gtx1080ti");
  session.reset_caches();
  EXPECT_EQ(session.feature_cache_stats().size, 0u);
  session.predict("alexnet", "gtx1080ti");
  EXPECT_EQ(session.feature_cache_stats().misses, 2u);
}

TEST(ServeSession, DseVerbRanksTheFleet) {
  const std::string body = shared_session().handle_line(
      "dse alexnet,mobilenet --devices=gtx1080ti,gtx1060 --cells");
  ASSERT_TRUE(is_ok(body)) << body;
  EXPECT_NE(body.find("\"endpoint\":\"dse\""), std::string::npos);
  EXPECT_EQ(json_number(body, "unique_topologies"), 2.0);
  EXPECT_EQ(json_number(body, "failed_cells"), 0.0);
  for (const char* field :
       {"\"pareto\"", "\"recommendations\"", "\"score\"",
        "\"total_latency_ms\"", "\"peak_power_w\"", "\"cost_usd\"",
        "\"cells\"", "\"status\":\"ok\""})
    EXPECT_NE(body.find(field), std::string::npos) << field << " in " << body;
  for (const char* device : {"\"gtx1080ti\"", "\"gtx1060\""})
    EXPECT_NE(body.find(device), std::string::npos) << device;
}

TEST(ServeSession, DseDeduplicatesRepeatedModels) {
  const std::string body = shared_session().handle_line(
      "dse alexnet,alexnet --devices=gtx1060");
  ASSERT_TRUE(is_ok(body)) << body;
  EXPECT_EQ(json_number(body, "unique_topologies"), 1.0);
  EXPECT_EQ(json_number(body, "duplicate_models"), 1.0);
}

TEST(ServeSession, DseInfeasibleConstraintsAreTyped) {
  // Every device violates a 1 ns latency SLA: the sweep itself succeeds
  // but the verdict is a typed, non-retryable constraint_infeasible.
  const std::string body = shared_session().handle_line(
      "dse alexnet --devices=gtx1080ti,gtx1060 --max-latency-ms=1e-9");
  EXPECT_NE(body.find("\"ok\":false"), std::string::npos) << body;
  EXPECT_NE(body.find("\"code\":\"constraint_infeasible\""),
            std::string::npos)
      << body;
}

TEST(ServeSession, DseValidatesModelsAndDevices) {
  ServeSession& session = shared_session();
  EXPECT_NE(session.handle_line("dse notamodel").find("unknown model"),
            std::string::npos);
  EXPECT_NE(session.handle_line("dse alexnet --devices=notadevice")
                .find("unknown device"),
            std::string::npos);
  EXPECT_NE(session.handle_line("dse").find("\"ok\":false"),
            std::string::npos);
}

TEST(ServeSession, DseSweepCachePersistsAcrossRestart) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_session_dse_store")
          .string();
  std::filesystem::remove_all(dir);
  ServeOptions options = tiny_options();
  options.feature_store_dir = dir;
  const std::string command = "dse alexnet,vgg16 --devices=gtx1060,teslat4";
  {
    ServeSession session(options);
    const std::string cold = session.handle_line(command);
    ASSERT_TRUE(is_ok(cold)) << cold;
    EXPECT_EQ(json_number(cold, "sweep_cache_hits"), 0.0);
    const std::string stats = session.handle_line("stats");
    EXPECT_NE(stats.find("\"dse\""), std::string::npos) << stats;
  }
  // A restarted session replays the whole sweep from the journal:
  // every cell a cache hit, zero DCA feature passes.
  ServeSession restarted(options);
  const std::string warm = restarted.handle_line(command);
  ASSERT_TRUE(is_ok(warm)) << warm;
  EXPECT_EQ(json_number(warm, "sweep_cache_hits"), 4.0);
  EXPECT_EQ(json_number(warm, "features_computed"), 0.0);
  EXPECT_EQ(restarted.dca_compute_count(), 0u);
}

TEST(ServeSession, EstimatorHookSharesServeCache) {
  // The injected feature provider routes one-shot estimator predicts
  // through the service's DCA cache: no second DCA for a model the
  // service already analyzed.
  ServeSession session(tiny_options());
  session.predict("vgg16", "gtx1080ti");
  const CacheStats before = session.feature_cache_stats();
  auto& estimator =
      const_cast<core::PerformanceEstimator&>(session.estimator());
  estimator.predict("vgg16", gpu::device("teslat4"));
  const CacheStats after = session.feature_cache_stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.hits, before.hits);
}

}  // namespace
}  // namespace gpuperf::serve
