// Event-loop behaviors of the async serving core: idle reaping,
// pipelined ordering, loop observability, loop-level shedding, and
// drain under load.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"

namespace gpuperf::serve {
namespace {

ServeOptions tiny_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 2;
  return options;
}

ServeSession& shared_session() {
  static ServeSession session(tiny_options());
  return session;
}

/// Raw loopback connection (blocking, bounded recv) for pipelined
/// writes the TcpClient's one-at-a-time API can't express.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Read `n` newline-terminated responses, in arrival order.
  std::vector<std::string> read_lines(std::size_t n) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < n) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        lines.push_back(buffer.substr(0, nl));
        buffer.erase(0, nl + 1);
        continue;
      }
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(got));
    }
    return lines;
  }

 private:
  int fd_ = -1;
};

TEST(AsyncServer, IdleConnectionsAreReapedAndCounted) {
  ServeSession& session = shared_session();
  TcpServer::Options options;
  options.idle_timeout_ms = 100;
  TcpServer server(session, options);
  server.start();

  TcpClient idle_client("127.0.0.1", server.port());
  ASSERT_NE(idle_client.request("ping").find("\"ok\":true"),
            std::string::npos);
  // Go quiet past the timeout; the loop reaps the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_THROW(idle_client.request("ping"), ClientError);

  // The reap is observable through the stats verb (fresh connection).
  TcpClient stats_client("127.0.0.1", server.port());
  const std::string stats = stats_client.request("stats");
  EXPECT_NE(stats.find("\"connections_idle_reaped\":"),
            std::string::npos);
  EXPECT_GE(session.metrics().counter_value("connections_idle_reaped"),
            1u);
  server.stop();
}

TEST(AsyncServer, ActiveConnectionOutlivesIdleTimeout) {
  TcpServer::Options options;
  options.idle_timeout_ms = 150;
  TcpServer server(shared_session(), options);
  server.start();
  TcpClient client("127.0.0.1", server.port());
  // Steady traffic with gaps under the timeout: never reaped.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(client.request("ping").find("\"ok\":true"),
              std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
}

TEST(AsyncServer, PipelinedBurstIsAnsweredInOrder) {
  TcpServer server(shared_session());
  server.start();
  RawConn conn(server.port());
  // 100 pipelined requests in one write, alternating good and bad, so
  // order is observable in the response bodies.
  std::string burst;
  for (int i = 0; i < 50; ++i) burst += "ping\nfrobnicate\n";
  conn.send_bytes(burst);
  const std::vector<std::string> lines = conn.read_lines(100);
  ASSERT_EQ(lines.size(), 100u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i % 2 == 0)
      EXPECT_NE(lines[i].find("\"endpoint\":\"ping\""), std::string::npos)
          << "line " << i << ": " << lines[i];
    else
      EXPECT_NE(lines[i].find("unknown command"), std::string::npos)
          << "line " << i << ": " << lines[i];
  }
  server.stop();
}

TEST(AsyncServer, StatsExposeEventLoopCounters) {
  ServeSession& session = shared_session();
  TcpServer server(session);
  server.start();
  TcpClient client("127.0.0.1", server.port());
  ASSERT_NE(client.request("ping").find("\"ok\":true"),
            std::string::npos);
  const std::string stats = client.request("stats");
  for (const char* counter :
       {"\"connections_accepted\":", "\"connections_active\":",
        "\"epoll_wakeups\":", "\"bytes_in\":", "\"bytes_out\":",
        "\"requests_line\":"}) {
    EXPECT_NE(stats.find(counter), std::string::npos)
        << counter << " missing in " << stats;
  }
  EXPECT_GE(session.metrics().counter_value("connections_accepted"), 1u);
  EXPECT_GE(session.metrics().counter_value("bytes_in"), 5u);
  EXPECT_GE(session.metrics().counter_value("bytes_out"), 5u);
  server.stop();
}

TEST(AsyncServer, BacklogAndWorkerOptionsServeTraffic) {
  TcpServer::Options options;
  options.backlog = 4;
  options.worker_threads = 1;
  TcpServer server(shared_session(), options);
  server.start();
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      TcpClient client("127.0.0.1", server.port());
      if (client.request("ping").find("\"ok\":true") != std::string::npos)
        ok.fetch_add(1);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kClients);
  server.stop();
}

TEST(AsyncServer, MaxPendingKeepsEveryResponseTyped) {
  ServeSession& session = shared_session();
  session.reset_caches();
  TcpServer::Options options;
  options.max_pending = 1;
  options.worker_threads = 2;
  TcpServer server(session, options);
  server.start();
  // Hammer with concurrent heavy requests: each answer must be either a
  // real prediction or a typed `overloaded` shed — never a hang or a
  // drop.  Cheap verbs always pass.
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::atomic<int> answered{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      TcpClient client("127.0.0.1", server.port());
      for (int i = 0; i < 4; ++i) {
        const std::string body = client.request("predict vgg16 v100s");
        if (body.find("\"ok\":true") != std::string::npos ||
            body.find("\"code\":\"overloaded\"") != std::string::npos)
          answered.fetch_add(1);
      }
      EXPECT_NE(client.request("ping").find("\"ok\":true"),
                std::string::npos);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(answered.load(), kClients * 4);
  server.stop();
}

TEST(AsyncServer, DrainUnderLoadAnswersInFlightRequests) {
  ServeSession& session = shared_session();
  session.reset_caches();
  TcpServer server(session);
  server.start();
  const int port = server.port();

  // Clients push pipelined predicts while the server drains; every
  // request read before the half-close still gets its response.
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> responses{0};
  std::atomic<int> clean{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&] {
      try {
        TcpClient client("127.0.0.1", port);
        for (int i = 0; i < 50; ++i) {
          const std::string body =
              client.request("predict MobileNetV2 gtx1080ti");
          if (body.find("\"endpoint\":\"predict\"") != std::string::npos)
            responses.fetch_add(1);
        }
        clean.fetch_add(1);
      } catch (const ClientError&) {
        // The drain half-closed this connection mid-conversation —
        // allowed; already-read requests were still answered.
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(server.drain(10000));
  for (auto& thread : threads) thread.join();
  EXPECT_GT(responses.load(), 0);
  server.stop();

  // Post-drain: the listener is gone, so new connections are refused.
  EXPECT_THROW(TcpClient("127.0.0.1", port), ClientError);
}

TEST(AsyncServer, RestartAfterStopServesAgain) {
  TcpServer server(shared_session());
  server.start();
  const int first_port = server.port();
  {
    TcpClient client("127.0.0.1", first_port);
    EXPECT_NE(client.request("ping").find("\"ok\":true"),
              std::string::npos);
  }
  server.stop();
  server.start();
  {
    TcpClient client("127.0.0.1", server.port());
    EXPECT_NE(client.request("ping").find("\"ok\":true"),
              std::string::npos);
  }
  server.stop();
}

}  // namespace
}  // namespace gpuperf::serve
