// Binary framing round-trips, malformed-frame rejection, and live
// mixed-protocol traffic against the real server.
#include "serve/binary_protocol.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "serve/client.hpp"
#include "serve/server.hpp"

namespace gpuperf::serve {
namespace {

ServeOptions tiny_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 2;
  return options;
}

ServeSession& shared_session() {
  static ServeSession session(tiny_options());
  return session;
}

/// Raw loopback connection for hand-crafted (and corrupted) frames.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Read until one whole frame is buffered; returns its DecodeResult.
  binary::DecodeResult read_frame() {
    for (;;) {
      const binary::DecodeResult r = binary::decode_frame(buffer_);
      if (r.status != binary::DecodeStatus::kNeedMore) return r;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return r;  // kNeedMore: peer closed / timed out
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True once the peer closes (EOF within the receive timeout).
  bool peer_closed() {
    char chunk[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout: still open
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string& buffer() { return buffer_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(BinaryProtocol, RequestRoundTripAllVerbs) {
  using binary::Verb;
  for (const Verb verb :
       {Verb::kPredict, Verb::kRank, Verb::kDse, Verb::kAnalyze,
        Verb::kReload, Verb::kModelInfo, Verb::kStats, Verb::kPing,
        Verb::kShutdown}) {
    const std::string args = "alexnet v100s --deadline-ms 250";
    const std::string wire = binary::encode_request(verb, args);
    const binary::DecodeResult r = binary::decode_frame(wire);
    ASSERT_EQ(r.status, binary::DecodeStatus::kFrame)
        << binary::decode_status_name(r.status);
    EXPECT_EQ(r.frame.verb, verb);
    EXPECT_EQ(r.frame.flags, 0);
    EXPECT_EQ(r.frame.payload, args);
    EXPECT_EQ(r.consumed, wire.size());

    const Request request = binary::to_request(r.frame);
    EXPECT_EQ(request.verb, binary::verb_name(verb));
    ASSERT_EQ(request.cmd.positional.size(), 2u);
    EXPECT_EQ(request.cmd.positional[0], "alexnet");
    EXPECT_EQ(request.cmd.flag_or("deadline-ms", ""), "250");
  }
}

TEST(BinaryProtocol, ResponseCarriesErrorFlag) {
  const std::string ok =
      binary::encode_response(binary::Verb::kPing, true, "{\"ok\":true}");
  const std::string err = binary::encode_response(
      binary::Verb::kPredict, false, "{\"ok\":false}");
  const binary::DecodeResult rok = binary::decode_frame(ok);
  const binary::DecodeResult rerr = binary::decode_frame(err);
  ASSERT_EQ(rok.status, binary::DecodeStatus::kFrame);
  ASSERT_EQ(rerr.status, binary::DecodeStatus::kFrame);
  EXPECT_EQ(rok.frame.flags & binary::kFlagError, 0);
  EXPECT_EQ(rerr.frame.flags & binary::kFlagError, binary::kFlagError);
  EXPECT_EQ(rerr.frame.verb, binary::Verb::kPredict);
}

TEST(BinaryProtocol, VerbNamesRoundTrip) {
  for (std::uint8_t v = 1; v <= 9; ++v) {
    const auto verb = static_cast<binary::Verb>(v);
    binary::Verb parsed;
    ASSERT_TRUE(binary::verb_from_name(binary::verb_name(verb), parsed));
    EXPECT_EQ(parsed, verb);
  }
  binary::Verb unused;
  EXPECT_FALSE(binary::verb_from_name("frobnicate", unused));
  EXPECT_FALSE(binary::verb_from_name("", unused));
}

TEST(BinaryProtocol, TruncatedPrefixesNeedMore) {
  const std::string wire =
      binary::encode_request(binary::Verb::kPredict, "alexnet v100s");
  // Every strict prefix decodes to kNeedMore — never an error, never a
  // frame — so incremental socket reads compose correctly.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const binary::DecodeResult r =
        binary::decode_frame(std::string_view(wire).substr(0, len));
    EXPECT_EQ(r.status, binary::DecodeStatus::kNeedMore) << "len=" << len;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(BinaryProtocol, MalformedFramesGetTypedStatuses) {
  std::string wire =
      binary::encode_request(binary::Verb::kPing, "payload");

  std::string bad_magic = wire;
  bad_magic[0] = 'p';
  EXPECT_EQ(binary::decode_frame(bad_magic).status,
            binary::DecodeStatus::kBadMagic);

  std::string bad_version = wire;
  bad_version[1] = 9;
  EXPECT_EQ(binary::decode_frame(bad_version).status,
            binary::DecodeStatus::kBadVersion);

  std::string bad_verb = wire;
  bad_verb[2] = 42;
  EXPECT_EQ(binary::decode_frame(bad_verb).status,
            binary::DecodeStatus::kBadVerb);
  bad_verb[2] = 0;
  EXPECT_EQ(binary::decode_frame(bad_verb).status,
            binary::DecodeStatus::kBadVerb);

  std::string bad_crc = wire;
  bad_crc[binary::kHeaderBytes] ^= 0x01;
  EXPECT_EQ(binary::decode_frame(bad_crc).status,
            binary::DecodeStatus::kBadCrc);
}

TEST(BinaryProtocol, OversizedLengthRejectedFromHeaderAlone) {
  InputLimits limits;
  limits.max_frame_payload_bytes = 64;
  const std::string wire =
      binary::encode_request(binary::Verb::kPing, std::string(65, 'x'));
  // Only the 12 header bytes are needed to reject: the payload never
  // has to be buffered.
  const binary::DecodeResult r = binary::decode_frame(
      std::string_view(wire).substr(0, binary::kHeaderBytes), limits);
  EXPECT_EQ(r.status, binary::DecodeStatus::kTooLarge);
  EXPECT_NE(r.error.find("64"), std::string::npos) << r.error;
  // Within the budget the same frame is fine.
  limits.max_frame_payload_bytes = 65;
  EXPECT_EQ(binary::decode_frame(wire, limits).status,
            binary::DecodeStatus::kFrame);
}

TEST(BinaryProtocol, BinaryClientRoundTripsAgainstLiveServer) {
  ServeSession& session = shared_session();
  TcpServer server(session);
  server.start();
  TcpClient::Options options;
  options.binary = true;
  TcpClient client("127.0.0.1", server.port(), options);
  EXPECT_NE(client.request("ping").find("\"ok\":true"),
            std::string::npos);
  const std::string body = client.request("predict alexnet v100s");
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;
  // Unknown model: typed error body over the binary framing.
  EXPECT_NE(client.request("predict nosuch v100s").find("\"ok\":false"),
            std::string::npos);
  server.stop();
}

TEST(BinaryProtocol, MixedLineAndBinaryClientsShareOneServer) {
  ServeSession& session = shared_session();
  TcpServer server(session);
  server.start();

  const std::uint64_t line_before =
      session.metrics().counter_value("requests_line");
  const std::uint64_t binary_before =
      session.metrics().counter_value("requests_binary");

  TcpClient line_client("127.0.0.1", server.port());
  TcpClient::Options options;
  options.binary = true;
  TcpClient binary_client("127.0.0.1", server.port(), options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(line_client.request("predict mobilenet teslat4")
                  .find("\"ok\":true"),
              std::string::npos);
    EXPECT_NE(binary_client.request("predict mobilenet teslat4")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  // Both framings return byte-identical JSON bodies.
  EXPECT_EQ(line_client.request("model_info"),
            binary_client.request("model_info"));
  // Per-protocol request counters tracked the split.
  EXPECT_EQ(session.metrics().counter_value("requests_line"),
            line_before + 4);
  EXPECT_EQ(session.metrics().counter_value("requests_binary"),
            binary_before + 4);
  server.stop();
}

TEST(BinaryProtocol, OversizedFrameGetsTypedErrorAndClose) {
  ServeSession& session = shared_session();
  TcpServer::Options options;
  options.max_frame_payload_bytes = 128;
  TcpServer server(session, options);
  server.start();

  const std::uint64_t rejected_before =
      session.metrics().counter_value("inputs_rejected");
  RawConn conn(server.port());
  conn.send_bytes(
      binary::encode_request(binary::Verb::kPredict,
                             std::string(256, 'x')));
  const binary::DecodeResult r = conn.read_frame();
  ASSERT_EQ(r.status, binary::DecodeStatus::kFrame);
  EXPECT_NE(r.frame.flags & binary::kFlagError, 0);
  EXPECT_NE(r.frame.payload.find("\"code\":\"input_too_large\""),
            std::string::npos)
      << r.frame.payload;
  EXPECT_NE(r.frame.payload.find("128"), std::string::npos);
  EXPECT_EQ(session.metrics().counter_value("inputs_rejected"),
            rejected_before + 1);
  conn.buffer().erase(0, r.consumed);
  EXPECT_TRUE(conn.peer_closed());
  server.stop();
}

TEST(BinaryProtocol, CorruptCrcGetsTypedErrorAndClose) {
  TcpServer server(shared_session());
  server.start();
  RawConn conn(server.port());
  std::string wire = binary::encode_request(binary::Verb::kPing, "x");
  wire[binary::kHeaderBytes] = 'y';  // payload no longer matches CRC
  conn.send_bytes(wire);
  const binary::DecodeResult r = conn.read_frame();
  ASSERT_EQ(r.status, binary::DecodeStatus::kFrame);
  EXPECT_NE(r.frame.flags & binary::kFlagError, 0);
  EXPECT_NE(r.frame.payload.find("\"code\":\"invalid_request\""),
            std::string::npos)
      << r.frame.payload;
  conn.buffer().erase(0, r.consumed);
  EXPECT_TRUE(conn.peer_closed());
  server.stop();
}

}  // namespace
}  // namespace gpuperf::serve
