// Boots the real TCP server on an ephemeral port and drives it with the
// real client — the same path `gpuperf serve` / `gpuperf client` use.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "serve/client.hpp"

namespace gpuperf::serve {
namespace {

ServeOptions tiny_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 2;
  return options;
}

ServeSession& shared_session() {
  static ServeSession session(tiny_options());
  return session;
}

double json_number(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = body.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << body;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(body.c_str() + pos + needle.size(), nullptr);
}

TEST(TcpServer, BindsEphemeralPortAndAnswersPing) {
  TcpServer server(shared_session());
  server.start();
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
  TcpClient client("127.0.0.1", server.port());
  const std::string pong = client.request("ping");
  EXPECT_NE(pong.find("\"ok\":true"), std::string::npos) << pong;
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TcpServer, PredictRoundTripMatchesInProcess) {
  ServeSession& session = shared_session();
  TcpServer server(session);
  server.start();
  TcpClient client("127.0.0.1", server.port());

  const std::string first = client.request("predict alexnet v100s");
  ASSERT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_DOUBLE_EQ(json_number(first, "ipc"),
                   session.predict("alexnet", "v100s"));

  // The repeat is served from the result cache, observable both in the
  // response and in the stats counters.
  const std::uint64_t hits_before = session.result_cache_stats().hits;
  const std::string second = client.request("predict alexnet v100s");
  EXPECT_NE(second.find("\"cached\":true"), std::string::npos) << second;
  const std::string stats = client.request("stats");
  EXPECT_GT(json_number(stats, "uptime_seconds"), 0.0);
  EXPECT_GT(session.result_cache_stats().hits, hits_before);
  server.stop();
}

TEST(TcpServer, OneConnectionPipelinesManyRequests) {
  TcpServer server(shared_session());
  server.start();
  TcpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    const std::string body = client.request("predict mobilenet teslat4");
    EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;
  }
  server.stop();
}

TEST(TcpServer, ConcurrentClients) {
  TcpServer server(shared_session());
  server.start();
  const int port = server.port();
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<int> ok(kClients, 0);
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      TcpClient client("127.0.0.1", port);
      for (int i = 0; i < 5; ++i) {
        const std::string body =
            client.request("predict MobileNetV2 gtx1080ti");
        if (body.find("\"ok\":true") != std::string::npos) ++ok[c];
      }
    });
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(ok[c], 5);
  server.stop();
}

TEST(TcpServer, BadRequestsGetErrorResponsesNotDisconnects) {
  TcpServer server(shared_session());
  server.start();
  TcpClient client("127.0.0.1", server.port());
  EXPECT_NE(client.request("frobnicate").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(client.request("predict nosuch gtx1080ti")
                .find("unknown model"),
            std::string::npos);
  // The connection survives errors.
  EXPECT_NE(client.request("ping").find("\"ok\":true"), std::string::npos);
  server.stop();
}

TEST(TcpServer, ShutdownVerbRequestsStop) {
  TcpServer server(shared_session());
  server.start();
  EXPECT_FALSE(server.stop_requested());
  TcpClient client("127.0.0.1", server.port());
  const std::string body = client.request("shutdown");
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;
  EXPECT_TRUE(server.wait_for_stop(5000));
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TcpServer, WaitForStopTimesOut) {
  TcpServer server(shared_session());
  server.start();
  EXPECT_FALSE(server.wait_for_stop(50));
  server.stop();
}

TEST(TcpServer, StopIsIdempotentAndRestartable) {
  {
    TcpServer server(shared_session());
    server.start();
    server.stop();
    server.stop();  // second stop is a no-op
  }
  // A fresh server can bind again right away (SO_REUSEADDR).
  TcpServer server(shared_session());
  server.start();
  TcpClient client("127.0.0.1", server.port());
  EXPECT_NE(client.request("ping").find("\"ok\":true"), std::string::npos);
  server.stop();
}

TEST(TcpServer, ClientFailsCleanlyOnDeadPort) {
  TcpServer server(shared_session());
  server.start();
  const int port = server.port();
  server.stop();
  EXPECT_THROW(TcpClient("127.0.0.1", port), CheckError);
}

TEST(TcpServer, OversizedRequestLineGetsTypedErrorAndClose) {
  ServeSession& session = shared_session();
  const std::uint64_t rejected_before =
      session.metrics().counter_value("inputs_rejected");

  TcpServer::Options options;
  options.max_line_bytes = 128;
  TcpServer server(session, options);
  server.start();
  TcpClient client("127.0.0.1", server.port());

  const std::string huge = "predict " + std::string(4096, 'x');
  const std::string body = client.request(huge);
  EXPECT_NE(body.find("\"code\":\"input_too_large\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("128"), std::string::npos) << body;
  EXPECT_EQ(session.metrics().counter_value("inputs_rejected"),
            rejected_before + 1);

  // The connection is closed after the rejection; a fresh one works.
  EXPECT_THROW(client.request("ping"), ClientError);
  TcpClient fresh("127.0.0.1", server.port());
  EXPECT_NE(fresh.request("ping").find("\"ok\":true"), std::string::npos);
  server.stop();
}

TEST(TcpServer, UnterminatedOversizedStreamIsRejectedWithoutBuffering) {
  TcpServer::Options options;
  options.max_line_bytes = 64;
  TcpServer server(shared_session(), options);
  server.start();
  TcpClient client("127.0.0.1", server.port());
  // No newline at all: the server must reject once the buffer passes
  // the limit instead of accumulating bytes forever.  request() adds
  // the newline last, so everything before it streams unterminated —
  // by the time the terminator lands the server already answered.
  const std::string body = client.request(std::string(16384, 'a'));
  EXPECT_NE(body.find("\"code\":\"input_too_large\""), std::string::npos)
      << body;
  server.stop();
}

TEST(TcpClient, OversizedResponseLineIsATypedClientError) {
  TcpServer server(shared_session());
  server.start();
  TcpClient::Options options;
  options.max_response_bytes = 16;  // any stats response is bigger
  TcpClient client("127.0.0.1", server.port(), options);
  EXPECT_THROW(client.request("stats"), ClientError);
  server.stop();
}

}  // namespace
}  // namespace gpuperf::serve
