// End-to-end pipeline tests: the full phase-1 -> phase-2 flow on a
// reduced model set, checking the properties the paper's experiments
// rely on (disjoint splits, deterministic reruns, sane accuracy for
// every algorithm, cross-platform generalization).
#include <gtest/gtest.h>

#include <set>

#include "cnn/zoo.hpp"
#include "common/rng.hpp"
#include "core/dataset_builder.hpp"
#include "core/dse.hpp"
#include "core/estimator.hpp"
#include "gpu/device_db.hpp"
#include "ml/cross_validation.hpp"

namespace gpuperf {
namespace {

const ml::Dataset& pipeline_dataset() {
  static const ml::Dataset data = [] {
    core::DatasetOptions options;
    options.models = {"alexnet",     "MobileNetV2",   "mobilenet",
                      "vgg16",       "densenet121",   "resnet50v2",
                      "Xception",    "efficientnetb0", "inceptionv3",
                      "m-r50x1"};
    options.seed = 99;
    return core::DatasetBuilder(options).build();
  }();
  return data;
}

TEST(Pipeline, DatasetMatchesPaperFormalization) {
  const ml::Dataset& data = pipeline_dataset();
  // d = (y, p, c1..cm, t): one row per (CNN, GPU), IPC response.
  EXPECT_EQ(data.size(), 20u);
  EXPECT_EQ(data.n_features(), 10u);
  EXPECT_EQ(data.target_name(), "ipc");

  // Every (model, device) pair appears exactly once.
  std::set<std::string> tags;
  for (std::size_t i = 0; i < data.size(); ++i) tags.insert(data.tag(i));
  EXPECT_EQ(tags.size(), data.size());
}

TEST(Pipeline, SeventyThirtySplitIsDisjointAndCovering) {
  const ml::Dataset& data = pipeline_dataset();
  Rng rng(5);
  const auto [train, eval] = data.split(0.7, rng);
  EXPECT_EQ(train.size() + eval.size(), data.size());
  std::set<std::string> train_tags;
  for (std::size_t i = 0; i < train.size(); ++i)
    train_tags.insert(train.tag(i));
  for (std::size_t i = 0; i < eval.size(); ++i)
    EXPECT_EQ(train_tags.count(eval.tag(i)), 0u) << eval.tag(i);
}

TEST(Pipeline, EveryAlgorithmReachesUsableAccuracy) {
  const ml::Dataset& data = pipeline_dataset();
  Rng rng(5);
  const auto [train, eval] = data.split(0.7, rng);
  for (const auto& id : ml::regressor_ids()) {
    core::PerformanceEstimator estimator(id, 42);
    estimator.train(train);
    const ml::RegressionScore score = estimator.evaluate(eval);
    EXPECT_LT(score.mape, 40.0) << id;
    EXPECT_GT(score.mape, 0.0) << id;
  }
}

TEST(Pipeline, WholeExperimentIsDeterministic) {
  // Rebuild dataset + retrain + re-evaluate: identical numbers.
  auto run_once = [] {
    core::DatasetOptions options;
    options.models = {"alexnet", "MobileNetV2", "vgg16", "densenet121"};
    options.seed = 7;
    const ml::Dataset data = core::DatasetBuilder(options).build();
    Rng rng(3);
    const auto [train, eval] = data.split(0.7, rng);
    core::PerformanceEstimator estimator("dt", 42);
    estimator.train(train);
    return estimator.evaluate(eval).mape;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Pipeline, HoldoutProtocolExcludesWholeModels) {
  const ml::Dataset& data = pipeline_dataset();
  const std::vector<std::string> holdouts = {"alexnet", "Xception"};
  const auto [train, held] = data.split_by_tag_prefix(holdouts);
  EXPECT_EQ(held.size(), 4u);  // 2 models x 2 devices
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(train.tag(i).find("alexnet"), std::string::npos);
    EXPECT_EQ(train.tag(i).find("Xception"), std::string::npos);
  }
  // Predicting the held-out models still works through the estimator.
  core::PerformanceEstimator estimator("dt", 42);
  estimator.train(train);
  const double p =
      estimator.predict("alexnet", gpu::device("gtx1080ti"));
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 8.0);
}

TEST(Pipeline, CrossValidationRunsOnRealDataset) {
  const ml::CvResult cv =
      ml::cross_validate(pipeline_dataset(), 4, "dt", 42);
  EXPECT_EQ(cv.folds.size(), 4u);
  EXPECT_LT(cv.pooled.mape, 40.0);
}

TEST(Pipeline, DseRankingPrefersStrongerSilicon) {
  core::PerformanceEstimator estimator("dt", 42);
  estimator.train(pipeline_dataset());
  core::DseExplorer dse(estimator);
  const auto ranking = dse.rank_devices(
      "resnet50v2", {"v100s", "quadrop1000", "gtx1080ti"});
  // The Quadro P1000 (5 SMs, 80 GB/s) must not be ranked first among
  // these three for a heavy CNN.
  EXPECT_NE(ranking.front().device, "quadrop1000");
  EXPECT_EQ(ranking.back().device, "quadrop1000");
}

TEST(Pipeline, EstimatorGeneralizesAcrossDeviceEnvelope) {
  // Train with the defaults (2 devices) and check predictions on all 10
  // database devices stay within the physically sensible band.
  core::PerformanceEstimator estimator("dt", 42);
  estimator.train(pipeline_dataset());
  for (const auto& device : gpu::device_database()) {
    const double p = estimator.predict("MobileNetV2", device);
    EXPECT_GT(p, 0.0) << device.name;
    EXPECT_LT(p, 8.0) << device.name;
  }
}

}  // namespace
}  // namespace gpuperf
