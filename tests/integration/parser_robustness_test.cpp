// Robustness fuzzing of the PTX front end: random mutations of valid
// PTX must either parse (possibly into a different but well-formed
// module) or throw CheckError — never crash, hang, or corrupt memory.
// The verifier must likewise survive anything the parser accepts.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ptx/codegen.hpp"
#include "ptx/parser.hpp"
#include "ptx/verifier.hpp"

namespace gpuperf::ptx {
namespace {

const std::string& library_text() {
  static const std::string text =
      CodeGenerator::kernel_library().to_ptx();
  return text;
}

std::string mutate(const std::string& base, Rng& rng) {
  std::string out = base;
  const int edits = static_cast<int>(rng.uniform_int(1, 4));
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789%.,;:[]{}()<>@!+- \t\n";
  for (int e = 0; e < edits; ++e) {
    if (out.empty()) break;
    const std::size_t pos = rng.uniform_index(out.size());
    switch (rng.uniform_int(0, 2)) {
      case 0:  // replace
        out[pos] = kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)];
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      default:  // insert
        out.insert(pos, 1,
                   kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)]);
        break;
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, MutatedPtxNeverCrashesTheFrontEnd) {
  Rng rng(GetParam());
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::string mutated = mutate(library_text(), rng);
    try {
      const PtxModule mod = parse_ptx(mutated);
      ++parsed;
      // Whatever parsed must also be safe to verify and print.
      (void)verify_module(mod);
      (void)mod.to_ptx();
    } catch (const CheckError&) {
      ++rejected;  // the contract: malformed input fails loudly
    }
  }
  EXPECT_EQ(parsed + rejected, 100);
  // Single-character edits of a large module frequently land in
  // whitespace/comments, so some mutants must still parse.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(ParserFuzz, TruncationsAreHandled) {
  const std::string& text = library_text();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t cut = rng.uniform_index(text.size());
    try {
      (void)parse_ptx(text.substr(0, cut));
    } catch (const CheckError&) {
      // expected for most cut points
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace gpuperf::ptx
