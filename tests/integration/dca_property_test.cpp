// Randomized property sweep over the dynamic code analysis: for every
// kernel in the library and many random launch geometries, the sliced
// symbolic executor must equal brute-force interpretation exactly.
// This is the load-bearing invariant of the whole reproduction — the
// feature p of the training vector is only meaningful if it is the
// true dynamic instruction count.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ptx/codegen.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/parser.hpp"
#include "ptx/symexec.hpp"

namespace gpuperf::ptx {
namespace {

const PtxModule& library() {
  static const PtxModule lib =
      parse_ptx(CodeGenerator::kernel_library().to_ptx());
  return lib;
}

/// Random launch for a kernel, sized so brute force stays affordable.
KernelLaunch random_launch(const std::string& kernel, Rng& rng) {
  KernelLaunch l;
  l.kernel = kernel;
  l.block_dim = 256;
  l.grid_dim = rng.uniform_int(1, 4);
  const std::int64_t threads = l.total_threads();
  const std::int64_t n = rng.uniform_int(1, 2 * threads);

  std::int64_t addr = 0x1000;
  auto ptr = [&] { return addr += 0x100000; };

  if (kernel == "gp_copy" || kernel == "gp_relu" || kernel == "gp_relu6" ||
      kernel == "gp_sigmoid" || kernel == "gp_swish" ||
      kernel == "gp_tanh") {
    l.args = {{"p_dst", ptr()}, {"p_a", ptr()}, {"p_n", n}};
  } else if (kernel == "gp_add" || kernel == "gp_mul") {
    l.args = {{"p_dst", ptr()}, {"p_a", ptr()}, {"p_b", ptr()}, {"p_n", n}};
  } else if (kernel == "gp_bn") {
    l.args = {{"p_dst", ptr()},   {"p_a", ptr()}, {"p_scale", ptr()},
              {"p_shift", ptr()}, {"p_n", n},     {"p_c", rng.uniform_int(1, 64)}};
  } else if (kernel == "gp_mul_bcast") {
    l.args = {{"p_dst", ptr()}, {"p_a", ptr()}, {"p_se", ptr()},
              {"p_n", n},       {"p_c", rng.uniform_int(1, 64)}};
  } else if (kernel == "gp_im2col") {
    l.args = {{"p_col", ptr()}, {"p_src", ptr()}, {"p_patches", n},
              {"p_window", rng.uniform_int(1, 80)}};
  } else if (kernel == "gp_gemm") {
    l.args = {{"p_c", ptr()},   {"p_a", ptr()}, {"p_b", ptr()},
              {"p_bias", ptr()}, {"p_total", n}, {"p_n", rng.uniform_int(1, 128)},
              {"p_kt", rng.uniform_int(1, 12)}};
  } else if (kernel == "gp_dwconv") {
    l.args = {{"p_dst", ptr()}, {"p_src", ptr()}, {"p_w", ptr()},
              {"p_out", n},     {"p_window", rng.uniform_int(1, 49)}};
  } else if (kernel == "gp_pool_max" || kernel == "gp_pool_avg") {
    l.args = {{"p_dst", ptr()}, {"p_src", ptr()}, {"p_out", n},
              {"p_window", rng.uniform_int(1, 49)}};
  } else if (kernel == "gp_gap") {
    l.grid_dim = 1;
    l.args = {{"p_dst", ptr()}, {"p_src", ptr()},
              {"p_c", rng.uniform_int(1, 256)},
              {"p_hw", rng.uniform_int(1, 600)}};
  } else if (kernel == "gp_softmax") {
    l.grid_dim = 1;
    l.args = {{"p_dst", ptr()}, {"p_src", ptr()},
              {"p_n", rng.uniform_int(1, 3000)}};
  } else {
    ADD_FAILURE() << "no launch recipe for " << kernel;
  }
  return l;
}

class DcaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DcaPropertyTest, SymExecEqualsBruteForceOnRandomLaunches) {
  Rng rng(GetParam());
  for (const auto& kernel : library().kernels) {
    const SymbolicExecutor sym(kernel);
    const Interpreter interp(kernel);
    for (int trial = 0; trial < 3; ++trial) {
      const KernelLaunch launch = random_launch(kernel.name, rng);
      const ExecutionCounts sc = sym.run(launch);
      const ThreadCounts ic = interp.run_all(launch);
      ASSERT_EQ(sc.total, ic.total)
          << kernel.name << " trial " << trial << " grid "
          << launch.grid_dim;
      for (std::size_t c = 0; c < sc.by_class.size(); ++c)
        ASSERT_EQ(sc.by_class[c], ic.by_class[c])
            << kernel.name << " class "
            << op_class_name(static_cast<OpClass>(c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcaPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gpuperf::ptx
