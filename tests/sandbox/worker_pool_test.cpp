// Sandbox layer unit tests: the GPWK pipe protocol round-trips and
// rejects every kind of damage, and the worker pool serves real DCA
// requests out-of-process with recycling and typed failures.  The
// crash/hang/OOM paths (which need fault injection) live in the chaos
// suite; everything here runs in every build.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/subprocess.hpp"
#include "core/features.hpp"
#include "sandbox/wire.hpp"
#include "sandbox/worker_pool.hpp"

namespace gpuperf::sandbox {
namespace {

constexpr char kTinyPtx[] = R"(
.visible .entry noop() {
  ret;
}
)";

TEST(SandboxWire, RequestRoundTripsEveryField) {
  WorkerRequest request;
  request.verb = Verb::kCompute;
  request.model = "alexnet";
  request.deadline_ms = 1234;
  request.step_budget = 99;
  request.fault_spec = "dca.crash=throw*2;dca.compute=delay:5";
  const auto parsed = parse_request(encode_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->verb, Verb::kCompute);
  EXPECT_EQ(parsed->model, "alexnet");
  EXPECT_EQ(parsed->deadline_ms, 1234);
  EXPECT_EQ(parsed->step_budget, 99u);
  EXPECT_EQ(parsed->fault_spec, request.fault_spec);
}

TEST(SandboxWire, PtxBodySurvivesVerbatim) {
  WorkerRequest request;
  request.verb = Verb::kPtx;
  request.body = kTinyPtx;
  const auto parsed = parse_request(encode_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->verb, Verb::kPtx);
  EXPECT_EQ(parsed->body, kTinyPtx);
}

TEST(SandboxWire, ResponseCarriesFeaturesAndTelemetry) {
  WorkerResponse response;
  response.status = Status::kOk;
  response.rss_kb = 4096;
  response.served = 7;
  response.features.model_name = "vgg16";
  response.features.executed_instructions = 123456789;
  response.features.trainable_params = 42;
  response.features.dca_seconds = 0.25;
  const auto parsed = parse_response(encode_response(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, Status::kOk);
  EXPECT_EQ(parsed->rss_kb, 4096u);
  EXPECT_EQ(parsed->served, 7u);
  EXPECT_EQ(parsed->features.model_name, "vgg16");
  EXPECT_EQ(parsed->features.executed_instructions, 123456789);
  EXPECT_EQ(parsed->features.trainable_params, 42);
  EXPECT_DOUBLE_EQ(parsed->features.dca_seconds, 0.25);
}

TEST(SandboxWire, ErrorMessageKeepsInternalSpaces) {
  WorkerResponse response;
  response.status = Status::kFailed;
  response.error = "injected fault at dca.compute (worker side)";
  const auto parsed = parse_response(encode_response(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->error, "injected fault at dca.compute (worker side)");
}

TEST(SandboxWire, MalformedPayloadsParseToNullopt) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("gpuperf-worker-req v2\nverb ping\n\n"));
  EXPECT_FALSE(parse_request("gpuperf-worker-req v1\n\n"));  // no verb
  EXPECT_FALSE(
      parse_request("gpuperf-worker-req v1\nverb teleport\n\n"));
  EXPECT_FALSE(parse_response("gpuperf-worker-resp v1\n\n"));
  EXPECT_FALSE(
      parse_response("gpuperf-worker-resp v1\nstatus sideways\n\n"));
}

/// Write `bytes` into a pipe, close the writer, read one frame back.
std::optional<std::string> frame_through_pipe(const std::string& bytes) {
  Pipe pipe = make_pipe();
  EXPECT_TRUE(write_full(pipe.write_fd, bytes.data(), bytes.size()));
  close_fd(pipe.write_fd);
  const auto out = read_frame(pipe.read_fd);
  close_fd(pipe.read_fd);
  return out;
}

TEST(SandboxWire, FrameRoundTripsThroughARealPipe) {
  const auto got = frame_through_pipe(encode_frame("hello worker"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello worker");
}

TEST(SandboxWire, DamagedFramesReadAsNullopt) {
  // Truncated mid-payload: a worker died mid-write.
  std::string frame = encode_frame("some payload bytes");
  EXPECT_FALSE(frame_through_pipe(frame.substr(0, frame.size() - 3)));
  // Flipped payload bit: CRC catches it.
  frame = encode_frame("some payload bytes");
  frame[frame.size() - 1] ^= 0x40;
  EXPECT_FALSE(frame_through_pipe(frame));
  // Wrong magic: not our protocol at all.
  frame = encode_frame("some payload bytes");
  frame[0] = 'X';
  EXPECT_FALSE(frame_through_pipe(frame));
  // Absurd length field: rejected before any allocation.
  std::string bomb = "GPWK";
  bomb += '\xff';
  bomb += '\xff';
  bomb += '\xff';
  bomb += '\x7f';
  bomb.append(4, '\0');
  EXPECT_FALSE(frame_through_pipe(bomb));
}

PoolOptions small_pool() {
  PoolOptions options;
  options.workers = 1;
  options.hard_timeout_ms = 60000;
  return options;
}

TEST(SandboxPool, ComputeMatchesTheInProcessExtractor) {
  WorkerPool pool(small_pool());
  const core::ModelFeatures sandboxed =
      pool.compute("alexnet", Deadline(), "");
  const core::ModelFeatures local = core::FeatureExtractor().compute(
      cnn::zoo::build("alexnet"), Deadline());
  // The worker is the same code in another process: DCA must be
  // bit-identical, not merely close.
  EXPECT_EQ(sandboxed.executed_instructions, local.executed_instructions);
  EXPECT_EQ(sandboxed.trainable_params, local.trainable_params);
  EXPECT_EQ(sandboxed.macs, local.macs);
  EXPECT_EQ(sandboxed.model_name, local.model_name);
}

TEST(SandboxPool, UnknownModelIsATypedFailureNotACrash) {
  WorkerPool pool(small_pool());
  EXPECT_THROW(pool.compute("not-a-model", Deadline(), ""),
               std::runtime_error);
  EXPECT_EQ(pool.stats().worker_crashes, 0u);
  EXPECT_EQ(pool.alive_workers(), 1);
}

TEST(SandboxPool, StepBudgetTimesOutInsideTheWorker) {
  WorkerPool pool(small_pool());
  Deadline deadline;
  deadline.with_step_budget(10);
  // Workers fork with the parent's DCA memo: a model another test
  // already computed in-process would be answered from cache without
  // spending a single step, so this test needs an untouched one.
  EXPECT_THROW(pool.compute("mobilenet", deadline, ""), AnalysisTimeout);
  // Cooperative timeout: the worker answered and lives on.
  EXPECT_EQ(pool.stats().worker_crashes, 0u);
  EXPECT_EQ(pool.stats().worker_kills_timeout, 0u);
  EXPECT_EQ(pool.alive_workers(), 1);
}

TEST(SandboxPool, CheckPtxAcceptsGoodAndRejectsBadInput) {
  WorkerPool pool(small_pool());
  EXPECT_NO_THROW(pool.check_ptx(kTinyPtx, Deadline()));
  EXPECT_THROW(pool.check_ptx(".entry { this is not ptx", Deadline()),
               CheckError);
  EXPECT_EQ(pool.stats().worker_crashes, 0u);
}

TEST(SandboxPool, RecyclesAfterTheRequestBudgetAndRespawns) {
  PoolOptions options = small_pool();
  options.recycle_requests = 2;
  WorkerPool pool(options);
  for (int i = 0; i < 5; ++i)
    pool.check_ptx(kTinyPtx, Deadline());
  const PoolStats stats = pool.stats();
  // 5 requests / recycle-every-2 → at least two graceful recycles,
  // each followed by an on-demand respawn.
  EXPECT_GE(stats.worker_recycles, 2u);
  EXPECT_GE(stats.worker_respawns, 2u);
  EXPECT_EQ(stats.worker_crashes, 0u);
  EXPECT_EQ(pool.alive_workers(), 1);
}

TEST(SandboxPool, ShutdownLeavesNoChildrenBehind) {
  PoolOptions options = small_pool();
  options.workers = 2;
  WorkerPool pool(options);
  pool.check_ptx(kTinyPtx, Deadline());
  EXPECT_EQ(pool.alive_workers(), 2);
  pool.shutdown(2000);
  EXPECT_EQ(pool.alive_workers(), 0);
  // Shut down pools refuse new work instead of hanging on it.
  EXPECT_THROW(pool.check_ptx(kTinyPtx, Deadline()), AnalysisCrashed);
}

}  // namespace
}  // namespace gpuperf::sandbox
