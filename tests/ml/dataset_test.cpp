#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.hpp"

namespace gpuperf::ml {
namespace {

Dataset make_dataset(std::size_t n) {
  Dataset d({"a", "b"}, "y");
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    d.add_row({x, 2 * x}, 3 * x, "row" + std::to_string(i));
  }
  return d;
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = make_dataset(5);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.n_features(), 2u);
  EXPECT_EQ(d.feature_index("b"), 1u);
  EXPECT_THROW(d.feature_index("c"), CheckError);
  EXPECT_DOUBLE_EQ(d.row(3)[1], 6.0);
  EXPECT_DOUBLE_EQ(d.target(3), 9.0);
  EXPECT_EQ(d.tag(3), "row3");
}

TEST(Dataset, RejectsBadRows) {
  Dataset d({"a"}, "y");
  EXPECT_THROW(d.add_row({1.0, 2.0}, 0.0), CheckError);
  EXPECT_THROW(d.add_row({std::nan("")}, 0.0), CheckError);
  EXPECT_THROW(d.add_row({1.0}, std::nan("")), CheckError);
}

TEST(Dataset, SubsetCopiesSelectedRows) {
  const Dataset d = make_dataset(6);
  const Dataset s = d.subset({5, 1});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.tag(0), "row5");
  EXPECT_EQ(s.tag(1), "row1");
}

TEST(Dataset, SplitSizesAndDisjointness) {
  const Dataset d = make_dataset(62);
  Rng rng(3);
  const auto [train, eval] = d.split(0.7, rng);
  EXPECT_EQ(train.size() + eval.size(), d.size());
  EXPECT_EQ(train.size(), 43u);  // round(0.7 * 62)

  std::set<std::string> train_tags, eval_tags;
  for (std::size_t i = 0; i < train.size(); ++i)
    train_tags.insert(train.tag(i));
  for (std::size_t i = 0; i < eval.size(); ++i) eval_tags.insert(eval.tag(i));
  EXPECT_EQ(train_tags.size(), train.size());
  for (const auto& t : eval_tags) EXPECT_EQ(train_tags.count(t), 0u);
}

TEST(Dataset, SplitDeterministicPerSeed) {
  const Dataset d = make_dataset(20);
  Rng a(42), b(42), c(43);
  const auto [ta, ea] = d.split(0.5, a);
  const auto [tb, eb] = d.split(0.5, b);
  const auto [tc, ec] = d.split(0.5, c);
  EXPECT_EQ(ta.tag(0), tb.tag(0));
  bool differs = false;
  for (std::size_t i = 0; i < ta.size(); ++i)
    if (ta.tag(i) != tc.tag(i)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Dataset, SplitKeepsBothSidesNonEmpty) {
  const Dataset d = make_dataset(3);
  Rng rng(1);
  const auto [train, eval] = d.split(0.99, rng);
  EXPECT_GE(eval.size(), 1u);
  EXPECT_GE(train.size(), 1u);
  EXPECT_THROW(d.split(0.0, rng), CheckError);
  EXPECT_THROW(d.split(1.0, rng), CheckError);
}

TEST(Dataset, SplitByTagPrefix) {
  Dataset d({"x"}, "y");
  d.add_row({1}, 1, "alexnet@gtx1080ti");
  d.add_row({2}, 2, "alexnet@v100s");
  d.add_row({3}, 3, "vgg16@gtx1080ti");
  const auto [keep, held] = d.split_by_tag_prefix({"alexnet"});
  EXPECT_EQ(keep.size(), 1u);
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(keep.tag(0), "vgg16@gtx1080ti");
}

TEST(Dataset, Standardization) {
  Dataset d({"a", "const"}, "y");
  d.add_row({1, 5}, 0);
  d.add_row({3, 5}, 0);
  const auto st = d.standardization();
  EXPECT_DOUBLE_EQ(st.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(st.stddev[0], 1.0);  // population stddev of {1,3}
  EXPECT_DOUBLE_EQ(st.stddev[1], 1.0);  // zero-variance guard
  const auto z = st.apply({3, 5});
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 0.0);
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset d = make_dataset(4);
  const Dataset back = Dataset::from_csv(d.to_csv());
  EXPECT_EQ(back.size(), d.size());
  EXPECT_EQ(back.feature_names(), d.feature_names());
  EXPECT_EQ(back.target_name(), d.target_name());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.tag(i), d.tag(i));
    EXPECT_NEAR(back.target(i), d.target(i), 1e-9);
    EXPECT_NEAR(back.row(i)[0], d.row(i)[0], 1e-9);
  }
}

}  // namespace
}  // namespace gpuperf::ml
