#include "ml/gradient_boosting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace gpuperf::ml {
namespace {

Dataset friedman_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"a", "b", "c"}, "y");
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 1);
    const double b = rng.uniform(0, 1);
    const double c = rng.uniform(0, 1);
    d.add_row({a, b, c}, 10 * std::sin(3.1 * a) + 5 * b * b + 2 * c);
  }
  return d;
}

TEST(GradientBoosting, BaseScoreIsTargetMean) {
  Dataset d({"x"}, "y");
  d.add_row({0.0}, 2.0);
  d.add_row({1.0}, 6.0);
  GradientBoosting model;
  model.fit(d);
  EXPECT_DOUBLE_EQ(model.base_score(), 4.0);
}

TEST(GradientBoosting, FitsNonlinearFunction) {
  BoostingParams p;
  p.n_rounds = 150;
  GradientBoosting model(p, 42);
  const Dataset train = friedman_like(400, 1);
  model.fit(train);
  const Dataset eval = friedman_like(150, 2);
  EXPECT_GT(r2(eval.targets(), model.predict_all(eval)), 0.9);
}

TEST(GradientBoosting, MoreRoundsReduceTrainingError) {
  const Dataset d = friedman_like(200, 3);
  double prev_rmse = 1e9;
  for (std::size_t rounds : {5u, 25u, 100u}) {
    BoostingParams p;
    p.n_rounds = rounds;
    GradientBoosting model(p, 7);
    model.fit(d);
    const double e = rmse(d.targets(), model.predict_all(d));
    EXPECT_LT(e, prev_rmse);
    prev_rmse = e;
  }
}

TEST(GradientBoosting, LambdaShrinksPredictionsTowardMean) {
  const Dataset d = friedman_like(100, 5);
  BoostingParams weak;
  weak.n_rounds = 5;
  weak.lambda = 100.0;
  BoostingParams strong = weak;
  strong.lambda = 0.0;
  GradientBoosting reg(weak, 9), noreg(strong, 9);
  reg.fit(d);
  noreg.fit(d);
  double reg_spread = 0.0, noreg_spread = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    reg_spread += std::fabs(reg.predict(d.row(i)) - reg.base_score());
    noreg_spread += std::fabs(noreg.predict(d.row(i)) - noreg.base_score());
  }
  EXPECT_LT(reg_spread, noreg_spread);
}

TEST(GradientBoosting, EarlyStopOnExactFit) {
  // Constant target: the first tree is a stump with zero residual and
  // training halts long before n_rounds.
  Dataset d({"x"}, "y");
  for (int i = 0; i < 10; ++i) d.add_row({static_cast<double>(i)}, 5.0);
  BoostingParams p;
  p.n_rounds = 500;
  GradientBoosting model(p, 1);
  model.fit(d);
  EXPECT_LT(model.round_count(), 5u);
  EXPECT_DOUBLE_EQ(model.predict({3.0}), 5.0);
}

TEST(GradientBoosting, DeterministicPerSeed) {
  const Dataset d = friedman_like(150, 11);
  BoostingParams p;
  p.n_rounds = 30;
  p.subsample = 0.7;
  GradientBoosting a(p, 3), b(p, 3);
  a.fit(d);
  b.fit(d);
  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {rng.uniform(0, 1), rng.uniform(0, 1),
                                   rng.uniform(0, 1)};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(GradientBoosting, ImportancesNormalized) {
  const Dataset d = friedman_like(200, 13);
  GradientBoosting model(BoostingParams{}, 5);
  model.fit(d);
  const auto imp = model.feature_importances();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GradientBoosting, ErrorsOnMisuse) {
  GradientBoosting model;
  EXPECT_THROW(model.predict({1.0}), CheckError);
  BoostingParams bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(GradientBoosting(bad, 1), CheckError);
  bad = BoostingParams{};
  bad.subsample = 1.5;
  EXPECT_THROW(GradientBoosting(bad, 1), CheckError);
}

}  // namespace
}  // namespace gpuperf::ml
