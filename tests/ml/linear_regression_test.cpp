#include "ml/linear_regression.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace gpuperf::ml {
namespace {

Dataset linear_data(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"a", "b"}, "y");
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-10, 10);
    const double b = rng.uniform(0, 1e6);  // wildly different scales
    d.add_row({a, b}, 4.0 * a - 3e-6 * b + 7.0 + rng.normal(0, noise));
  }
  return d;
}

TEST(LinearRegression, RecoversCoefficientsNoiseFree) {
  LinearRegression model;
  model.fit(linear_data(100, 0.0, 1));
  ASSERT_EQ(model.coefficients().size(), 2u);
  EXPECT_NEAR(model.coefficients()[0], 4.0, 1e-8);
  EXPECT_NEAR(model.coefficients()[1], -3e-6, 1e-12);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-7);
}

TEST(LinearRegression, PredictMatchesManualEvaluation) {
  LinearRegression model;
  model.fit(linear_data(50, 0.0, 2));
  const std::vector<double> x = {2.5, 1000.0};
  double manual = model.intercept();
  for (std::size_t j = 0; j < x.size(); ++j)
    manual += model.coefficients()[j] * x[j];
  EXPECT_DOUBLE_EQ(model.predict(x), manual);
}

TEST(LinearRegression, NoisyFitStillClose) {
  LinearRegression model;
  model.fit(linear_data(500, 0.5, 3));
  EXPECT_NEAR(model.coefficients()[0], 4.0, 0.05);
}

TEST(LinearRegression, GoodR2OnHeldOutLinearData) {
  LinearRegression model;
  model.fit(linear_data(200, 0.1, 4));
  const Dataset eval = linear_data(100, 0.1, 5);
  EXPECT_GT(r2(eval.targets(), model.predict_all(eval)), 0.99);
}

TEST(LinearRegression, ErrorsBeforeFitAndOnBadWidth) {
  LinearRegression model;
  EXPECT_FALSE(model.is_fitted());
  EXPECT_THROW(model.predict({1.0, 2.0}), CheckError);
  model.fit(linear_data(20, 0.0, 6));
  EXPECT_TRUE(model.is_fitted());
  EXPECT_THROW(model.predict({1.0}), CheckError);
}

TEST(LinearRegression, RequiresEnoughRows) {
  Dataset d({"a", "b"}, "y");
  d.add_row({1, 2}, 3);
  d.add_row({2, 3}, 4);
  LinearRegression model;
  EXPECT_THROW(model.fit(d), CheckError);
}

TEST(LinearRegression, ConstantFeatureHandled) {
  Rng rng(7);
  Dataset d({"a", "const"}, "y");
  for (int i = 0; i < 30; ++i) {
    const double a = rng.uniform(-1, 1);
    d.add_row({a, 5.0}, 2.0 * a + 1.0);
  }
  LinearRegression model;
  model.fit(d);
  EXPECT_NEAR(model.predict({0.5, 5.0}), 2.0, 1e-6);
}

}  // namespace
}  // namespace gpuperf::ml
