#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace gpuperf::ml {
namespace {

Dataset quadratic_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x"}, "y");
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(1, 3);
    d.add_row({x}, x * x + rng.normal(0, 0.02));
  }
  return d;
}

TEST(CrossValidation, FoldsBalancedAndComplete) {
  Rng rng(1);
  const auto fold_of = make_folds(62, 5, rng);
  ASSERT_EQ(fold_of.size(), 62u);
  std::vector<std::size_t> sizes(5, 0);
  for (std::size_t f : fold_of) {
    ASSERT_LT(f, 5u);
    ++sizes[f];
  }
  for (std::size_t s : sizes) {
    EXPECT_GE(s, 12u);
    EXPECT_LE(s, 13u);
  }
}

TEST(CrossValidation, FoldsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(make_folds(30, 3, a), make_folds(30, 3, b));
  Rng a2(7);
  EXPECT_NE(make_folds(30, 3, a2), make_folds(30, 3, c));
}

TEST(CrossValidation, RejectsBadConfig) {
  Rng rng(1);
  EXPECT_THROW(make_folds(10, 1, rng), CheckError);
  EXPECT_THROW(make_folds(3, 5, rng), CheckError);
}

TEST(CrossValidation, EvaluatesEveryRowExactlyOnce) {
  const Dataset data = quadratic_data(40, 2);
  const CvResult result = cross_validate(data, 4, "dt", 42);
  ASSERT_EQ(result.folds.size(), 4u);
  // Pooled predictions cover every row: the pooled score exists and the
  // per-fold MAPE mean is finite.
  EXPECT_GT(result.pooled.mape, 0.0);
  EXPECT_GE(result.mape_stddev, 0.0);
}

TEST(CrossValidation, GoodModelScoresWell) {
  const Dataset data = quadratic_data(200, 3);
  const CvResult result = cross_validate(data, 5, "knn", 42);
  EXPECT_LT(result.pooled.mape, 5.0);
  EXPECT_GT(result.pooled.r2, 0.95);
}

TEST(CrossValidation, DeterministicAcrossRuns) {
  const Dataset data = quadratic_data(60, 5);
  const CvResult a = cross_validate(data, 5, "rf", 42);
  const CvResult b = cross_validate(data, 5, "rf", 42);
  EXPECT_DOUBLE_EQ(a.pooled.mape, b.pooled.mape);
  for (std::size_t i = 0; i < a.folds.size(); ++i)
    EXPECT_DOUBLE_EQ(a.folds[i].mape, b.folds[i].mape);
}

TEST(CrossValidation, CustomFactory) {
  const Dataset data = quadratic_data(50, 7);
  const CvResult result = cross_validate(
      data, 5, [] { return make_regressor("linear"); }, 42);
  // y = x^2 over [1,3] is decently approximated by a line.
  EXPECT_LT(result.pooled.mape, 15.0);
  const std::function<std::unique_ptr<Regressor>()> null_factory;
  EXPECT_THROW(cross_validate(data, 5, null_factory, 42), CheckError);
}

TEST(CrossValidation, MeanStddevConsistentWithFolds) {
  const Dataset data = quadratic_data(45, 9);
  const CvResult r = cross_validate(data, 3, "dt", 42);
  double mean = 0.0;
  for (const auto& f : r.folds) mean += f.mape;
  mean /= static_cast<double>(r.folds.size());
  EXPECT_NEAR(r.mape_mean, mean, 1e-12);
}

}  // namespace
}  // namespace gpuperf::ml
