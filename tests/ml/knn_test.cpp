#include "ml/knn.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::ml {
namespace {

Dataset grid_data() {
  Dataset d({"x"}, "y");
  for (int i = 0; i <= 10; ++i)
    d.add_row({static_cast<double>(i)}, static_cast<double>(i * i));
  return d;
}

TEST(Knn, ExactTrainingHitReturnsItsTarget) {
  KnnRegressor model(3);
  model.fit(grid_data());
  EXPECT_DOUBLE_EQ(model.predict({4.0}), 16.0);
}

TEST(Knn, KOneIsNearestNeighbor) {
  KnnRegressor model(1);
  model.fit(grid_data());
  EXPECT_DOUBLE_EQ(model.predict({4.4}), 16.0);
  EXPECT_DOUBLE_EQ(model.predict({4.6}), 25.0);
}

TEST(Knn, UniformWeightingAverages) {
  KnnRegressor model(2, KnnRegressor::Weighting::kUniform);
  Dataset d({"x"}, "y");
  d.add_row({0.0}, 10.0);
  d.add_row({1.0}, 20.0);
  d.add_row({100.0}, 1000.0);
  model.fit(d);
  EXPECT_DOUBLE_EQ(model.predict({0.5}), 15.0);
}

TEST(Knn, InverseDistanceWeightsCloserPointsMore) {
  KnnRegressor model(2, KnnRegressor::Weighting::kInverseDistance);
  Dataset d({"x"}, "y");
  d.add_row({0.0}, 0.0);
  d.add_row({1.0}, 100.0);
  model.fit(d);
  const double near_zero = model.predict({0.1});
  const double near_one = model.predict({0.9});
  EXPECT_LT(near_zero, 50.0);
  EXPECT_GT(near_one, 50.0);
}

TEST(Knn, KLargerThanDatasetClamps) {
  KnnRegressor model(50, KnnRegressor::Weighting::kUniform);
  Dataset d({"x"}, "y");
  d.add_row({0.0}, 1.0);
  d.add_row({1.0}, 3.0);
  model.fit(d);
  EXPECT_DOUBLE_EQ(model.predict({10.0}), 2.0);
}

TEST(Knn, StandardizationMakesScalesComparable) {
  // Feature "big" spans millions; without standardization it would
  // dominate the distance and hide "small".
  Dataset d({"small", "big"}, "y");
  d.add_row({0.0, 1e6}, 0.0);
  d.add_row({1.0, 1e6 + 1}, 100.0);
  d.add_row({0.0, 2e6}, 50.0);
  KnnRegressor model(1);
  model.fit(d);
  // Query near row 1 in standardized space.
  EXPECT_DOUBLE_EQ(model.predict({0.9, 1e6}), 100.0);
}

TEST(Knn, ErrorsBeforeFit) {
  KnnRegressor model(3);
  EXPECT_THROW(model.predict({1.0}), CheckError);
  EXPECT_THROW(KnnRegressor(0), CheckError);
}

class KnnParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KnnParamTest, PredictionsWithinTargetRange) {
  Rng rng(GetParam());
  Dataset d({"a", "b"}, "y");
  for (int i = 0; i < 40; ++i)
    d.add_row({rng.uniform(0, 1), rng.uniform(0, 1)}, rng.uniform(5, 9));
  KnnRegressor model(GetParam());
  model.fit(d);
  for (int i = 0; i < 20; ++i) {
    const double p = model.predict({rng.uniform(0, 1), rng.uniform(0, 1)});
    EXPECT_GE(p, 5.0);
    EXPECT_LE(p, 9.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnParamTest, ::testing::Values(1, 2, 3, 5, 9));

}  // namespace
}  // namespace gpuperf::ml
