#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace gpuperf::ml {
namespace {

Dataset noisy_quadratic(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"x", "noise"}, "y");
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-2, 2);
    d.add_row({x, rng.uniform(0, 1)}, x * x + rng.normal(0, 0.05));
  }
  return d;
}

TEST(RandomForest, FitsNonlinearSignal) {
  ForestParams p;
  p.n_trees = 50;
  RandomForest forest(p, 42);
  const Dataset train = noisy_quadratic(300, 1);
  forest.fit(train);
  const Dataset eval = noisy_quadratic(100, 2);
  EXPECT_GT(r2(eval.targets(), forest.predict_all(eval)), 0.9);
}

TEST(RandomForest, DeterministicForSeedRegardlessOfThreads) {
  const Dataset d = noisy_quadratic(100, 3);
  ForestParams p;
  p.n_trees = 16;
  RandomForest a(p, 7), b(p, 7);
  a.fit(d);
  b.fit(d);
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 2), rng.uniform(0, 1)};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
}

TEST(RandomForest, DifferentSeedsDifferentForests) {
  const Dataset d = noisy_quadratic(100, 5);
  ForestParams p;
  p.n_trees = 8;
  RandomForest a(p, 1), b(p, 2);
  a.fit(d);
  b.fit(d);
  bool any_diff = false;
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {rng.uniform(-2, 2), rng.uniform(0, 1)};
    if (a.predict(x) != b.predict(x)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, PredictionIsMeanOfTrees) {
  const Dataset d = noisy_quadratic(80, 7);
  ForestParams p;
  p.n_trees = 5;
  RandomForest forest(p, 11);
  forest.fit(d);
  const std::vector<double> x = {0.5, 0.5};
  double mean = 0.0;
  for (std::size_t t = 0; t < forest.tree_count(); ++t)
    mean += forest.tree(t).predict(x);
  mean /= static_cast<double>(forest.tree_count());
  EXPECT_NEAR(forest.predict(x), mean, 1e-12);
}

TEST(RandomForest, ImportancesNormalizedAndSignalDominant) {
  const Dataset d = noisy_quadratic(300, 9);
  ForestParams p;
  p.n_trees = 30;
  RandomForest forest(p, 13);
  forest.fit(d);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.8);  // "x" carries the signal
}

TEST(RandomForest, ErrorsOnMisuse) {
  RandomForest forest;
  EXPECT_FALSE(forest.is_fitted());
  EXPECT_THROW(forest.predict({1.0, 2.0}), CheckError);
  EXPECT_THROW(forest.tree(0), CheckError);
  ForestParams bad;
  bad.n_trees = 0;
  EXPECT_THROW(RandomForest(bad, 1), CheckError);
  bad = ForestParams{};
  bad.bootstrap_fraction = 0.0;
  EXPECT_THROW(RandomForest(bad, 1), CheckError);
}

TEST(RandomForest, SmoothsComparedToSingleTree) {
  // Forest variance on held-out noise should not exceed a lone
  // unpruned tree's (bagging reduces variance).
  const Dataset train = noisy_quadratic(200, 15);
  const Dataset eval = noisy_quadratic(200, 16);

  TreeParams tp;
  tp.max_depth = 16;
  tp.min_samples_split = 2;
  tp.min_samples_leaf = 1;
  DecisionTree tree(tp);
  tree.fit(train);

  ForestParams fp;
  fp.n_trees = 60;
  fp.tree = tp;
  fp.max_features = 2;  // all features: isolate the bagging effect
  RandomForest forest(fp, 17);
  forest.fit(train);

  const double tree_rmse = rmse(eval.targets(), tree.predict_all(eval));
  const double forest_rmse = rmse(eval.targets(), forest.predict_all(eval));
  EXPECT_LE(forest_rmse, tree_rmse * 1.05);
}

}  // namespace
}  // namespace gpuperf::ml
