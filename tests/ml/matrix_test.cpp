#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::ml {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), CheckError);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Multiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyShapeMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, CheckError);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Rng rng(5);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  EXPECT_LT((a * Matrix::identity(4)).max_abs_diff(a), 1e-12);
  EXPECT_LT((Matrix::identity(4) * a).max_abs_diff(a), 1e-12);
}

TEST(Matrix, TransposeTwiceIsIdentityOp) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_LT(t.transposed().max_abs_diff(a), 1e-15);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1, 2}};
  Matrix b{{3, 5}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2);
  Matrix c = a;
  c *= 3.0;
  EXPECT_DOUBLE_EQ(c(0, 1), 6);
}

TEST(Matrix, Apply) {
  Matrix a{{1, 2}, {3, 4}};
  const auto v = a.apply({1.0, 1.0});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 3);
  EXPECT_DOUBLE_EQ(v[1], 7);
}

TEST(LeastSquares, ExactSquareSystem) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  Matrix a{{2, 1}, {1, -1}};
  const auto x = solve_least_squares(a, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedRecoversPlane) {
  // y = 3 a - 2 b + 0.5 with noise-free samples.
  Rng rng(9);
  Matrix a(50, 3);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    const double u = rng.uniform(-5, 5);
    const double v = rng.uniform(-5, 5);
    a(i, 0) = u;
    a(i, 1) = v;
    a(i, 2) = 1.0;
    b[i] = 3.0 * u - 2.0 * v + 0.5;
  }
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-9);
  EXPECT_NEAR(x[1], -2.0, 1e-9);
  EXPECT_NEAR(x[2], 0.5, 1e-9);
}

TEST(LeastSquares, RankDeficientFallsBackToRidge) {
  // Two identical columns: infinitely many solutions; ridge picks one
  // with a finite answer and a good fit.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
    b[i] = 2.0 * static_cast<double>(i + 1);
  }
  const auto x = solve_least_squares(a, b);
  const auto fit = a.apply(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(fit[i], b[i], 1e-4);
}

TEST(LeastSquares, RejectsUnderdetermined) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_least_squares(a, {1, 2}), CheckError);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_THROW(dot({1}, {1, 2}), CheckError);
}

}  // namespace
}  // namespace gpuperf::ml
