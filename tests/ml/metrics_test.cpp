#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::ml {
namespace {

TEST(Metrics, MapePerfectPrediction) {
  EXPECT_DOUBLE_EQ(mape({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Metrics, MapeKnownValue) {
  // |(10-9)/10| = 10%, |(20-22)/20| = 10% -> mean 10%.
  EXPECT_NEAR(mape({10, 20}, {9, 22}), 10.0, 1e-12);
}

TEST(Metrics, MapeSkipsNearZeroActuals) {
  EXPECT_NEAR(mape({0.0, 10.0}, {5.0, 11.0}), 10.0, 1e-12);
  EXPECT_THROW(mape({0.0}, {1.0}), CheckError);
}

TEST(Metrics, MapeSizeMismatch) {
  EXPECT_THROW(mape({1.0}, {1.0, 2.0}), CheckError);
  EXPECT_THROW(mape({}, {}), CheckError);
}

TEST(Metrics, R2PerfectIsOne) {
  EXPECT_DOUBLE_EQ(r2({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
}

TEST(Metrics, R2MeanPredictorIsZero) {
  EXPECT_NEAR(r2({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(Metrics, R2WorseThanMeanIsNegative) {
  EXPECT_LT(r2({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(Metrics, R2NeverExceedsOne) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a(10), p(10);
    for (int i = 0; i < 10; ++i) {
      a[static_cast<std::size_t>(i)] = rng.uniform(-5, 5);
      p[static_cast<std::size_t>(i)] = rng.uniform(-5, 5);
    }
    EXPECT_LE(r2(a, p), 1.0 + 1e-12);
  }
}

TEST(Metrics, AdjustedR2Formula) {
  // n = 10, p = 3, R2 = 0.5 -> 1 - 0.5 * 9/6 = 0.25.
  std::vector<double> actual, predicted;
  // Construct a case with known R2 = 0.5: ss_tot = 2, ss_res = 1.
  actual = {0, 2};  // mean 1, ss_tot = 2
  predicted = {0, 1};
  // ss_res = 0 + 1 -> R2 = 0.5, but n=2 too small for adj; use direct
  // formula check on a 10-point replica.
  std::vector<double> a10, p10;
  for (int i = 0; i < 5; ++i) {
    a10.insert(a10.end(), {0, 2});
    p10.insert(p10.end(), {0, 1});
  }
  EXPECT_NEAR(r2(a10, p10), 0.5, 1e-12);
  EXPECT_NEAR(adjusted_r2(a10, p10, 3), 1.0 - 0.5 * 9.0 / 6.0, 1e-12);
}

TEST(Metrics, AdjustedR2RequiresEnoughRows) {
  EXPECT_THROW(adjusted_r2({1, 2, 3}, {1, 2, 3}, 3), CheckError);
}

TEST(Metrics, AdjustedR2BelowR2ForImperfectFits) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> p = {1.1, 2.2, 2.9, 4.3, 4.8, 6.1, 7.2, 7.7};
  EXPECT_LT(adjusted_r2(a, p, 3), r2(a, p));
}

TEST(Metrics, MaeRmse) {
  EXPECT_DOUBLE_EQ(mae({1, 3}, {2, 1}), 1.5);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_LE(mae({1, 3}, {2, 1}), rmse({1, 3}, {2, 1}));
}

TEST(Metrics, ScoreRegressionFallsBackOnSmallSamples) {
  // n = 3 <= p + 1 for p = 5: the bundle reports plain R² instead of
  // refusing (the raw adjusted_r2 still throws — tested above).
  const auto s = score_regression({1, 2, 3}, {1.1, 2.0, 2.9}, 5);
  EXPECT_DOUBLE_EQ(s.adjusted_r2, s.r2);
}

TEST(Metrics, ScoreRegressionBundle) {
  const auto s = score_regression({10, 20, 30, 40, 50, 60},
                                  {11, 19, 31, 39, 51, 59}, 2);
  EXPECT_GT(s.mape, 0.0);
  EXPECT_GT(s.r2, 0.9);
  EXPECT_LT(s.adjusted_r2, s.r2);
}

}  // namespace
}  // namespace gpuperf::ml
