#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace gpuperf::ml {
namespace {

Dataset step_data() {
  // y is a clean two-feature step function a CART tree can fit exactly.
  Dataset d({"a", "b"}, "y");
  for (double a = 0; a < 4; ++a)
    for (double b = 0; b < 4; ++b)
      d.add_row({a, b}, (a < 2 ? 10.0 : 20.0) + (b < 2 ? 0.0 : 5.0));
  return d;
}

TreeParams loose_params() {
  TreeParams p;
  p.max_depth = 16;
  p.min_samples_split = 2;
  p.min_samples_leaf = 1;
  return p;
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  DecisionTree tree(loose_params());
  const Dataset d = step_data();
  tree.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_DOUBLE_EQ(tree.predict(d.row(i)), d.target(i));
}

TEST(DecisionTree, ConstantTargetYieldsStump) {
  Dataset d({"x"}, "y");
  for (int i = 0; i < 10; ++i) d.add_row({static_cast<double>(i)}, 7.0);
  DecisionTree tree(loose_params());
  tree.fit(d);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({100.0}), 7.0);
}

TEST(DecisionTree, PredictionsBoundedByTrainingTargets) {
  Rng rng(11);
  Dataset d({"a", "b"}, "y");
  for (int i = 0; i < 100; ++i)
    d.add_row({rng.uniform(0, 1), rng.uniform(0, 1)}, rng.uniform(-3, 3));
  DecisionTree tree(loose_params());
  tree.fit(d);
  for (int i = 0; i < 50; ++i) {
    const double p = tree.predict({rng.uniform(-1, 2), rng.uniform(-1, 2)});
    EXPECT_GE(p, -3.0);
    EXPECT_LE(p, 3.0);
  }
}

TEST(DecisionTree, MaxDepthRespected) {
  Rng rng(13);
  Dataset d({"x"}, "y");
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 1);
    d.add_row({x}, x * x);
  }
  TreeParams p = loose_params();
  p.max_depth = 3;
  DecisionTree tree(p);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 3u + 1u);  // depth counts nodes on the path
  EXPECT_LE(tree.leaf_count(), 8u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Rng rng(17);
  Dataset d({"x"}, "y");
  for (int i = 0; i < 64; ++i) d.add_row({rng.uniform(0, 1)},
                                         rng.uniform(0, 1));
  TreeParams p = loose_params();
  p.min_samples_leaf = 5;
  DecisionTree tree(p);
  tree.fit(d);
  for (const auto& node : tree.nodes()) {
    if (node.feature == DecisionTree::Node::kLeaf) {
      EXPECT_GE(node.n_samples, 5u);
    }
  }
}

TEST(DecisionTree, ImportancesSumToOneAndPickTheSignalFeature) {
  Rng rng(19);
  Dataset d({"noise", "signal"}, "y");
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(0, 1);
    d.add_row({rng.uniform(0, 1), s}, s > 0.5 ? 1.0 : 0.0);
  }
  DecisionTree tree;
  tree.fit(d);
  const auto imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-12);
  EXPECT_GT(imp[1], 0.9);
}

TEST(DecisionTree, StumpHasZeroImportances) {
  Dataset d({"x"}, "y");
  d.add_row({1.0}, 2.0);
  d.add_row({2.0}, 2.0);
  DecisionTree tree;
  tree.fit(d);
  const auto imp = tree.feature_importances();
  EXPECT_DOUBLE_EQ(imp[0], 0.0);
}

TEST(DecisionTree, DeterministicAcrossFits) {
  Rng rng(23);
  Dataset d({"a", "b", "c"}, "y");
  for (int i = 0; i < 100; ++i)
    d.add_row({rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)},
              rng.uniform(0, 10));
  DecisionTree t1, t2;
  t1.fit(d);
  t2.fit(d);
  ASSERT_EQ(t1.nodes().size(), t2.nodes().size());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(0, 1), rng.uniform(0, 1),
                                   rng.uniform(0, 1)};
    EXPECT_DOUBLE_EQ(t1.predict(x), t2.predict(x));
  }
}

TEST(DecisionTree, ErrorsOnMisuse) {
  DecisionTree tree;
  EXPECT_FALSE(tree.is_fitted());
  EXPECT_THROW(tree.predict({1.0}), CheckError);
  EXPECT_THROW(tree.feature_importances(), CheckError);
  TreeParams bad;
  bad.min_samples_split = 1;
  EXPECT_THROW(DecisionTree{bad}, CheckError);
}

TEST(DecisionTree, FitIndexedUsesOnlySelectedRows) {
  Dataset d({"x"}, "y");
  d.add_row({0.0}, 0.0);
  d.add_row({1.0}, 100.0);  // excluded outlier
  d.add_row({0.1}, 0.0);
  DecisionTree tree(loose_params());
  tree.fit_indexed(d, {0, 2}, nullptr);
  EXPECT_DOUBLE_EQ(tree.predict({1.0}), 0.0);
}

struct DepthLeafCase {
  std::size_t max_depth;
  std::size_t min_leaf;
};

class TreeParamSweep
    : public ::testing::TestWithParam<DepthLeafCase> {};

TEST_P(TreeParamSweep, TrainErrorShrinksWithDepthAndLeafFreedom) {
  Rng rng(29);
  Dataset d({"x"}, "y");
  for (int i = 0; i < 256; ++i) {
    const double x = rng.uniform(0, 1);
    d.add_row({x}, std::sin(6.28 * x));
  }
  TreeParams p;
  p.max_depth = GetParam().max_depth;
  p.min_samples_leaf = GetParam().min_leaf;
  p.min_samples_split = 2 * GetParam().min_leaf;
  DecisionTree tree(p);
  tree.fit(d);
  const double err = rmse(d.targets(), tree.predict_all(d));
  // A depth-1 stump cannot beat 0.5 RMSE on a sine; deep trees get
  // close to zero.
  if (GetParam().max_depth >= 8 && GetParam().min_leaf == 1)
    EXPECT_LT(err, 0.05);
  else
    EXPECT_LT(err, 0.75);
  EXPECT_LE(tree.depth(), GetParam().max_depth + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeParamSweep,
    ::testing::Values(DepthLeafCase{1, 1}, DepthLeafCase{2, 1},
                      DepthLeafCase{4, 1}, DepthLeafCase{8, 1},
                      DepthLeafCase{12, 1}, DepthLeafCase{8, 4},
                      DepthLeafCase{8, 16}));

}  // namespace
}  // namespace gpuperf::ml
