#include "ml/model_io.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::ml {
namespace {

Dataset random_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"a", "b"}, "y");
  for (std::size_t i = 0; i < n; ++i)
    d.add_row({rng.uniform(0, 1), rng.uniform(0, 1)}, rng.uniform(0, 10));
  return d;
}

TEST(ModelIo, TreeRoundTripPredictsIdentically) {
  const Dataset d = random_data(120, 1);
  DecisionTree tree;
  tree.fit(d);
  const DecisionTree restored = deserialize_tree(serialize_tree(tree));
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 2), rng.uniform(-1, 2)};
    EXPECT_DOUBLE_EQ(restored.predict(x), tree.predict(x));
  }
  const auto imp_restored = restored.feature_importances();
  const auto imp_original = tree.feature_importances();
  ASSERT_EQ(imp_restored.size(), imp_original.size());
  for (std::size_t i = 0; i < imp_original.size(); ++i)
    EXPECT_NEAR(imp_restored[i], imp_original[i], 1e-12);
}

TEST(ModelIo, TreeFileRoundTrip) {
  const Dataset d = random_data(60, 3);
  DecisionTree tree;
  tree.fit(d);
  const std::string path = ::testing::TempDir() + "/gpuperf_tree.txt";
  save_tree(tree, path);
  const DecisionTree loaded = load_tree(path);
  EXPECT_DOUBLE_EQ(loaded.predict({0.5, 0.5}), tree.predict({0.5, 0.5}));
}

TEST(ModelIo, TreeRejectsGarbage) {
  EXPECT_THROW(deserialize_tree("not a tree"), CheckError);
  EXPECT_THROW(deserialize_tree("gpuperf-tree v1\nfeatures 0\n"),
               CheckError);
  // Truncated node list.
  EXPECT_THROW(deserialize_tree("gpuperf-tree v1\nfeatures 1\n"
                                "importances 1\nnodes 2\n-1 0 -1 -1 1 1\n"),
               CheckError);
  // Child index out of range.
  EXPECT_THROW(deserialize_tree("gpuperf-tree v1\nfeatures 1\n"
                                "importances 1\nnodes 1\n0 0.5 7 8 1 1\n"),
               CheckError);
}

TEST(ModelIo, SerializeRequiresFittedTree) {
  DecisionTree tree;
  EXPECT_THROW(serialize_tree(tree), CheckError);
}

TEST(ModelIo, LinearRoundTrip) {
  const Dataset d = random_data(50, 5);
  LinearRegression model;
  model.fit(d);
  const LinearRegression restored =
      deserialize_linear(serialize_linear(model));
  EXPECT_DOUBLE_EQ(restored.intercept(), model.intercept());
  ASSERT_EQ(restored.coefficients(), model.coefficients());
  EXPECT_DOUBLE_EQ(restored.predict({0.3, 0.7}),
                   model.predict({0.3, 0.7}));
}

TEST(ModelIo, LinearRejectsGarbage) {
  EXPECT_THROW(deserialize_linear("bogus"), CheckError);
  EXPECT_THROW(deserialize_linear("gpuperf-linear v1\nintercept 1\n"
                                  "coefficients\n"),
               CheckError);
}

}  // namespace
}  // namespace gpuperf::ml
