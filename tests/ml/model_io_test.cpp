#include "ml/model_io.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::ml {
namespace {

Dataset random_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d({"a", "b"}, "y");
  for (std::size_t i = 0; i < n; ++i)
    d.add_row({rng.uniform(0, 1), rng.uniform(0, 1)}, rng.uniform(0, 10));
  return d;
}

TEST(ModelIo, TreeRoundTripPredictsIdentically) {
  const Dataset d = random_data(120, 1);
  DecisionTree tree;
  tree.fit(d);
  const DecisionTree restored = deserialize_tree(serialize_tree(tree));
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 2), rng.uniform(-1, 2)};
    EXPECT_DOUBLE_EQ(restored.predict(x), tree.predict(x));
  }
  const auto imp_restored = restored.feature_importances();
  const auto imp_original = tree.feature_importances();
  ASSERT_EQ(imp_restored.size(), imp_original.size());
  for (std::size_t i = 0; i < imp_original.size(); ++i)
    EXPECT_NEAR(imp_restored[i], imp_original[i], 1e-12);
}

TEST(ModelIo, TreeFileRoundTrip) {
  const Dataset d = random_data(60, 3);
  DecisionTree tree;
  tree.fit(d);
  const std::string path = ::testing::TempDir() + "/gpuperf_tree.txt";
  save_tree(tree, path);
  const DecisionTree loaded = load_tree(path);
  EXPECT_DOUBLE_EQ(loaded.predict({0.5, 0.5}), tree.predict({0.5, 0.5}));
}

TEST(ModelIo, TreeRejectsGarbage) {
  EXPECT_THROW(deserialize_tree("not a tree"), CheckError);
  EXPECT_THROW(deserialize_tree("gpuperf-tree v1\nfeatures 0\n"),
               CheckError);
  // Truncated node list.
  EXPECT_THROW(deserialize_tree("gpuperf-tree v1\nfeatures 1\n"
                                "importances 1\nnodes 2\n-1 0 -1 -1 1 1\n"),
               CheckError);
  // Child index out of range.
  EXPECT_THROW(deserialize_tree("gpuperf-tree v1\nfeatures 1\n"
                                "importances 1\nnodes 1\n0 0.5 7 8 1 1\n"),
               CheckError);
}

TEST(ModelIo, SerializeRequiresFittedTree) {
  DecisionTree tree;
  EXPECT_THROW(serialize_tree(tree), CheckError);
}

TEST(ModelIo, LinearRoundTrip) {
  const Dataset d = random_data(50, 5);
  LinearRegression model;
  model.fit(d);
  const LinearRegression restored =
      deserialize_linear(serialize_linear(model));
  EXPECT_DOUBLE_EQ(restored.intercept(), model.intercept());
  ASSERT_EQ(restored.coefficients(), model.coefficients());
  EXPECT_DOUBLE_EQ(restored.predict({0.3, 0.7}),
                   model.predict({0.3, 0.7}));
}

TEST(ModelIo, LinearRejectsGarbage) {
  EXPECT_THROW(deserialize_linear("bogus"), CheckError);
  EXPECT_THROW(deserialize_linear("gpuperf-linear v1\nintercept 1\n"
                                  "coefficients\n"),
               CheckError);
}

TEST(ModelIo, ForestRoundTripPredictsIdentically) {
  const Dataset d = random_data(80, 7);
  ForestParams params;
  params.n_trees = 12;
  RandomForest forest(params, 7);
  forest.fit(d);
  const RandomForest restored =
      deserialize_forest(serialize_forest(forest));
  EXPECT_EQ(restored.tree_count(), forest.tree_count());
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 2), rng.uniform(-1, 2)};
    EXPECT_DOUBLE_EQ(restored.predict(x), forest.predict(x));
  }
}

TEST(ModelIo, ForestRejectsGarbage) {
  EXPECT_THROW(deserialize_forest("bogus"), CheckError);
  // Header promises two trees but carries none.
  EXPECT_THROW(deserialize_forest("gpuperf-forest v1\ntrees 2 features 1\n"),
               CheckError);
}

TEST(ModelIo, BoostingRoundTripPredictsIdentically) {
  const Dataset d = random_data(80, 9);
  BoostingParams params;
  params.n_rounds = 15;
  GradientBoosting model(params, 9);
  model.fit(d);
  const GradientBoosting restored =
      deserialize_boosting(serialize_boosting(model));
  EXPECT_EQ(restored.round_count(), model.round_count());
  EXPECT_DOUBLE_EQ(restored.base_score(), model.base_score());
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 2), rng.uniform(-1, 2)};
    EXPECT_DOUBLE_EQ(restored.predict(x), model.predict(x));
  }
}

TEST(ModelIo, BoostingRejectsGarbage) {
  EXPECT_THROW(deserialize_boosting("bogus"), CheckError);
  EXPECT_THROW(
      deserialize_boosting("gpuperf-boosting v1\nrounds 1 features 1\n"
                           "base_score 0.5\nlearning_rate 0.1\n"),
      CheckError);
}

TEST(ModelIo, KnnRoundTripPredictsIdentically) {
  const Dataset d = random_data(40, 11);
  KnnRegressor model(4, KnnRegressor::Weighting::kInverseDistance);
  model.fit(d);
  const KnnRegressor restored = deserialize_knn(serialize_knn(model));
  EXPECT_EQ(restored.k(), model.k());
  EXPECT_EQ(restored.weighting(), model.weighting());
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.uniform(-1, 2), rng.uniform(-1, 2)};
    EXPECT_DOUBLE_EQ(restored.predict(x), model.predict(x));
  }
}

TEST(ModelIo, KnnRejectsGarbage) {
  EXPECT_THROW(deserialize_knn("bogus"), CheckError);
  // Row count promises more rows than the body carries.
  EXPECT_THROW(deserialize_knn("gpuperf-knn v1\nk 3 weighting inverse\n"
                               "rows 2 features 1\nmean 0\nstddev 1\n"
                               "row 0.5 1\n"),
               CheckError);
}

TEST(ModelIo, GenericRoundTripForEveryRegressorId) {
  const Dataset d = random_data(60, 13);
  for (const auto& id : regressor_ids()) {
    const auto model = make_regressor(id, 13);
    model->fit(d);
    const std::string text = serialize_regressor(*model);
    LoadedRegressor loaded = deserialize_regressor(text);
    EXPECT_EQ(loaded.id, id);
    ASSERT_TRUE(loaded.model != nullptr) << id;
    EXPECT_TRUE(loaded.model->is_fitted()) << id;
    EXPECT_EQ(loaded.model->n_features(), 2u) << id;
    Rng rng(14);
    for (int i = 0; i < 20; ++i) {
      const std::vector<double> x = {rng.uniform(-1, 2),
                                     rng.uniform(-1, 2)};
      EXPECT_DOUBLE_EQ(loaded.model->predict(x), model->predict(x)) << id;
    }
  }
}

TEST(ModelIo, GenericDeserializeRejectsUnknownHeader) {
  EXPECT_THROW(deserialize_regressor("gpuperf-mlp v1\n"), CheckError);
  EXPECT_THROW(deserialize_regressor(""), CheckError);
}

TEST(ModelIo, GenericFileRoundTrip) {
  const Dataset d = random_data(60, 15);
  const auto model = make_regressor("rf", 15);
  model->fit(d);
  const std::string path = ::testing::TempDir() + "/gpuperf_generic.txt";
  save_regressor(*model, path);
  LoadedRegressor loaded = load_regressor(path);
  EXPECT_EQ(loaded.id, "rf");
  EXPECT_DOUBLE_EQ(loaded.model->predict({0.4, 0.6}),
                   model->predict({0.4, 0.6}));
}

}  // namespace
}  // namespace gpuperf::ml
