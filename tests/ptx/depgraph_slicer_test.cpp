#include <gtest/gtest.h>

#include "ptx/codegen.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/parser.hpp"
#include "ptx/slicer.hpp"

namespace gpuperf::ptx {
namespace {

PtxKernel example_kernel() {
  // %f-register math is off the control path; only %r1/%r2/%p1 decide
  // the branch.
  return parse_ptx(R"(
.visible .entry k(
  .param .u64 p_a,
  .param .u32 p_n
)
{
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  .reg .f32 %f<4>;
  .reg .u64 %rd<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_n];
  ld.param.u64 %rd1, [p_a];
  mul.wide.s32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.f32 %f1, [%rd3];
  mul.f32 %f2, %f1, 0f40000000;
  st.global.f32 [%rd3], %f2;
  setp.ge.s32 %p1, %r1, %r2;
  @%p1 bra EXIT;
  add.s32 %r3, %r1, 1;
EXIT:
  ret;
}
)").kernels.front();
}

TEST(DependencyGraph, EdgesFollowDefUse) {
  const PtxKernel k = example_kernel();
  const DependencyGraph g = DependencyGraph::build(k);
  EXPECT_EQ(g.node_count(), k.instructions.size());
  // mul.wide (%rd2 <- %r1) depends on the mov defining %r1.
  const auto& deps = g.deps(3);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], 0u);
  // setp depends on %r1 (inst 0) and %r2 (inst 1).
  const auto& setp_deps = g.deps(8);
  ASSERT_EQ(setp_deps.size(), 2u);
  EXPECT_EQ(setp_deps[0], 0u);
  EXPECT_EQ(setp_deps[1], 1u);
  // The mov has no register inputs.
  EXPECT_TRUE(g.deps(0).empty());
}

TEST(DependencyGraph, DefsOf) {
  const PtxKernel k = example_kernel();
  const DependencyGraph g = DependencyGraph::build(k);
  ASSERT_EQ(g.defs_of(k, "%r1").size(), 1u);
  EXPECT_EQ(g.defs_of(k, "%r1")[0], 0u);
  EXPECT_TRUE(g.defs_of(k, "%r99").empty());
  EXPECT_GT(g.edge_count(), 5u);
}

TEST(Slicer, SliceContainsExactlyTheBranchFeeders) {
  const PtxKernel k = example_kernel();
  const Slice slice =
      compute_slice(k, DependencyGraph::build(k));
  // In slice: mov %r1 (0), ld.param %r2 (1), setp (8).
  EXPECT_TRUE(slice.in_slice[0]);
  EXPECT_TRUE(slice.in_slice[1]);
  EXPECT_TRUE(slice.in_slice[8]);
  // Not in slice: the float math and its address chain.
  EXPECT_FALSE(slice.in_slice[2]);  // ld.param p_a
  EXPECT_FALSE(slice.in_slice[5]);  // ld.global
  EXPECT_FALSE(slice.in_slice[6]);  // mul.f32
  EXPECT_FALSE(slice.in_slice[7]);  // st.global
  EXPECT_EQ(slice.slice_size(), 3u);
  // Tracked registers are the slice outputs.
  EXPECT_TRUE(slice.tracks(k, "%r1"));
  EXPECT_TRUE(slice.tracks(k, "%p1"));
  EXPECT_FALSE(slice.tracks(k, "%f1"));
  EXPECT_EQ(slice.tracked_count(), 3u);  // %r1, %r2, %p1
}

TEST(Slicer, LibraryKernelsHaveSmallSlices) {
  // The speed claim of the paper's dynamic code analysis: only a small
  // fraction of each kernel needs evaluation.
  const PtxModule lib = CodeGenerator::kernel_library();
  for (const auto& kernel : lib.kernels) {
    const Slice slice =
        compute_slice(kernel, DependencyGraph::build(kernel));
    EXPECT_GT(slice.slice_size(), 0u) << kernel.name;
    EXPECT_LT(static_cast<double>(slice.slice_size()),
              0.5 * static_cast<double>(kernel.instructions.size()))
        << kernel.name << ": slice should be well under half the kernel";
  }
}

TEST(Slicer, KernelWithoutBranchesHasEmptySlice) {
  const PtxKernel k = parse_ptx(
      ".visible .entry s() { .reg .u32 %r<3>;"
      " mov.u32 %r1, %tid.x; add.s32 %r2, %r1, 1; ret; }").kernels.front();
  const Slice slice = compute_slice(k, DependencyGraph::build(k));
  EXPECT_EQ(slice.slice_size(), 0u);
  EXPECT_EQ(slice.tracked_count(), 0u);
}

}  // namespace
}  // namespace gpuperf::ptx
