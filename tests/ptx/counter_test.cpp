#include "ptx/counter.hpp"

#include <gtest/gtest.h>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/check.hpp"

namespace gpuperf::ptx {
namespace {

TEST(Counter, ProfilesWholeModel) {
  const cnn::Model model = cnn::zoo::build("MobileNetV2");
  const CompiledModel compiled = CodeGenerator().compile(model);
  const InstructionCounter counter;
  const ModelInstructionProfile profile = counter.count(compiled);

  EXPECT_EQ(profile.model_name, "MobileNetV2");
  EXPECT_EQ(profile.launch_count,
            static_cast<std::int64_t>(compiled.launches.size()));
  EXPECT_EQ(profile.per_launch.size(), compiled.launches.size());
  EXPECT_GT(profile.total_instructions, 0);
  EXPECT_GT(profile.total_threads, 0);

  // Aggregates equal the per-launch sums.
  std::int64_t sum = 0;
  for (std::int64_t v : profile.per_launch) sum += v;
  EXPECT_EQ(sum, profile.total_instructions);

  std::int64_t class_sum = 0;
  for (std::int64_t v : profile.by_class) class_sum += v;
  EXPECT_EQ(class_sum, profile.total_instructions);
}

TEST(Counter, DeterministicAcrossInstances) {
  const cnn::Model model = cnn::zoo::build("alexnet");
  const CompiledModel compiled = CodeGenerator().compile(model);
  const InstructionCounter a, b;
  EXPECT_EQ(a.count(compiled).total_instructions,
            b.count(compiled).total_instructions);
}

TEST(Counter, LargerModelsExecuteMoreInstructions) {
  const InstructionCounter counter;
  const CodeGenerator codegen;
  const std::int64_t small =
      counter.count(codegen.compile(cnn::zoo::build("MobileNetV2")))
          .total_instructions;
  const std::int64_t big =
      counter.count(codegen.compile(cnn::zoo::build("vgg16")))
          .total_instructions;
  EXPECT_GT(big, 10 * small);
}

TEST(Counter, RejectsUnknownKernel) {
  const InstructionCounter counter;
  KernelLaunch l;
  l.kernel = "gp_not_a_kernel";
  EXPECT_THROW(counter.count_launch(l), CheckError);
}

TEST(Counter, EveryLaunchCountsSomething) {
  const cnn::Model model = cnn::zoo::build("densenet121");
  const CompiledModel compiled = CodeGenerator().compile(model);
  const InstructionCounter counter;
  const ModelInstructionProfile profile = counter.count(compiled);
  for (std::size_t i = 0; i < profile.per_launch.size(); ++i)
    EXPECT_GT(profile.per_launch[i], 0)
        << compiled.launches[i].kernel << " launch " << i;
}


TEST(Counter, FmaCountConsistentWithAnalyzerMacs) {
  // Cross-module invariant: the dynamic FMA count of the lowered
  // kernels brackets the static analyzer's MAC count.  GEMM pads K to
  // the tile and rounds the grid up, so fma >= MACs, but never by a
  // large factor on real architectures.
  const cnn::StaticAnalyzer analyzer;
  const InstructionCounter counter;
  const CodeGenerator codegen;
  for (const char* name : {"vgg16", "MobileNetV2", "resnet50v2"}) {
    const cnn::Model model = cnn::zoo::build(name);
    const std::int64_t macs = analyzer.analyze(model).macs;
    const CompiledModel compiled = codegen.compile(model);
    const ModelInstructionProfile profile = counter.count(compiled);
    const std::int64_t fma =
        profile.by_class[static_cast<std::size_t>(OpClass::kFma)];
    EXPECT_GE(fma, macs * 9 / 10) << name;
    EXPECT_LE(fma, 4 * macs) << name;
  }
}

TEST(Counter, InstructionCountScalesWithInputResolution) {
  // Same topology, larger input: strictly more executed instructions.
  const InstructionCounter counter;
  const CodeGenerator codegen;
  auto count_for = [&](std::int64_t hw) {
    cnn::Model m("probe");
    const cnn::NodeId input = m.add_input(hw, hw, 3);
    const cnn::NodeId conv = m.add(cnn::Layer::conv2d(16, 3), input);
    m.add(cnn::Layer::max_pool(2), conv);
    return counter.count(codegen.compile(m)).total_instructions;
  };
  EXPECT_LT(count_for(32), count_for(64));
  EXPECT_LT(count_for(64), count_for(128));
}

}  // namespace
}  // namespace gpuperf::ptx
