// Out-of-core DCA acceptance tests: a synthetic multi-million-
// instruction kernel must build its dependency graph into a spill file
// under a tiny resident budget, slice and count correctly, and stay
// inside a bounded RSS; the same path must reject (typed) when no spill
// directory is configured and abort cooperatively on a deadline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/deadline.hpp"
#include "common/limits.hpp"
#include "common/mapped_buffer.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/slicer.hpp"
#include "ptx/symexec.hpp"
#include "ptx/synthetic.hpp"

namespace gpuperf::ptx {
namespace {

std::string make_spill_dir() {
  char tmpl[] = "/tmp/gpuperf-spill-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

/// RAII spill-config override (the knobs are process-wide).
class SpillOverride {
 public:
  explicit SpillOverride(SpillConfig config) : saved_(dca_spill_config()) {
    set_dca_spill_config(std::move(config));
  }
  ~SpillOverride() { set_dca_spill_config(saved_); }

 private:
  SpillConfig saved_;
};

/// Current VmRSS in bytes, from /proc/self/status.
std::size_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr)
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) break;
  std::fclose(f);
  return kb * 1024;
}

constexpr bool kUnderSanitizer =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

TEST(Synthetic, SmallModuleCountsMatchInterpreterAndClosedForm) {
  SyntheticSpec spec;
  spec.body_instructions = 200;
  spec.data_registers = 8;
  spec.seed_registers = 4;
  const PtxModule mod = synthetic_module(spec);
  const PtxKernel& kernel = mod.kernels.front();
  ASSERT_TRUE(kernel.registers_interned());
  ASSERT_EQ(kernel.instructions.size(), 200u + 4u + 6u);

  KernelLaunch launch;
  launch.kernel = kernel.name;
  launch.grid_dim = 2;
  launch.block_dim = 32;
  launch.args = {{"p_n", 17}};
  const ExecutionCounts sc = SymbolicExecutor(kernel).run(launch);
  EXPECT_EQ(sc.total, synthetic_dynamic_instructions(spec, 17, 64));
  const ThreadCounts ic = Interpreter(kernel).run_all(launch);
  EXPECT_EQ(sc.total, ic.total);
}

TEST(Spill, TinyBudgetForcesFileBackedGraph) {
  SyntheticSpec spec;
  spec.body_instructions = 20000;
  const PtxModule mod = synthetic_module(spec);
  const PtxKernel& kernel = mod.kernels.front();

  const std::string dir = make_spill_dir();
  const SpillOverride guard(SpillConfig{dir, 4096});
  const std::uint64_t files_before = MappedBuffer::spill_files_total();

  const DependencyGraph g = DependencyGraph::build(kernel);
  EXPECT_TRUE(g.spilled());
  EXPECT_GT(g.csr_bytes(), 4096u);
  EXPECT_GT(MappedBuffer::spill_files_total(), files_before);

  // The spilled graph is fully usable: the slice finds exactly the loop
  // head (mov i, ld.param n, add i, setp — the 4 branch feeders).
  const Slice slice = compute_slice(kernel, g);
  EXPECT_EQ(slice.slice_size(), 4u);
  EXPECT_TRUE(slice.tracks(kernel, "%r1"));
  EXPECT_FALSE(slice.tracks(kernel, "%f1"));
  ::rmdir(dir.c_str());
}

TEST(Spill, NoSpillDirRejectsWithTypedError) {
  SyntheticSpec spec;
  spec.body_instructions = 20000;
  const PtxModule mod = synthetic_module(spec);
  const SpillOverride guard(SpillConfig{"", 4096});
  EXPECT_THROW(DependencyGraph::build(mod.kernels.front()), LimitExceeded);
}

TEST(Spill, DeadlineAbortsMidBuild) {
  SyntheticSpec spec;
  spec.body_instructions = 20000;
  const PtxModule mod = synthetic_module(spec);
  Deadline deadline;
  deadline.with_step_budget(100);  // far fewer than one pass's charges
  EXPECT_THROW(DependencyGraph::build(mod.kernels.front(), deadline),
               AnalysisTimeout);
}

TEST(Spill, GiantKernelSlicesAndCountsInsideBoundedRss) {
  // The headline acceptance test: 2M+ instructions, 1 MiB resident
  // budget.  The CSR arrays (~40 MiB here) must land in the spill file,
  // and building + slicing + counting must not grow RSS by more than
  // the arena scratch + slice arrays + faulted-back graph pages —
  // far below the ~150 MiB the old vector-of-vectors layout needed.
  SyntheticSpec spec;
  spec.body_instructions = 2'000'000;
  PtxModule mod = synthetic_module(spec);
  PtxKernel& kernel = mod.kernels.front();
  ASSERT_GE(kernel.instructions.size(), 2'000'000u);

  const std::string dir = make_spill_dir();
  const SpillOverride guard(SpillConfig{dir, 1u << 20});

  const std::size_t rss_before = current_rss_bytes();
  const DependencyGraph g = DependencyGraph::build(kernel);
  EXPECT_TRUE(g.spilled());
  EXPECT_GT(g.csr_bytes(), 30u << 20);
  const Slice slice = compute_slice(kernel, g);
  EXPECT_EQ(slice.slice_size(), 4u);
  const std::size_t rss_after = current_rss_bytes();

  if (!kUnderSanitizer && rss_before > 0 && rss_after > rss_before) {
    EXPECT_LT(rss_after - rss_before, 96u << 20)
        << "graph build+slice RSS delta exceeds the out-of-core bound";
  }

  // And the giant kernel still counts exactly (closed form), via the
  // move-in executor so the 2M-instruction stream is not copied.
  KernelLaunch launch;
  launch.kernel = spec.kernel_name;
  launch.grid_dim = 1;
  launch.block_dim = 2;
  launch.args = {{"p_n", 5}};
  const SymbolicExecutor sym(std::move(kernel));
  const ExecutionCounts counts = sym.run(launch);
  EXPECT_EQ(counts.total, synthetic_dynamic_instructions(spec, 5, 2));
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace gpuperf::ptx
