#include "ptx/lexer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf::ptx {
namespace {

std::vector<std::string> texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const auto& t : tokens)
    if (!t.is(TokenKind::kEnd)) out.push_back(t.text);
  return out;
}

TEST(Lexer, BasicInstruction) {
  const auto tokens = lex("mov.u32 \t%r1, %ctaid.x;");
  const auto t = texts(tokens);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], "mov.u32");
  EXPECT_EQ(t[1], "%r1");
  EXPECT_EQ(t[2], ",");
  EXPECT_EQ(t[3], "%ctaid.x");
  EXPECT_EQ(t[4], ";");
}

TEST(Lexer, GuardTokens) {
  const auto tokens = lex("@!%p1 bra LBB0_2;");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].is(TokenKind::kAt));
  EXPECT_TRUE(tokens[1].is(TokenKind::kBang));
  EXPECT_EQ(tokens[2].text, "%p1");
  EXPECT_EQ(tokens[3].text, "bra");
  EXPECT_EQ(tokens[4].text, "LBB0_2");
}

TEST(Lexer, MemoryOperand) {
  const auto tokens = lex("ld.global.f32 %f1, [%rd2+4];");
  bool saw_bracket = false, saw_plus = false;
  for (const auto& tok : tokens) {
    saw_bracket |= tok.is(TokenKind::kLBracket);
    saw_plus |= tok.is(TokenKind::kPlus);
  }
  EXPECT_TRUE(saw_bracket);
  EXPECT_TRUE(saw_plus);
}

TEST(Lexer, Numbers) {
  const auto tokens = lex("42 -7 0f3F800000");
  EXPECT_TRUE(tokens[0].is(TokenKind::kNumber));
  EXPECT_EQ(tokens[1].text, "-7");
  EXPECT_EQ(tokens[2].text, "0f3F800000");
}

TEST(Lexer, CommentsStripped) {
  const auto tokens = lex("// line comment\nmov.u32 %r1, 0; /* block\n"
                          "comment */ ret;");
  const auto t = texts(tokens);
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0], "mov.u32");
  EXPECT_EQ(t[5], "ret");
}

TEST(Lexer, LineNumbersTracked) {
  const auto tokens = lex("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, DirectivesAndDecls) {
  const auto tokens =
      lex(".reg .pred %p<14>;\n.visible .entry gp_copy(");
  const auto t = texts(tokens);
  EXPECT_EQ(t[0], ".reg");
  EXPECT_EQ(t[1], ".pred");
  EXPECT_EQ(t[2], "%p");
  EXPECT_EQ(t[3], "<");
  EXPECT_EQ(t[4], "14");
  EXPECT_EQ(t[5], ">");
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_THROW(lex("mov /* never closed"), CheckError);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("mov.u32 %r1, #3;"), CheckError);
}

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::kEnd));
}

}  // namespace
}  // namespace gpuperf::ptx
