#include "ptx/cfg.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ptx/codegen.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {
namespace {

PtxKernel loop_kernel() {
  return parse_ptx(R"(
.visible .entry k(
  .param .u32 p_n
)
{
  .reg .pred %p<3>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_n];
  setp.ge.s32 %p1, %r1, %r2;
  @%p1 bra EXIT;
LOOP:
  add.s32 %r1, %r1, 1;
  setp.lt.s32 %p2, %r1, %r2;
  @%p2 bra LOOP;
EXIT:
  ret;
}
)").kernels.front();
}

TEST(Cfg, BlockBoundaries) {
  const PtxKernel k = loop_kernel();
  const Cfg cfg = Cfg::build(k);
  // Blocks: [0..3] prologue+guard, [4..6] loop, [7] ret.
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_EQ(cfg.block(0).first, 0u);
  EXPECT_EQ(cfg.block(0).last, 3u);
  EXPECT_EQ(cfg.block(1).first, 4u);
  EXPECT_EQ(cfg.block(1).last, 6u);
  EXPECT_EQ(cfg.block(2).first, 7u);
  EXPECT_EQ(cfg.block(0).size(), 4u);
}

TEST(Cfg, Edges) {
  const Cfg cfg = Cfg::build(loop_kernel());
  // Block 0: conditional -> EXIT(2) or fallthrough LOOP(1).
  ASSERT_EQ(cfg.block(0).succs.size(), 2u);
  EXPECT_EQ(cfg.block(0).succs[0], 2u);
  EXPECT_EQ(cfg.block(0).succs[1], 1u);
  // Block 1: back edge to itself + fallthrough to ret.
  ASSERT_EQ(cfg.block(1).succs.size(), 2u);
  EXPECT_EQ(cfg.block(1).succs[0], 1u);
  EXPECT_EQ(cfg.block(1).succs[1], 2u);
  // ret has no successors.
  EXPECT_TRUE(cfg.block(2).succs.empty());
  // Preds mirror succs.
  EXPECT_EQ(cfg.block(2).preds.size(), 2u);
}

TEST(Cfg, BlockOfMapsEveryInstruction) {
  const PtxKernel k = loop_kernel();
  const Cfg cfg = Cfg::build(k);
  for (std::size_t i = 0; i < k.instructions.size(); ++i) {
    const std::size_t b = cfg.block_of(i);
    EXPECT_GE(i, cfg.block(b).first);
    EXPECT_LE(i, cfg.block(b).last);
  }
}

TEST(Cfg, LoopDetection) {
  EXPECT_TRUE(Cfg::build(loop_kernel()).has_loops());
  const PtxKernel straight = parse_ptx(
      ".visible .entry s() { .reg .u32 %r<3>;"
      " mov.u32 %r1, %tid.x; ret; }").kernels.front();
  EXPECT_FALSE(Cfg::build(straight).has_loops());
}

TEST(Cfg, ConditionalBlocks) {
  const Cfg cfg = Cfg::build(loop_kernel());
  const auto cond = cfg.conditional_blocks();
  ASSERT_EQ(cond.size(), 2u);
  EXPECT_EQ(cond[0], 0u);
  EXPECT_EQ(cond[1], 1u);
}

TEST(Cfg, EveryLibraryKernelBuilds) {
  const PtxModule lib = CodeGenerator::kernel_library();
  for (const auto& kernel : lib.kernels) {
    const Cfg cfg = Cfg::build(kernel);
    EXPECT_GE(cfg.block_count(), 2u) << kernel.name;
    // Entry block exists; final block ends in ret.
    const auto& last = cfg.block(cfg.block_count() - 1);
    EXPECT_TRUE(kernel.instructions[last.last].is_exit()) << kernel.name;
  }
}

TEST(Cfg, RejectsEmptyKernel) {
  PtxKernel k;
  k.name = "empty";
  EXPECT_THROW(Cfg::build(k), CheckError);
}

}  // namespace
}  // namespace gpuperf::ptx
