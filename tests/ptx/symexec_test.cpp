// The central correctness property of the dynamic code analysis: the
// sliced, accelerated symbolic executor must count exactly what brute-
// force interpretation of every thread counts — for every kernel in
// the library and across boundary-heavy launch geometries.
#include "ptx/symexec.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ptx/codegen.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {
namespace {

const PtxModule& library() {
  static const PtxModule lib =
      parse_ptx(CodeGenerator::kernel_library().to_ptx());
  return lib;
}

void expect_matches_brute_force(const std::string& kernel_name,
                                KernelLaunch launch) {
  launch.kernel = kernel_name;
  const PtxKernel& kernel = library().kernel(kernel_name);
  const SymbolicExecutor sym(kernel);
  const Interpreter interp(kernel);
  const ExecutionCounts sc = sym.run(launch);
  const ThreadCounts ic = interp.run_all(launch);
  EXPECT_EQ(sc.total, ic.total) << kernel_name;
  for (std::size_t c = 0; c < sc.by_class.size(); ++c)
    EXPECT_EQ(sc.by_class[c], ic.by_class[c])
        << kernel_name << " class " << op_class_name(static_cast<OpClass>(c));
}

struct ElementwiseCase {
  std::int64_t grid;
  std::int64_t n;
};

class ElementwiseSweep : public ::testing::TestWithParam<ElementwiseCase> {};

TEST_P(ElementwiseSweep, CopyMatches) {
  KernelLaunch l;
  l.grid_dim = GetParam().grid;
  l.block_dim = 256;
  l.args = {{"p_dst", 1}, {"p_a", 2}, {"p_n", GetParam().n}};
  expect_matches_brute_force("gp_copy", l);
}

TEST_P(ElementwiseSweep, SwishMatches) {
  KernelLaunch l;
  l.grid_dim = GetParam().grid;
  l.block_dim = 256;
  l.args = {{"p_dst", 1}, {"p_a", 2}, {"p_n", GetParam().n}};
  expect_matches_brute_force("gp_swish", l);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ElementwiseSweep,
    ::testing::Values(ElementwiseCase{1, 1},       // single thread active
                      ElementwiseCase{1, 255},     // partial block
                      ElementwiseCase{1, 256},     // exact block
                      ElementwiseCase{2, 257},     // one past a block
                      ElementwiseCase{4, 1024},    // exact grid
                      ElementwiseCase{2, 2000},    // grid-stride loops
                      ElementwiseCase{3, 700}));   // capped + idle tail

TEST(SymExec, AddKernelBoundaries) {
  for (std::int64_t n : {1, 100, 512, 513, 3000}) {
    KernelLaunch l;
    l.grid_dim = 2;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_a", 2}, {"p_b", 3}, {"p_n", n}};
    expect_matches_brute_force("gp_add", l);
  }
}

TEST(SymExec, BnAndBroadcast) {
  KernelLaunch l;
  l.grid_dim = 3;
  l.block_dim = 256;
  l.args = {{"p_dst", 1}, {"p_a", 2},   {"p_scale", 3},
            {"p_shift", 4}, {"p_n", 2000}, {"p_c", 32}};
  expect_matches_brute_force("gp_bn", l);

  KernelLaunch m;
  m.grid_dim = 2;
  m.block_dim = 256;
  m.args = {{"p_dst", 1}, {"p_a", 2}, {"p_se", 3}, {"p_n", 700},
            {"p_c", 7}};
  expect_matches_brute_force("gp_mul_bcast", m);
}

TEST(SymExec, Im2colWindows) {
  for (std::int64_t window : {1, 9, 27, 147}) {
    KernelLaunch l;
    l.grid_dim = 2;
    l.block_dim = 256;
    l.args = {{"p_col", 1}, {"p_src", 2}, {"p_patches", 300},
              {"p_window", window}};
    expect_matches_brute_force("gp_im2col", l);
  }
}

TEST(SymExec, GemmTileCounts) {
  for (std::int64_t kt : {1, 2, 7, 36}) {
    KernelLaunch l;
    l.grid_dim = 3;
    l.block_dim = 256;
    l.args = {{"p_c", 1}, {"p_a", 2},      {"p_b", 3},  {"p_bias", 4},
              {"p_total", 600}, {"p_n", 30}, {"p_kt", kt}};
    expect_matches_brute_force("gp_gemm", l);
  }
}

TEST(SymExec, DwConvAndPooling) {
  for (const char* name : {"gp_dwconv", "gp_pool_max", "gp_pool_avg"}) {
    KernelLaunch l;
    l.grid_dim = 2;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_src", 2}, {"p_out", 400}, {"p_window", 9}};
    if (std::string(name) == "gp_dwconv") l.args["p_w"] = 3;
    expect_matches_brute_force(name, l);
  }
}

TEST(SymExec, GapStridedReduction) {
  for (std::int64_t hw : {1, 49, 196, 1024}) {
    KernelLaunch l;
    l.grid_dim = 1;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_src", 2}, {"p_c", 130}, {"p_hw", hw}};
    expect_matches_brute_force("gp_gap", l);
  }
}

TEST(SymExec, SoftmaxDivergentTreeReduction) {
  for (std::int64_t n : {1, 100, 256, 999, 1000, 4000}) {
    KernelLaunch l;
    l.grid_dim = 1;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_src", 2}, {"p_n", n}};
    expect_matches_brute_force("gp_softmax", l);
  }
}

TEST(SymExec, LoopAccelerationIsExactOnLongLoops) {
  // A trip count far beyond what the executor iterates concretely;
  // brute force stays feasible because only 8 threads run.
  const PtxKernel k = parse_ptx(R"(
.visible .entry longloop(
  .param .u32 p_n
) {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_n];
  mov.u32 %r3, 0;
LOOP:
  add.s32 %r3, %r3, 1;
  add.s32 %r3, %r3, 0;
  setp.lt.s32 %p1, %r3, %r2;
  @%p1 bra LOOP;
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "longloop";
  l.grid_dim = 1;
  l.block_dim = 8;
  l.args = {{"p_n", 100000}};
  const ExecutionCounts sc = SymbolicExecutor(k).run(l);
  const ThreadCounts ic = Interpreter(k).run_all(l);
  EXPECT_EQ(sc.total, ic.total);
  // 3 prologue + 100000 * 4 + 1 ret, per thread.
  EXPECT_EQ(sc.total, 8 * (3 + 100000 * 4 + 1));
}

TEST(SymExec, ThreadDependentTripCounts) {
  // Each thread loops tid times: trip counts vary across the box, so
  // the executor must split at every exit boundary.
  const PtxKernel k = parse_ptx(R"(
.visible .entry tidloop() {
  .reg .pred %p<3>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, 0;
  setp.le.s32 %p1, %r1, 0;
  @%p1 bra EXIT;
LOOP:
  add.s32 %r2, %r2, 1;
  setp.lt.s32 %p2, %r2, %r1;
  @%p2 bra LOOP;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "tidloop";
  l.grid_dim = 1;
  l.block_dim = 32;
  const ExecutionCounts sc = SymbolicExecutor(k).run(l);
  const ThreadCounts ic = Interpreter(k).run_all(l);
  EXPECT_EQ(sc.total, ic.total);
}

TEST(SymExec, RejectsDataDependentBranch) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry datadep(
  .param .u64 p_a
) {
  .reg .pred %p<2>;
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  ld.param.u64 %rd1, [p_a];
  ld.global.u32 %r1, [%rd1];
  setp.gt.s32 %p1, %r1, 0;
  @%p1 bra EXIT;
  mov.u32 %r2, 0;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "datadep";
  l.grid_dim = 1;
  l.block_dim = 1;
  l.args = {{"p_a", 100}};
  EXPECT_THROW(SymbolicExecutor(k).run(l), CheckError);
}

TEST(SymExec, DetectsNonTerminatingLoop) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry forever() {
  .reg .pred %p<2>;
  .reg .u32 %r<3>;
  mov.u32 %r1, 0;
LOOP:
  add.s32 %r1, %r1, 0;
  setp.ge.s32 %p1, %r1, 0;
  @%p1 bra LOOP;
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "forever";
  l.grid_dim = 1;
  l.block_dim = 1;
  EXPECT_THROW(SymbolicExecutor(k).run(l), CheckError);
}

TEST(SymExec, CountsScaleLinearlyWithGrid) {
  // Uniform kernels: doubling the grid doubles every count.
  KernelLaunch l;
  l.kernel = "gp_im2col";
  l.grid_dim = 2;
  l.block_dim = 256;
  l.args = {{"p_col", 1}, {"p_src", 2}, {"p_patches", 1 << 20},
            {"p_window", 9}};
  const PtxKernel& kernel = library().kernel("gp_im2col");
  const SymbolicExecutor sym(kernel);
  const std::int64_t base = sym.run(l).total;
  l.grid_dim = 4;
  EXPECT_EQ(sym.run(l).total, 2 * base);
}

TEST(SymExec, HugeLaunchRunsFast) {
  // A GEMM the size of a VGG conv layer: ~10^9 dynamic instructions
  // counted exactly without iterating them.
  KernelLaunch l;
  l.kernel = "gp_gemm";
  l.block_dim = 256;
  l.grid_dim = (224 * 224 * 64 + 255) / 256;
  l.args = {{"p_c", 1},  {"p_a", 2}, {"p_b", 3}, {"p_bias", 4},
            {"p_total", 224 * 224 * 64}, {"p_n", 64}, {"p_kt", 36}};
  const ExecutionCounts counts =
      SymbolicExecutor(library().kernel("gp_gemm")).run(l);
  EXPECT_GT(counts.total, 1'000'000'000LL);
}


TEST(SymExec, EqualityPredicateSplitsSingleThread) {
  // Only tid == 7 takes the branch: the eq split carves a 1-wide box.
  const PtxKernel k = parse_ptx(R"(
.visible .entry eqk() {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  setp.eq.s32 %p1, %r1, 7;
  @%p1 bra EXTRA;
  bra EXIT;
EXTRA:
  add.s32 %r2, %r1, 1;
  add.s32 %r3, %r2, 1;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "eqk";
  l.grid_dim = 2;
  l.block_dim = 32;
  const ExecutionCounts sc = SymbolicExecutor(k).run(l);
  const ThreadCounts ic = Interpreter(k).run_all(l);
  EXPECT_EQ(sc.total, ic.total);
  // 62 threads skip (mov, setp, bra-not-taken, bra, ret = 5), 2
  // threads (tid 7 of each block) take the extra path (mov, setp,
  // bra-taken, add, add, ret = 6).
  EXPECT_EQ(sc.total, 62 * 5 + 2 * 6);
}

TEST(SymExec, InequalityPredicateAndNegatedGuard) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry nek() {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  setp.ne.s32 %p1, %r1, 3;
  @!%p1 bra SPECIAL;
  bra EXIT;
SPECIAL:
  add.s32 %r2, %r1, 1;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "nek";
  l.grid_dim = 1;
  l.block_dim = 16;
  const ExecutionCounts sc = SymbolicExecutor(k).run(l);
  const ThreadCounts ic = Interpreter(k).run_all(l);
  EXPECT_EQ(sc.total, ic.total);
}

TEST(SymExec, EqualityOnCtaid) {
  // Only block 2 takes the branch: the eq split acts on the ctaid axis.
  const PtxKernel k = parse_ptx(R"(
.visible .entry eqb() {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %ctaid.x;
  setp.eq.s32 %p1, %r1, 2;
  @%p1 bra EXTRA;
  bra EXIT;
EXTRA:
  add.s32 %r2, %r1, 1;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "eqb";
  l.grid_dim = 5;
  l.block_dim = 64;
  const ExecutionCounts sc = SymbolicExecutor(k).run(l);
  const ThreadCounts ic = Interpreter(k).run_all(l);
  EXPECT_EQ(sc.total, ic.total);
}

TEST(SymExec, MixedCtaidTidGuardSplitsExactly) {
  // gid-style guard where both coefficients are nonzero: the general
  // box-split path with one mixed row.
  const PtxKernel k = parse_ptx(R"(
.visible .entry mixed() {
  .reg .pred %p<2>;
  .reg .u32 %r<5>;
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.s32 %r4, %r1, %r2, %r3;
  setp.lt.s32 %p1, %r4, 100;
  @%p1 bra WORK;
  bra EXIT;
WORK:
  add.s32 %r4, %r4, 1;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "mixed";
  l.grid_dim = 4;
  l.block_dim = 32;  // threshold 100 falls inside block 3
  const ExecutionCounts sc = SymbolicExecutor(k).run(l);
  const ThreadCounts ic = Interpreter(k).run_all(l);
  EXPECT_EQ(sc.total, ic.total);
}

}  // namespace
}  // namespace gpuperf::ptx
