// Differential equivalence suite for the CSR dependency-graph storage:
// the flat arena/CSR representation must be bit-identical — same
// adjacency rows, same definition sites, same slice, same tracked set,
// same dynamic counts — to the straightforward vector-of-vectors
// representation it replaced.  The oracle below IS that pre-refactor
// representation, reimplemented verbatim from the old depgraph/slicer
// code, so any CSR construction bug (off-by-one offsets, bad prefix
// sums, compaction corruption) diverges here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ptx/codegen.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/parser.hpp"
#include "ptx/slicer.hpp"
#include "ptx/symexec.hpp"

namespace gpuperf::ptx {
namespace {

/// The pre-refactor graph: one heap vector per instruction / register.
struct OracleGraph {
  std::vector<std::vector<std::size_t>> deps;
  std::vector<std::vector<std::size_t>> defs_by_id;
};

OracleGraph oracle_graph(const PtxKernel& kernel) {
  const auto& ins = kernel.instructions;
  OracleGraph g;
  g.deps.resize(ins.size());
  g.defs_by_id.resize(kernel.register_count());
  for (std::size_t i = 0; i < ins.size(); ++i)
    for (int id : ins[i].def_ids()) g.defs_by_id[id].push_back(i);
  for (std::size_t i = 0; i < ins.size(); ++i) {
    std::vector<std::size_t>& d = g.deps[i];
    for (int id : ins[i].use_ids()) {
      if (id < 0 || static_cast<std::size_t>(id) >= g.defs_by_id.size())
        continue;
      const auto& defs = g.defs_by_id[id];
      d.insert(d.end(), defs.begin(), defs.end());
    }
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return g;
}

/// The pre-refactor slicer: deque worklist + set-of-names tracking.
struct OracleSlice {
  std::vector<bool> in_slice;
  std::set<std::string> tracked;
};

OracleSlice oracle_slice(const PtxKernel& kernel, const OracleGraph& g) {
  const auto& ins = kernel.instructions;
  OracleSlice slice;
  slice.in_slice.assign(ins.size(), false);
  std::deque<std::size_t> worklist;
  auto mark = [&](std::size_t i) {
    if (!slice.in_slice[i]) {
      slice.in_slice[i] = true;
      worklist.push_back(i);
    }
  };
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i].guard_id < 0) continue;
    const int id = ins[i].guard_id;
    if (static_cast<std::size_t>(id) < g.defs_by_id.size())
      for (std::size_t def : g.defs_by_id[id]) mark(def);
  }
  while (!worklist.empty()) {
    const std::size_t i = worklist.front();
    worklist.pop_front();
    for (std::size_t dep : g.deps[i]) mark(dep);
  }
  for (std::size_t i = 0; i < ins.size(); ++i)
    if (slice.in_slice[i])
      for (const std::string& reg : ins[i].defs()) slice.tracked.insert(reg);
  return slice;
}

void expect_graph_and_slice_match(const PtxKernel& kernel) {
  const DependencyGraph csr = DependencyGraph::build(kernel);
  const OracleGraph oracle = oracle_graph(kernel);

  ASSERT_EQ(csr.node_count(), oracle.deps.size()) << kernel.name;
  std::size_t oracle_edges = 0;
  for (std::size_t i = 0; i < oracle.deps.size(); ++i) {
    const auto row = csr.deps(i);
    ASSERT_EQ(row.size(), oracle.deps[i].size())
        << kernel.name << " deps row " << i;
    for (std::size_t j = 0; j < row.size(); ++j)
      ASSERT_EQ(row[j], oracle.deps[i][j])
          << kernel.name << " deps[" << i << "][" << j << "]";
    oracle_edges += oracle.deps[i].size();
  }
  EXPECT_EQ(csr.edge_count(), oracle_edges) << kernel.name;

  for (std::size_t id = 0; id < oracle.defs_by_id.size(); ++id) {
    const auto row = csr.defs_of_id(static_cast<int>(id));
    ASSERT_EQ(row.size(), oracle.defs_by_id[id].size())
        << kernel.name << " defs of id " << id;
    for (std::size_t j = 0; j < row.size(); ++j)
      ASSERT_EQ(row[j], oracle.defs_by_id[id][j])
          << kernel.name << " defs_of[" << id << "][" << j << "]";
  }

  const Slice slice = compute_slice(kernel, csr);
  const OracleSlice expected = oracle_slice(kernel, oracle);
  std::size_t expected_size = 0;
  for (std::size_t i = 0; i < expected.in_slice.size(); ++i) {
    ASSERT_EQ(slice.in_slice[i] != 0, expected.in_slice[i])
        << kernel.name << " in_slice[" << i << "]";
    if (expected.in_slice[i]) ++expected_size;
  }
  EXPECT_EQ(slice.slice_size(), expected_size) << kernel.name;
  EXPECT_EQ(slice.tracked_count(), expected.tracked.size()) << kernel.name;
  for (std::size_t id = 0; id < kernel.register_count(); ++id)
    EXPECT_EQ(slice.tracks_id(static_cast<int>(id)),
              expected.tracked.count(kernel.register_names[id]) > 0)
        << kernel.name << " tracked " << kernel.register_names[id];
}

TEST(CsrDifferential, EveryLibraryKernelMatchesOracle) {
  const PtxModule& lib = CodeGenerator::parsed_kernel_library();
  ASSERT_FALSE(lib.kernels.empty());
  for (const PtxKernel& kernel : lib.kernels)
    expect_graph_and_slice_match(kernel);
}

TEST(CsrDifferential, HandKernelsMatchOracle) {
  // Shapes the library under-exercises: multiple defs of one register,
  // guarded non-branch instructions, registers read before any def.
  const PtxModule mod = parse_ptx(R"(
.visible .entry redefs(
  .param .u32 p_n
) {
  .reg .pred %p<3>;
  .reg .u32 %r<6>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_n];
  mov.u32 %r3, 0;
LOOP:
  add.s32 %r3, %r3, 1;
  add.s32 %r4, %r3, %r5;
  setp.lt.s32 %p1, %r3, %r2;
  @%p1 add.s32 %r4, %r4, 2;
  @%p1 bra LOOP;
  ret;
}
)");
  for (const PtxKernel& kernel : mod.kernels)
    expect_graph_and_slice_match(kernel);
}

/// The end-to-end check: symbolic execution on the CSR graph still
/// matches brute-force interpretation (which never touches the graph)
/// for every library kernel across the launch-geometry grid.
struct Geometry {
  std::int64_t grid;
  std::int64_t block;
  std::int64_t n;
};

class CsrCountDifferential : public ::testing::TestWithParam<Geometry> {};

std::map<std::string, std::int64_t> default_args(const PtxKernel& kernel,
                                                 std::int64_t n) {
  std::map<std::string, std::int64_t> args;
  std::int64_t next_addr = 0x10000000;
  for (const KernelParam& p : kernel.params) {
    if (p.type == PtxType::kU64) {
      args[p.name] = next_addr;
      next_addr += 0x100000;
    } else if (p.name == "p_window") {
      args[p.name] = 9;
    } else if (p.name == "p_c") {
      args[p.name] = 7;
    } else if (p.name == "p_kt") {
      args[p.name] = 3;
    } else if (p.name == "p_hw") {
      args[p.name] = 49;
    } else if (kernel.name == "gp_gemm" && p.name == "p_n") {
      args[p.name] = 16;
    } else {
      args[p.name] = n;
    }
  }
  return args;
}

TEST_P(CsrCountDifferential, CountsMatchInterpreter) {
  const Geometry geo = GetParam();
  const PtxModule& lib = CodeGenerator::parsed_kernel_library();
  for (const PtxKernel& kernel : lib.kernels) {
    KernelLaunch launch;
    launch.kernel = kernel.name;
    launch.grid_dim = geo.grid;
    launch.block_dim = geo.block;
    launch.args = default_args(kernel, geo.n);
    const ExecutionCounts sc = SymbolicExecutor(kernel).run(launch);
    const ThreadCounts ic = Interpreter(kernel).run_all(launch);
    EXPECT_EQ(sc.total, ic.total)
        << kernel.name << " grid=" << geo.grid << " block=" << geo.block;
    for (std::size_t c = 0; c < sc.by_class.size(); ++c)
      EXPECT_EQ(sc.by_class[c], ic.by_class[c]) << kernel.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CsrCountDifferential,
    ::testing::Values(Geometry{1, 256, 1}, Geometry{1, 256, 255},
                      Geometry{2, 256, 257}, Geometry{3, 256, 700}));

}  // namespace
}  // namespace gpuperf::ptx
