#include "ptx/verifier.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ptx/codegen.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {
namespace {

TEST(Verifier, GeneratedLibraryIsClean) {
  const auto issues = verify_module(CodeGenerator::kernel_library());
  for (const auto& issue : issues) ADD_FAILURE() << issue.message;
  EXPECT_TRUE(issues.empty());
  verify_or_throw(CodeGenerator::kernel_library());  // must not throw
}

TEST(Verifier, ParsedLibraryIsClean) {
  const PtxModule mod =
      parse_ptx(CodeGenerator::kernel_library().to_ptx());
  EXPECT_TRUE(verify_module(mod).empty());
}

TEST(Verifier, FlagsUndefinedBranchTarget) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k() { .reg .pred %p<2>; .reg .u32 %r<2>;"
      " mov.u32 %r1, %tid.x; setp.gt.s32 %p1, %r1, 0;"
      " @%p1 bra NOWHERE; ret; }");
  const auto issues = verify_kernel(mod.kernels.front());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("undefined label"), std::string::npos);
  EXPECT_THROW(verify_or_throw(mod), CheckError);
}

TEST(Verifier, FlagsUndeclaredRegister) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k() { .reg .u32 %r<2>;"
      " mov.u32 %r1, %tid.x; add.s32 %r5, %r1, 1; ret; }");
  const auto issues = verify_kernel(mod.kernels.front());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("exceeds declared range"),
            std::string::npos);
}

TEST(Verifier, FlagsMissingDeclarationPrefix) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k() { .reg .u32 %r<2>;"
      " mov.f32 %f1, 0f00000000; ret; }");
  const auto issues = verify_kernel(mod.kernels.front());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("no matching .reg declaration"),
            std::string::npos);
}

TEST(Verifier, FlagsNonPredicateGuard) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k() { .reg .u32 %r<3>;"
      " mov.u32 %r1, %tid.x;\nL: @%r1 bra L; }");
  bool found = false;
  for (const auto& issue : verify_kernel(mod.kernels.front()))
    if (issue.message.find("not a predicate register") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Verifier, FlagsFallOffTheEnd) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k() { .reg .u32 %r<2>; mov.u32 %r1, %tid.x; }");
  bool found = false;
  for (const auto& issue : verify_kernel(mod.kernels.front()))
    if (issue.message.find("fall off the end") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Verifier, FlagsSharedUseWithoutDeclaration) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k() { .reg .u64 %rd<2>; .reg .f32 %f<2>;"
      " mov.u64 %rd1, 0; ld.shared.f32 %f1, [%rd1]; ret; }");
  bool found = false;
  for (const auto& issue : verify_kernel(mod.kernels.front()))
    if (issue.message.find(".shared declaration") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Verifier, FlagsUnknownParamBase) {
  const PtxModule mod = parse_ptx(
      ".visible .entry k(\n .param .u32 p_n\n) { .reg .u32 %r<2>;"
      " ld.param.u32 %r1, [p_other]; ret; }");
  bool found = false;
  for (const auto& issue : verify_kernel(mod.kernels.front()))
    if (issue.message.find("neither a register nor a declared parameter") !=
        std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Verifier, FlagsMalformedSetp) {
  PtxKernel k = parse_ptx(
      ".visible .entry k() { .reg .pred %p<2>; .reg .u32 %r<3>;"
      " setp.lt.s32 %p1, %r1, %r2; ret; }").kernels.front();
  // Strip the compare op to simulate a hand-built malformed instruction.
  k.reg_decls.push_back(RegDecl{PtxType::kU32, "%r", 3});
  k.instructions.front().cmp.reset();
  bool found = false;
  for (const auto& issue : verify_kernel(k))
    if (issue.message.find("setp without compare op") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Verifier, KernelLevelIssuesUseSentinelIndex) {
  PtxKernel k;
  k.name = "";
  const auto issues = verify_kernel(k);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].instruction_index, VerifyIssue::kKernelLevel);
}

}  // namespace
}  // namespace gpuperf::ptx
