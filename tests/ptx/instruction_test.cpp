#include "ptx/instruction.hpp"

#include <gtest/gtest.h>

namespace gpuperf::ptx {
namespace {

TEST(Operand, Rendering) {
  EXPECT_EQ(operand_to_string(RegOperand{"%r7"}), "%r7");
  EXPECT_EQ(operand_to_string(ImmOperand{42.0, false}), "42");
  EXPECT_EQ(operand_to_string(ImmOperand{-3.0, false}), "-3");
  EXPECT_EQ(operand_to_string(SpecialOperand{SpecialReg::kTidX}), "%tid.x");
  EXPECT_EQ(operand_to_string(MemOperand{"%rd2", 0}), "[%rd2]");
  EXPECT_EQ(operand_to_string(MemOperand{"%rd2", 4}), "[%rd2+4]");
  EXPECT_EQ(operand_to_string(MemOperand{"p_n", 0}), "[p_n]");
  EXPECT_EQ(operand_to_string(LabelOperand{"LOOP"}), "LOOP");
}

TEST(Operand, FloatImmediateRendersAsHexBits) {
  // 1.0f == 0x3F800000.
  EXPECT_EQ(operand_to_string(ImmOperand{1.0, true}), "0f3F800000");
  EXPECT_EQ(operand_to_string(ImmOperand{0.0, true}), "0f00000000");
}

Instruction make_add() {
  Instruction inst;
  inst.opcode = Opcode::kAdd;
  inst.type = PtxType::kS32;
  inst.dsts = {RegOperand{"%r3"}};
  inst.srcs = {RegOperand{"%r1"}, RegOperand{"%r2"}};
  return inst;
}

TEST(Instruction, ToStringBasicForms) {
  EXPECT_EQ(make_add().to_string(), "add.s32 \t%r3, %r1, %r2;");

  Instruction setp;
  setp.opcode = Opcode::kSetp;
  setp.type = PtxType::kU32;
  setp.cmp = CompareOp::kLt;
  setp.dsts = {RegOperand{"%p1"}};
  setp.srcs = {RegOperand{"%r1"}, ImmOperand{10.0, false}};
  EXPECT_EQ(setp.to_string(), "setp.lt.u32 \t%p1, %r1, 10;");

  Instruction ld;
  ld.opcode = Opcode::kLd;
  ld.type = PtxType::kF32;
  ld.space = StateSpace::kGlobal;
  ld.dsts = {RegOperand{"%f1"}};
  ld.srcs = {MemOperand{"%rd1", 8}};
  EXPECT_EQ(ld.to_string(), "ld.global.f32 \t%f1, [%rd1+8];");

  Instruction bra;
  bra.opcode = Opcode::kBra;
  bra.srcs = {LabelOperand{"EXIT"}};
  bra.guard = "%p1";
  bra.guard_negated = true;
  EXPECT_EQ(bra.to_string(), "@!%p1 bra \tEXIT;");

  Instruction ret;
  ret.opcode = Opcode::kRet;
  EXPECT_EQ(ret.to_string(), "ret;");
}

TEST(Instruction, DefsAndUses) {
  const Instruction add = make_add();
  EXPECT_EQ(add.defs(), (std::vector<std::string>{"%r3"}));
  EXPECT_EQ(add.uses(), (std::vector<std::string>{"%r1", "%r2"}));
}

TEST(Instruction, UsesIncludeMemoryBaseRegistersAndGuards) {
  Instruction st;
  st.opcode = Opcode::kSt;
  st.type = PtxType::kF32;
  st.space = StateSpace::kGlobal;
  st.srcs = {MemOperand{"%rd1", 0}, RegOperand{"%f2"}};
  st.guard = "%p3";
  const auto uses = st.uses();
  EXPECT_EQ(uses, (std::vector<std::string>{"%rd1", "%f2", "%p3"}));
  EXPECT_TRUE(st.defs().empty());
}

TEST(Instruction, ParamBasesAreNotRegisterUses) {
  Instruction ld;
  ld.opcode = Opcode::kLd;
  ld.space = StateSpace::kParam;
  ld.type = PtxType::kU32;
  ld.dsts = {RegOperand{"%r1"}};
  ld.srcs = {MemOperand{"p_n", 0}};
  EXPECT_TRUE(ld.uses().empty());
}

TEST(Instruction, Predicates) {
  Instruction bra;
  bra.opcode = Opcode::kBra;
  EXPECT_TRUE(bra.is_branch());
  EXPECT_FALSE(bra.is_exit());
  Instruction ret;
  ret.opcode = Opcode::kRet;
  EXPECT_TRUE(ret.is_exit());
  EXPECT_FALSE(ret.is_branch());
}

}  // namespace
}  // namespace gpuperf::ptx
