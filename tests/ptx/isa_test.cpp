#include "ptx/isa.hpp"

#include <gtest/gtest.h>

namespace gpuperf::ptx {
namespace {

TEST(Isa, OpcodeNameRoundTrip) {
  const Opcode all[] = {
      Opcode::kMov,  Opcode::kLd,   Opcode::kSt,     Opcode::kAdd,
      Opcode::kSub,  Opcode::kMul,  Opcode::kMulLo,  Opcode::kMulWide,
      Opcode::kMad,  Opcode::kFma,  Opcode::kDiv,    Opcode::kRem,
      Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,    Opcode::kNot,
      Opcode::kShl,  Opcode::kShr,  Opcode::kSetp,   Opcode::kSelp,
      Opcode::kBra,  Opcode::kRet,  Opcode::kBar,    Opcode::kCvt,
      Opcode::kCvta, Opcode::kMin,  Opcode::kMax,    Opcode::kNeg,
      Opcode::kAbs,  Opcode::kRcp,  Opcode::kSqrt,   Opcode::kEx2,
      Opcode::kLg2};
  for (Opcode op : all) {
    const auto back = opcode_from_name(opcode_name(op));
    ASSERT_TRUE(back.has_value()) << opcode_name(op);
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(opcode_from_name("nonsense").has_value());
}

TEST(Isa, TypeSuffixRoundTrip) {
  const PtxType all[] = {PtxType::kPred, PtxType::kU16, PtxType::kU32,
                         PtxType::kU64,  PtxType::kS32, PtxType::kS64,
                         PtxType::kF32,  PtxType::kF64, PtxType::kB32,
                         PtxType::kB64};
  for (PtxType t : all) {
    const auto back = type_from_suffix(type_suffix(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(type_from_suffix("q128").has_value());
}

TEST(Isa, TypeProperties) {
  EXPECT_TRUE(is_float_type(PtxType::kF32));
  EXPECT_TRUE(is_float_type(PtxType::kF64));
  EXPECT_FALSE(is_float_type(PtxType::kS32));
  EXPECT_EQ(type_bytes(PtxType::kF32), 4);
  EXPECT_EQ(type_bytes(PtxType::kU64), 8);
  EXPECT_EQ(type_bytes(PtxType::kU16), 2);
  EXPECT_EQ(type_bytes(PtxType::kPred), 1);
}

TEST(Isa, SpecialRegRoundTrip) {
  const SpecialReg all[] = {SpecialReg::kTidX, SpecialReg::kCtaidX,
                            SpecialReg::kNtidX, SpecialReg::kNctaidX};
  for (SpecialReg r : all) {
    const auto back = special_reg_from_name(special_reg_name(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
  EXPECT_FALSE(special_reg_from_name("%tid.y").has_value());
}

TEST(Isa, CompareRoundTrip) {
  const CompareOp all[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                           CompareOp::kGe, CompareOp::kEq, CompareOp::kNe};
  for (CompareOp c : all)
    EXPECT_EQ(*compare_from_name(compare_name(c)), c);
}

TEST(Isa, Classification) {
  EXPECT_EQ(classify(Opcode::kFma, PtxType::kF32, StateSpace::kNone),
            OpClass::kFma);
  EXPECT_EQ(classify(Opcode::kMad, PtxType::kS32, StateSpace::kNone),
            OpClass::kIntAlu);
  EXPECT_EQ(classify(Opcode::kLd, PtxType::kF32, StateSpace::kGlobal),
            OpClass::kLoadGlobal);
  EXPECT_EQ(classify(Opcode::kLd, PtxType::kF32, StateSpace::kShared),
            OpClass::kLoadShared);
  EXPECT_EQ(classify(Opcode::kLd, PtxType::kU64, StateSpace::kParam),
            OpClass::kLoadParam);
  EXPECT_EQ(classify(Opcode::kSt, PtxType::kF32, StateSpace::kGlobal),
            OpClass::kStoreGlobal);
  EXPECT_EQ(classify(Opcode::kBra, PtxType::kU32, StateSpace::kNone),
            OpClass::kControl);
  EXPECT_EQ(classify(Opcode::kRcp, PtxType::kF32, StateSpace::kNone),
            OpClass::kSfu);
  EXPECT_EQ(classify(Opcode::kAdd, PtxType::kF32, StateSpace::kNone),
            OpClass::kFloatAlu);
  EXPECT_EQ(classify(Opcode::kAdd, PtxType::kS32, StateSpace::kNone),
            OpClass::kIntAlu);
  EXPECT_EQ(classify(Opcode::kMov, PtxType::kU32, StateSpace::kNone),
            OpClass::kMove);
}

}  // namespace
}  // namespace gpuperf::ptx
