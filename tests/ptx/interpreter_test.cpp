#include "ptx/interpreter.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {
namespace {

TEST(Interpreter, StraightLineCountsEveryInstruction) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry s() {
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  add.s32 %r2, %r1, 5;
  mul.lo.s32 %r3, %r2, 2;
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.kernel = "s";
  l.grid_dim = 1;
  l.block_dim = 4;
  const ThreadCounts c = Interpreter(k).run_thread(l, 0, 2);
  EXPECT_EQ(c.total, 4);
  EXPECT_EQ(c.by_class[static_cast<std::size_t>(OpClass::kIntAlu)], 2);
  EXPECT_EQ(c.by_class[static_cast<std::size_t>(OpClass::kMove)], 1);
  EXPECT_EQ(c.by_class[static_cast<std::size_t>(OpClass::kControl)], 1);
}

TEST(Interpreter, LoopTripCountFromParam) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry loop(
  .param .u32 p_n
) {
  .reg .pred %p<2>;
  .reg .u32 %r<3>;
  mov.u32 %r1, 0;
  ld.param.u32 %r2, [p_n];
LOOP:
  add.s32 %r1, %r1, 1;
  setp.lt.s32 %p1, %r1, %r2;
  @%p1 bra LOOP;
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.grid_dim = 1;
  l.block_dim = 1;
  l.args = {{"p_n", 10}};
  // 2 prologue + 10 * 3 loop + 1 ret.
  EXPECT_EQ(Interpreter(k).run_thread(l, 0, 0).total, 2 + 30 + 1);
  l.args["p_n"] = 1;
  EXPECT_EQ(Interpreter(k).run_thread(l, 0, 0).total, 2 + 3 + 1);
}

TEST(Interpreter, GuardedBranchDependsOnThreadId) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry g(
  .param .u32 p_n
) {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_n];
  setp.ge.s32 %p1, %r1, %r2;
  @%p1 bra EXIT;
  add.s32 %r3, %r1, 1;
  add.s32 %r3, %r3, 1;
EXIT:
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.grid_dim = 1;
  l.block_dim = 8;
  l.args = {{"p_n", 4}};
  const Interpreter interp(k);
  // Threads 0-3 execute the body (7 instrs), 4-7 skip it (5 instrs).
  EXPECT_EQ(interp.run_thread(l, 0, 0).total, 7);
  EXPECT_EQ(interp.run_thread(l, 0, 3).total, 7);
  EXPECT_EQ(interp.run_thread(l, 0, 4).total, 5);
  EXPECT_EQ(interp.run_thread(l, 0, 7).total, 5);
  EXPECT_EQ(interp.run_all(l).total, 4 * 7 + 4 * 5);
}

TEST(Interpreter, SelpAndArithmetic) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry sel() {
  .reg .pred %p<2>;
  .reg .u32 %r<5>;
  mov.u32 %r1, %tid.x;
  setp.gt.s32 %p1, %r1, 2;
  selp.b32 %r2, 100, 200, %p1;
  shl.b32 %r3, %r2, 1;
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.grid_dim = 1;
  l.block_dim = 8;
  // Counts are uniform; correctness of selp checked indirectly by
  // running without errors for all threads.
  EXPECT_EQ(Interpreter(k).run_all(l).total, 8 * 5);
}

TEST(Interpreter, RejectsMissingArgument) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry m(
  .param .u32 p_n
) {
  .reg .u32 %r<2>;
  ld.param.u32 %r1, [p_n];
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.grid_dim = 1;
  l.block_dim = 1;
  EXPECT_THROW(Interpreter(k).run_thread(l, 0, 0), CheckError);
}

TEST(Interpreter, RejectsOutOfRangeThread) {
  const PtxKernel k = parse_ptx(
      ".visible .entry t() { ret; }").kernels.front();
  KernelLaunch l;
  l.grid_dim = 2;
  l.block_dim = 4;
  EXPECT_THROW(Interpreter(k).run_thread(l, 2, 0), CheckError);
  EXPECT_THROW(Interpreter(k).run_thread(l, 0, 4), CheckError);
}

TEST(Interpreter, SharedMemoryRoundTrip) {
  const PtxKernel k = parse_ptx(R"(
.visible .entry sm() {
  .shared .align 4 .b8 smem[64];
  .reg .u32 %r<3>;
  .reg .u64 %rd<2>;
  .reg .f32 %f<3>;
  mov.u64 %rd1, 8;
  mov.f32 %f1, 0f40490FDB;
  st.shared.f32 [%rd1], %f1;
  ld.shared.f32 %f2, [%rd1];
  ret;
}
)").kernels.front();
  KernelLaunch l;
  l.grid_dim = 1;
  l.block_dim = 1;
  EXPECT_EQ(Interpreter(k).run_thread(l, 0, 0).total, 5);
}

}  // namespace
}  // namespace gpuperf::ptx
