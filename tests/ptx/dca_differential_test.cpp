// Differential equivalence suite for the interned-register DCA fast
// path: the dense-environment symbolic executor must produce counts
// bit-identical to the reference interpreter for EVERY kernel in the
// library, across a grid of launch geometries, and for hand-written
// kernels exercising guarded branches (plain and negated) and
// predicate-producing instructions.  This is the acceptance gate for
// the register-interning optimization — any divergence between the
// id-indexed and the (former) string-keyed semantics shows up here.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "ptx/codegen.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/parser.hpp"
#include "ptx/symexec.hpp"

namespace gpuperf::ptx {
namespace {

using i64 = std::int64_t;

/// Synthesize launch arguments for any library kernel: pointer-typed
/// (u64) parameters get distinct synthetic device addresses, scalar
/// parameters get values keyed on their (fixed) naming convention with
/// `n` driving the element-count-like ones.
std::map<std::string, i64> default_args(const PtxKernel& kernel, i64 n) {
  std::map<std::string, i64> args;
  i64 next_addr = 0x10000000;
  for (const KernelParam& p : kernel.params) {
    if (p.type == PtxType::kU64) {
      args[p.name] = next_addr;
      next_addr += 0x100000;
    } else if (p.name == "p_window") {
      args[p.name] = 9;
    } else if (p.name == "p_c") {
      args[p.name] = 7;
    } else if (p.name == "p_kt") {
      args[p.name] = 3;
    } else if (p.name == "p_hw") {
      args[p.name] = 49;
    } else if (kernel.name == "gp_gemm" && p.name == "p_n") {
      args[p.name] = 16;  // gemm's p_n is the column count, not a size
    } else {
      args[p.name] = n;  // p_n / p_total / p_patches / p_out
    }
  }
  return args;
}

void expect_equivalent(const PtxKernel& kernel, const KernelLaunch& launch) {
  const SymbolicExecutor sym(kernel);
  const Interpreter interp(kernel);
  const ExecutionCounts sc = sym.run(launch);
  const ThreadCounts ic = interp.run_all(launch);
  EXPECT_EQ(sc.total, ic.total) << kernel.name << " grid=" << launch.grid_dim
                                << " block=" << launch.block_dim;
  for (std::size_t c = 0; c < sc.by_class.size(); ++c)
    EXPECT_EQ(sc.by_class[c], ic.by_class[c])
        << kernel.name << " class "
        << op_class_name(static_cast<OpClass>(c));
}

struct Geometry {
  i64 grid;
  i64 block;
  i64 n;
};

class LibraryDifferential : public ::testing::TestWithParam<Geometry> {};

TEST_P(LibraryDifferential, EveryKernelMatchesInterpreter) {
  const Geometry geo = GetParam();
  const PtxModule& lib = CodeGenerator::parsed_kernel_library();
  ASSERT_FALSE(lib.kernels.empty());
  for (const PtxKernel& kernel : lib.kernels) {
    ASSERT_TRUE(kernel.registers_interned()) << kernel.name;
    KernelLaunch launch;
    launch.kernel = kernel.name;
    launch.grid_dim = geo.grid;
    launch.block_dim = geo.block;
    launch.args = default_args(kernel, geo.n);
    expect_equivalent(kernel, launch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LibraryDifferential,
    ::testing::Values(Geometry{1, 256, 1},     // one active thread
                      Geometry{1, 256, 255},   // partial block
                      Geometry{2, 256, 257},   // one past a block
                      Geometry{3, 256, 700})); // idle tail + stride loops

TEST(DcaDifferential, NegatedGuardBranch) {
  // "@!%p bra" — the negated guard path through both engines.
  const PtxKernel k = parse_ptx(R"(
.visible .entry negguard(
  .param .u32 p_n
) {
  .reg .pred %p<2>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_n];
  setp.lt.s32 %p1, %r1, %r2;
  @!%p1 bra EXIT;
  add.s32 %r3, %r1, 1;
  add.s32 %r3, %r3, 2;
EXIT:
  ret;
}
)").kernels.front();
  for (i64 n : {0, 1, 100, 128, 200}) {
    KernelLaunch l;
    l.kernel = "negguard";
    l.grid_dim = 2;
    l.block_dim = 128;
    l.args = {{"p_n", n}};
    expect_equivalent(k, l);
  }
}

TEST(DcaDifferential, EqualityPredicates) {
  // eq/ne split a box into at most three runs; ids must resolve the
  // same registers the names did.
  const PtxKernel k = parse_ptx(R"(
.visible .entry eqsplit(
  .param .u32 p_k
) {
  .reg .pred %p<3>;
  .reg .u32 %r<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_k];
  setp.eq.s32 %p1, %r1, %r2;
  @%p1 bra SPECIAL;
  add.s32 %r3, %r1, 1;
  bra EXIT;
SPECIAL:
  add.s32 %r3, %r1, 2;
  add.s32 %r3, %r3, 3;
EXIT:
  ret;
}
)").kernels.front();
  for (i64 key : {0, 63, 64, 127, 500}) {
    KernelLaunch l;
    l.kernel = "eqsplit";
    l.grid_dim = 1;
    l.block_dim = 128;
    l.args = {{"p_k", key}};
    expect_equivalent(k, l);
  }
}

TEST(DcaDifferential, ThreadDependentLoopWithGuards) {
  // Per-thread trip counts + a guarded skip: combines box splitting,
  // loop acceleration and guard evaluation in one kernel.
  const PtxKernel k = parse_ptx(R"(
.visible .entry tidloop2(
  .param .u32 p_cap
) {
  .reg .pred %p<4>;
  .reg .u32 %r<5>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [p_cap];
  mov.u32 %r4, 0;
  setp.le.s32 %p1, %r1, 0;
  @%p1 bra EXIT;
LOOP:
  add.s32 %r4, %r4, 1;
  setp.ge.s32 %p2, %r4, %r2;
  @%p2 bra EXIT;
  setp.lt.s32 %p3, %r4, %r1;
  @%p3 bra LOOP;
EXIT:
  ret;
}
)").kernels.front();
  for (i64 cap : {0, 5, 63, 200}) {
    KernelLaunch l;
    l.kernel = "tidloop2";
    l.grid_dim = 1;
    l.block_dim = 64;
    l.args = {{"p_cap", cap}};
    expect_equivalent(k, l);
  }
}

TEST(DcaDifferential, RoundTripPreservesIdsAndCounts) {
  // Print → reparse must yield the same interned id assignment (ids
  // are first-appearance ordered, and appearance order survives the
  // text round trip), hence identical counts.
  const PtxModule& lib = CodeGenerator::parsed_kernel_library();
  const PtxModule reparsed = parse_ptx(lib.to_ptx());
  for (std::size_t i = 0; i < lib.kernels.size(); ++i) {
    const PtxKernel& a = lib.kernels[i];
    const PtxKernel& b = reparsed.kernels[i];
    ASSERT_EQ(a.name, b.name);
    ASSERT_EQ(a.register_names, b.register_names) << a.name;
    KernelLaunch launch;
    launch.kernel = a.name;
    launch.grid_dim = 2;
    launch.block_dim = 256;
    launch.args = default_args(a, 300);
    const ExecutionCounts ca = SymbolicExecutor(a).run(launch);
    const ExecutionCounts cb = SymbolicExecutor(b).run(launch);
    EXPECT_EQ(ca.total, cb.total) << a.name;
    EXPECT_EQ(ca.by_class, cb.by_class) << a.name;
  }
}

}  // namespace
}  // namespace gpuperf::ptx
