#include "ptx/codegen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "ptx/counter.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {
namespace {

TEST(Codegen, LibraryContainsExpectedKernels) {
  const PtxModule lib = CodeGenerator::kernel_library();
  std::set<std::string> names;
  for (const auto& k : lib.kernels) names.insert(k.name);
  for (const char* expected :
       {"gp_copy", "gp_relu", "gp_relu6", "gp_sigmoid", "gp_swish",
        "gp_tanh", "gp_add", "gp_mul", "gp_bn", "gp_mul_bcast",
        "gp_im2col", "gp_gemm", "gp_dwconv", "gp_pool_max", "gp_pool_avg",
        "gp_gap", "gp_softmax"})
    EXPECT_EQ(names.count(expected), 1u) << expected;
}

TEST(Codegen, LibraryTextParses) {
  const std::string text = CodeGenerator::kernel_library().to_ptx();
  EXPECT_NE(text.find(".version"), std::string::npos);
  EXPECT_NE(text.find(".visible .entry gp_gemm"), std::string::npos);
  const PtxModule reparsed = parse_ptx(text);
  EXPECT_EQ(reparsed.kernels.size(),
            CodeGenerator::kernel_library().kernels.size());
}

TEST(Codegen, GemmKernelShape) {
  const PtxModule lib = CodeGenerator::kernel_library();
  const PtxKernel& gemm = lib.kernel("gp_gemm");
  EXPECT_EQ(gemm.reqntid, CodeGenerator::kBlockDim);
  EXPECT_GT(gemm.shared_bytes, 0);
  ASSERT_EQ(gemm.params.size(), 7u);
  EXPECT_NE(gemm.labels.find("KLOOP"), gemm.labels.end());
  EXPECT_NE(gemm.labels.find("JLOOP"), gemm.labels.end());
}

TEST(Codegen, CompileTinyModel) {
  cnn::Model m("tiny");
  const cnn::NodeId input = m.add_input(8, 8, 3);
  const cnn::NodeId conv = m.add(
      cnn::Layer::conv2d(4, 3, 1, cnn::Padding::kSame, true,
                         cnn::ActivationKind::kReLU),
      input);
  const cnn::NodeId pool = m.add(cnn::Layer::max_pool(2), conv);
  const cnn::NodeId flat = m.add(cnn::Layer::flatten(), pool);
  m.add(cnn::Layer::dense(10, true, cnn::ActivationKind::kSoftmax), flat);

  const CompiledModel compiled = CodeGenerator().compile(m);
  EXPECT_EQ(compiled.model_name, "tiny");
  EXPECT_EQ(compiled.launches.size(), compiled.stats.size());

  // Expected: im2col + gemm + relu (conv), pool, gemm + softmax (dense).
  std::vector<std::string> kernels;
  for (const auto& l : compiled.launches) kernels.push_back(l.kernel);
  EXPECT_EQ(kernels,
            (std::vector<std::string>{"gp_im2col", "gp_gemm", "gp_relu",
                                      "gp_pool_max", "gp_gemm",
                                      "gp_softmax"}));
}

TEST(Codegen, LaunchArgumentsMatchKernelParams) {
  const cnn::Model model = cnn::zoo::build("MobileNetV2");
  const CompiledModel compiled = CodeGenerator().compile(model);
  const PtxModule lib = CodeGenerator::kernel_library();
  for (const auto& launch : compiled.launches) {
    const PtxKernel& kernel = lib.kernel(launch.kernel);
    EXPECT_EQ(launch.args.size(), kernel.params.size()) << launch.kernel;
    for (const auto& param : kernel.params)
      EXPECT_EQ(launch.args.count(param.name), 1u)
          << launch.kernel << " missing " << param.name;
    EXPECT_GE(launch.grid_dim, 1);
    EXPECT_EQ(launch.block_dim, CodeGenerator::kBlockDim);
  }
}

TEST(Codegen, GroupedConvEmitsPerGroupGemm) {
  cnn::Model m("grouped");
  const cnn::NodeId input = m.add_input(8, 8, 4);
  m.add(cnn::Layer::conv2d(8, 3, 1, cnn::Padding::kSame, true,
                           cnn::ActivationKind::kLinear, 2),
        input);
  const CompiledModel compiled = CodeGenerator().compile(m);
  std::size_t gemms = 0, im2cols = 0;
  for (const auto& l : compiled.launches) {
    gemms += l.kernel == "gp_gemm";
    im2cols += l.kernel == "gp_im2col";
  }
  EXPECT_EQ(gemms, 2u);
  EXPECT_EQ(im2cols, 2u);
}

TEST(Codegen, StatsArePositiveAndConsistent) {
  const cnn::Model model = cnn::zoo::build("mobilenet");
  const CompiledModel compiled = CodeGenerator().compile(model);
  for (std::size_t i = 0; i < compiled.stats.size(); ++i) {
    EXPECT_GT(compiled.stats[i].bytes_read, 0) << i;
    EXPECT_GT(compiled.stats[i].bytes_written, 0) << i;
    EXPECT_GE(compiled.stats[i].flops, 0) << i;
  }
}

TEST(Codegen, GemmKPaddedToTile) {
  cnn::Model m("pad");
  const cnn::NodeId input = m.add_input(4, 4, 3);  // K = 3*3*3 = 27 -> 32
  m.add(cnn::Layer::conv2d(4, 3), input);
  const CompiledModel compiled = CodeGenerator().compile(m);
  for (const auto& l : compiled.launches) {
    if (l.kernel != "gp_gemm") continue;
    EXPECT_EQ(l.args.at("p_kt"),
              (27 + CodeGenerator::kGemmTile - 1) / CodeGenerator::kGemmTile);
  }
}

TEST(Codegen, ViewsEmitNoKernels) {
  cnn::Model m("views");
  const cnn::NodeId input = m.add_input(4, 4, 4);
  const cnn::NodeId flat = m.add(cnn::Layer::flatten(), input);
  m.add(cnn::Layer::dropout(0.5), flat);
  const CompiledModel compiled = CodeGenerator().compile(m);
  EXPECT_TRUE(compiled.launches.empty());
}

TEST(Codegen, DeterministicAcrossCalls) {
  const cnn::Model model = cnn::zoo::build("alexnet");
  const CompiledModel a = CodeGenerator().compile(model);
  const CompiledModel b = CodeGenerator().compile(model);
  ASSERT_EQ(a.launches.size(), b.launches.size());
  for (std::size_t i = 0; i < a.launches.size(); ++i) {
    EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
    EXPECT_EQ(a.launches[i].grid_dim, b.launches[i].grid_dim);
    EXPECT_EQ(a.launches[i].args, b.launches[i].args);
  }
}


TEST(Codegen, BatchScalesActivationWork) {
  const cnn::Model model = cnn::zoo::build("MobileNetV2");
  const CodeGenerator codegen;
  const InstructionCounter counter;
  const std::int64_t one =
      counter.count(codegen.compile(model, 1)).total_instructions;
  const std::int64_t eight =
      counter.count(codegen.compile(model, 8)).total_instructions;
  // Activations scale linearly; shared fixed overheads keep it a bit
  // below exactly 8x.
  EXPECT_GT(eight, 6 * one);
  EXPECT_LE(eight, 9 * one);
}

TEST(Codegen, BatchPreservesLaunchStructure) {
  cnn::Model m("bt");
  const cnn::NodeId input = m.add_input(8, 8, 3);
  const cnn::NodeId conv = m.add(cnn::Layer::conv2d(4, 3), input);
  const cnn::NodeId flat = m.add(cnn::Layer::flatten(),
                                 m.add(cnn::Layer::max_pool(2), conv));
  m.add(cnn::Layer::dense(10, true, cnn::ActivationKind::kSoftmax), flat);
  const CodeGenerator codegen;
  const CompiledModel b1 = codegen.compile(m, 1);
  const CompiledModel b4 = codegen.compile(m, 4);
  ASSERT_EQ(b1.launches.size(), b4.launches.size());
  for (std::size_t i = 0; i < b1.launches.size(); ++i)
    EXPECT_EQ(b1.launches[i].kernel, b4.launches[i].kernel) << i;
  // Batched softmax runs one block per row.
  EXPECT_EQ(b4.launches.back().kernel, "gp_softmax");
  EXPECT_EQ(b4.launches.back().grid_dim, 4);
  EXPECT_EQ(b4.launches.back().args.at("p_n"),
            b1.launches.back().args.at("p_n"));
}

TEST(Codegen, RejectsImplausibleBatch) {
  const cnn::Model model = cnn::zoo::build("alexnet");
  EXPECT_THROW(CodeGenerator().compile(model, 0), CheckError);
  EXPECT_THROW(CodeGenerator().compile(model, 5000), CheckError);
}

}  // namespace
}  // namespace gpuperf::ptx
