// The launch-config memo behind InstructionCounter::count_launch:
// single-flight under heavy concurrency, deadline aborts never cached,
// pointer-argument invariance (buffers off the slice share an entry)
// and size-argument sensitivity.  Stats are asserted as deltas because
// the memo is process-wide and other tests in this binary use it too.
#include "ptx/counter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/deadline.hpp"
#include "cnn/zoo.hpp"

namespace gpuperf::ptx {
namespace {

KernelLaunch copy_launch(std::int64_t n) {
  KernelLaunch l;
  l.kernel = "gp_copy";
  l.grid_dim = 5;
  l.block_dim = 256;
  l.args = {{"p_dst", 0x1000}, {"p_a", 0x2000}, {"p_n", n}};
  return l;
}

TEST(CounterMemo, SingleFlightUnder32ConcurrentThreads) {
  const InstructionCounter counter;
  // An argument value no other test uses, so this key is cold.
  const KernelLaunch launch = copy_launch(77777);

  const auto before = InstructionCounter::memo_stats();

  constexpr int kThreads = 32;
  std::mutex mutex;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  std::vector<ExecutionCounts> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      {
        std::unique_lock<std::mutex> lock(mutex);
        if (++ready == kThreads) cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      results[t] = counter.count_launch(launch);
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready == kThreads; });
    go = true;
  }
  cv.notify_all();
  for (auto& th : threads) th.join();

  const auto after = InstructionCounter::memo_stats();
  // Exactly one underlying symbolic execution; everyone else waited on
  // the winner's future (or found the ready entry).
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, static_cast<std::uint64_t>(kThreads - 1));

  ASSERT_GT(results[0].total, 0);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].total, results[0].total);
    EXPECT_EQ(results[t].by_class, results[0].by_class);
  }
}

TEST(CounterMemo, DeadlineAbortIsNotCached) {
  const InstructionCounter counter;
  const KernelLaunch launch = copy_launch(88888);  // cold key

  Deadline tight;
  tight.with_step_budget(1);
  EXPECT_THROW(counter.count_launch(launch, tight), AnalysisTimeout);

  // The aborted compute must have been erased, not poisoned: the same
  // key computes successfully under an unlimited deadline...
  const ExecutionCounts ok = counter.count_launch(launch);
  EXPECT_GT(ok.total, 0);

  // ...and that success IS cached.
  const auto before = InstructionCounter::memo_stats();
  const ExecutionCounts again = counter.count_launch(launch);
  const auto after = InstructionCounter::memo_stats();
  EXPECT_EQ(again.total, ok.total);
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(CounterMemo, PointerArgumentsShareOneEntry) {
  const InstructionCounter counter;
  KernelLaunch a = copy_launch(99999);  // cold key
  KernelLaunch b = a;
  b.args["p_dst"] = 0xdead0000;  // different buffers, same geometry
  b.args["p_a"] = 0xbeef0000;

  const auto before = InstructionCounter::memo_stats();
  const ExecutionCounts ca = counter.count_launch(a);
  const ExecutionCounts cb = counter.count_launch(b);
  const auto after = InstructionCounter::memo_stats();

  // Buffers are off the slice: the second launch is a memo hit.
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_GE(after.hits - before.hits, 1u);
  EXPECT_EQ(ca.total, cb.total);
}

TEST(CounterMemo, SizeArgumentsKeySeparateEntries) {
  const InstructionCounter counter;
  const ExecutionCounts small = counter.count_launch(copy_launch(11111));
  const ExecutionCounts large = counter.count_launch(copy_launch(22222));
  EXPECT_LT(small.total, large.total);
}

TEST(CounterMemo, ModelCountMatchesPerLaunchAccumulation) {
  // count() (parallel fan-out + index-ordered reduction on multi-core
  // machines) must agree exactly with a serial per-launch loop.
  const CodeGenerator codegen;
  const CompiledModel compiled =
      codegen.compile(cnn::zoo::build("MobileNetV2"));
  const InstructionCounter counter;
  const ModelInstructionProfile profile = counter.count(compiled);

  std::int64_t total = 0;
  ASSERT_EQ(profile.per_launch.size(), compiled.launches.size());
  for (std::size_t i = 0; i < compiled.launches.size(); ++i) {
    const ExecutionCounts counts = counter.count_launch(compiled.launches[i]);
    EXPECT_EQ(profile.per_launch[i], counts.total) << "launch " << i;
    EXPECT_EQ(profile.per_launch_class[i], counts.by_class) << "launch " << i;
    total += counts.total;
  }
  EXPECT_EQ(profile.total_instructions, total);
}

}  // namespace
}  // namespace gpuperf::ptx
