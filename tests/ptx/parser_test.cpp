#include "ptx/parser.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ptx/codegen.hpp"

namespace gpuperf::ptx {
namespace {

constexpr const char* kTinyKernel = R"(
.version 7.0
.target sm_70
.address_size 64

.visible .entry tiny(
  .param .u64 p_dst,
  .param .u32 p_n
)
.reqntid 256, 1, 1
{
  .reg .pred %p<3>;
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;

  mov.u32 	%r1, %ctaid.x;
  mov.u32 	%r2, %ntid.x;
  mov.u32 	%r3, %tid.x;
  mad.lo.s32 	%r4, %r1, %r2, %r3;
  ld.param.u32 	%r5, [p_n];
  setp.ge.s32 	%p1, %r4, %r5;
  @%p1 bra 	EXIT;
LOOP:
  add.s32 	%r4, %r4, 1;
  setp.lt.s32 	%p2, %r4, %r5;
  @%p2 bra 	LOOP;
EXIT:
  ret;
}
)";

TEST(Parser, ParsesModuleDirectives) {
  const PtxModule mod = parse_ptx(kTinyKernel);
  EXPECT_EQ(mod.version, "7.0");
  EXPECT_EQ(mod.target, "sm_70");
  EXPECT_EQ(mod.address_size, 64);
  ASSERT_EQ(mod.kernels.size(), 1u);
}

TEST(Parser, ParsesKernelStructure) {
  const PtxKernel k = parse_ptx(kTinyKernel).kernels.front();
  EXPECT_EQ(k.name, "tiny");
  ASSERT_EQ(k.params.size(), 2u);
  EXPECT_EQ(k.params[0].name, "p_dst");
  EXPECT_TRUE(k.params[0].is_pointer);
  EXPECT_EQ(k.params[1].type, PtxType::kU32);
  EXPECT_EQ(k.reqntid, 256);
  EXPECT_EQ(k.reg_decls.size(), 3u);
  EXPECT_EQ(k.instructions.size(), 11u);
  EXPECT_EQ(k.label_target("LOOP"), 7u);
  EXPECT_EQ(k.label_target("EXIT"), 10u);
  EXPECT_THROW(k.label_target("NOPE"), CheckError);
}

TEST(Parser, DecodesInstructionDetails) {
  const PtxKernel k = parse_ptx(kTinyKernel).kernels.front();
  const Instruction& mad = k.instructions[3];
  EXPECT_EQ(mad.opcode, Opcode::kMad);
  EXPECT_EQ(mad.type, PtxType::kS32);
  ASSERT_EQ(mad.dsts.size(), 1u);
  ASSERT_EQ(mad.srcs.size(), 3u);

  const Instruction& ldp = k.instructions[4];
  EXPECT_EQ(ldp.opcode, Opcode::kLd);
  EXPECT_EQ(ldp.space, StateSpace::kParam);
  const auto* mem = std::get_if<MemOperand>(&ldp.srcs.front());
  ASSERT_NE(mem, nullptr);
  EXPECT_EQ(mem->base, "p_n");

  const Instruction& setp = k.instructions[5];
  EXPECT_EQ(setp.opcode, Opcode::kSetp);
  ASSERT_TRUE(setp.cmp.has_value());
  EXPECT_EQ(*setp.cmp, CompareOp::kGe);

  const Instruction& bra = k.instructions[6];
  EXPECT_EQ(bra.opcode, Opcode::kBra);
  EXPECT_EQ(bra.guard, "%p1");
  EXPECT_FALSE(bra.guard_negated);
}

TEST(Parser, GuardNegation) {
  const PtxModule mod = parse_ptx(
      ".visible .entry g() { .reg .pred %p<2>; @!%p1 bra END;\nEND: ret; }");
  const Instruction& bra = mod.kernels.front().instructions.front();
  EXPECT_TRUE(bra.guard_negated);
  EXPECT_EQ(bra.guard, "%p1");
}

TEST(Parser, FloatImmediates) {
  const PtxModule mod = parse_ptx(
      ".visible .entry f() { .reg .f32 %f<3>;"
      " mov.f32 %f1, 0f3F800000; ret; }");
  const auto* imm = std::get_if<ImmOperand>(
      &mod.kernels.front().instructions.front().srcs.front());
  ASSERT_NE(imm, nullptr);
  EXPECT_TRUE(imm->is_float);
  EXPECT_FLOAT_EQ(static_cast<float>(imm->value), 1.0f);
}

TEST(Parser, SharedDeclaration) {
  const PtxModule mod = parse_ptx(
      ".visible .entry s() { .shared .align 4 .b8 smem[2048]; ret; }");
  EXPECT_EQ(mod.kernels.front().shared_bytes, 2048);
}

TEST(Parser, GeneratedLibraryRoundTripsExactly) {
  const PtxModule original = CodeGenerator::kernel_library();
  const std::string text1 = original.to_ptx();
  const PtxModule reparsed = parse_ptx(text1);
  ASSERT_EQ(reparsed.kernels.size(), original.kernels.size());
  // Printing the reparsed module reproduces the text byte-for-byte:
  // the strongest round-trip guarantee.
  EXPECT_EQ(reparsed.to_ptx(), text1);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_ptx(".version 7.0\n.target sm_70\nbogus!");
    FAIL() << "expected parse error";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownOpcode) {
  EXPECT_THROW(
      parse_ptx(".visible .entry b() { frobnicate.u32 %r1, %r2; ret; }"),
      CheckError);
}

TEST(Parser, RejectsMissingType) {
  EXPECT_THROW(parse_ptx(".visible .entry b() { add %r1, %r2, %r3; ret; }"),
               CheckError);
}

TEST(Parser, RejectsBadCompare) {
  EXPECT_THROW(
      parse_ptx(".visible .entry b() { setp.zz.u32 %p1, %r1, %r2; ret; }"),
      CheckError);
}

TEST(Parser, ErrorsCarryLineAndColumn) {
  try {
    parse_ptx(".version 7.0\n.target sm_70\n   bogus!");
    FAIL() << "expected parse error";
  } catch (const InputRejected& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("col"), std::string::npos) << what;
  }
}

TEST(Parser, TruncatedInputIsTypedNotOutOfRange) {
  // Every prefix of a valid module must reject with InputRejected (or
  // parse) — never escape as std::out_of_range / std::length_error.
  const std::string text =
      ".visible .entry k(\n"
      "  .param .u32 p_n\n"
      ")\n"
      "{\n"
      "  .reg .u32 %r<4>;\n"
      "  ld.param.u32 %r2, [p_n];\n"
      "  @%p1 bra EXIT;\n"
      "EXIT:\n"
      "  ret;\n"
      "}\n";
  for (std::size_t len = 0; len < text.size(); ++len) {
    try {
      (void)parse_ptx(text.substr(0, len));
    } catch (const CheckError&) {
      // typed rejection: fine
    }
  }
}

TEST(Parser, UnterminatedConstructsNameTheProblem) {
  try {
    parse_ptx(".visible .entry k( .param .u32 p_n");
    FAIL() << "expected parse error";
  } catch (const InputRejected& e) {
    EXPECT_NE(std::string(e.what()).find("unterminated parameter list"),
              std::string::npos)
        << e.what();
  }
  try {
    parse_ptx(".visible .entry k() { ret;");
    FAIL() << "expected parse error";
  } catch (const InputRejected& e) {
    EXPECT_NE(std::string(e.what()).find("unterminated kernel body"),
              std::string::npos)
        << e.what();
  }
}

TEST(Parser, LimitsBoundKernelAndInstructionCounts) {
  InputLimits limits = InputLimits::defaults();
  limits.max_kernels = 1;
  EXPECT_THROW(parse_ptx(".visible .entry a() { ret; }\n"
                         ".visible .entry b() { ret; }\n",
                         limits),
               LimitExceeded);

  limits = InputLimits::defaults();
  limits.max_instructions = 2;
  EXPECT_THROW(parse_ptx(".visible .entry a() {\n"
                         "  .reg .u32 %r<4>;\n"
                         "  add.u32 %r1, %r2, %r3;\n"
                         "  add.u32 %r1, %r2, %r3;\n"
                         "  ret;\n"
                         "}\n",
                         limits),
               LimitExceeded);

  limits = InputLimits::defaults();
  limits.max_ptx_bytes = 8;
  EXPECT_THROW(parse_ptx(".visible .entry a() { ret; }", limits),
               LimitExceeded);
}

}  // namespace
}  // namespace gpuperf::ptx
