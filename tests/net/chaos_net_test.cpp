// Network-layer chaos: every `net.*` syscall fault is driven against a
// live TcpServer and the contract of docs/ROBUSTNESS.md is asserted —
// a fault produces a typed client error or a clean disconnect, never a
// hang, a crash, or a corrupted response, and the matching counters
// move.  Also covers the client-side failover/hedging stack, which
// must complete 100% of requests while one endpoint is down.
//
// Runs under `ctest -R chaos` next to the session-level chaos suite.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "net/socket.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace gpuperf::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now() - start)
      .count();
}

bool has(const std::string& body, const std::string& needle) {
  return body.find(needle) != std::string::npos;
}

ServeOptions tiny_options() {
  ServeOptions options;
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  options.n_threads = 2;
  return options;
}

ServeSession& shared_session() {
  static ServeSession session(tiny_options());
  return session;
}

/// Raw loopback connection that bypasses the net::io shim entirely, so
/// armed faults are consumed by the server side only — keeps the tests
/// deterministic about which peer a fault hits.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    timeval tv{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  int fd() const { return fd_; }

  void send_bytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Read up to `n` newline-terminated responses; stops early on EOF
  /// or reset, so a clean disconnect yields fewer lines, not a hang.
  std::vector<std::string> read_lines(std::size_t n) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < n) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        lines.push_back(buffer.substr(0, nl));
        buffer.erase(0, nl + 1);
        continue;
      }
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(got));
    }
    return lines;
  }

 private:
  int fd_ = -1;
};

/// A port that refuses connections: bind an ephemeral listener, note
/// the port, close it.
int dead_port() {
  const int fd = net::listen_tcp("127.0.0.1", 0, 1);
  const int port = net::bound_port(fd);
  ::close(fd);
  return port;
}

std::string stats_body(int port) {
  TcpClient client("127.0.0.1", port);
  return client.request("stats");
}

// ---------------------------------------------------------------------
// Endpoint parsing and failover (no fault injection required).

TEST(Endpoints, ParsesHostPortList) {
  const std::vector<Endpoint> eps =
      parse_endpoints("127.0.0.1:7070, 10.0.0.2:8080");
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 7070);
  EXPECT_EQ(eps[1].host, "10.0.0.2");
  EXPECT_EQ(eps[1].port, 8080);
}

TEST(Endpoints, RejectsMalformedEntries) {
  EXPECT_THROW(parse_endpoints(""), CheckError);
  EXPECT_THROW(parse_endpoints("no-port"), CheckError);
  EXPECT_THROW(parse_endpoints("host:0"), CheckError);
  EXPECT_THROW(parse_endpoints("host:99999"), CheckError);
  EXPECT_THROW(parse_endpoints("host:abc"), CheckError);
}

TEST(Failover, CompletesEveryRequestWithOneEndpointDown) {
  TcpServer server(shared_session());
  server.start();
  const int down = dead_port();

  FailoverClient::Options options;
  options.retry.base_backoff_ms = 10;
  options.endpoint_failure_threshold = 2;
  options.endpoint_cooldown_ms = 60000;  // stays open for the test
  FailoverClient client(
      parse_endpoints("127.0.0.1:" + std::to_string(down) + ",127.0.0.1:" +
                      std::to_string(server.port())),
      options);

  // 100% completion is the acceptance bar: the dead endpoint costs at
  // most two failed connects before its breaker opens and every later
  // request goes straight to the live one.
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(has(client.request("ping"), "\"ok\":true")) << i;

  const FailoverClient::EndpointHealth down_health = client.health(0);
  EXPECT_EQ(down_health.failures, 2u);
  EXPECT_TRUE(down_health.open);
  EXPECT_EQ(client.health(1).failures, 0u);
  server.stop();
}

TEST(Failover, HedgedRequestWinsOnTheHealthyEndpoint) {
  TcpServer server(shared_session());
  server.start();
  const int down = dead_port();

  FailoverClient::Options options;
  options.retry.base_backoff_ms = 10;
  options.hedge = true;
  options.hedge_delay_ms = 100;
  FailoverClient client(
      parse_endpoints("127.0.0.1:" + std::to_string(down) + ",127.0.0.1:" +
                      std::to_string(server.port())),
      options);

  const auto start = Clock::now();
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(has(client.request("ping"), "\"ok\":true")) << i;
  // A refused primary wakes the hedge immediately — five requests must
  // not cost five full hedge delays plus backoff ceilings.
  EXPECT_LT(ms_since(start), 5000);
  server.stop();
}

#ifdef GPUPERF_FAULT_INJECTION

// ---------------------------------------------------------------------
// Injected syscall faults against a live server.

class ChaosNet : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(ChaosNet, ReadResetClosesTheConnectionNotTheServer) {
  TcpServer server(shared_session());
  server.start();
  RawConn victim(server.port());
  fault::arm_from_spec("net.read=throw*1");
  victim.send_bytes("ping\n");
  // The injected ECONNRESET kills this connection cleanly...
  EXPECT_TRUE(victim.read_lines(1).empty());
  // ...and the server keeps serving new ones.
  EXPECT_TRUE(has(stats_body(server.port()), "\"ok\":true"));
  server.stop();
}

TEST_F(ChaosNet, WriteEpipeClosesTheConnectionNotTheServer) {
  TcpServer server(shared_session());
  server.start();
  RawConn victim(server.port());
  fault::arm_from_spec("net.write=throw*1");
  victim.send_bytes("ping\n");
  EXPECT_TRUE(victim.read_lines(1).empty());
  EXPECT_TRUE(has(stats_body(server.port()), "\"ok\":true"));
  server.stop();
}

TEST_F(ChaosNet, EintrStormOnReadIsRetriedTransparently) {
  TcpServer server(shared_session());
  server.start();
  RawConn conn(server.port());
  fault::arm_from_spec("net.read=timeout*4");  // four EINTRs, then real
  conn.send_bytes("ping\n");
  const std::vector<std::string> lines = conn.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has(lines[0], "\"ok\":true")) << lines[0];
  EXPECT_EQ(fault::hits("net.read"), 4u);
  server.stop();
}

TEST_F(ChaosNet, ShortReadsAndWritesNeverCorruptResponses) {
  TcpServer server(shared_session());
  server.start();
  RawConn conn(server.port());
  // Every transfer limps along one byte at a time for a while; the
  // request must still parse and the response arrive byte-exact.
  fault::arm_from_spec("net.read=corrupt*8;net.write=corrupt*8");
  conn.send_bytes("ping\nping\n");
  const std::vector<std::string> lines = conn.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(has(line, "\"ok\":true")) << line;
    EXPECT_TRUE(has(line, "\"endpoint\":\"ping\"")) << line;
  }
  EXPECT_GE(fault::hits("net.read"), 1u);
  EXPECT_GE(fault::hits("net.write"), 1u);
  server.stop();
}

TEST_F(ChaosNet, AcceptEmfileSacrificesTheConnectionAndRecovers) {
  TcpServer server(shared_session());
  server.start();
  fault::arm_from_spec("net.accept=throw*1");  // forced EMFILE
  {
    // The EMFILE victim is accepted on the spare fd and closed
    // politely — a clean disconnect, not a listener wedge.
    RawConn victim(server.port());
    victim.send_bytes("ping\n");
    EXPECT_TRUE(victim.read_lines(1).empty());
  }
  const std::string stats = stats_body(server.port());
  EXPECT_TRUE(has(stats, "\"ok\":true"));
  EXPECT_TRUE(has(stats, "\"accept_emfile\":1")) << stats;
  server.stop();
}

TEST_F(ChaosNet, ConnectFaultsAreTypedAndExhaustedByRetries) {
  TcpServer server(shared_session());
  server.start();
  fault::arm_from_spec("net.connect=throw*2");

  FailoverClient::Options options;
  options.retry.attempts = 4;
  options.retry.base_backoff_ms = 10;
  FailoverClient client(
      parse_endpoints("127.0.0.1:" + std::to_string(server.port())),
      options);
  // Two injected ECONNREFUSEDs are eaten by the retry budget.
  EXPECT_TRUE(has(client.request("ping"), "\"ok\":true"));
  EXPECT_EQ(fault::hits("net.connect"), 2u);
  server.stop();
}

TEST_F(ChaosNet, SlowLorisDripFeederIsKilledDespiteActivity) {
  TcpServer::Options options;
  options.read_progress_timeout_ms = 150;
  TcpServer server(shared_session(), options);
  server.start();

  RawConn loris(server.port());
  const auto start = Clock::now();
  bool killed = false;
  // Drip one byte of a never-completing request every 40 ms: each drip
  // is fresh activity (which defeats idle reaping), but none of it
  // completes a request, so the read-progress deadline must fire.
  for (int i = 0; i < 200 && !killed; ++i) {
    if (::send(loris.fd(), "p", 1, MSG_NOSIGNAL) < 0) {
      killed = true;
      break;
    }
    char c;
    const ssize_t r = ::recv(loris.fd(), &c, 1, MSG_DONTWAIT);
    if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_TRUE(killed);
  EXPECT_LT(ms_since(start), 5000);

  const std::string stats = stats_body(server.port());
  EXPECT_TRUE(has(stats, "\"slow_loris_closed\":1")) << stats;
  server.stop();
}

TEST_F(ChaosNet, BackpressuredConnectionIsBoundedAndClosed) {
  TcpServer::Options options;
  options.max_output_buffer = 64;  // any real response overflows this
  TcpServer server(shared_session(), options);
  server.start();

  RawConn victim(server.port());
  // Force one spurious EAGAIN on the response write: the output buffer
  // is left holding the whole (oversized) response, which must trip
  // the bound instead of growing without limit.
  fault::arm_from_spec("net.write=delay:1*1");
  victim.send_bytes("stats\n");
  EXPECT_TRUE(victim.read_lines(1).empty());

  const std::string stats = stats_body(server.port());
  EXPECT_TRUE(has(stats, "\"backpressure_closed\":1")) << stats;
  server.stop();
}

TEST_F(ChaosNet, SlowReadTripsTheLoopWatchdogButAnswers) {
  TcpServer server(shared_session());
  server.start();
  RawConn conn(server.port());
  // The loop thread stalls 1.2 s inside the read syscall (past the 1 s
  // watchdog threshold), then the request proceeds normally.
  fault::arm_from_spec("net.read=delay:1200*1");
  conn.send_bytes("ping\n");
  const std::vector<std::string> lines = conn.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has(lines[0], "\"ok\":true")) << lines[0];

  TcpClient client("127.0.0.1", server.port());
  EXPECT_TRUE(has(client.request("stats"), "\"loop_stalls\":1"));
  // The heartbeat recovered with the loop, so readiness is back.
  EXPECT_TRUE(has(client.request("ready"), "\"ready\":true"));
  server.stop();
}

#endif  // GPUPERF_FAULT_INJECTION

// ---------------------------------------------------------------------
// health/ready over both framings.

TEST(HealthReady, AnswersOnBothProtocols) {
  TcpServer server(shared_session());
  server.start();
  for (const bool binary : {false, true}) {
    TcpClient::Options options;
    options.binary = binary;
    TcpClient client("127.0.0.1", server.port(), options);
    const std::string health = client.request("health");
    EXPECT_TRUE(has(health, "\"status\":\"ok\"")) << health;
    EXPECT_TRUE(has(health, "\"uptime_ms\":")) << health;
    const std::string ready = client.request("ready");
    EXPECT_TRUE(has(ready, "\"ready\":true")) << ready;
    EXPECT_TRUE(has(ready, "\"reasons\":[]")) << ready;
  }
  server.stop();
}

TEST(HealthReady, StatsExposeTheChaosCounters) {
  TcpServer server(shared_session());
  server.start();
  const std::string stats = stats_body(server.port());
  for (const char* counter :
       {"\"slow_loris_closed\":", "\"backpressure_closed\":",
        "\"loop_stalls\":", "\"spare_fd_unavailable\":",
        "\"breaker_open\":", "\"breaker_half_open\":",
        "\"breaker_fast_fail\":"}) {
    EXPECT_TRUE(has(stats, counter)) << counter << " missing in " << stats;
  }
  server.stop();
}

}  // namespace
}  // namespace gpuperf::serve
