// POSIX socket helpers (net/socket.hpp): listener setup round-trips,
// descriptive failures on a taken port, the nonblocking/CLOEXEC flags
// the event loop depends on, and the EMFILE spare fd.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "common/check.hpp"
#include "net/socket.hpp"

namespace gpuperf::net {
namespace {

TEST(Socket, EphemeralPortRoundTripsThroughBoundPort) {
  const int fd = listen_tcp("127.0.0.1", 0, 8);
  ASSERT_GE(fd, 0);
  const int port = bound_port(fd);
  EXPECT_GT(port, 0);
  EXPECT_LE(port, 65535);

  // The reported port really is listening: a loopback connect succeeds.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  ::close(client);
  ::close(fd);
}

TEST(Socket, TakenPortFailsWithThePortInTheMessage) {
  const int fd = listen_tcp("127.0.0.1", 0, 8);
  ASSERT_GE(fd, 0);
  const int port = bound_port(fd);
  try {
    const int second = listen_tcp("127.0.0.1", port, 8);
    ::close(second);
    FAIL() << "second listen on taken port " << port << " succeeded";
  } catch (const CheckError& e) {
    // The operator needs to know WHICH port was taken.
    EXPECT_NE(std::string(e.what()).find(std::to_string(port)),
              std::string::npos)
        << e.what();
  }
  ::close(fd);
}

TEST(Socket, ListenerIsNonblockingAndCloseOnExec) {
  const int fd = listen_tcp("127.0.0.1", 0, 8);
  ASSERT_GE(fd, 0);
  EXPECT_NE(::fcntl(fd, F_GETFL, 0) & O_NONBLOCK, 0)
      << "a blocking listener would wedge the event loop on accept";
  EXPECT_NE(::fcntl(fd, F_GETFD, 0) & FD_CLOEXEC, 0)
      << "the listener must not leak into exec'd children";
  ::close(fd);
}

TEST(Socket, SetNonblockingFlipsTheFlag) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_EQ(::fcntl(fds[0], F_GETFL, 0) & O_NONBLOCK, 0);
  set_nonblocking(fds[0]);
  EXPECT_NE(::fcntl(fds[0], F_GETFL, 0) & O_NONBLOCK, 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Socket, SpareFdOpensAndReopensAfterSacrifice) {
  const int spare = open_spare_fd();
  ASSERT_GE(spare, 0);
  // The EMFILE recovery path closes the spare to free a slot, then
  // reopens it — both legs must work repeatedly.
  ::close(spare);
  const int again = open_spare_fd();
  ASSERT_GE(again, 0);
  EXPECT_NE(::fcntl(again, F_GETFD, 0), -1) << "reopened fd is live";
  ::close(again);
}

}  // namespace
}  // namespace gpuperf::net
