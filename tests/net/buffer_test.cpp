#include "net/buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace gpuperf::net {
namespace {

TEST(Buffer, AppendAndConsume) {
  Buffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.append(std::string_view("hello "));
  buffer.append(std::string_view("world"));
  EXPECT_EQ(buffer.view(), "hello world");
  buffer.consume(6);
  EXPECT_EQ(buffer.view(), "world");
  buffer.consume(5);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(Buffer, ConsumeAllResetsHead) {
  Buffer buffer;
  buffer.append(std::string_view("abc"));
  buffer.consume(3);
  // After a full consume new appends start at the front again.
  buffer.append(std::string_view("xy"));
  EXPECT_EQ(buffer.view(), "xy");
}

TEST(Buffer, ReserveCommitPair) {
  Buffer buffer;
  char* dst = buffer.reserve(8);
  std::memcpy(dst, "12345678", 8);
  buffer.commit(5);  // committed less than reserved
  EXPECT_EQ(buffer.view(), "12345");
  // A second reserve/commit appends after the committed bytes.
  dst = buffer.reserve(4);
  std::memcpy(dst, "abcd", 4);
  buffer.commit(4);
  EXPECT_EQ(buffer.view(), "12345abcd");
}

TEST(Buffer, CompactsAfterLargeConsumedPrefix) {
  Buffer buffer;
  const std::string big(16384, 'a');
  buffer.append(std::string_view(big));
  buffer.append(std::string_view("tail"));
  buffer.consume(big.size());  // head well past the compact threshold
  EXPECT_EQ(buffer.view(), "tail");
  // Everything still works after the internal compaction.
  buffer.append(std::string_view("!"));
  EXPECT_EQ(buffer.view(), "tail!");
  buffer.consume(5);
  EXPECT_TRUE(buffer.empty());
}

TEST(Buffer, InterleavedGrowth) {
  Buffer buffer;
  std::string expect;
  for (int i = 0; i < 200; ++i) {
    const std::string piece(17, static_cast<char>('a' + i % 26));
    buffer.append(std::string_view(piece));
    expect += piece;
    if (i % 3 == 0) {
      buffer.consume(5);
      expect.erase(0, 5);
    }
    ASSERT_EQ(buffer.view(), expect) << "iteration " << i;
  }
}

TEST(Buffer, ClearEmpties) {
  Buffer buffer;
  buffer.append(std::string_view("data"));
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  buffer.append(std::string_view("next"));
  EXPECT_EQ(buffer.view(), "next");
}

}  // namespace
}  // namespace gpuperf::net
