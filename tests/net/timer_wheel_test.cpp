#include "net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gpuperf::net {
namespace {

TEST(TimerWheel, FiresAtDeadline) {
  TimerWheel wheel(10, 64);
  wheel.schedule(1, 100);
  EXPECT_TRUE(wheel.armed(1));
  EXPECT_TRUE(wheel.expire(90).empty());
  const std::vector<TimerWheel::Id> fired = wheel.expire(100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_FALSE(wheel.armed(1));
  EXPECT_TRUE(wheel.expire(200).empty());  // one-shot
}

TEST(TimerWheel, CancelSuppressesFire) {
  TimerWheel wheel(10, 64);
  wheel.schedule(7, 50);
  wheel.cancel(7);
  EXPECT_FALSE(wheel.armed(7));
  EXPECT_TRUE(wheel.expire(1000).empty());
}

TEST(TimerWheel, RescheduleMovesDeadline) {
  TimerWheel wheel(10, 64);
  wheel.schedule(3, 50);
  wheel.schedule(3, 300);  // re-arm later; stale slot entry decays
  EXPECT_TRUE(wheel.expire(100).empty());
  const std::vector<TimerWheel::Id> fired = wheel.expire(300);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(TimerWheel, ManyTimersAcrossSlots) {
  TimerWheel wheel(10, 16);
  for (TimerWheel::Id id = 0; id < 100; ++id)
    wheel.schedule(id, static_cast<std::int64_t>(10 * (id + 1)));
  EXPECT_EQ(wheel.armed_count(), 100u);
  // Advance halfway: timers 0..49 (deadlines 10..500) fire.
  std::vector<TimerWheel::Id> fired = wheel.expire(500);
  EXPECT_EQ(fired.size(), 50u);
  // And the rest on the second advance.
  std::vector<TimerWheel::Id> rest = wheel.expire(1000);
  EXPECT_EQ(rest.size(), 50u);
  EXPECT_EQ(wheel.armed_count(), 0u);
  fired.insert(fired.end(), rest.begin(), rest.end());
  std::sort(fired.begin(), fired.end());
  for (TimerWheel::Id id = 0; id < 100; ++id) EXPECT_EQ(fired[id], id);
}

TEST(TimerWheel, DeadlineBeyondOneRevolution) {
  // 8 slots x 10ms tick = 80ms revolution; a 250ms deadline must survive
  // multiple revolutions of its slot being scanned.
  TimerWheel wheel(10, 8);
  wheel.schedule(42, 250);
  std::int64_t now = 0;
  while (now < 240) {
    now += 30;
    EXPECT_TRUE(wheel.expire(now).empty()) << "now=" << now;
  }
  const std::vector<TimerWheel::Id> fired = wheel.expire(260);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 42u);
}

TEST(TimerWheel, LargeJumpFiresEverything) {
  TimerWheel wheel(10, 8);
  for (TimerWheel::Id id = 0; id < 20; ++id)
    wheel.schedule(id, static_cast<std::int64_t>(25 * (id + 1)));
  // A single big jump (clock stall) past every deadline fires them all,
  // even though the jump spans many revolutions.
  EXPECT_EQ(wheel.expire(10000).size(), 20u);
}

TEST(TimerWheel, NonMonotonicNowIsClamped) {
  TimerWheel wheel(10, 8);
  wheel.schedule(1, 100);
  EXPECT_TRUE(wheel.expire(90).empty());
  EXPECT_TRUE(wheel.expire(50).empty());  // time never runs backwards
  EXPECT_EQ(wheel.expire(110).size(), 1u);
}

}  // namespace
}  // namespace gpuperf::net
