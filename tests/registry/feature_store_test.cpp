#include "registry/feature_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cnn/zoo.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {
namespace {

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/gpuperf_fs_" + name;
  fs::remove_all(root);
  return root;
}

core::ModelFeatures sample_features() {
  core::ModelFeatures f;
  f.model_name = "alexnet";
  f.executed_instructions = 123456789;
  f.trainable_params = 62378344;
  f.macs = 714188480;
  f.neurons = 650000;
  f.weighted_layers = 8;
  f.dca_seconds = 0.125;
  return f;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(FeatureStore, MissOnUnknownTopology) {
  FeatureStore store(fresh_root("miss"));
  EXPECT_EQ(store.get(0x1234), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(FeatureStore, PutGetRoundTrip) {
  FeatureStore store(fresh_root("roundtrip"));
  const core::ModelFeatures f = sample_features();
  store.put(0xabcd, f);
  EXPECT_EQ(store.size(), 1u);

  const auto back = store.get(0xabcd);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->model_name, f.model_name);
  EXPECT_EQ(back->executed_instructions, f.executed_instructions);
  EXPECT_EQ(back->trainable_params, f.trainable_params);
  EXPECT_EQ(back->macs, f.macs);
  EXPECT_EQ(back->neurons, f.neurons);
  EXPECT_EQ(back->weighted_layers, f.weighted_layers);
  EXPECT_DOUBLE_EQ(back->dca_seconds, f.dca_seconds);
}

TEST(FeatureStore, OverwriteReplacesEntry) {
  FeatureStore store(fresh_root("overwrite"));
  core::ModelFeatures f = sample_features();
  store.put(0xabcd, f);
  f.executed_instructions = 42;
  store.put(0xabcd, f);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(0xabcd)->executed_instructions, 42);
}

TEST(FeatureStore, EntriesSurviveReopen) {
  const std::string root = fresh_root("reopen");
  {
    FeatureStore store(root);
    store.put(0x1111, sample_features());
    store.put(0x2222, sample_features());
  }
  FeatureStore reopened(root);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.recovered_records(), 2u);
  EXPECT_EQ(reopened.torn_tail_bytes(), 0u);
  EXPECT_NE(reopened.get(0x1111), nullptr);
  EXPECT_NE(reopened.get(0x2222), nullptr);
}

TEST(FeatureStore, TornTailIsTruncatedOnOpen) {
  const std::string root = fresh_root("torn");
  std::string intact;
  {
    FeatureStore store(root);
    store.put(0x1111, sample_features());
    intact = read_file(store.journal_path());
    store.put(0x2222, sample_features());
  }
  const fs::path journal = fs::path(root) / "store.journal";
  // Simulate a crash mid-append: keep the first record whole, cut the
  // second off partway through its payload.
  std::string bytes = read_file(journal);
  ASSERT_GT(bytes.size(), intact.size() + 12);
  write_file(journal, bytes.substr(0, intact.size() + 12 + 5));

  FeatureStore store(root);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.recovered_records(), 1u);
  EXPECT_EQ(store.torn_tail_bytes(), 17u);
  EXPECT_NE(store.get(0x1111), nullptr);
  EXPECT_EQ(store.get(0x2222), nullptr);
  // The torn bytes are gone from disk; the next put appends cleanly
  // and survives another reopen.
  EXPECT_EQ(fs::file_size(journal), intact.size());
  store.put(0x2222, sample_features());
  FeatureStore again(root);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.torn_tail_bytes(), 0u);
}

TEST(FeatureStore, BitFlippedRecordIsDroppedWithEverythingAfterIt) {
  const std::string root = fresh_root("bitflip");
  std::string first;
  {
    FeatureStore store(root);
    store.put(0x1111, sample_features());
    first = read_file(store.journal_path());
    store.put(0x2222, sample_features());
  }
  const fs::path journal = fs::path(root) / "store.journal";
  std::string bytes = read_file(journal);
  // Flip one payload byte inside the second record: its CRC breaks, so
  // replay stops at the end of the first record.
  bytes[first.size() + 20] =
      static_cast<char>(bytes[first.size() + 20] ^ 0x01);
  write_file(journal, bytes);

  FeatureStore store(root);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.get(0x1111), nullptr);
  EXPECT_EQ(store.get(0x2222), nullptr);  // a miss, never an error
  EXPECT_GT(store.torn_tail_bytes(), 0u);
}

TEST(FeatureStore, GarbageJournalRecoversToEmpty) {
  const std::string root = fresh_root("garbage");
  fs::create_directories(root);
  write_file(fs::path(root) / "store.journal",
             "this is not a journal at all");
  FeatureStore store(root);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.recovered_records(), 0u);
  EXPECT_GT(store.torn_tail_bytes(), 0u);
  // Self-heals: the store is writable again after recovery.
  store.put(0xabcd, sample_features());
  FeatureStore again(root);
  EXPECT_EQ(again.size(), 1u);
}

TEST(FeatureStore, LegacyEntriesMigrateIntoTheJournal) {
  const std::string root = fresh_root("legacy");
  fs::create_directories(root);
  // A legacy one-file-per-entry store: payload + fnv1a64 checksum line.
  const std::string body =
      "gpuperf-features v1\n"
      "topology " + hex64(0x1111) + "\n"
      "model alexnet\n"
      "executed_instructions 123456789\n"
      "trainable_params 62378344\n"
      "macs 714188480\n"
      "neurons 650000\n"
      "weighted_layers 8\n"
      "dca_seconds 0.125\n";
  write_file(fs::path(root) / (hex64(0x1111) + ".features"),
             body + "checksum " + hex64(fnv1a64(body)) + "\n");

  FeatureStore store(root);
  EXPECT_EQ(store.migrated_entries(), 1u);
  ASSERT_NE(store.get(0x1111), nullptr);
  EXPECT_EQ(store.get(0x1111)->executed_instructions, 123456789);
  // The legacy file is gone; the entry now lives in the journal.
  EXPECT_FALSE(fs::exists(fs::path(root) / (hex64(0x1111) + ".features")));
  FeatureStore again(root);
  EXPECT_EQ(again.recovered_records(), 1u);
  EXPECT_NE(again.get(0x1111), nullptr);
}

TEST(FeatureStore, CorruptLegacyEntryIsLeftBehindAsAMiss) {
  const std::string root = fresh_root("legacy_corrupt");
  fs::create_directories(root);
  const fs::path entry = fs::path(root) / (hex64(0x2222) + ".features");
  write_file(entry, "gpuperf-features v1\ntruncated, no checksum\n");
  FeatureStore store(root);
  EXPECT_EQ(store.migrated_entries(), 0u);
  EXPECT_EQ(store.get(0x2222), nullptr);
  // Not deleted: the damaged file stays for a human to inspect.
  EXPECT_TRUE(fs::exists(entry));
}

TEST(FeatureStore, CompactDropsOverwrittenRecords) {
  const std::string root = fresh_root("compact");
  FeatureStore store(root);
  core::ModelFeatures f = sample_features();
  for (int i = 0; i < 8; ++i) {
    f.executed_instructions = i;
    store.put(0xabcd, f);
  }
  store.put(0x9999, f);
  const auto before = fs::file_size(store.journal_path());
  store.compact();
  const auto after = fs::file_size(store.journal_path());
  EXPECT_LT(after, before);
  EXPECT_EQ(store.get(0xabcd)->executed_instructions, 7);

  FeatureStore again(root);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.recovered_records(), 2u);
  EXPECT_EQ(again.get(0xabcd)->executed_instructions, 7);
}

TEST(FeatureStore, AggregateSumsLiveEntries) {
  FeatureStore store(fresh_root("aggregate"));
  core::ModelFeatures f = sample_features();
  f.executed_instructions = 100;
  f.trainable_params = 10;
  store.put(0x1, f);
  f.executed_instructions = 200;
  f.trainable_params = 20;
  store.put(0x2, f);
  const auto agg = store.aggregate();
  EXPECT_EQ(agg.entries, 2u);
  EXPECT_EQ(agg.executed_instruction_sum, 300);
  EXPECT_EQ(agg.trainable_param_sum, 30);
}

TEST(FeatureStore, OversizedRecordIsRejectedTyped) {
  InputLimits limits = InputLimits::defaults();
  limits.max_store_record_bytes = 64;
  FeatureStore store(fresh_root("oversized"), limits);
  core::ModelFeatures f = sample_features();
  f.model_name = std::string(256, 'x');
  EXPECT_THROW(store.put(0xabcd, f), LimitExceeded);
  EXPECT_EQ(store.size(), 0u);
}

TEST(FeatureStore, TopologyHashSeparatesModels) {
  const auto h1 = FeatureStore::topology_hash(cnn::zoo::build("alexnet"));
  const auto h2 = FeatureStore::topology_hash(cnn::zoo::build("vgg16"));
  const auto h1_again =
      FeatureStore::topology_hash(cnn::zoo::build("alexnet"));
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, h1_again);
}

}  // namespace
}  // namespace gpuperf::registry
