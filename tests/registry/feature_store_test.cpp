#include "registry/feature_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cnn/zoo.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {
namespace {

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/gpuperf_fs_" + name;
  fs::remove_all(root);
  return root;
}

core::ModelFeatures sample_features() {
  core::ModelFeatures f;
  f.model_name = "alexnet";
  f.executed_instructions = 123456789;
  f.trainable_params = 62378344;
  f.macs = 714188480;
  f.neurons = 650000;
  f.weighted_layers = 8;
  f.dca_seconds = 0.125;
  return f;
}

TEST(FeatureStore, MissOnUnknownTopology) {
  FeatureStore store(fresh_root("miss"));
  EXPECT_EQ(store.get(0x1234), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(FeatureStore, PutGetRoundTrip) {
  FeatureStore store(fresh_root("roundtrip"));
  const core::ModelFeatures f = sample_features();
  store.put(0xabcd, f);
  EXPECT_EQ(store.size(), 1u);

  const auto back = store.get(0xabcd);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->model_name, f.model_name);
  EXPECT_EQ(back->executed_instructions, f.executed_instructions);
  EXPECT_EQ(back->trainable_params, f.trainable_params);
  EXPECT_EQ(back->macs, f.macs);
  EXPECT_EQ(back->neurons, f.neurons);
  EXPECT_EQ(back->weighted_layers, f.weighted_layers);
  EXPECT_DOUBLE_EQ(back->dca_seconds, f.dca_seconds);
}

TEST(FeatureStore, OverwriteReplacesEntry) {
  FeatureStore store(fresh_root("overwrite"));
  core::ModelFeatures f = sample_features();
  store.put(0xabcd, f);
  f.executed_instructions = 42;
  store.put(0xabcd, f);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(0xabcd)->executed_instructions, 42);
}

TEST(FeatureStore, CorruptEntryReadsAsMiss) {
  const std::string root = fresh_root("corrupt");
  FeatureStore store(root);
  store.put(0xabcd, sample_features());

  const fs::path entry = fs::path(root) / (hex64(0xabcd) + ".features");
  ASSERT_TRUE(fs::exists(entry));
  {
    std::ifstream in(entry);
    std::ostringstream os;
    os << in.rdbuf();
    std::string text = os.str();
    text[text.find("123456789")] = '9';  // flip a digit: checksum breaks
    std::ofstream out(entry, std::ios::trunc);
    out << text;
  }
  EXPECT_EQ(store.get(0xabcd), nullptr);

  // Truncation is also a miss, not an error.
  {
    std::ofstream out(entry, std::ios::trunc);
    out << "gpuperf-features v1\n";
  }
  EXPECT_EQ(store.get(0xabcd), nullptr);

  // Callers recompute and overwrite: the store self-heals.
  store.put(0xabcd, sample_features());
  EXPECT_NE(store.get(0xabcd), nullptr);
}

TEST(FeatureStore, WrongTopologyInEntryIsMiss) {
  const std::string root = fresh_root("wrong_topo");
  FeatureStore store(root);
  store.put(0x1111, sample_features());
  // Copy the valid entry to a different address: the embedded topology
  // no longer matches the file name, so it must not be served.
  fs::copy_file(fs::path(root) / (hex64(0x1111) + ".features"),
                fs::path(root) / (hex64(0x2222) + ".features"));
  EXPECT_NE(store.get(0x1111), nullptr);
  EXPECT_EQ(store.get(0x2222), nullptr);
}

TEST(FeatureStore, TopologyHashSeparatesModels) {
  const auto h1 = FeatureStore::topology_hash(cnn::zoo::build("alexnet"));
  const auto h2 = FeatureStore::topology_hash(cnn::zoo::build("vgg16"));
  const auto h1_again =
      FeatureStore::topology_hash(cnn::zoo::build("alexnet"));
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, h1_again);
}

}  // namespace
}  // namespace gpuperf::registry
