// Corruption corpus for the durable state (docs/ROBUSTNESS.md
// "Recovery semantics"): bit-flipped and truncated bundles, torn
// feature-store journal tails, and every kill-mid-publish interruption
// point.  The invariant throughout: the last good state keeps loading.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "core/dataset_builder.hpp"
#include "registry/feature_store.hpp"
#include "registry/registry.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {
namespace {

const core::PerformanceEstimator& trained_estimator() {
  static const core::PerformanceEstimator est = [] {
    core::DatasetOptions o;
    o.models = {"alexnet", "mobilenet", "vgg16"};
    o.seed = 7;
    core::PerformanceEstimator e("dt", 42);
    e.train(core::DatasetBuilder(o).build());
    return e;
  }();
  return est;
}

std::string fresh_root(const std::string& name) {
  const std::string root =
      ::testing::TempDir() + "/gpuperf_corrupt_" + name;
  fs::remove_all(root);
  return root;
}

Manifest ok_manifest() {
  Manifest m;
  m.cv_folds = 5;
  m.cv_mape = 10.0;
  m.cv_r2 = 0.9;
  return m;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---- bit-flipped / truncated bundles --------------------------------

TEST(Corruption, BitFlippedLatestBundleFallsBackToLastGood) {
  const std::string root = fresh_root("flip_latest");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), ok_manifest());
  reg.publish(trained_estimator(), ok_manifest());

  const fs::path model = fs::path(root) / "v0002" / "model.txt";
  std::string text = slurp(model);
  text[text.size() / 3] ^= 0x40;
  spit(model, text);

  // A LATEST load quarantines the damaged head and serves v0001.
  const Bundle bundle = reg.load();
  EXPECT_EQ(bundle.version, "v0001");
  EXPECT_EQ(reg.quarantined_total(), 1u);
  EXPECT_EQ(reg.latest_version(), "v0001");
  EXPECT_TRUE(fs::is_directory(fs::path(root) / "quarantine" / "v0002"));
  EXPECT_FALSE(fs::exists(fs::path(root) / "v0002"));
}

TEST(Corruption, TruncatedModelFileFallsBackToLastGood) {
  const std::string root = fresh_root("trunc_model");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), ok_manifest());
  reg.publish(trained_estimator(), ok_manifest());

  const fs::path model = fs::path(root) / "v0002" / "model.txt";
  spit(model, slurp(model).substr(0, 40));

  EXPECT_EQ(reg.load().version, "v0001");
  EXPECT_EQ(reg.quarantined_total(), 1u);
}

TEST(Corruption, TruncatedManifestFallsBackToLastGood) {
  const std::string root = fresh_root("trunc_manifest");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), ok_manifest());
  reg.publish(trained_estimator(), ok_manifest());

  const fs::path manifest = fs::path(root) / "v0002" / "MANIFEST";
  spit(manifest, slurp(manifest).substr(0, 25));

  EXPECT_EQ(reg.load().version, "v0001");
  EXPECT_EQ(reg.quarantined_total(), 1u);
}

TEST(Corruption, EveryBundleCorruptIsATypedError) {
  const std::string root = fresh_root("all_bad");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), ok_manifest());
  reg.publish(trained_estimator(), ok_manifest());
  for (const char* v : {"v0001", "v0002"}) {
    const fs::path model = fs::path(root) / v / "model.txt";
    spit(model, "garbage");
  }
  EXPECT_THROW(reg.load(), BundleCorruptError);
  EXPECT_EQ(reg.quarantined_total(), 2u);
  EXPECT_TRUE(reg.versions().empty());
}

TEST(Corruption, QuarantineNamesNeverCollide) {
  const std::string root = fresh_root("collide");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), ok_manifest());
  spit(fs::path(root) / "v0001" / "model.txt", "garbage");
  EXPECT_THROW(reg.load("v0001"), BundleCorruptError);

  // Publish a fresh v0001 (the registry is empty again) and corrupt it
  // too: the second quarantine must not clobber the first.
  reg.publish(trained_estimator(), ok_manifest());
  spit(fs::path(root) / "v0001" / "model.txt", "more garbage");
  EXPECT_THROW(reg.load("v0001"), BundleCorruptError);
  EXPECT_EQ(reg.quarantined_total(), 2u);
  EXPECT_TRUE(fs::is_directory(fs::path(root) / "quarantine" / "v0001"));
  EXPECT_TRUE(
      fs::is_directory(fs::path(root) / "quarantine" / "v0001-1"));
}

// ---- kill-mid-publish ------------------------------------------------

TEST(Corruption, StaleStagingDirectoryIsSweptOnOpen) {
  const std::string root = fresh_root("staging");
  {
    ModelRegistry reg(root);
    reg.publish(trained_estimator(), ok_manifest());
  }
  // A publish killed before its rename leaves the staged bundle behind.
  fs::create_directories(fs::path(root) / ".staging-v0002");
  spit(fs::path(root) / ".staging-v0002" / "model.txt", "half-written");

  ModelRegistry reg(root);
  EXPECT_FALSE(fs::exists(fs::path(root) / ".staging-v0002"));
  EXPECT_EQ(reg.versions(), std::vector<std::string>{"v0001"});
  EXPECT_EQ(reg.load().version, "v0001");
}

TEST(Corruption, StaleLatestTmpIsSweptOnOpen) {
  const std::string root = fresh_root("latest_tmp");
  {
    ModelRegistry reg(root);
    reg.publish(trained_estimator(), ok_manifest());
  }
  spit(fs::path(root) / "LATEST.tmp", "v9999\n");

  ModelRegistry reg(root);
  EXPECT_FALSE(fs::exists(fs::path(root) / "LATEST.tmp"));
  EXPECT_EQ(reg.load().version, "v0001");
}

TEST(Corruption, KillBetweenBundleRenameAndSetLatestIsRepaired) {
  const std::string root = fresh_root("no_pointer");
  {
    ModelRegistry reg(root);
    reg.publish(trained_estimator(), ok_manifest());
    reg.publish(trained_estimator(), ok_manifest());
  }
  // Crash window: v0002 fully renamed into place, LATEST never updated
  // (here: lost entirely).
  fs::remove(fs::path(root) / "LATEST");

  ModelRegistry reg(root);
  EXPECT_EQ(reg.latest_version(), "v0002");
  EXPECT_EQ(reg.load().version, "v0002");
}

TEST(Corruption, GarbageLatestPointerIsRepairedOnOpen) {
  const std::string root = fresh_root("bad_pointer");
  {
    ModelRegistry reg(root);
    reg.publish(trained_estimator(), ok_manifest());
  }
  spit(fs::path(root) / "LATEST", "!!not-a-version!!\n");

  ModelRegistry reg(root);
  EXPECT_EQ(reg.latest_version(), "v0001");
  EXPECT_EQ(reg.load().version, "v0001");
}

TEST(Corruption, DanglingLatestPointerIsRepairedOnOpen) {
  const std::string root = fresh_root("dangling");
  {
    ModelRegistry reg(root);
    reg.publish(trained_estimator(), ok_manifest());
    reg.publish(trained_estimator(), ok_manifest());
  }
  fs::remove_all(fs::path(root) / "v0002");  // LATEST now dangles

  ModelRegistry reg(root);
  EXPECT_EQ(reg.latest_version(), "v0001");
  EXPECT_EQ(reg.load().version, "v0001");
}

TEST(Corruption, ValidButStaleLatestSurvivesRestart) {
  const std::string root = fresh_root("rollback");
  {
    ModelRegistry reg(root);
    reg.publish(trained_estimator(), ok_manifest());
    reg.publish(trained_estimator(), ok_manifest());
    reg.set_latest("v0001");  // operator rollback
  }
  // A restart must NOT helpfully advance the pointer back to v0002.
  ModelRegistry reg(root);
  EXPECT_EQ(reg.latest_version(), "v0001");
}

// ---- feature-store crash windows ------------------------------------

TEST(Corruption, StoreSurvivesKillMidAppend) {
  const std::string root = fresh_root("store_kill");
  core::ModelFeatures f;
  f.model_name = "alexnet";
  f.executed_instructions = 1000;
  f.trainable_params = 10;
  {
    FeatureStore store(root);
    store.put(0x1, f);
    store.put(0x2, f);
  }
  // Kill mid-append: chop the journal at an arbitrary byte inside the
  // second record.
  const fs::path journal = fs::path(root) / "store.journal";
  const std::string bytes = slurp(journal);
  spit(journal, bytes.substr(0, bytes.size() - 3));

  FeatureStore store(root);
  EXPECT_NE(store.get(0x1), nullptr);
  EXPECT_EQ(store.get(0x2), nullptr);
  EXPECT_EQ(store.recovered_records(), 1u);
  EXPECT_GT(store.torn_tail_bytes(), 0u);
  // The acknowledged prefix stays acknowledged on every later open.
  store.put(0x2, f);
  FeatureStore again(root);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.torn_tail_bytes(), 0u);
}

}  // namespace
}  // namespace gpuperf::registry
