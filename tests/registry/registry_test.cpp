#include "registry/registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "core/dataset_builder.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {
namespace {

const ml::Dataset& tiny_dataset() {
  static const ml::Dataset data = [] {
    core::DatasetOptions o;
    o.models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
    o.seed = 21;
    return core::DatasetBuilder(o).build();
  }();
  return data;
}

const core::PerformanceEstimator& trained_estimator() {
  static const core::PerformanceEstimator est = [] {
    core::PerformanceEstimator e("dt", 42);
    e.train(tiny_dataset());
    return e;
  }();
  return est;
}

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/gpuperf_reg_" + name;
  fs::remove_all(root);
  return root;
}

Manifest manifest_with_mape(double mape) {
  Manifest m;
  m.cv_folds = 5;
  m.cv_mape = mape;
  m.cv_r2 = 0.9;
  return m;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(Registry, StartsEmpty) {
  ModelRegistry reg(fresh_root("empty"));
  EXPECT_TRUE(reg.empty());
  EXPECT_TRUE(reg.versions().empty());
  EXPECT_EQ(reg.latest_version(), "");
  EXPECT_THROW(reg.load(), CheckError);
}

TEST(Registry, PublishLoadRoundTrip) {
  ModelRegistry reg(fresh_root("roundtrip"));
  const std::string version =
      reg.publish(trained_estimator(), manifest_with_mape(10.0));
  EXPECT_EQ(version, "v0001");
  EXPECT_EQ(reg.latest_version(), "v0001");

  Bundle bundle = reg.load();
  EXPECT_EQ(bundle.version, "v0001");
  EXPECT_EQ(bundle.manifest.regressor_id, "dt");
  EXPECT_EQ(bundle.manifest.cv_folds, 5u);
  EXPECT_DOUBLE_EQ(bundle.manifest.cv_mape, 10.0);
  EXPECT_TRUE(bundle.estimator.is_trained());
  for (std::size_t i = 0; i < tiny_dataset().size(); ++i)
    EXPECT_DOUBLE_EQ(bundle.estimator.predict(tiny_dataset().row(i)),
                     trained_estimator().predict(tiny_dataset().row(i)));
}

TEST(Registry, VersionsAscendAndLatestAdvances) {
  ModelRegistry reg(fresh_root("versions"));
  EXPECT_EQ(reg.publish(trained_estimator(), manifest_with_mape(10.0)),
            "v0001");
  EXPECT_EQ(reg.publish(trained_estimator(), manifest_with_mape(9.5)),
            "v0002");
  EXPECT_EQ(reg.versions(),
            (std::vector<std::string>{"v0001", "v0002"}));
  EXPECT_EQ(reg.latest_version(), "v0002");
}

TEST(Registry, GateRefusesMapeRegression) {
  ModelRegistry reg(fresh_root("gate"));
  reg.publish(trained_estimator(), manifest_with_mape(10.0));

  // 15% regresses past 10% + 1pt margin: refused, nothing written.
  EXPECT_THROW(reg.publish(trained_estimator(), manifest_with_mape(15.0)),
               CheckError);
  EXPECT_EQ(reg.versions(), std::vector<std::string>{"v0001"});
  EXPECT_EQ(reg.latest_version(), "v0001");

  // Inside the margin: accepted.
  EXPECT_EQ(reg.publish(trained_estimator(), manifest_with_mape(10.9)),
            "v0002");

  // A wider margin accepts what the default refused.
  PublishOptions wide;
  wide.max_mape_regression = 10.0;
  EXPECT_EQ(reg.publish(trained_estimator(), manifest_with_mape(15.0), wide),
            "v0003");

  // force bypasses the gate entirely.
  PublishOptions forced;
  forced.force = true;
  EXPECT_EQ(
      reg.publish(trained_estimator(), manifest_with_mape(99.0), forced),
      "v0004");
}

TEST(Registry, BundlesWithoutCvMetricsAreNotGated) {
  ModelRegistry reg(fresh_root("nocv"));
  reg.publish(trained_estimator(), manifest_with_mape(10.0));
  Manifest no_cv;  // cv_folds == 0: the gate cannot compare
  EXPECT_EQ(reg.publish(trained_estimator(), no_cv), "v0002");
}

TEST(Registry, RollbackViaSetLatest) {
  ModelRegistry reg(fresh_root("rollback"));
  reg.publish(trained_estimator(), manifest_with_mape(10.0));
  reg.publish(trained_estimator(), manifest_with_mape(9.0));
  EXPECT_EQ(reg.latest_version(), "v0002");

  reg.set_latest("v0001");
  EXPECT_EQ(reg.latest_version(), "v0001");
  EXPECT_EQ(reg.load().version, "v0001");

  EXPECT_THROW(reg.set_latest("v0042"), CheckError);
  EXPECT_THROW(reg.set_latest("not-a-version"), CheckError);
}

TEST(Registry, RejectsCorruptedModelFile) {
  const std::string root = fresh_root("corrupt_model");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), manifest_with_mape(10.0));
  reg.publish(trained_estimator(), manifest_with_mape(9.0));

  const fs::path model = fs::path(root) / "v0002" / "model.txt";
  std::string text = slurp(model);
  text[text.size() / 2] ^= 0x20;  // flip one byte
  spit(model, text);

  // The explicit load throws and moves the damaged bundle aside; a
  // LATEST load then repairs the pointer and serves the last good
  // version instead of failing.
  EXPECT_THROW(reg.load("v0002"), BundleCorruptError);
  EXPECT_EQ(reg.quarantined_total(), 1u);
  EXPECT_TRUE(fs::is_directory(fs::path(root) / "quarantine" / "v0002"));
  EXPECT_EQ(reg.versions(), std::vector<std::string>{"v0001"});
  EXPECT_EQ(reg.load().version, "v0001");
  EXPECT_NO_THROW(reg.load("v0001"));  // siblings stay loadable
}

TEST(Registry, RejectsTruncatedManifest) {
  const std::string root = fresh_root("trunc_manifest");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), manifest_with_mape(10.0));

  const fs::path manifest = fs::path(root) / "v0001" / "MANIFEST";
  const std::string text = slurp(manifest);
  spit(manifest, text.substr(0, text.size() / 3));

  EXPECT_THROW(reg.load("v0001"), CheckError);
}

TEST(Registry, RejectsFeatureSchemaMismatch) {
  const std::string root = fresh_root("schema");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), manifest_with_mape(10.0));

  // Rewrite the schema hash as if the bundle came from another build.
  const fs::path manifest = fs::path(root) / "v0001" / "MANIFEST";
  Manifest m = deserialize_manifest(slurp(manifest));
  m.feature_schema_hash ^= 1;
  spit(manifest, serialize_manifest(m));

  // Incompatible, not corrupt: the bundle must stay in place.
  EXPECT_THROW(reg.load("v0001"), CheckError);
  EXPECT_EQ(reg.quarantined_total(), 0u);
  EXPECT_EQ(reg.versions(), std::vector<std::string>{"v0001"});
}

TEST(Registry, RejectsManifestModelIdMismatch) {
  const std::string root = fresh_root("id_mismatch");
  ModelRegistry reg(root);
  reg.publish(trained_estimator(), manifest_with_mape(10.0));

  const fs::path manifest = fs::path(root) / "v0001" / "MANIFEST";
  Manifest m = deserialize_manifest(slurp(manifest));
  m.regressor_id = "rf";
  spit(manifest, serialize_manifest(m));

  EXPECT_THROW(reg.load("v0001"), CheckError);
}

TEST(Registry, ManifestSerializationRoundTrips) {
  Manifest m;
  m.regressor_id = "xgb";
  m.feature_schema_hash = 0xdeadbeefcafef00dULL;
  m.n_features = 10;
  m.seed = 7;
  m.train_models = {"alexnet", "vgg16"};
  m.train_devices = {};
  m.cv_folds = 5;
  m.cv_mape = 12.25;
  m.cv_r2 = 0.875;
  m.model_checksum = 42;

  const Manifest back = deserialize_manifest(serialize_manifest(m));
  EXPECT_EQ(back.regressor_id, m.regressor_id);
  EXPECT_EQ(back.feature_schema_hash, m.feature_schema_hash);
  EXPECT_EQ(back.n_features, m.n_features);
  EXPECT_EQ(back.seed, m.seed);
  EXPECT_EQ(back.train_models, m.train_models);
  EXPECT_EQ(back.train_devices, m.train_devices);
  EXPECT_EQ(back.cv_folds, m.cv_folds);
  EXPECT_DOUBLE_EQ(back.cv_mape, m.cv_mape);
  EXPECT_DOUBLE_EQ(back.cv_r2, m.cv_r2);
  EXPECT_EQ(back.model_checksum, m.model_checksum);

  EXPECT_THROW(deserialize_manifest("not a manifest"), CheckError);
  EXPECT_THROW(deserialize_manifest("gpuperf-bundle v1\n"), CheckError);
}

TEST(Registry, Fnv1a64MatchesReferenceVectors) {
  // Reference values from the FNV specification.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hex64(0xaf63dc4c8601ec8cULL), "af63dc4c8601ec8c");
  EXPECT_EQ(parse_hex64("af63dc4c8601ec8c"), 0xaf63dc4c8601ec8cULL);
  EXPECT_THROW(parse_hex64("xyz"), CheckError);
}

}  // namespace
}  // namespace gpuperf::registry
