#include "dse/sweep.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "dse/sweep_cache.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::dse {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("gpuperf_dse_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

const core::PerformanceEstimator& trained_estimator() {
  static const core::PerformanceEstimator* est = [] {
    core::DatasetOptions o;
    o.models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
    o.devices = {"gtx1080ti", "v100s"};
    auto* e = new core::PerformanceEstimator("dt", 42);
    e->train(core::DatasetBuilder(o).build());
    return e;
  }();
  return *est;
}

SweepRequest small_request() {
  SweepRequest request;
  request.models = {"alexnet", "mobilenet"};
  request.devices = {"gtx1080ti", "gtx1060", "teslat4"};
  return request;
}

TEST(SweepEngine, CrossProductIsModelMajorAndComplete) {
  const SweepEngine engine(trained_estimator());
  const SweepRequest request = small_request();
  const SweepResult result = engine.run(request);
  ASSERT_EQ(result.cells.size(), 6u);
  for (std::size_t mi = 0; mi < request.models.size(); ++mi) {
    for (std::size_t di = 0; di < request.devices.size(); ++di) {
      const SweepCell& cell = result.cells[mi * request.devices.size() + di];
      EXPECT_EQ(cell.model, request.models[mi]);
      EXPECT_EQ(cell.device, request.devices[di]);
      EXPECT_EQ(cell.status, CellStatus::kOk);
      EXPECT_FALSE(cell.cached);
      EXPECT_GT(cell.predicted_ipc, 0.0);
      EXPECT_GT(cell.latency_ms, 0.0);
      EXPECT_GT(cell.power_w, 0.0);
    }
  }
  EXPECT_EQ(result.unique_topologies, 2u);
  EXPECT_EQ(result.duplicate_models, 0u);
  EXPECT_EQ(result.features_computed, 2u);
  EXPECT_EQ(result.ranking.size(), 3u);
  EXPECT_FALSE(result.pareto.empty());
  EXPECT_TRUE(result.feasible());
}

TEST(SweepEngine, DuplicateModelsShareOneTopology) {
  const SweepEngine engine(trained_estimator());
  SweepRequest request = small_request();
  request.models = {"alexnet", "mobilenet", "alexnet"};
  const SweepResult result = engine.run(request);
  EXPECT_EQ(result.cells.size(), 9u);
  EXPECT_EQ(result.unique_topologies, 2u);
  EXPECT_EQ(result.duplicate_models, 1u);
  EXPECT_EQ(result.features_computed, 2u);
  // The duplicate's cells are copies of the representative's.
  for (std::size_t di = 0; di < request.devices.size(); ++di) {
    EXPECT_DOUBLE_EQ(result.cells[di].predicted_ipc,
                     result.cells[6 + di].predicted_ipc);
    EXPECT_DOUBLE_EQ(result.cells[di].latency_ms,
                     result.cells[6 + di].latency_ms);
  }
}

TEST(SweepEngine, RepeatedParallelSweepsRankDeterministically) {
  const SweepEngine engine(trained_estimator());
  SweepRequest request;
  request.models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  // Full seven-device fleet → seven parallel jobs racing on the pool.
  const SweepResult first = engine.run(request);
  for (int i = 0; i < 3; ++i) {
    const SweepResult repeat = engine.run(request);
    ASSERT_EQ(repeat.cells.size(), first.cells.size());
    for (std::size_t c = 0; c < first.cells.size(); ++c) {
      EXPECT_EQ(repeat.cells[c].model, first.cells[c].model);
      EXPECT_EQ(repeat.cells[c].device, first.cells[c].device);
      EXPECT_DOUBLE_EQ(repeat.cells[c].predicted_ipc,
                       first.cells[c].predicted_ipc);
    }
    ASSERT_EQ(repeat.ranking.size(), first.ranking.size());
    for (std::size_t r = 0; r < first.ranking.size(); ++r) {
      EXPECT_EQ(repeat.ranking[r].device, first.ranking[r].device);
      EXPECT_DOUBLE_EQ(repeat.ranking[r].score, first.ranking[r].score);
      EXPECT_EQ(repeat.ranking[r].pareto, first.ranking[r].pareto);
    }
    EXPECT_EQ(repeat.pareto, first.pareto);
  }
}

TEST(SweepEngine, RejectsBadInput) {
  const SweepEngine engine(trained_estimator());
  SweepRequest empty;
  EXPECT_THROW(engine.run(empty), CheckError);
  SweepRequest bad_model = small_request();
  bad_model.models.push_back("not-a-model");
  EXPECT_THROW(engine.run(bad_model), CheckError);
  SweepRequest bad_device = small_request();
  bad_device.devices.push_back("not-a-device");
  EXPECT_THROW(engine.run(bad_device), CheckError);
  core::PerformanceEstimator untrained("dt", 1);
  EXPECT_THROW(SweepEngine{untrained}, CheckError);
}

TEST(SweepEngine, PersistentCacheReplaysWithZeroFeaturePasses) {
  const std::string dir = temp_dir("replay");
  const SweepRequest request = small_request();
  SweepResult cold;
  std::string bundle_key;
  {
    SweepCache cache(dir);
    SweepEngine::Options options;
    options.cache = &cache;
    const SweepEngine engine(trained_estimator(), options);
    bundle_key = engine.bundle_key();
    cold = engine.run(request);
    EXPECT_EQ(cold.features_computed, 2u);
    EXPECT_EQ(cold.sweep_cache_hits, 0u);
    EXPECT_EQ(cache.size(), 6u);
  }
  // "Restart": a fresh cache object replays the journal from disk.
  SweepCache reopened(dir);
  EXPECT_EQ(reopened.recovered_records(), 6u);
  SweepEngine::Options options;
  options.cache = &reopened;
  options.bundle_key = bundle_key;
  const SweepEngine engine(trained_estimator(), options);
  const SweepResult warm = engine.run(request);
  EXPECT_EQ(warm.features_computed, 0u);
  EXPECT_EQ(warm.sweep_cache_hits, 6u);
  ASSERT_EQ(warm.cells.size(), cold.cells.size());
  for (std::size_t c = 0; c < cold.cells.size(); ++c) {
    EXPECT_TRUE(warm.cells[c].cached);
    EXPECT_DOUBLE_EQ(warm.cells[c].predicted_ipc,
                     cold.cells[c].predicted_ipc);
    EXPECT_DOUBLE_EQ(warm.cells[c].latency_ms, cold.cells[c].latency_ms);
    EXPECT_DOUBLE_EQ(warm.cells[c].power_w, cold.cells[c].power_w);
  }
}

TEST(SweepEngine, DifferentBundleKeyNeverSharesCacheEntries) {
  const std::string dir = temp_dir("bundle_key");
  SweepCache cache(dir);
  const SweepRequest request = small_request();
  SweepEngine::Options a;
  a.cache = &cache;
  a.bundle_key = "v0001";
  EXPECT_EQ(SweepEngine(trained_estimator(), a).run(request)
                .sweep_cache_hits,
            0u);
  SweepEngine::Options b;
  b.cache = &cache;
  b.bundle_key = "v0002";
  const SweepResult other =
      SweepEngine(trained_estimator(), b).run(request);
  // Same cache, different estimator identity: all misses, recomputed.
  EXPECT_EQ(other.sweep_cache_hits, 0u);
  EXPECT_EQ(other.features_computed, 2u);
  EXPECT_EQ(cache.size(), 12u);
}

TEST(SweepEngine, BundleKeyIsRegistryVersionOrContentHash) {
  EXPECT_EQ(make_bundle_key(trained_estimator(), "v0042"), "v0042");
  const std::string adhoc = make_bundle_key(trained_estimator(), "");
  EXPECT_EQ(adhoc.rfind("adhoc-", 0), 0u) << adhoc;
  // Deterministic: same estimator content, same key.
  EXPECT_EQ(make_bundle_key(trained_estimator(), ""), adhoc);
  const SweepEngine engine(trained_estimator());
  EXPECT_EQ(engine.bundle_key(), adhoc);
}

TEST(SweepCache, PutGetRoundTripAndCounters) {
  const std::string dir = temp_dir("cache_unit");
  SweepCache cache(dir);
  const std::string key = SweepCache::cell_key(0x1234u, "gtx1060", "v1");
  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.put(key, {1.5, 2.5, 90.0});
  const auto hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->predicted_ipc, 1.5);
  EXPECT_DOUBLE_EQ(hit->latency_ms, 2.5);
  EXPECT_DOUBLE_EQ(hit->power_w, 90.0);
  EXPECT_EQ(cache.hits(), 1u);
  // Last writer wins, in memory and across a reopen.
  cache.put(key, {3.0, 4.0, 95.0});
  EXPECT_EQ(cache.size(), 1u);
  SweepCache reopened(dir);
  // Two append records on disk, one key after last-writer-wins replay.
  EXPECT_EQ(reopened.recovered_records(), 2u);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_DOUBLE_EQ(reopened.get(key)->predicted_ipc, 3.0);
}

TEST(SweepCache, KeySeparatesTopologyDeviceAndBundle) {
  const std::string base = SweepCache::cell_key(1, "a", "v1");
  EXPECT_NE(base, SweepCache::cell_key(2, "a", "v1"));
  EXPECT_NE(base, SweepCache::cell_key(1, "b", "v1"));
  EXPECT_NE(base, SweepCache::cell_key(1, "a", "v2"));
}

#ifdef GPUPERF_FAULT_INJECTION

TEST(SweepChaos, FaultedTopologyDegradesItsCellsOnly) {
  const SweepEngine engine(trained_estimator());
  SweepRequest request = small_request();
  // Kill DCA feature acquisition for exactly one of the two topologies;
  // which one loses the race is scheduling-dependent, the contract is
  // not: one model's row degrades, the other stays ok, nothing fails.
  fault::ScopedFault fault("dse.features",
                           {fault::Action::kThrow, 0, 1});
  const SweepResult result = engine.run(request);
  EXPECT_EQ(result.failed_cells, 0u);
  EXPECT_EQ(result.degraded_cells, request.devices.size());
  for (const std::string& model : request.models) {
    CellStatus status = CellStatus::kFailed;
    for (const SweepCell& cell : result.cells) {
      if (cell.model != model) continue;
      if (status == CellStatus::kFailed) status = cell.status;
      // Every cell of one model shares the fate of its one DCA pass.
      EXPECT_EQ(cell.status, status);
      EXPECT_GT(cell.predicted_ipc, 0.0);
    }
  }
  // Degraded cells still rank — the sweep stays feasible and every
  // device reports exactly one degraded cell.
  EXPECT_TRUE(result.feasible());
  for (const DeviceSummary& s : result.ranking) {
    EXPECT_TRUE(s.feasible);
    EXPECT_EQ(s.cells_ok, 1);
    EXPECT_EQ(s.cells_degraded, 1);
  }
}

TEST(SweepChaos, NoDegradeTurnsFaultIntoFailedCells) {
  const SweepEngine engine(trained_estimator());
  SweepRequest request = small_request();
  request.allow_degrade = false;
  fault::ScopedFault fault("dse.features",
                           {fault::Action::kThrow, 0, 1});
  const SweepResult result = engine.run(request);
  EXPECT_EQ(result.degraded_cells, 0u);
  EXPECT_EQ(result.failed_cells, request.devices.size());
  std::size_t with_error = 0;
  for (const SweepCell& cell : result.cells)
    if (cell.status == CellStatus::kFailed) {
      EXPECT_FALSE(cell.error.empty());
      ++with_error;
    }
  EXPECT_EQ(with_error, request.devices.size());
  // One failed model poisons every device → nothing is feasible.
  EXPECT_FALSE(result.feasible());
  for (const DeviceSummary& s : result.ranking)
    EXPECT_EQ(s.infeasible_reason, "incomplete (failed cells)");
}

TEST(SweepChaos, DegradedCellsNeverEnterTheCache) {
  const std::string dir = temp_dir("chaos_cache");
  SweepCache cache(dir);
  SweepEngine::Options options;
  options.cache = &cache;
  const SweepEngine engine(trained_estimator(), options);
  SweepRequest request = small_request();
  request.models = {"alexnet"};
  {
    fault::ScopedFault fault("dse.features",
                             {fault::Action::kThrow, 0, 1});
    const SweepResult degraded = engine.run(request);
    EXPECT_EQ(degraded.degraded_cells, request.devices.size());
  }
  // The fallback answers were not persisted: the healthy re-run misses
  // the cache and computes real features.
  EXPECT_EQ(cache.size(), 0u);
  const SweepResult healthy = engine.run(request);
  EXPECT_EQ(healthy.sweep_cache_hits, 0u);
  EXPECT_EQ(healthy.features_computed, 1u);
  EXPECT_EQ(cache.size(), request.devices.size());
}

#endif  // GPUPERF_FAULT_INJECTION

}  // namespace
}  // namespace gpuperf::dse
