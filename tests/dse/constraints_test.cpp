#include "dse/constraints.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "gpu/device_spec.hpp"

namespace gpuperf::dse {
namespace {

SweepCell cell(const std::string& model, const std::string& device,
               double latency_ms, double power_w,
               CellStatus status = CellStatus::kOk) {
  SweepCell c;
  c.model = model;
  c.device = device;
  c.status = status;
  c.predicted_ipc = 1.0;
  c.latency_ms = latency_ms;
  c.power_w = power_w;
  return c;
}

/// The hand-built four-device fixture: one model, per-device
/// (latency, power, cost) triples chosen so that
///   a (10, 100, $500)  — frontier
///   b (20,  50, $400)  — frontier (best power and cost)
///   c (15, 120, $600)  — dominated by a on all three objectives
///   d (10, 100, $500)  — exact tie with a
std::vector<DeviceSummary> fixture_summaries(const Constraints& k = {}) {
  const std::vector<SweepCell> cells = {
      cell("m", "a", 10.0, 100.0), cell("m", "b", 20.0, 50.0),
      cell("m", "c", 15.0, 120.0), cell("m", "d", 10.0, 100.0)};
  const std::vector<std::string> order = {"a", "b", "c", "d"};
  const std::vector<DeviceCost> costs = {{500.0}, {400.0}, {600.0}, {500.0}};
  return summarize_cells(cells, order, costs, k);
}

const DeviceSummary& by_name(const std::vector<DeviceSummary>& summaries,
                             const std::string& device) {
  for (const DeviceSummary& s : summaries)
    if (s.device == device) return s;
  ADD_FAILURE() << "no summary for " << device;
  static DeviceSummary missing;
  return missing;
}

TEST(Constraints, ParetoExcludesDominatedKeepsTies) {
  std::vector<DeviceSummary> summaries = fixture_summaries();
  mark_pareto(summaries);
  EXPECT_TRUE(by_name(summaries, "a").pareto);
  EXPECT_TRUE(by_name(summaries, "b").pareto);
  // c loses to a on latency, power AND cost — strictly dominated.
  EXPECT_FALSE(by_name(summaries, "c").pareto);
  // d ties a on every objective: neither dominates, both stay.
  EXPECT_TRUE(by_name(summaries, "d").pareto);
}

TEST(Constraints, ParetoIgnoresInfeasibleDevices) {
  Constraints k;
  k.max_power_w = 110.0;  // knocks out c (120 W)
  std::vector<DeviceSummary> summaries = fixture_summaries(k);
  mark_pareto(summaries);
  EXPECT_FALSE(by_name(summaries, "c").feasible);
  EXPECT_FALSE(by_name(summaries, "c").pareto);
  // An infeasible device must not dominate anyone either: make the
  // *best* device infeasible and the previously dominated one joins.
  Constraints tight;
  tight.max_latency_ms = 12.0;  // knocks out b (20 ms) and keeps a, c, d
  std::vector<DeviceSummary> s2 = fixture_summaries(tight);
  EXPECT_FALSE(by_name(s2, "b").feasible);
  mark_pareto(s2);
  EXPECT_TRUE(by_name(s2, "a").pareto);
  EXPECT_FALSE(by_name(s2, "c").pareto);  // a still dominates c
}

TEST(Constraints, UnknownCostComparesAsInfinityInDominance) {
  // Two devices identical on latency and power; the one with a real
  // price dominates the one without.
  const std::vector<SweepCell> cells = {cell("m", "known", 10.0, 100.0),
                                        cell("m", "mystery", 10.0, 100.0)};
  std::vector<DeviceSummary> summaries = summarize_cells(
      cells, {"known", "mystery"}, {{500.0}, {-1.0}}, Constraints{});
  mark_pareto(summaries);
  EXPECT_TRUE(by_name(summaries, "known").pareto);
  EXPECT_FALSE(by_name(summaries, "mystery").pareto);
}

TEST(Constraints, MaxLatencyBoundsWorstModelNotTotal) {
  // Two models at 5 ms and 10 ms: total 15 ms, worst 10 ms.  A 12 ms
  // per-inference SLA passes even though the batch total exceeds it.
  const std::vector<SweepCell> cells = {cell("m1", "a", 5.0, 80.0),
                                        cell("m2", "a", 10.0, 90.0)};
  Constraints k;
  k.max_latency_ms = 12.0;
  const auto summaries = summarize_cells(cells, {"a"}, {}, k);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_DOUBLE_EQ(summaries[0].total_latency_ms, 15.0);
  EXPECT_DOUBLE_EQ(summaries[0].worst_latency_ms, 10.0);
  EXPECT_DOUBLE_EQ(summaries[0].peak_power_w, 90.0);
  EXPECT_TRUE(summaries[0].feasible);

  k.max_latency_ms = 8.0;
  const auto tight = summarize_cells(cells, {"a"}, {}, k);
  EXPECT_FALSE(tight[0].feasible);
  EXPECT_EQ(tight[0].infeasible_reason, "latency above max_latency_ms");
}

TEST(Constraints, FailedCellsMakeDeviceInfeasible) {
  const std::vector<SweepCell> cells = {
      cell("m1", "a", 5.0, 80.0),
      cell("m2", "a", 0.0, 0.0, CellStatus::kFailed)};
  const auto summaries = summarize_cells(cells, {"a"}, {}, Constraints{});
  EXPECT_FALSE(summaries[0].feasible);
  EXPECT_EQ(summaries[0].infeasible_reason, "incomplete (failed cells)");
  EXPECT_EQ(summaries[0].cells_ok, 1);
  EXPECT_EQ(summaries[0].cells_failed, 1);
  // A degraded cell still counts as an answer, not a hole.
  const std::vector<SweepCell> degraded = {
      cell("m1", "a", 5.0, 80.0),
      cell("m2", "a", 7.0, 85.0, CellStatus::kDegraded)};
  const auto ok = summarize_cells(degraded, {"a"}, {}, Constraints{});
  EXPECT_TRUE(ok[0].feasible);
  EXPECT_EQ(ok[0].cells_degraded, 1);
  EXPECT_DOUBLE_EQ(ok[0].total_latency_ms, 12.0);
}

TEST(Constraints, UnknownCostInfeasibleUnderCostBoundOrWeight) {
  const std::vector<SweepCell> cells = {cell("m", "a", 10.0, 100.0)};
  Constraints bound;
  bound.max_cost_usd = 1000.0;
  auto s = summarize_cells(cells, {"a"}, {}, bound);
  EXPECT_FALSE(s[0].feasible);
  EXPECT_EQ(s[0].infeasible_reason, "cost unknown under max_cost_usd");

  Constraints weighted;
  weighted.w_cost = 0.5;
  s = summarize_cells(cells, {"a"}, {}, weighted);
  EXPECT_FALSE(s[0].feasible);
  EXPECT_EQ(s[0].infeasible_reason, "cost unknown under w_cost");

  Constraints over;
  over.max_cost_usd = 450.0;
  s = summarize_cells(cells, {"a"}, {{500.0}}, over);
  EXPECT_FALSE(s[0].feasible);
  EXPECT_EQ(s[0].infeasible_reason, "cost above max_cost_usd");
}

TEST(Constraints, RankingIsFeasibleFirstScoreThenName) {
  Constraints k;
  k.max_power_w = 110.0;  // c infeasible
  std::vector<DeviceSummary> summaries = fixture_summaries(k);
  rank_summaries(summaries, k);
  // Latency-only weights: a and d tie at the 10 ms minimum (score 1.0),
  // b scores 2.0; the a/d tie breaks on name; infeasible c trails.
  ASSERT_EQ(summaries.size(), 4u);
  EXPECT_EQ(summaries[0].device, "a");
  EXPECT_EQ(summaries[1].device, "d");
  EXPECT_EQ(summaries[2].device, "b");
  EXPECT_EQ(summaries[3].device, "c");
  EXPECT_DOUBLE_EQ(summaries[0].score, 1.0);
  EXPECT_DOUBLE_EQ(summaries[1].score, 1.0);
  EXPECT_DOUBLE_EQ(summaries[2].score, 2.0);
  EXPECT_TRUE(std::isinf(summaries[3].score));
}

TEST(Constraints, WeightsShiftTheWinner) {
  // Pure latency picks a; power-dominated weights pick b (50 W vs 100).
  Constraints power_first;
  power_first.w_latency = 0.0;
  power_first.w_power = 1.0;
  std::vector<DeviceSummary> summaries = fixture_summaries(power_first);
  rank_summaries(summaries, power_first);
  EXPECT_EQ(summaries[0].device, "b");
}

TEST(Constraints, CostListMustParallelDeviceOrder) {
  const std::vector<SweepCell> cells = {cell("m", "a", 1.0, 1.0)};
  EXPECT_THROW(
      summarize_cells(cells, {"a"}, {{1.0}, {2.0}}, Constraints{}),
      CheckError);
}

TEST(Constraints, LatencyProxyAlgebra) {
  gpu::DeviceSpec spec;
  spec.sm_count = 10;
  spec.cuda_cores = 640;
  spec.boost_clock_mhz = 1000.0;
  // 32e6 thread-instructions = 1e6 warp-instructions; at IPC 1 over 10
  // SMs that is 1e5 cycles = 0.1 ms at 1 GHz.
  EXPECT_DOUBLE_EQ(estimate_latency_ms(32'000'000, 1.0, spec), 0.1);
  EXPECT_DOUBLE_EQ(estimate_latency_ms(32'000'000, 2.0, spec), 0.05);
  EXPECT_TRUE(std::isinf(estimate_latency_ms(32'000'000, 0.0, spec)));
}

TEST(Constraints, PowerModelMatchesSimulatorShares) {
  gpu::DeviceSpec spec;
  spec.sm_count = 10;
  spec.cuda_cores = 640;  // 64 cores/SM → peak warp IPC 2.0
  spec.tdp_w = 200.0;
  // Saturated: idle 0.30 + compute 0.45 shares of TDP.
  EXPECT_DOUBLE_EQ(estimate_power_w(2.0, spec), 200.0 * 0.75);
  // Fully memory-bound: idle 0.30 + memory 0.25.
  EXPECT_DOUBLE_EQ(estimate_power_w(0.0, spec), 200.0 * 0.55);
  // Midpoint activity, and over-peak IPC clamps to saturation.
  EXPECT_DOUBLE_EQ(estimate_power_w(1.0, spec), 200.0 * 0.65);
  EXPECT_DOUBLE_EQ(estimate_power_w(5.0, spec), 200.0 * 0.75);
  spec.tdp_w = 0.0;  // unknown TDP → no power figure, not a guess
  EXPECT_DOUBLE_EQ(estimate_power_w(2.0, spec), 0.0);
}

TEST(Constraints, CellStatusNames) {
  EXPECT_STREQ(cell_status_name(CellStatus::kOk), "ok");
  EXPECT_STREQ(cell_status_name(CellStatus::kDegraded), "degraded");
  EXPECT_STREQ(cell_status_name(CellStatus::kFailed), "failed");
}

}  // namespace
}  // namespace gpuperf::dse
