#include "cnn/layer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf::cnn {
namespace {

std::vector<TensorShape> in(TensorShape s) { return {s}; }

TEST(Layer, Conv2DShapeAndParams) {
  const Layer conv = Layer::conv2d(64, 3, 1, Padding::kSame, true);
  const auto inputs = in(TensorShape::hwc(224, 224, 3));
  EXPECT_EQ(infer_output_shape(conv, inputs), TensorShape::hwc(224, 224, 64));
  // 3*3*3*64 + 64 bias.
  EXPECT_EQ(count_params(conv, inputs).trainable, 1792);
  EXPECT_EQ(count_params(conv, inputs).non_trainable, 0);
  // MACs = 224*224*64*3*3*3.
  EXPECT_EQ(count_macs(conv, inputs), 224LL * 224 * 64 * 27);
}

TEST(Layer, Conv2DNoBias) {
  const Layer conv = Layer::conv2d(64, 3, 1, Padding::kSame, false);
  EXPECT_EQ(count_params(conv, in(TensorShape::hwc(8, 8, 3))).trainable,
            1728);
}

TEST(Layer, GroupedConvDividesInputChannels) {
  // AlexNet conv2: 256 filters, 5x5, groups 2 over 96 channels.
  const Layer conv =
      Layer::conv2d(256, 5, 1, Padding::kSame, true, ActivationKind::kLinear,
                    2);
  const auto inputs = in(TensorShape::hwc(27, 27, 96));
  EXPECT_EQ(count_params(conv, inputs).trainable, 5 * 5 * 48 * 256 + 256);
  EXPECT_THROW(infer_output_shape(conv, in(TensorShape::hwc(27, 27, 97))),
               CheckError);
}

TEST(Layer, DepthwiseConv) {
  const Layer dw = Layer::depthwise_conv2d(3, 1, Padding::kSame, false);
  const auto inputs = in(TensorShape::hwc(112, 112, 32));
  EXPECT_EQ(infer_output_shape(dw, inputs), TensorShape::hwc(112, 112, 32));
  EXPECT_EQ(count_params(dw, inputs).trainable, 3 * 3 * 32);
  EXPECT_EQ(count_macs(dw, inputs), 112LL * 112 * 32 * 9);
}

TEST(Layer, DepthwiseConvMultiplier) {
  const Layer dw = Layer::depthwise_conv2d(3, 1, Padding::kSame, true, 2);
  const auto inputs = in(TensorShape::hwc(8, 8, 16));
  EXPECT_EQ(infer_output_shape(dw, inputs).c, 32);
  EXPECT_EQ(count_params(dw, inputs).trainable, 9 * 32 + 32);
}

TEST(Layer, DenseParamsAndShape) {
  const Layer dense = Layer::dense(1000, true);
  const auto inputs = in(TensorShape::flat(4096));
  EXPECT_EQ(infer_output_shape(dense, inputs), TensorShape::flat(1000));
  EXPECT_EQ(count_params(dense, inputs).trainable, 4096 * 1000 + 1000);
  EXPECT_EQ(count_macs(dense, inputs), 4096 * 1000);
}

TEST(Layer, DenseRejectsRank3Input) {
  const Layer dense = Layer::dense(10);
  EXPECT_THROW(infer_output_shape(dense, in(TensorShape::hwc(7, 7, 512))),
               CheckError);
}

TEST(Layer, BatchNormParams) {
  const Layer bn = Layer::batch_norm();
  const auto inputs = in(TensorShape::hwc(56, 56, 256));
  const ParamCount p = count_params(bn, inputs);
  EXPECT_EQ(p.trainable, 512);      // gamma + beta
  EXPECT_EQ(p.non_trainable, 512);  // moving stats
  EXPECT_EQ(infer_output_shape(bn, inputs), inputs.front());
}

TEST(Layer, BatchNormOnFlatInput) {
  const Layer bn = Layer::batch_norm();
  EXPECT_EQ(count_params(bn, in(TensorShape::flat(128))).trainable, 256);
}

TEST(Layer, PoolingShapes) {
  const Layer mp = Layer::max_pool(2, 2);
  EXPECT_EQ(infer_output_shape(mp, in(TensorShape::hwc(224, 224, 64))),
            TensorShape::hwc(112, 112, 64));
  const Layer mp3 = Layer::max_pool(3, 2, Padding::kSame);
  EXPECT_EQ(infer_output_shape(mp3, in(TensorShape::hwc(147, 147, 64))).h,
            74);
  EXPECT_EQ(count_params(mp, in(TensorShape::hwc(8, 8, 4))).total(), 0);
}

TEST(Layer, PoolDefaultStrideEqualsPool) {
  const Layer p = Layer::avg_pool(2);
  EXPECT_EQ(p.stride_h, 2);
}

TEST(Layer, GlobalAvgPoolFlattens) {
  const Layer gap = Layer::global_avg_pool();
  EXPECT_EQ(infer_output_shape(gap, in(TensorShape::hwc(7, 7, 2048))),
            TensorShape::flat(2048));
}

TEST(Layer, AddRequiresMatchingShapes) {
  const Layer add = Layer::add();
  const TensorShape a = TensorShape::hwc(28, 28, 256);
  EXPECT_EQ(infer_output_shape(add, {a, a}), a);
  EXPECT_EQ(infer_output_shape(add, {a, a, a}), a);
  EXPECT_THROW(infer_output_shape(add, {a, TensorShape::hwc(28, 28, 128)}),
               CheckError);
  EXPECT_THROW(infer_output_shape(add, {a}), CheckError);  // arity
}

TEST(Layer, MultiplyBroadcastsChannelVector) {
  const Layer mul = Layer::multiply();
  const TensorShape map = TensorShape::hwc(14, 14, 480);
  const TensorShape vec = TensorShape::flat(480);
  EXPECT_EQ(infer_output_shape(mul, {map, vec}), map);
  EXPECT_EQ(infer_output_shape(mul, {vec, map}), map);
  EXPECT_THROW(infer_output_shape(mul, {map, TensorShape::flat(100)}),
               CheckError);
}

TEST(Layer, ConcatSumsChannels) {
  const Layer cat = Layer::concat();
  const TensorShape a = TensorShape::hwc(28, 28, 64);
  const TensorShape b = TensorShape::hwc(28, 28, 32);
  EXPECT_EQ(infer_output_shape(cat, {a, b}).c, 96);
  EXPECT_THROW(
      infer_output_shape(cat, {a, TensorShape::hwc(14, 14, 32)}),
      CheckError);
}

TEST(Layer, FlattenAndZeroPad) {
  EXPECT_EQ(infer_output_shape(Layer::flatten(),
                               in(TensorShape::hwc(6, 6, 256))),
            TensorShape::flat(9216));
  EXPECT_EQ(infer_output_shape(Layer::zero_pad(3, 3, 3, 3),
                               in(TensorShape::hwc(224, 224, 3))),
            TensorShape::hwc(230, 230, 3));
  EXPECT_THROW(Layer::zero_pad(-1, 0, 0, 0), CheckError);
}

TEST(Layer, RectangularConv) {
  // Inception's 1x7 factorized conv.
  const Layer conv = Layer::conv2d_rect(192, 1, 7, 1, 1, Padding::kSame,
                                        false);
  const auto inputs = in(TensorShape::hwc(17, 17, 160));
  EXPECT_EQ(infer_output_shape(conv, inputs), TensorShape::hwc(17, 17, 192));
  EXPECT_EQ(count_params(conv, inputs).trainable, 1 * 7 * 160 * 192);
}

TEST(Layer, FactoriesValidate) {
  EXPECT_THROW(Layer::conv2d(0, 3), CheckError);
  EXPECT_THROW(Layer::conv2d(10, 3, 1, Padding::kSame, true,
                             ActivationKind::kLinear, 3),
               CheckError);  // filters not divisible by groups
  EXPECT_THROW(Layer::dense(0), CheckError);
  EXPECT_THROW(Layer::dropout(1.0), CheckError);
}

TEST(Layer, WeightedLayerClassification) {
  EXPECT_TRUE(is_weighted_layer(LayerKind::kConv2D));
  EXPECT_TRUE(is_weighted_layer(LayerKind::kDepthwiseConv2D));
  EXPECT_TRUE(is_weighted_layer(LayerKind::kDense));
  EXPECT_FALSE(is_weighted_layer(LayerKind::kBatchNorm));
  EXPECT_FALSE(is_weighted_layer(LayerKind::kMaxPool));
}

TEST(Layer, Names) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConv2D), "Conv2D");
  EXPECT_STREQ(activation_name(ActivationKind::kSwish), "swish");
}

}  // namespace
}  // namespace gpuperf::cnn
