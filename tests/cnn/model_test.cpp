#include "cnn/model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf::cnn {
namespace {

TEST(Model, BuildsSimpleChain) {
  Model m("tiny");
  const NodeId input = m.add_input(32, 32, 3);
  const NodeId conv = m.add(Layer::conv2d(8, 3), input);
  const NodeId pool = m.add(Layer::max_pool(2), conv);
  EXPECT_EQ(m.node_count(), 3u);
  EXPECT_EQ(m.output(), pool);
  m.validate();
}

TEST(Model, InputMustBeFirstAndUnique) {
  Model m("bad");
  m.add_input(8, 8, 3);
  EXPECT_THROW(m.add_input(8, 8, 3), CheckError);

  Model m2("bad2");
  EXPECT_THROW(m2.add(Layer::conv2d(8, 3), std::vector<NodeId>{0}),
               CheckError);
}

TEST(Model, RejectsForwardReferences) {
  Model m("fwd");
  const NodeId input = m.add_input(8, 8, 3);
  EXPECT_THROW(m.add(Layer::conv2d(8, 3), NodeId{5}), CheckError);
  EXPECT_THROW(m.add(Layer::conv2d(8, 3), NodeId{-1}), CheckError);
  (void)input;
}

TEST(Model, ArityCheckedAtAdd) {
  Model m("arity");
  const NodeId input = m.add_input(8, 8, 3);
  const NodeId c1 = m.add(Layer::conv2d(8, 3), input);
  EXPECT_THROW(m.add(Layer::add(), c1), CheckError);  // add needs >= 2
  EXPECT_THROW(m.add(Layer::conv2d(8, 3), {c1, input}), CheckError);
}

TEST(Model, ConvBnActExpandsToThreeNodes) {
  Model m("chain");
  const NodeId input = m.add_input(8, 8, 3);
  const NodeId out = m.conv_bn_act(input, 16, 3);
  EXPECT_EQ(m.node_count(), 4u);  // input + conv + bn + relu
  EXPECT_EQ(m.node(out).layer.kind, LayerKind::kActivation);
  // Linear activation skips the activation node.
  const NodeId out2 =
      m.conv_bn_act(out, 16, 1, 1, Padding::kSame, ActivationKind::kLinear);
  EXPECT_EQ(m.node(out2).layer.kind, LayerKind::kBatchNorm);
}

TEST(Model, ExplicitOutputSelection) {
  Model m("multi");
  const NodeId input = m.add_input(8, 8, 3);
  const NodeId a = m.add(Layer::conv2d(8, 3), input);
  m.add(Layer::conv2d(4, 1), a);  // a second head
  m.set_output(a);
  EXPECT_EQ(m.output(), a);
  EXPECT_THROW(m.set_output(99), CheckError);
}

TEST(Model, AutoNamesAreUnique) {
  Model m("names");
  const NodeId input = m.add_input(8, 8, 3);
  const NodeId c1 = m.add(Layer::conv2d(8, 3), input);
  const NodeId c2 = m.add(Layer::conv2d(8, 3), c1);
  EXPECT_NE(m.node(c1).layer.name, m.node(c2).layer.name);
}

TEST(Model, InputShapeAccessor) {
  Model m("shape");
  m.add_input(331, 331, 3);
  EXPECT_EQ(m.input_shape(), TensorShape::hwc(331, 331, 3));
}

TEST(Model, EmptyModelFailsValidation) {
  Model m("empty");
  EXPECT_THROW(m.validate(), CheckError);
  EXPECT_THROW(m.output(), CheckError);
  EXPECT_THROW(Model(""), CheckError);
}

}  // namespace
}  // namespace gpuperf::cnn
