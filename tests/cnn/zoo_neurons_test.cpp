// The "Neurons" column of Table I: total activations across layers.
// Our counts track the published values closely; tolerances reflect
// small convention differences (which auxiliary tensors count).
#include <gtest/gtest.h>

#include <cmath>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {
namespace {

struct NeuronCase {
  const char* name;
  std::int64_t paper_neurons;
  double tolerance;  // relative
};

const NeuronCase kCases[] = {
    {"m-r50x1", 15903016, 1.0},  // paper halves BiT activations (GN blocks)
    {"resnet101", 55886036, 0.05},
    {"resnet152", 79067348, 0.05},
    {"resnet50v2", 31381204, 0.05},
    {"resnet101v2", 51261140, 0.05},
    {"resnet152v2", 75755220, 0.05},
    {"densenet121", 49926612, 0.05},
    {"densenet169", 60094164, 0.05},
    {"densenet201", 77292244, 0.05},
    {"mobilenet", 16848248, 0.05},
    {"inceptionv3", 32554387, 0.05},
    {"vgg16", 15262696, 0.05},
    {"vgg19", 16567272, 0.05},
    {"efficientnetb0", 25117095, 0.05},
    {"efficientnetb3", 87507971, 0.05},
    {"efficientnetb7", 1046113195, 0.05},
    {"Xception", 62981867, 0.25},  // paper's count skips middle-flow relus
    {"MobileNetV2", 21815960, 0.25},
    {"nasnetmobile", 27690705, 0.10},
    {"nasnetlarge", 290560171, 0.05},
};

class ZooNeuronTest : public ::testing::TestWithParam<NeuronCase> {};

TEST_P(ZooNeuronTest, NeuronCountTracksTableI) {
  const NeuronCase& c = GetParam();
  const ModelReport r = StaticAnalyzer().analyze(build(c.name));
  const double rel =
      std::fabs(static_cast<double>(r.neurons - c.paper_neurons)) /
      static_cast<double>(c.paper_neurons);
  EXPECT_LE(rel, c.tolerance)
      << c.name << ": got " << r.neurons << ", paper " << c.paper_neurons;
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ZooNeuronTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<NeuronCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace gpuperf::cnn::zoo
