#include "cnn/static_analyzer.hpp"

#include <gtest/gtest.h>

#include "cnn/zoo.hpp"
#include "common/check.hpp"

namespace gpuperf::cnn {
namespace {

TEST(StaticAnalyzer, HandComputedTinyModel) {
  Model m("tiny");
  const NodeId input = m.add_input(8, 8, 3);
  const NodeId conv = m.add(Layer::conv2d(4, 3, 1, Padding::kSame, true),
                            input);  // 3*3*3*4+4 = 112 params
  const NodeId pool = m.add(Layer::max_pool(2), conv);   // 4x4x4
  const NodeId flat = m.add(Layer::flatten(), pool);     // 64
  m.add(Layer::dense(10, true), flat);                   // 64*10+10 = 650

  const ModelReport r = StaticAnalyzer().analyze(m);
  EXPECT_EQ(r.trainable_params, 112 + 650);
  EXPECT_EQ(r.non_trainable_params, 0);
  EXPECT_EQ(r.weighted_layers, 2);
  // Neurons: conv 8*8*4=256, pool 4*4*4=64, flatten 64, dense 10.
  EXPECT_EQ(r.neurons, 256 + 64 + 64 + 10);
  // MACs: conv 8*8*4*27 = 6912, pool 64*4 = 256, dense 640.
  EXPECT_EQ(r.macs, 6912 + 256 + 640);
  EXPECT_EQ(r.flops, 2 * r.macs);
  EXPECT_EQ(r.layers.size(), m.node_count());
}

TEST(StaticAnalyzer, ResidualBranchShapes) {
  Model m("residual");
  const NodeId input = m.add_input(16, 16, 8);
  const NodeId a = m.add(Layer::conv2d(8, 3, 1, Padding::kSame, false),
                         input);
  const NodeId sum = m.add(Layer::add(), {input, a});
  const auto shapes = StaticAnalyzer().infer_shapes(m);
  EXPECT_EQ(shapes[static_cast<std::size_t>(sum)],
            TensorShape::hwc(16, 16, 8));
}

TEST(StaticAnalyzer, BatchNormCountsNonTrainable) {
  Model m("bn");
  const NodeId input = m.add_input(8, 8, 16);
  m.add(Layer::batch_norm(), input);
  const ModelReport r = StaticAnalyzer().analyze(m);
  EXPECT_EQ(r.trainable_params, 32);
  EXPECT_EQ(r.non_trainable_params, 32);
  EXPECT_EQ(r.total_params, 64);
}

TEST(StaticAnalyzer, ShapeErrorSurfaceFromBadModel) {
  Model m("bad");
  const NodeId input = m.add_input(8, 8, 3);
  m.add(Layer::dense(10), input);  // dense on rank-3: fails at analysis
  EXPECT_THROW(StaticAnalyzer().analyze(m), CheckError);
}

// -- exact reproductions of published parameter counts --

TEST(StaticAnalyzer, Vgg16ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::vgg16());
  EXPECT_EQ(r.trainable_params, 138357544);
  EXPECT_EQ(r.weighted_layers, 16);
}

TEST(StaticAnalyzer, Vgg19ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::vgg19());
  EXPECT_EQ(r.trainable_params, 143667240);
  EXPECT_EQ(r.weighted_layers, 19);
}

TEST(StaticAnalyzer, MobileNetV2ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::mobilenet_v2());
  EXPECT_EQ(r.trainable_params, 3504872);
}

TEST(StaticAnalyzer, MobileNetV1ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::mobilenet());
  EXPECT_EQ(r.trainable_params, 4231976);
  EXPECT_EQ(r.weighted_layers, 28);
}

TEST(StaticAnalyzer, DenseNet121ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::densenet121());
  EXPECT_EQ(r.trainable_params, 7978856);
}

TEST(StaticAnalyzer, XceptionExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::xception());
  EXPECT_EQ(r.trainable_params, 22855952);
}

TEST(StaticAnalyzer, EfficientNetB0ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::efficientnet_b0());
  EXPECT_EQ(r.trainable_params, 5288548);
}

TEST(StaticAnalyzer, ResNet50V2ExactParams) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::resnet50_v2());
  EXPECT_EQ(r.trainable_params, 25568360);
}

TEST(StaticAnalyzer, ReportRendering) {
  const ModelReport r = StaticAnalyzer().analyze(zoo::vgg16());
  const std::string brief = to_string(r, false);
  EXPECT_NE(brief.find("vgg16"), std::string::npos);
  EXPECT_NE(brief.find("138,357,544"), std::string::npos);
  const std::string detailed = to_string(r, true);
  EXPECT_GT(detailed.size(), brief.size());
  EXPECT_NE(detailed.find("Conv2D"), std::string::npos);
}

}  // namespace
}  // namespace gpuperf::cnn
