// Parameterized validation of every Table I architecture: each must
// build, validate, and land within a small tolerance of the published
// trainable-parameter count.
#include "cnn/zoo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "cnn/static_analyzer.hpp"
#include "common/check.hpp"

namespace gpuperf::cnn::zoo {
namespace {

struct ZooCase {
  const char* name;
  std::int64_t input_size;        // Table I input edge
  std::int64_t paper_params;      // Table I trainable parameters
  double tolerance;               // relative
};

// Paper Table I values.  Most reproduce exactly; BiT / NASNet /
// Inception variants land within a fraction of a percent, and AlexNet
// (whose published count does not match any standard variant) within
// 5 %.
const ZooCase kCases[] = {
    {"m-r50x1", 224, 25549352, 0.005},
    {"m-r50x3", 224, 217319080, 0.005},
    {"m-r101x3", 224, 387934888, 0.005},
    {"m-r101x1", 224, 44541480, 0.005},
    {"m-r154x4", 224, 936533224, 0.005},
    {"resnet101", 224, 44601832, 0.0},
    {"resnet152", 224, 60268520, 0.0},
    {"resnet50v2", 224, 25568360, 0.0},
    {"resnet101v2", 224, 44577896, 0.0},
    {"resnet152v2", 224, 60236904, 0.0},
    {"nasnetmobile", 224, 5289978, 0.01},
    {"nasnetlarge", 331, 88753150, 0.01},
    {"densenet121", 224, 7978856, 0.0},
    {"densenet169", 224, 14149480, 0.0},
    {"densenet201", 224, 20013928, 0.0},
    {"mobilenet", 224, 4231976, 0.0},
    {"inceptionv3", 299, 23817352, 0.005},
    {"vgg16", 224, 138357544, 0.0},
    {"vgg19", 224, 143667240, 0.0},
    {"efficientnetb0", 224, 5288548, 0.0},
    {"efficientnetb1", 240, 7794184, 0.0},
    {"efficientnetb2", 260, 9109994, 0.0},
    {"efficientnetb3", 300, 12233232, 0.0},
    {"efficientnetb4", 380, 19341616, 0.0},
    {"efficientnetb5", 456, 30389784, 0.0},  // paper lists 156 (typo)
    {"efficientnetb6", 528, 43040704, 0.0},
    {"efficientnetb7", 600, 66347960, 0.0},
    {"Xception", 299, 22855952, 0.0},
    {"MobileNetV2", 200, 3504872, 0.0},
    {"InceptionResNetV2", 200, 55813192, 0.002},
    {"alexnet", 227, 58325066, 0.05},
};

class ZooModelTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooModelTest, BuildsAndMatchesPublishedParams) {
  const ZooCase& c = GetParam();
  const Model model = build(c.name);
  model.validate();
  EXPECT_EQ(model.name(), c.name);
  EXPECT_EQ(model.input_shape().h, c.input_size);

  const ModelReport r = StaticAnalyzer().analyze(model);
  if (c.tolerance == 0.0) {
    EXPECT_EQ(r.trainable_params, c.paper_params);
  } else {
    const double rel =
        std::fabs(static_cast<double>(r.trainable_params - c.paper_params)) /
        static_cast<double>(c.paper_params);
    EXPECT_LE(rel, c.tolerance)
        << "got " << r.trainable_params << " want ~" << c.paper_params;
  }
  EXPECT_GT(r.neurons, 0);
  EXPECT_GT(r.macs, 0);
  EXPECT_GT(r.weighted_layers, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTableIModels, ZooModelTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<ZooCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(Zoo, RegistryHasThirtyOneModels) {
  EXPECT_EQ(all_models().size(), 31u);
}

TEST(Zoo, CanonicalLayerCountsMatchTableI) {
  for (const auto& e : all_models())
    EXPECT_GT(e.canonical_layers, 0) << e.name;
  // Spot checks against the published column.
  std::map<std::string, int> expected = {{"resnet50v2", 50},
                                         {"nasnetlarge", 1041},
                                         {"alexnet", 8},
                                         {"efficientnetb7", 816}};
  for (const auto& e : all_models()) {
    const auto it = expected.find(e.name);
    if (it == expected.end()) continue;
    EXPECT_EQ(e.canonical_layers, it->second) << e.name;
  }
}

TEST(Zoo, RegistryNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& e : all_models()) names.insert(e.name);
  EXPECT_EQ(names.size(), all_models().size());
}

TEST(Zoo, BuildRejectsUnknownName) {
  EXPECT_THROW(build("notanet"), CheckError);
  EXPECT_FALSE(has_model("notanet"));
  EXPECT_TRUE(has_model("vgg16"));
}


TEST(ZooExtended, ExactPublishedParameterCounts) {
  const StaticAnalyzer analyzer;
  struct Case {
    const char* name;
    std::int64_t params;  // torchvision values
  };
  for (const Case& c : {Case{"resnext50_32x4d", 25028904},
                        Case{"wide_resnet50_2", 68883240},
                        Case{"squeezenet", 1248424}}) {
    const Model model = build(c.name);
    model.validate();
    EXPECT_EQ(analyzer.analyze(model).trainable_params, c.params) << c.name;
  }
}

TEST(ZooExtended, SeparateFromTableIRegistry) {
  EXPECT_EQ(extended_models().size(), 3u);
  // Extended names resolve through build()/has_model() but do not
  // appear in the Table I registry.
  EXPECT_TRUE(has_model("squeezenet"));
  for (const auto& e : all_models()) EXPECT_NE(e.name, "squeezenet");
}

TEST(Zoo, HoldoutsAndTable4ModelsExist) {
  EXPECT_EQ(fig4_holdouts().size(), 6u);
  for (const auto& n : fig4_holdouts()) EXPECT_TRUE(has_model(n));
  EXPECT_EQ(table4_models().size(), 7u);
  for (const auto& n : table4_models()) EXPECT_TRUE(has_model(n));
}

}  // namespace
}  // namespace gpuperf::cnn::zoo
