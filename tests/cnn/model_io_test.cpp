#include "cnn/model_io.hpp"

#include <gtest/gtest.h>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/check.hpp"

namespace gpuperf::cnn {
namespace {

/// Structural equality via the analyzer: same shapes, params, MACs per
/// node implies the same architecture for our purposes.
void expect_equivalent(const Model& a, const Model& b) {
  const StaticAnalyzer analyzer;
  const ModelReport ra = analyzer.analyze(a);
  const ModelReport rb = analyzer.analyze(b);
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(ra.trainable_params, rb.trainable_params);
  EXPECT_EQ(ra.non_trainable_params, rb.non_trainable_params);
  EXPECT_EQ(ra.macs, rb.macs);
  EXPECT_EQ(ra.neurons, rb.neurons);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(static_cast<NodeId>(i)).layer.kind,
              b.node(static_cast<NodeId>(i)).layer.kind)
        << "node " << i;
    EXPECT_EQ(a.node(static_cast<NodeId>(i)).inputs,
              b.node(static_cast<NodeId>(i)).inputs)
        << "node " << i;
  }
  EXPECT_EQ(a.output(), b.output());
}

TEST(ModelIo, RoundTripSmallModel) {
  Model m("roundtrip");
  const NodeId input = m.add_input(32, 32, 3);
  const NodeId conv = m.add(
      Layer::conv2d(16, 3, 2, Padding::kValid, false, ActivationKind::kReLU),
      input);
  const NodeId bn = m.add(Layer::batch_norm(), conv);
  const NodeId act = m.add(Layer::activation(ActivationKind::kSwish), bn);
  const NodeId dw = m.add(Layer::depthwise_conv2d(3, 1, Padding::kSame,
                                                  true, 2),
                          act);
  const NodeId pool = m.add(Layer::max_pool(2, 2), dw);
  const NodeId pad = m.add(Layer::zero_pad(1, 2, 3, 4), pool);
  const NodeId gap = m.add(Layer::global_avg_pool(), pad);
  const NodeId drop = m.add(Layer::dropout(0.25), gap);
  m.add(Layer::dense(10, true, ActivationKind::kSoftmax), drop);

  expect_equivalent(m, deserialize_model(serialize_model(m)));
}

TEST(ModelIo, RoundTripBranchyModel) {
  Model m("branchy");
  const NodeId input = m.add_input(16, 16, 8);
  const NodeId a = m.add(Layer::conv2d(8, 1), input);
  const NodeId b = m.add(Layer::conv2d(8, 3, 1, Padding::kSame, false),
                         input);
  const NodeId sum = m.add(Layer::add(), {a, b});
  const NodeId cat = m.add(Layer::concat(), {sum, input});
  const NodeId gap = m.add(Layer::global_avg_pool(), cat);
  const NodeId se = m.add(Layer::dense(16), gap);
  m.add(Layer::multiply(), {cat, se});
  expect_equivalent(m, deserialize_model(serialize_model(m)));
}

TEST(ModelIo, RoundTripEveryZooModel) {
  // The serializer must cover everything the zoo builders produce.
  for (const auto& entry : cnn::zoo::all_models()) {
    const Model original = entry.build();
    const Model restored = deserialize_model(serialize_model(original));
    const StaticAnalyzer analyzer;
    EXPECT_EQ(analyzer.analyze(original).trainable_params,
              analyzer.analyze(restored).trainable_params)
        << entry.name;
    EXPECT_EQ(original.node_count(), restored.node_count()) << entry.name;
  }
}

TEST(ModelIo, ExplicitOutputPreserved) {
  Model m("heads");
  const NodeId input = m.add_input(8, 8, 3);
  const NodeId a = m.add(Layer::conv2d(4, 3), input);
  m.add(Layer::conv2d(2, 1), a);
  m.set_output(a);
  const Model restored = deserialize_model(serialize_model(m));
  EXPECT_EQ(restored.output(), a);
}

TEST(ModelIo, FileRoundTrip) {
  const Model m = zoo::build("alexnet");
  const std::string path = ::testing::TempDir() + "/gpuperf_model.txt";
  save_model(m, path);
  const Model loaded = load_model(path);
  EXPECT_EQ(loaded.name(), "alexnet");
  EXPECT_EQ(loaded.node_count(), m.node_count());
  EXPECT_THROW(load_model(path + ".missing"), CheckError);
}

TEST(ModelIo, RejectsGarbage) {
  EXPECT_THROW(deserialize_model("not a model"), CheckError);
  EXPECT_THROW(deserialize_model("gpuperf-model v1\nname x\n"),
               CheckError);  // no nodes / no output
  EXPECT_THROW(
      deserialize_model("gpuperf-model v1\nname x\n"
                        "node 0 input h=8 w=8 c=3\n"
                        "node 1 frobnicate in=0\noutput 1\n"),
      CheckError);
  EXPECT_THROW(
      deserialize_model("gpuperf-model v1\nname x\n"
                        "node 0 input h=8 w=8 c=3\n"
                        "node 2 flatten in=0\noutput 2\n"),
      CheckError);  // non-sequential ids
  EXPECT_THROW(
      deserialize_model("gpuperf-model v1\nname x\n"
                        "node 0 input h=8 w=8 c=3\n"
                        "node 1 conv2d in=0 filters=4\noutput 1\n"),
      CheckError);  // missing kernel attribute
}

TEST(ModelIo, SerializedFormIsHumanReadable) {
  Model m("readable");
  const NodeId input = m.add_input(8, 8, 3);
  m.add(Layer::conv2d(4, 3, 1, Padding::kSame, true,
                      ActivationKind::kReLU),
        input);
  const std::string text = serialize_model(m);
  EXPECT_NE(text.find("gpuperf-model v1"), std::string::npos);
  EXPECT_NE(text.find("node 0 input h=8 w=8 c=3"), std::string::npos);
  EXPECT_NE(text.find("conv2d in=0 filters=4 kernel=3x3"),
            std::string::npos);
  EXPECT_NE(text.find("act=relu"), std::string::npos);
}

}  // namespace
}  // namespace gpuperf::cnn
