#include "cnn/shape.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf::cnn {
namespace {

TEST(Shape, Factories) {
  const TensorShape hwc = TensorShape::hwc(224, 224, 3);
  EXPECT_EQ(hwc.rank, 3);
  EXPECT_EQ(hwc.elements(), 224 * 224 * 3);
  const TensorShape flat = TensorShape::flat(1000);
  EXPECT_EQ(flat.rank, 1);
  EXPECT_EQ(flat.elements(), 1000);
  EXPECT_THROW(TensorShape::hwc(0, 1, 1), CheckError);
  EXPECT_THROW(TensorShape::flat(0), CheckError);
}

TEST(Shape, Equality) {
  EXPECT_EQ(TensorShape::hwc(2, 3, 4), TensorShape::hwc(2, 3, 4));
  EXPECT_NE(TensorShape::hwc(2, 3, 4), TensorShape::hwc(2, 3, 5));
  EXPECT_NE(TensorShape::hwc(4, 1, 1), TensorShape::flat(4));
}

TEST(Shape, ToString) {
  EXPECT_EQ(TensorShape::hwc(7, 7, 512).to_string(), "(7, 7, 512)");
  EXPECT_EQ(TensorShape::flat(4096).to_string(), "(4096)");
}

TEST(ConvOutDim, SamePaddingIsCeilDiv) {
  EXPECT_EQ(conv_out_dim(224, 3, 1, Padding::kSame), 224);
  EXPECT_EQ(conv_out_dim(224, 3, 2, Padding::kSame), 112);
  EXPECT_EQ(conv_out_dim(7, 3, 2, Padding::kSame), 4);
  EXPECT_EQ(conv_out_dim(5, 7, 2, Padding::kSame), 3);  // kernel > input ok
}

TEST(ConvOutDim, ValidPadding) {
  EXPECT_EQ(conv_out_dim(224, 3, 1, Padding::kValid), 222);
  EXPECT_EQ(conv_out_dim(227, 11, 4, Padding::kValid), 55);  // AlexNet conv1
  EXPECT_EQ(conv_out_dim(3, 3, 1, Padding::kValid), 1);
  EXPECT_THROW(conv_out_dim(2, 3, 1, Padding::kValid), CheckError);
}

TEST(ConvOutDim, RejectsBadArgs) {
  EXPECT_THROW(conv_out_dim(0, 3, 1, Padding::kSame), CheckError);
  EXPECT_THROW(conv_out_dim(8, 0, 1, Padding::kSame), CheckError);
  EXPECT_THROW(conv_out_dim(8, 3, 0, Padding::kSame), CheckError);
}

struct ConvDimCase {
  std::int64_t in, kernel, stride, expected_same, expected_valid;
};

class ConvDimSweep : public ::testing::TestWithParam<ConvDimCase> {};

TEST_P(ConvDimSweep, MatchesReference) {
  const auto& c = GetParam();
  EXPECT_EQ(conv_out_dim(c.in, c.kernel, c.stride, Padding::kSame),
            c.expected_same);
  EXPECT_EQ(conv_out_dim(c.in, c.kernel, c.stride, Padding::kValid),
            c.expected_valid);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvDimSweep,
    ::testing::Values(ConvDimCase{224, 7, 2, 112, 109},
                      ConvDimCase{112, 3, 2, 56, 55},
                      ConvDimCase{56, 1, 1, 56, 56},
                      ConvDimCase{299, 3, 2, 150, 149},
                      ConvDimCase{600, 5, 2, 300, 298},
                      ConvDimCase{8, 8, 8, 1, 1}));

}  // namespace
}  // namespace gpuperf::cnn
