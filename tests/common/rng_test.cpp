#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace gpuperf {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng r(7);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng r(7);
  EXPECT_THROW(r.uniform_int(3, 2), CheckError);
}

TEST(Rng, UniformIndexBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = r.uniform_index(17);
    ASSERT_LT(v, 17u);
  }
  EXPECT_THROW(r.uniform_index(0), CheckError);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng r(13);
  for (int i = 0; i < 5000; ++i) {
    const double v = r.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng r(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
  EXPECT_THROW(r.normal(0.0, -1.0), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(StableHash, DeterministicAndSensitive) {
  EXPECT_EQ(stable_hash("resnet50"), stable_hash("resnet50"));
  EXPECT_NE(stable_hash("resnet50"), stable_hash("resnet51"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

class RngRangeTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RngRangeTest, UniformIntCoversRange) {
  const std::int64_t hi = GetParam();
  Rng r(static_cast<std::uint64_t>(hi) + 101);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 3000; ++i) seen.insert(r.uniform_int(0, hi));
  // Every value of a small range should appear.
  if (hi <= 16) {
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(hi) + 1);
  }
  EXPECT_EQ(*seen.begin() >= 0, true);
  EXPECT_LE(*seen.rbegin(), hi);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(0, 1, 2, 7, 16, 1000, 1 << 20));

}  // namespace
}  // namespace gpuperf
