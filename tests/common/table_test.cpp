#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| a      |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| longer |    22 |"), std::string::npos);
}

TEST(TextTable, TitleAndRule) {
  TextTable t("Table I");
  t.set_header({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  EXPECT_EQ(out.rfind("Table I\n", 0), 0u);
  // Two header rules + one inner rule + final rule.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1))
    ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, CustomAlignment) {
  TextTable t;
  t.set_header({"l", "r"});
  t.set_alignments({Align::kLeft, Align::kLeft});
  t.add_row({"x", "y"});
  EXPECT_NE(t.render().find("| x | y |"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(TextTable, RejectsRenderWithoutHeader) {
  TextTable t;
  EXPECT_THROW(t.render(), CheckError);
}

TEST(TextTable, RowCount) {
  TextTable t;
  t.set_header({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace gpuperf
