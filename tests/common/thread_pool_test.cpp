#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"

namespace gpuperf {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13)
                                     throw std::runtime_error("unlucky");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), CheckError);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ThreadPool, ManySmallParallelFors) {
  ThreadPool pool(4);
  long long total = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<long long> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<long long>(i);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 20LL * (99 * 100 / 2));
}

}  // namespace
}  // namespace gpuperf
