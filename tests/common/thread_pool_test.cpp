#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace gpuperf {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 13)
                                     throw std::runtime_error("unlucky");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), CheckError);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

TEST(ThreadPool, ManySmallParallelFors) {
  ThreadPool pool(4);
  long long total = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<long long> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<long long>(i);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 20LL * (99 * 100 / 2));
}

// --- Contention guarantees the serve subsystem leans on -------------

TEST(ThreadPool, ManyProducersSubmitConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        pool.submit([&] { ++counter; });
    });
  for (auto& producer : producers) producer.join();
  pool.wait();
  EXPECT_EQ(counter.load(), kProducers * kPerProducer);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, SubmitTaskDeliversValuesThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit_task([i] { return i * i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SubmitTaskExceptionsStayInTheirFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit_task(
      []() -> int { throw std::runtime_error("mine alone"); });
  auto good = pool.submit_task([] { return 7; });
  EXPECT_EQ(good.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A submit_task failure is not pool-global: wait() stays clean, so
  // other clients of a shared pool never observe someone else's error.
  pool.wait();
}

TEST(ThreadPool, ExceptionsUnderContentionDoNotWedgeThePool) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&, i] {
      ++ran;
      if (i % 10 == 3) throw std::runtime_error("sporadic");
    });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 100);  // failures never stop the queue draining
  std::atomic<int> after{0};
  pool.submit([&] { ++after; });
  pool.wait();
  EXPECT_EQ(after.load(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    // No wait(): destruction itself must finish the queue.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ConcurrentWaitersBothComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c)
    clients.emplace_back([&] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit_task([&] { ++counter; }));
      for (auto& future : futures) future.get();
    });
  for (auto& client : clients) client.join();
  EXPECT_EQ(counter.load(), 300);
}

TEST(ThreadPool, QueueDepthReflectsBacklog) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.submit([gate] { gate.wait(); });  // occupy the only worker
  for (int i = 0; i < 5; ++i) pool.submit([] {});
  EXPECT_GE(pool.queue_depth(), 1u);
  release.set_value();
  pool.wait();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

}  // namespace
}  // namespace gpuperf
