// The cancellation primitive behind bounded analysis: budgets must trip
// exactly when exhausted, unlimited deadlines must cost (nearly)
// nothing and never throw, and loosest() must never tighten a batch
// member's budget.
#include "common/deadline.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace gpuperf {
namespace {

TEST(Deadline, DefaultIsUnlimitedAndNeverThrows) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  EXPECT_FALSE(deadline.timed());
  EXPECT_FALSE(deadline.expired());
  for (int i = 0; i < 100000; ++i) deadline.charge("test");
  deadline.check("test");
  // Unlimited deadlines skip step accounting entirely.
  EXPECT_EQ(deadline.steps_charged(), 0u);
  EXPECT_GT(deadline.remaining_ms(), 1'000'000'000LL);
}

TEST(Deadline, StepBudgetTripsExactlyAtTheBound) {
  Deadline deadline;
  deadline.with_step_budget(10);
  EXPECT_FALSE(deadline.unlimited());
  for (int i = 0; i < 10; ++i) deadline.charge("unit");
  EXPECT_EQ(deadline.steps_charged(), 10u);
  EXPECT_FALSE(deadline.expired());
  EXPECT_THROW(deadline.charge("unit"), AnalysisTimeout);
  EXPECT_TRUE(deadline.expired());
}

TEST(Deadline, BulkChargeCountsEveryUnit) {
  Deadline deadline;
  deadline.with_step_budget(100);
  deadline.charge("bulk", 60);
  deadline.charge("bulk", 40);
  EXPECT_THROW(deadline.charge("bulk", 1), AnalysisTimeout);
}

TEST(Deadline, WallClockExpiryIsDetected) {
  const Deadline deadline = Deadline::after_ms(1);
  EXPECT_TRUE(deadline.timed());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_ms(), 0);
  EXPECT_THROW(deadline.check("wall"), AnalysisTimeout);
  // charge() polls the clock every few thousand steps, so a hot loop
  // still stops within a bounded number of charges.
  const Deadline fresh = Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_THROW(
      {
        for (int i = 0; i < 10000; ++i) fresh.charge("loop");
      },
      AnalysisTimeout);
}

TEST(Deadline, TimeoutMessageNamesTheSite) {
  Deadline deadline;
  deadline.with_step_budget(0);
  try {
    deadline.charge("my_kernel");
    FAIL() << "expected AnalysisTimeout";
  } catch (const AnalysisTimeout& e) {
    EXPECT_NE(std::string(e.what()).find("my_kernel"), std::string::npos);
  }
}

TEST(Deadline, LoosestKeepsTheMostGenerousBudget) {
  // Both timed: the later expiry wins.
  const Deadline near = Deadline::after_ms(10);
  const Deadline far = Deadline::after_ms(10'000);
  const Deadline both = Deadline::loosest(near, far);
  EXPECT_TRUE(both.timed());
  EXPECT_EQ(both.expiry(), far.expiry());

  // One side unbounded: the result must be unbounded too.
  const Deadline mixed = Deadline::loosest(near, Deadline());
  EXPECT_TRUE(mixed.unlimited());

  // Step budgets combine the same way.
  Deadline small;
  small.with_step_budget(5);
  Deadline large;
  large.with_step_budget(500);
  Deadline merged = Deadline::loosest(small, large);
  for (int i = 0; i < 500; ++i) merged.charge("merged");
  EXPECT_THROW(merged.charge("merged"), AnalysisTimeout);
  EXPECT_TRUE(Deadline::loosest(small, Deadline()).unlimited());
}

TEST(Deadline, RemainingMsClampsAtZero) {
  const Deadline deadline = Deadline::after_ms(50);
  EXPECT_GT(deadline.remaining_ms(), 0);
  EXPECT_LE(deadline.remaining_ms(), 50);
}

}  // namespace
}  // namespace gpuperf
