#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("\t\n abc \r\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("resnet50@gtx", "resnet50"));
  EXPECT_FALSE(starts_with("res", "resnet"));
  EXPECT_TRUE(ends_with("model.ptx", ".ptx"));
  EXPECT_FALSE(ends_with("x", "xx"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MobileNetV2"), "mobilenetv2");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(25549352), "25,549,352");
  EXPECT_EQ(with_commas(1046113195), "1,046,113,195");
  EXPECT_THROW(with_commas(-1), CheckError);
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(5.73, 2), "5.73");
  EXPECT_EQ(fixed(1.0, 0), "1");
  EXPECT_EQ(fixed(-0.4439, 4), "-0.4439");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4x"), CheckError);
  EXPECT_THROW(parse_int(""), CheckError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), CheckError);
}

}  // namespace
}  // namespace gpuperf
