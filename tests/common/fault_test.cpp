// The fault-injection registry itself: arming, firing, counting,
// auto-disarm, spec parsing.  The chaos suite (tests/serve/chaos_test)
// builds on these primitives; here they are verified in isolation.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>

#include "common/check.hpp"

#ifdef GPUPERF_FAULT_INJECTION

namespace gpuperf::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultTest, DisarmedSiteIsANoop) {
  point("nobody.armed.this");
  EXPECT_FALSE(corrupt("nobody.armed.this"));
  EXPECT_EQ(hits("nobody.armed.this"), 0u);
}

TEST_F(FaultTest, ThrowActionFiresAndCounts) {
  arm("t.site", Spec{});
  EXPECT_THROW(point("t.site"), FaultInjected);
  EXPECT_THROW(point("t.site"), FaultInjected);
  EXPECT_EQ(hits("t.site"), 2u);
  disarm("t.site");
  point("t.site");  // disarmed again: no throw
}

TEST_F(FaultTest, TimeoutActionThrowsAnalysisTimeout) {
  Spec spec;
  spec.action = Action::kTimeout;
  arm("t.timeout", spec);
  EXPECT_THROW(point("t.timeout"), AnalysisTimeout);
}

TEST_F(FaultTest, CountedSpecAutoDisarms) {
  Spec spec;
  spec.remaining = 2;
  arm("t.counted", spec);
  EXPECT_THROW(point("t.counted"), FaultInjected);
  EXPECT_THROW(point("t.counted"), FaultInjected);
  point("t.counted");  // third call: spent, no fault
  EXPECT_EQ(hits("t.counted"), 2u);
}

TEST_F(FaultTest, CorruptOnlyFiresThroughCorruptQuery) {
  Spec spec;
  spec.action = Action::kCorrupt;
  arm("t.corrupt", spec);
  point("t.corrupt");  // a corrupt spec never makes point() throw
  EXPECT_TRUE(corrupt("t.corrupt"));
  // And a throw spec never answers the corrupt query.
  arm("t.throw", Spec{});
  EXPECT_FALSE(corrupt("t.throw"));
}

TEST_F(FaultTest, DelayHonorsTheCallersDeadline) {
  Spec spec;
  spec.action = Action::kDelay;
  spec.delay_ms = 5000;
  arm("t.delay", spec);
  const Deadline deadline = Deadline::after_ms(20);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(point("t.delay", &deadline), AnalysisTimeout);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  // The 5 s delay was cut short by the 20 ms deadline.
  EXPECT_LT(elapsed.count(), 2000);
}

TEST_F(FaultTest, SpecStringArmsMultipleSites) {
  arm_from_spec("a.one=throw*2;a.two=timeout;a.three=corrupt");
  EXPECT_THROW(point("a.one"), FaultInjected);
  EXPECT_THROW(point("a.two"), AnalysisTimeout);
  EXPECT_TRUE(corrupt("a.three"));
  EXPECT_THROW(point("a.one"), FaultInjected);
  point("a.one");  // *2 exhausted
}

TEST_F(FaultTest, SpecStringParsesDelayParameter) {
  arm_from_spec("a.slow=delay:1");
  const auto start = std::chrono::steady_clock::now();
  point("a.slow");
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 1);
}

TEST_F(FaultTest, MalformedSpecIsRejected) {
  EXPECT_THROW(arm_from_spec("no-equals-sign"), CheckError);
  EXPECT_THROW(arm_from_spec("site=frobnicate"), CheckError);
}

TEST_F(FaultTest, EnvSpecArmsWithoutDeadlock) {
  // Regression: $GPUPERF_FAULT is parsed under a call_once whose lambda
  // arms sites; arm() re-entering that call_once deadlocked the first
  // point() of any env-armed process.  A fresh child process (threadsafe
  // death test) is the only place the env parse can still be pristine.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        ::alarm(5);  // a regression deadlocks rather than fails
        ::setenv("GPUPERF_FAULT", "env.site=throw*1", 1);
        try {
          point("env.site");
        } catch (const FaultInjected&) {
          std::_Exit(0);
        }
        std::_Exit(1);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("t.scoped", Spec{});
    EXPECT_THROW(point("t.scoped"), FaultInjected);
  }
  point("t.scoped");  // out of scope: disarmed
}

}  // namespace
}  // namespace gpuperf::fault

#endif  // GPUPERF_FAULT_INJECTION
