#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace gpuperf {
namespace {

TEST(Arena, AllocationsAreDistinctAndAligned) {
  Arena arena(128);
  void* a = arena.allocate(10, 8);
  void* b = arena.allocate(10, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  void* c = arena.allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 21u);
}

TEST(Arena, GrowsPastFirstChunk) {
  Arena arena(64);
  // Far more than the first chunk; every allocation must stay usable.
  std::span<std::uint32_t> big = arena.alloc_array<std::uint32_t>(10000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < big.size(); ++i)
    ASSERT_EQ(big[i], static_cast<std::uint32_t>(i));
  EXPECT_GE(arena.bytes_reserved(), 40000u);
}

TEST(Arena, AllocZeroedIsZero) {
  Arena arena;
  std::span<std::uint64_t> z = arena.alloc_zeroed<std::uint64_t>(1000);
  for (std::uint64_t v : z) ASSERT_EQ(v, 0u);
}

TEST(Arena, ResetRetainsCapacityAndReusesIt) {
  Arena arena(64);
  arena.alloc_array<std::byte>(100000);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The largest chunk survives the reset, so a same-sized workload fits
  // without growing the reservation.
  EXPECT_LE(arena.bytes_reserved(), reserved);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.alloc_array<std::byte>(50000);
  EXPECT_EQ(arena.bytes_reserved(), arena.bytes_reserved());
}

TEST(Arena, ResetScopeResetsOnExit) {
  Arena arena;
  {
    const Arena::ResetScope scope(arena);
    arena.alloc_array<int>(100);
    EXPECT_GT(arena.bytes_used(), 0u);
  }
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  EXPECT_NE(arena.allocate(0), arena.allocate(0));
}

}  // namespace
}  // namespace gpuperf
