#include "common/csv.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf {
namespace {

TEST(Csv, WriteSimple) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", "4"}};
  EXPECT_EQ(csv_write(doc), "a,b\n1,2\n3,4\n");
}

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, ParseRoundTrip) {
  CsvDocument doc;
  doc.header = {"name", "value", "note"};
  doc.rows = {{"x", "1.5", "a,b"},
              {"quoted \"q\"", "-2", "line\nbreak"},
              {"", "0", ""}};
  const CsvDocument parsed = csv_parse(csv_write(doc));
  EXPECT_EQ(parsed.header, doc.header);
  ASSERT_EQ(parsed.rows.size(), doc.rows.size());
  for (std::size_t i = 0; i < doc.rows.size(); ++i)
    EXPECT_EQ(parsed.rows[i], doc.rows[i]) << "row " << i;
}

TEST(Csv, ParseCrlf) {
  const CsvDocument doc = csv_parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, ColumnLookup) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  EXPECT_EQ(doc.column("y"), 1u);
  EXPECT_THROW(doc.column("z"), CheckError);
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW(csv_parse("a,b\n1\n"), CheckError);
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_THROW(csv_parse("a\n\"unterminated\n"), CheckError);
}

TEST(Csv, RejectsEmpty) { EXPECT_THROW(csv_parse(""), CheckError); }

TEST(Csv, HeaderOnly) {
  const CsvDocument doc = csv_parse("a,b,c\n");
  EXPECT_EQ(doc.header.size(), 3u);
  EXPECT_TRUE(doc.rows.empty());
}

TEST(Csv, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"alpha", "1"}, {"beta", "2"}};
  const std::string path = ::testing::TempDir() + "/gpuperf_csv_test.csv";
  csv_save(doc, path);
  const CsvDocument loaded = csv_load(path);
  EXPECT_EQ(loaded.header, doc.header);
  EXPECT_EQ(loaded.rows, doc.rows);
  EXPECT_THROW(csv_load(path + ".missing"), CheckError);
}

}  // namespace
}  // namespace gpuperf
