#include "common/mapped_buffer.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/csr_graph.hpp"
#include "common/arena.hpp"
#include "common/limits.hpp"

namespace gpuperf {
namespace {

std::string make_spill_dir() {
  char tmpl[] = "/tmp/gpuperf-spill-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

TEST(MappedBuffer, SmallAllocationIsAnonymousAndZeroed) {
  const MappedBuffer buf =
      MappedBuffer::allocate(4096, SpillConfig{}, "test bytes");
  ASSERT_EQ(buf.size_bytes(), 4096u);
  EXPECT_FALSE(buf.file_backed());
  for (std::size_t i = 0; i < buf.size_bytes(); ++i)
    ASSERT_EQ(buf.data()[i], std::byte{0});
}

TEST(MappedBuffer, OverBudgetWithoutDirThrowsLimitExceeded) {
  SpillConfig config;
  config.resident_budget_bytes = 1024;
  EXPECT_THROW(MappedBuffer::allocate(4096, config, "test bytes"),
               LimitExceeded);
}

TEST(MappedBuffer, OverBudgetWithDirSpillsToFile) {
  SpillConfig config;
  config.dir = make_spill_dir();
  config.resident_budget_bytes = 1024;
  const std::uint64_t files_before = MappedBuffer::spill_files_total();
  const std::uint64_t bytes_before = MappedBuffer::spill_bytes_total();
  {
    MappedBuffer buf = MappedBuffer::allocate(1u << 20, config, "test bytes");
    EXPECT_TRUE(buf.file_backed());
    EXPECT_EQ(MappedBuffer::spill_files_total(), files_before + 1);
    EXPECT_EQ(MappedBuffer::spill_bytes_total(), bytes_before + (1u << 20));
    // Writable, and data survives a resident-page drop (file-backed
    // pages fault back in from the spill file).
    std::memset(buf.data(), 0xAB, buf.size_bytes());
    buf.release_resident();
    for (std::size_t i = 0; i < buf.size_bytes(); i += 4096)
      ASSERT_EQ(buf.data()[i], std::byte{0xAB});
  }
  ::rmdir(config.dir.c_str());
}

TEST(MappedBuffer, MissingSpillDirFallsBackToAnonymous) {
  SpillConfig config;
  config.dir = "/nonexistent/gpuperf-spill-dir";
  config.resident_budget_bytes = 1024;
  const MappedBuffer buf =
      MappedBuffer::allocate(1u << 20, config, "test bytes");
  ASSERT_EQ(buf.size_bytes(), 1u << 20);
  EXPECT_FALSE(buf.file_backed());  // degraded, not rejected
}

TEST(MappedBuffer, GrowPreservesContents) {
  MappedBuffer buf = MappedBuffer::allocate(4096, SpillConfig{}, "test");
  std::memset(buf.data(), 0x5C, 4096);
  buf.grow(1u << 20);
  ASSERT_EQ(buf.size_bytes(), 1u << 20);
  for (std::size_t i = 0; i < 4096; ++i)
    ASSERT_EQ(buf.data()[i], std::byte{0x5C});
}

TEST(MappedBuffer, SpillConfigRoundTrips) {
  const SpillConfig saved = dca_spill_config();
  SpillConfig config;
  config.dir = "/tmp";
  config.resident_budget_bytes = 12345;
  set_dca_spill_config(config);
  EXPECT_EQ(dca_spill_config().dir, "/tmp");
  EXPECT_EQ(dca_spill_config().resident_budget_bytes, 12345u);
  set_dca_spill_config(saved);
}

TEST(CsrGraph, TwoPassBuildAndRowAccess) {
  Arena scratch;
  CsrGraph::Builder builder(3, scratch, CsrMemoryPolicy{});
  builder.add_count(0, 2);
  builder.add_count(2, 1);
  builder.finish_counts();
  builder.add_edge(0, 7);
  builder.add_edge(0, 5);
  builder.add_edge(2, 9);
  const CsrGraph g = builder.finish();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  ASSERT_EQ(g.row(0).size(), 2u);
  EXPECT_EQ(g.row(0)[0], 7u);  // insertion order without sort_unique
  EXPECT_EQ(g.row(0)[1], 5u);
  EXPECT_TRUE(g.row(1).empty());
  ASSERT_EQ(g.row(2).size(), 1u);
  EXPECT_EQ(g.row(2)[0], 9u);
  EXPECT_GT(g.bytes(), 0u);
  EXPECT_FALSE(g.spilled());
}

TEST(CsrGraph, SortUniqueCompactsRowsInPlace) {
  Arena scratch;
  CsrGraph::Builder builder(3, scratch, CsrMemoryPolicy{});
  builder.add_count(0, 4);
  builder.add_count(1, 3);
  builder.add_count(2, 2);
  builder.finish_counts();
  for (CsrGraph::Index t : {9u, 3u, 9u, 3u}) builder.add_edge(0, t);
  for (CsrGraph::Index t : {2u, 1u, 2u}) builder.add_edge(1, t);
  for (CsrGraph::Index t : {4u, 4u}) builder.add_edge(2, t);
  const CsrGraph g = builder.finish(/*sort_unique_rows=*/true);
  EXPECT_EQ(g.edge_count(), 5u);
  ASSERT_EQ(g.row(0).size(), 2u);
  EXPECT_EQ(g.row(0)[0], 3u);
  EXPECT_EQ(g.row(0)[1], 9u);
  ASSERT_EQ(g.row(1).size(), 2u);
  EXPECT_EQ(g.row(1)[0], 1u);
  EXPECT_EQ(g.row(1)[1], 2u);
  ASSERT_EQ(g.row(2).size(), 1u);
  EXPECT_EQ(g.row(2)[0], 4u);
}

TEST(CsrGraph, HardCapRejects) {
  Arena scratch;
  CsrMemoryPolicy policy;
  policy.hard_cap_bytes = 64;
  policy.what = "test graph bytes";
  CsrGraph::Builder builder(100, scratch, policy);
  for (std::size_t i = 0; i < 100; ++i) builder.add_count(i, 10);
  EXPECT_THROW(builder.finish_counts(), LimitExceeded);
}

}  // namespace
}  // namespace gpuperf
