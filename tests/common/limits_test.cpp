#include "common/limits.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/crc32.hpp"

namespace gpuperf {
namespace {

TEST(Limits, EnforceLimitPassesAtAndBelowTheBound) {
  EXPECT_NO_THROW(enforce_limit(0, 10, "things"));
  EXPECT_NO_THROW(enforce_limit(10, 10, "things"));
  EXPECT_THROW(enforce_limit(11, 10, "things"), LimitExceeded);
}

TEST(Limits, LimitExceededMessageNamesTheBudget) {
  try {
    enforce_limit(12, 10, "tree nodes");
    FAIL() << "expected LimitExceeded";
  } catch (const LimitExceeded& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tree nodes"), std::string::npos);
    EXPECT_NE(what.find("12"), std::string::npos);
    EXPECT_NE(what.find("10"), std::string::npos);
  }
}

TEST(Limits, ExceptionHierarchyStaysCatchable) {
  // Existing catch(CheckError) sites must keep seeing both new types.
  EXPECT_THROW(throw LimitExceeded("x"), InputRejected);
  EXPECT_THROW(throw LimitExceeded("x"), CheckError);
  EXPECT_THROW(throw InputRejected("x"), CheckError);
}

TEST(Limits, BudgetChargesAccumulate) {
  InputLimits limits;
  limits.max_tokens = 3;
  limits.max_instructions = 2;
  limits.max_kernels = 1;
  ResourceBudget budget(limits);

  budget.charge_tokens(2);
  budget.charge_tokens();
  EXPECT_EQ(budget.tokens(), 3u);
  EXPECT_THROW(budget.charge_tokens(), LimitExceeded);

  budget.charge_instructions(2);
  EXPECT_THROW(budget.charge_instructions(), LimitExceeded);

  budget.charge_kernels();
  EXPECT_THROW(budget.charge_kernels(), LimitExceeded);
}

TEST(Limits, AllocAccountingTripsBeforeTheAllocator) {
  InputLimits limits;
  limits.max_alloc_bytes = 1024;
  ResourceBudget budget(limits);
  budget.charge_alloc(1000);
  EXPECT_EQ(budget.alloc_bytes(), 1000u);
  // The forged-header case: a huge element count must throw here, not
  // reach a vector::reserve.
  EXPECT_THROW(budget.charge_alloc(1u << 30), LimitExceeded);
}

TEST(Limits, DepthScopeGuardsRecursion) {
  InputLimits limits;
  limits.max_depth = 2;
  ResourceBudget budget(limits);
  {
    auto d1 = budget.enter_depth();
    EXPECT_EQ(budget.depth(), 1u);
    {
      auto d2 = budget.enter_depth();
      EXPECT_EQ(budget.depth(), 2u);
      EXPECT_THROW(budget.enter_depth(), LimitExceeded);
    }
    EXPECT_EQ(budget.depth(), 1u);
  }
  EXPECT_EQ(budget.depth(), 0u);
}

TEST(Limits, DefaultsAreStableAcrossCalls) {
  const InputLimits& a = InputLimits::defaults();
  const InputLimits& b = InputLimits::defaults();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.max_ptx_bytes, 0u);
}

TEST(Crc32, MatchesReferenceVectors) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string payload = "gpuperf-features v1\ntopology 0000000000001111\n";
  const std::uint32_t good = crc32(payload);
  for (std::size_t i = 0; i < payload.size(); i += 7) {
    std::string flipped = payload;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(crc32(flipped), good) << "flip at byte " << i;
  }
}

TEST(Crc32, SeedChainsIncrementalUpdates) {
  const std::string text = "hello, journal";
  const std::uint32_t whole = crc32(text);
  // Chaining semantics are an implementation detail of this API; what
  // matters is that distinct inputs give distinct checksums and equal
  // inputs agree.
  EXPECT_EQ(crc32(text), whole);
  EXPECT_NE(crc32(text + "!"), whole);
}

}  // namespace
}  // namespace gpuperf
