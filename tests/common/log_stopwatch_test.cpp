#include <gtest/gtest.h>

#include <thread>

#include "common/log.hpp"
#include "common/stopwatch.hpp"

namespace gpuperf {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacroStreamsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // filtered: exercises the path only
  GP_LOG(kInfo) << "model " << 42 << " ipc " << 2.5;
  GP_LOG(kDebug) << std::string("below threshold");
  SUCCEED();
}

TEST(Log, FilteredLinesAreCheap) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // A million filtered lines must complete quickly (no I/O).
  for (int i = 0; i < 100000; ++i) log_line(LogLevel::kDebug, "x");
  SUCCEED();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(watch.elapsed_ms(), watch.elapsed_seconds() * 1e3,
              watch.elapsed_ms() * 0.5);
}

TEST(Stopwatch, ResetRestartsTheWindow) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), 0.010);
}

TEST(Stopwatch, MonotoneNonDecreasing) {
  Stopwatch watch;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = watch.elapsed_seconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace gpuperf
