#include "core/dataset_builder.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace gpuperf::core {
namespace {

DatasetOptions small_options() {
  DatasetOptions o;
  o.models = {"alexnet", "MobileNetV2", "mobilenet"};
  o.devices = {"gtx1080ti", "v100s"};
  o.seed = 11;
  return o;
}

TEST(DatasetBuilder, BuildsModelTimesDeviceRows) {
  DatasetBuilder builder(small_options());
  const ml::Dataset data = builder.build();
  EXPECT_EQ(data.size(), 6u);
  EXPECT_EQ(data.feature_names(), FeatureExtractor::feature_names());
  EXPECT_EQ(data.target_name(), "ipc");
  EXPECT_EQ(data.tag(0), "alexnet@gtx1080ti");
  EXPECT_EQ(data.tag(1), "alexnet@v100s");
  EXPECT_EQ(data.tag(5), "mobilenet@v100s");
}

TEST(DatasetBuilder, TargetsArePlausibleIpc) {
  DatasetBuilder builder(small_options());
  const ml::Dataset data = builder.build();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_GT(data.target(i), 0.0) << data.tag(i);
    EXPECT_LT(data.target(i), 8.0) << data.tag(i);
  }
}

TEST(DatasetBuilder, DeterministicForSeed) {
  const ml::Dataset a = DatasetBuilder(small_options()).build();
  const ml::Dataset b = DatasetBuilder(small_options()).build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.target(i), b.target(i)) << a.tag(i);
}

TEST(DatasetBuilder, SeedChangesNoise) {
  DatasetOptions o = small_options();
  const ml::Dataset a = DatasetBuilder(o).build();
  o.seed = 12;
  const ml::Dataset b = DatasetBuilder(o).build();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.target(i) != b.target(i)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(DatasetBuilder, CnnFeaturesSharedAcrossDevices) {
  DatasetBuilder builder(small_options());
  const ml::Dataset data = builder.build();
  // Rows 0/1 are the same model on two devices: identical CNN features,
  // different device features.
  EXPECT_DOUBLE_EQ(data.row(0)[0], data.row(1)[0]);
  EXPECT_DOUBLE_EQ(data.row(0)[1], data.row(1)[1]);
  EXPECT_NE(data.row(0)[2], data.row(1)[2]);  // mem bandwidth differs
}

TEST(DatasetBuilder, RejectsUnknownDevice) {
  DatasetOptions o = small_options();
  o.devices = {"imaginarygpu"};
  EXPECT_THROW(DatasetBuilder{o}, CheckError);
}

TEST(DatasetBuilder, DefaultsCoverFullZoo) {
  DatasetBuilder builder;  // all models, two training devices
  // Constructing is enough to check the defaults resolve; the full
  // build is exercised by the bench binaries.
  SUCCEED();
}

}  // namespace
}  // namespace gpuperf::core
