#include "core/dse.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/dataset_builder.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::core {
namespace {

PerformanceEstimator make_trained_estimator() {
  DatasetOptions o;
  o.models = {"alexnet", "MobileNetV2", "mobilenet", "vgg16",
              "densenet121", "resnet50v2"};
  o.devices = {"gtx1080ti", "v100s"};
  o.seed = 33;
  PerformanceEstimator est("dt", 42);
  est.train(DatasetBuilder(o).build());
  return est;
}

TEST(Dse, RequiresTrainedEstimator) {
  PerformanceEstimator untrained("dt", 1);
  EXPECT_THROW(DseExplorer{untrained}, CheckError);
}

TEST(Dse, RankDevicesSortedByThroughput) {
  PerformanceEstimator est = make_trained_estimator();
  DseExplorer dse(est);
  const auto ranking =
      dse.rank_devices("alexnet", gpu::dse_devices());
  ASSERT_EQ(ranking.size(), gpu::dse_devices().size());
  for (std::size_t i = 1; i < ranking.size(); ++i)
    EXPECT_GE(ranking[i - 1].predicted_throughput,
              ranking[i].predicted_throughput);
  for (const auto& r : ranking) {
    EXPECT_GT(r.predicted_ipc, 0.0);
    EXPECT_TRUE(gpu::has_device(r.device));
  }
}

TEST(Dse, TimingModelAlgebra) {
  DseTiming t;
  t.t_dca = 10.0;
  t.t_pm = 0.5;
  t.t_p = 300.0;
  EXPECT_DOUBLE_EQ(t.t_est(1), 10.5);
  EXPECT_DOUBLE_EQ(t.t_est(7), 13.5);
  EXPECT_DOUBLE_EQ(t.t_measur(7), 2100.0);
  EXPECT_DOUBLE_EQ(t.speedup(7), 2100.0 / 13.5);
  // Speedup grows with n when t_pm << t_p.
  EXPECT_GT(t.speedup(7), t.speedup(1));
}

TEST(Dse, TimeModelMeasuresRealPipeline) {
  PerformanceEstimator est = make_trained_estimator();
  DseExplorer dse(est);
  const DseTiming timing =
      dse.time_model("MobileNetV2", {"gtx1080ti", "v100s"});
  EXPECT_EQ(timing.model, "MobileNetV2");
  EXPECT_GT(timing.t_dca, 0.0);
  EXPECT_GT(timing.t_pm, 0.0);
  EXPECT_GT(timing.t_p, 1.0);
  // The paper's headline: estimation beats profiling for any n.
  for (int n = 1; n <= 7; ++n)
    EXPECT_LT(timing.t_est(n), timing.t_measur(n)) << "n=" << n;
}

}  // namespace
}  // namespace gpuperf::core
