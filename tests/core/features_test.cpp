#include "core/features.hpp"

#include <gtest/gtest.h>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::core {
namespace {

TEST(Features, SchemaMatchesCnnPlusDevice) {
  const auto& names = FeatureExtractor::feature_names();
  ASSERT_EQ(names.size(), 2 + gpu::DeviceSpec::feature_names().size());
  EXPECT_EQ(names[0], "executed_instructions");
  EXPECT_EQ(names[1], "trainable_params");
  EXPECT_EQ(names[2], "mem_bandwidth_gbs");
}

TEST(Features, ComputeFillsAllFields) {
  FeatureExtractor extractor;
  const ModelFeatures f =
      extractor.compute(cnn::zoo::build("MobileNetV2"));
  EXPECT_EQ(f.model_name, "MobileNetV2");
  EXPECT_GT(f.executed_instructions, 0);
  EXPECT_EQ(f.trainable_params, 3504872);
  EXPECT_GT(f.macs, 0);
  EXPECT_GT(f.neurons, 0);
  EXPECT_GT(f.weighted_layers, 0);
  EXPECT_GE(f.dca_seconds, 0.0);
}

TEST(Features, FeatureVectorLayout) {
  FeatureExtractor extractor;
  const ModelFeatures f = extractor.compute(cnn::zoo::build("alexnet"));
  const gpu::DeviceSpec& device = gpu::device("gtx1080ti");
  const auto x = FeatureExtractor::feature_vector(f, device);
  ASSERT_EQ(x.size(), FeatureExtractor::feature_names().size());
  EXPECT_DOUBLE_EQ(x[0],
                   static_cast<double>(f.executed_instructions));
  EXPECT_DOUBLE_EQ(x[1], static_cast<double>(f.trainable_params));
  EXPECT_DOUBLE_EQ(x[2], device.memory_bandwidth_gbs);
}

TEST(Features, ZooCacheReturnsSameObject) {
  FeatureExtractor extractor;
  const ModelFeatures& a = extractor.for_zoo_model("alexnet");
  const ModelFeatures& b = extractor.for_zoo_model("alexnet");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(extractor.for_zoo_model("nope"), CheckError);
}

TEST(Features, InstructionsDeterministic) {
  FeatureExtractor e1, e2;
  EXPECT_EQ(e1.compute(cnn::zoo::build("mobilenet")).executed_instructions,
            e2.compute(cnn::zoo::build("mobilenet")).executed_instructions);
}

}  // namespace
}  // namespace gpuperf::core
