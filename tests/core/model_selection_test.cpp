#include "core/model_selection.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/dataset_builder.hpp"

namespace gpuperf::core {
namespace {

const ml::Dataset& selection_dataset() {
  static const ml::Dataset data = [] {
    DatasetOptions o;
    o.models = {"alexnet",     "MobileNetV2", "mobilenet",  "vgg16",
                "densenet121", "resnet50v2",  "Xception",   "inceptionv3",
                "m-r50x1",     "efficientnetb0"};
    o.seed = 55;
    return DatasetBuilder(o).build();
  }();
  return data;
}

TEST(ModelSelection, RanksAllFiveCandidates) {
  const SelectionResult result = select_regressor(selection_dataset(), 4);
  ASSERT_EQ(result.candidates.size(), ml::regressor_ids().size());
  // Sorted ascending by pooled MAPE.
  for (std::size_t i = 1; i < result.candidates.size(); ++i)
    EXPECT_LE(result.candidates[i - 1].cv.pooled.mape,
              result.candidates[i].cv.pooled.mape);
  EXPECT_EQ(result.best_id, result.candidates.front().regressor_id);
}

TEST(ModelSelection, WinnerBeatsLinearBaseline) {
  const SelectionResult result = select_regressor(selection_dataset(), 4);
  double linear_mape = -1.0;
  for (const auto& c : result.candidates)
    if (c.regressor_id == "linear") linear_mape = c.cv.pooled.mape;
  ASSERT_GT(linear_mape, 0.0);
  EXPECT_LT(result.candidates.front().cv.pooled.mape, linear_mape);
  EXPECT_NE(result.best_id, "linear");
}

TEST(ModelSelection, CustomCandidateList) {
  const SelectionResult result =
      select_regressor(selection_dataset(), 4, {"dt", "knn"});
  ASSERT_EQ(result.candidates.size(), 2u);
  EXPECT_TRUE(result.best_id == "dt" || result.best_id == "knn");
  EXPECT_THROW(
      select_regressor(selection_dataset(), 4, {"not-a-model"}),
      CheckError);
}

TEST(ModelSelection, Deterministic) {
  const SelectionResult a = select_regressor(selection_dataset(), 3);
  const SelectionResult b = select_regressor(selection_dataset(), 3);
  EXPECT_EQ(a.best_id, b.best_id);
  for (std::size_t i = 0; i < a.candidates.size(); ++i)
    EXPECT_DOUBLE_EQ(a.candidates[i].cv.pooled.mape,
                     b.candidates[i].cv.pooled.mape);
}

}  // namespace
}  // namespace gpuperf::core
