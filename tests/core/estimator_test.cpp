#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "core/dataset_builder.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::core {
namespace {

const ml::Dataset& tiny_dataset() {
  static const ml::Dataset data = [] {
    DatasetOptions o;
    o.models = {"alexnet", "MobileNetV2", "mobilenet", "vgg16",
                "densenet121", "resnet50v2"};
    o.devices = {"gtx1080ti", "v100s"};
    o.seed = 21;
    return DatasetBuilder(o).build();
  }();
  return data;
}

TEST(Estimator, TrainPredictEvaluateRoundTrip) {
  PerformanceEstimator est("dt", 42);
  EXPECT_FALSE(est.is_trained());
  est.train(tiny_dataset());
  EXPECT_TRUE(est.is_trained());

  const ml::RegressionScore score = est.evaluate(tiny_dataset());
  EXPECT_LT(score.mape, 15.0);  // training-set fit should be decent

  const double p = est.predict(tiny_dataset().row(0));
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 8.0);
}

TEST(Estimator, PredictByModelAndDevice) {
  PerformanceEstimator est("dt", 42);
  est.train(tiny_dataset());
  const double ipc = est.predict("alexnet", gpu::device("gtx1080ti"));
  EXPECT_GT(ipc, 0.0);
  EXPECT_GE(est.last_dca_seconds(), 0.0);
  EXPECT_GE(est.last_predict_seconds(), 0.0);
  // Second call hits the feature cache but still predicts.
  EXPECT_DOUBLE_EQ(est.predict("alexnet", gpu::device("gtx1080ti")), ipc);
}

TEST(Estimator, EveryRegressorIdTrains) {
  for (const auto& id : ml::regressor_ids()) {
    PerformanceEstimator est(id, 42);
    est.train(tiny_dataset());
    EXPECT_TRUE(est.is_trained()) << id;
    EXPECT_EQ(est.regressor_id(), id);
    const double p = est.predict(tiny_dataset().row(0));
    EXPECT_TRUE(std::isfinite(p)) << id;
  }
  EXPECT_THROW(PerformanceEstimator("mlp", 1), CheckError);
}

TEST(Estimator, TreeImportancesAlignWithSchema) {
  PerformanceEstimator est("dt", 42);
  est.train(tiny_dataset());
  const auto imp = est.feature_importances();
  ASSERT_EQ(imp.size(), FeatureExtractor::feature_names().size());
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Estimator, KnnHasNoImportances) {
  PerformanceEstimator est("knn", 42);
  est.train(tiny_dataset());
  EXPECT_TRUE(est.feature_importances().empty());
}

TEST(Estimator, ErrorsBeforeTraining) {
  PerformanceEstimator est("dt", 42);
  EXPECT_THROW(est.predict(std::vector<double>(10, 1.0)), CheckError);
  EXPECT_THROW(est.predict("alexnet", gpu::device("v100s")), CheckError);
  EXPECT_THROW(est.evaluate(tiny_dataset()), CheckError);
  EXPECT_THROW(est.feature_importances(), CheckError);
}

TEST(Estimator, RejectsWrongSchema) {
  PerformanceEstimator est("dt", 42);
  ml::Dataset wrong({"a", "b"}, "y");
  wrong.add_row({1, 2}, 3);
  EXPECT_THROW(est.train(wrong), CheckError);
}

TEST(Estimator, CrossPlatformPredictionOnUnseenDevice) {
  // Train on the two paper devices, predict on a device absent from
  // training — the cross-platform capability the paper claims.
  PerformanceEstimator est("dt", 42);
  est.train(tiny_dataset());
  const double ipc = est.predict("alexnet", gpu::device("teslat4"));
  EXPECT_GT(ipc, 0.0);
  EXPECT_LT(ipc, 8.0);
}


TEST(Estimator, ThreadSafeConstPredictMatchesNamedPredict) {
  PerformanceEstimator est("dt", 42);
  est.train(tiny_dataset());
  const double by_name = est.predict("alexnet", gpu::device("v100s"));
  const core::ModelFeatures features =
      FeatureExtractor().compute(cnn::zoo::build("alexnet"));
  EXPECT_DOUBLE_EQ(est.predict(features, gpu::device("v100s")), by_name);
}

TEST(Estimator, FeatureProviderShortCircuitsDca) {
  PerformanceEstimator est("dt", 42);
  est.train(tiny_dataset());
  const double baseline = est.predict("alexnet", gpu::device("v100s"));

  auto cached = std::make_shared<const ModelFeatures>(
      FeatureExtractor().compute(cnn::zoo::build("alexnet")));
  int provider_calls = 0;
  est.set_feature_provider(
      [&](const std::string& name)
          -> std::shared_ptr<const ModelFeatures> {
        ++provider_calls;
        return name == "alexnet" ? cached : nullptr;
      });

  EXPECT_DOUBLE_EQ(est.predict("alexnet", gpu::device("v100s")), baseline);
  EXPECT_EQ(provider_calls, 1);
  EXPECT_EQ(est.last_dca_seconds(), 0.0);  // features came from the cache
  // A provider miss falls back to the built-in extractor.
  const double fallback = est.predict("vgg16", gpu::device("v100s"));
  EXPECT_GT(fallback, 0.0);
  EXPECT_EQ(provider_calls, 2);
}

TEST(Estimator, SaveLoadRoundTrip) {
  PerformanceEstimator est("dt", 42);
  est.train(tiny_dataset());
  const std::string path = ::testing::TempDir() + "/gpuperf_estimator.txt";
  est.save(path);
  PerformanceEstimator loaded = PerformanceEstimator::load(path);
  EXPECT_TRUE(loaded.is_trained());
  for (std::size_t i = 0; i < tiny_dataset().size(); ++i)
    EXPECT_DOUBLE_EQ(loaded.predict(tiny_dataset().row(i)),
                     est.predict(tiny_dataset().row(i)));
}

TEST(Estimator, EveryRegressorIdSerializes) {
  for (const auto& id : ml::regressor_ids()) {
    PerformanceEstimator est(id, 42);
    est.train(tiny_dataset());
    const std::string path =
        ::testing::TempDir() + "/gpuperf_est_" + id + ".txt";
    est.save(path);
    PerformanceEstimator loaded = PerformanceEstimator::load(path);
    EXPECT_EQ(loaded.regressor_id(), id);
    for (std::size_t i = 0; i < tiny_dataset().size(); ++i)
      EXPECT_DOUBLE_EQ(loaded.predict(tiny_dataset().row(i)),
                       est.predict(tiny_dataset().row(i)))
          << id;
  }
}

TEST(Estimator, UntrainedEstimatorRefusesToSerialize) {
  PerformanceEstimator untrained("dt", 42);
  EXPECT_THROW(untrained.save(::testing::TempDir() + "/y.txt"), CheckError);
}

}  // namespace
}  // namespace gpuperf::core
