// gpuperf command-line tool: the library's workflow without writing
// C++.
//
//   gpuperf models                          list the Table I zoo
//   gpuperf devices                         list known GPGPUs
//   gpuperf analyze <model> [--layers]      static analysis report
//   gpuperf ptx [--model <name>]            print the kernel library or
//                                           a model's launch plan
//   gpuperf dataset [--out <csv>] [--devices a,b] [--extended]
//   gpuperf train --out <file> | --registry <dir>   train + save/publish
//   gpuperf predict <model> <device> [--tree <file>] [--registry <dir>]
//   gpuperf rank <model>                    DSE ranking over all devices
//   gpuperf dse <models|all> [--devices a,b] [--max-latency-ms N] ...
//                                           constraint-aware fleet sweep
//   gpuperf serve [--port N] [--threads K]  long-lived estimation daemon
//   gpuperf client <request...> [--port N]  one request to a daemon
//
// Flags accept both `--key value` and the explicit `--key=value` form
// (required when the value itself starts with "--"); the grammar is
// serve::parse_command, shared with the server's wire protocol.
#include <algorithm>
#include <cstdlib>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/subprocess.hpp"
#include "common/table.hpp"
#include "common/deadline.hpp"
#include "core/dataset_builder.hpp"
#include "core/dse.hpp"
#include "core/estimator.hpp"
#include "dse/sweep.hpp"
#include "dse/sweep_cache.hpp"
#include "gpu/device_db.hpp"
#include "ml/cross_validation.hpp"
#include "ml/model_io.hpp"
#include "ptx/codegen.hpp"
#include "ptx/counter.hpp"
#include "registry/registry.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace {

using namespace gpuperf;

constexpr int kDefaultPort = 8471;

using Args = serve::ParsedCommand;

Args parse_args(int argc, char** argv) {
  std::vector<std::string> words;
  for (int i = 2; i < argc; ++i) words.emplace_back(argv[i]);
  return serve::parse_command(words);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: gpuperf <command> [args]\n"
      "  models                         list the CNN zoo\n"
      "  devices                        list known GPGPUs\n"
      "  analyze <model> [--layers]     static analysis of a zoo model\n"
      "  ptx [--model <name>]           kernel library / launch plan\n"
      "  dataset [--out f.csv] [--devices a,b] [--extended]\n"
      "  train --out <file> | --registry <dir>   train + save or publish\n"
      "        [--regressor id] [--seed N] [--models a,b] [--devices a,b]\n"
      "        [--folds K] [--max-regress PP] [--force]\n"
      "  predict <model> <device> [--tree <file>] [--registry <dir>]\n"
      "        (also honors $GPUPERF_REGISTRY when no --tree is given)\n"
      "  rank <model>                   DSE ranking over all devices\n"
      "  dse <models|all> [--devices a,b] [--max-latency-ms N]\n"
      "        [--max-power-w N] [--max-cost-usd N] [--w-latency N]\n"
      "        [--w-power N] [--w-cost N] [--store <dir>] [--tree <file>]\n"
      "        [--registry <dir>] [--deadline-ms N] [--no-degrade]\n"
      "        constraint-aware fleet sweep (docs/DSE.md)\n"
      "  serve [--port N] [--threads K] [--tree <file>] [--models a,b]\n"
      "        [--regressor id] [--no-batch] [--registry <dir>]\n"
      "        [--version vNNNN] [--feature-store <dir>] [--poll-ms N]\n"
      "        [--deadline-ms N] [--step-budget N] [--no-degrade]\n"
      "        [--max-inflight N] [--max-queue N] [--max-line-bytes N]\n"
      "        [--max-frame-bytes N] [--backlog N] [--idle-timeout-ms N]\n"
      "        [--read-progress-timeout-ms N] [--max-output-buffer N]\n"
      "        [--breaker-threshold N] [--breaker-cooldown-ms N]\n"
      "        [--dca-spill-dir <dir>] [--dca-spill-budget BYTES]\n"
      "        [--workers K] [--max-pending N]\n"
      "        [--isolate-dca] [--dca-workers N] [--dca-worker-rss-mb N]\n"
      "        [--dca-hard-timeout-ms N] [--dca-worker-as-mb N]\n"
      "        [--dca-quarantine-dir <dir>] (sandboxed analysis workers,\n"
      "        docs/ROBUSTNESS.md \"Crash isolation\")\n"
      "  client <request...> [--host H] [--port N] [--timeout-ms N]\n"
      "        [--retries N] [--binary] (backoff with jitter on\n"
      "        failure/overload; --binary uses the framed protocol)\n"
      "        [--endpoints h:p,h:p] [--hedge] [--hedge-delay-ms N]\n"
      "        (failover across endpoints; --hedge races idempotent\n"
      "        requests on a second endpoint after the delay)\n"
      "        e.g. `gpuperf client predict resnet50v2 teslat4`\n");
  return 2;
}

int cmd_models() {
  TextTable table("CNN zoo (paper Table I)");
  table.set_header({"name", "input", "trainable params"});
  const cnn::StaticAnalyzer analyzer;
  for (const auto& entry : cnn::zoo::all_models()) {
    const cnn::Model model = entry.build();
    const auto report = analyzer.analyze(model);
    const auto in = model.input_shape();
    table.add_row({entry.name,
                   std::to_string(in.h) + "x" + std::to_string(in.w),
                   with_commas(report.trainable_params)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_devices() {
  TextTable table("GPGPU database");
  table.set_header({"id", "name", "arch", "SMs", "cores", "boost MHz",
                    "BW GB/s", "L2 KB"});
  for (const auto& d : gpu::device_database())
    table.add_row({d.name, d.full_name, d.architecture,
                   std::to_string(d.sm_count), std::to_string(d.cuda_cores),
                   fixed(d.boost_clock_mhz, 0),
                   fixed(d.memory_bandwidth_gbs, 0),
                   std::to_string(d.l2_cache_kb)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& name = args.positional.front();
  if (!cnn::zoo::has_model(name)) {
    std::fprintf(stderr, "unknown model '%s' (try `gpuperf models`)\n",
                 name.c_str());
    return 1;
  }
  const auto report =
      cnn::StaticAnalyzer().analyze(cnn::zoo::build(name));
  std::printf("%s",
              to_string(report, args.flags.count("layers") > 0).c_str());
  return 0;
}

int cmd_ptx(const Args& args) {
  const auto it = args.flags.find("model");
  if (it == args.flags.end()) {
    std::printf("%s", ptx::CodeGenerator::kernel_library().to_ptx().c_str());
    return 0;
  }
  if (!cnn::zoo::has_model(it->second)) {
    std::fprintf(stderr, "unknown model '%s'\n", it->second.c_str());
    return 1;
  }
  const ptx::CompiledModel compiled =
      ptx::CodeGenerator().compile(cnn::zoo::build(it->second));
  const ptx::InstructionCounter counter;
  const auto profile = counter.count(compiled);
  TextTable table("launch plan of " + it->second);
  table.set_header({"#", "kernel", "grid", "block", "instructions"});
  for (std::size_t i = 0; i < compiled.launches.size(); ++i) {
    const auto& l = compiled.launches[i];
    table.add_row({std::to_string(i), l.kernel,
                   std::to_string(l.grid_dim), std::to_string(l.block_dim),
                   with_commas(profile.per_launch[i])});
  }
  std::printf("%s", table.render().c_str());
  std::printf("total: %s dynamic instructions over %lld launches\n",
              with_commas(profile.total_instructions).c_str(),
              static_cast<long long>(profile.launch_count));
  return 0;
}

int cmd_dataset(const Args& args) {
  core::DatasetOptions options;
  if (const auto it = args.flags.find("devices"); it != args.flags.end())
    options.devices = split(it->second, ',');
  options.extended_cnn_features = args.flags.count("extended") > 0;
  std::fprintf(stderr, "building dataset...\n");
  const ml::Dataset data = core::DatasetBuilder(options).build();
  const CsvDocument csv = data.to_csv();
  if (const auto it = args.flags.find("out"); it != args.flags.end()) {
    csv_save(csv, it->second);
    std::fprintf(stderr, "wrote %zu rows to %s\n", data.size(),
                 it->second.c_str());
  } else {
    std::printf("%s", csv_write(csv).c_str());
  }
  return 0;
}

std::uint64_t seed_from(const Args& args) {
  const auto it = args.flags.find("seed");
  return it == args.flags.end()
             ? 42
             : static_cast<std::uint64_t>(parse_int(it->second));
}

int cmd_train(const Args& args) {
  const auto out = args.flags.find("out");
  const auto reg = args.flags.find("registry");
  if (out == args.flags.end() && reg == args.flags.end()) return usage();

  core::DatasetOptions data_options;
  if (const auto it = args.flags.find("models"); it != args.flags.end())
    data_options.models = split(it->second, ',');
  if (const auto it = args.flags.find("devices"); it != args.flags.end())
    data_options.devices = split(it->second, ',');
  const std::string regressor_id = args.flag_or("regressor", "dt");
  const std::uint64_t seed = seed_from(args);

  std::fprintf(stderr, "building dataset and training %s estimator...\n",
               regressor_id.c_str());
  const ml::Dataset data = core::DatasetBuilder(data_options).build();
  core::PerformanceEstimator estimator(regressor_id, seed);
  estimator.train(data);

  if (out != args.flags.end()) {
    estimator.save(out->second);
    std::fprintf(stderr, "saved %s model to %s\n", regressor_id.c_str(),
                 out->second.c_str());
  }
  if (reg != args.flags.end()) {
    const auto folds =
        static_cast<std::size_t>(parse_int(args.flag_or("folds", "5")));
    registry::Manifest manifest;
    manifest.regressor_id = regressor_id;
    manifest.seed = seed;
    manifest.train_models = data_options.models;
    manifest.train_devices = data_options.devices;
    if (folds > 1) {
      std::fprintf(stderr, "running %zu-fold cross-validation...\n", folds);
      const ml::CvResult cv =
          ml::cross_validate(data, folds, regressor_id, seed);
      manifest.cv_folds = folds;
      manifest.cv_mape = cv.pooled.mape;
      manifest.cv_r2 = cv.pooled.r2;
    }
    registry::PublishOptions publish_options;
    publish_options.force = args.has_flag("force");
    if (const auto it = args.flags.find("max-regress");
        it != args.flags.end())
      publish_options.max_mape_regression = parse_double(it->second);
    registry::ModelRegistry registry(reg->second);
    const std::string version =
        registry.publish(estimator, manifest, publish_options);
    std::printf("published %s bundle %s to %s (cv mape %.2f%%, r2 %.3f)\n",
                regressor_id.c_str(), version.c_str(), reg->second.c_str(),
                manifest.cv_mape, manifest.cv_r2);
  }
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const std::string& model_name = args.positional[0];
  const std::string& device_name = args.positional[1];
  if (!cnn::zoo::has_model(model_name) || !gpu::has_device(device_name)) {
    std::fprintf(stderr, "unknown model or device\n");
    return 1;
  }

  core::FeatureExtractor extractor;
  const core::ModelFeatures& features =
      extractor.for_zoo_model(model_name);
  const auto x = core::FeatureExtractor::feature_vector(
      features, gpu::device(device_name));

  // Model source precedence: an explicit --tree file, then a registry
  // (--registry flag or $GPUPERF_REGISTRY) with a published bundle,
  // then the historical retrain-from-scratch slow path.
  std::string registry_dir = args.flag_or("registry", "");
  if (registry_dir.empty())
    if (const char* env = std::getenv("GPUPERF_REGISTRY"))
      registry_dir = env;

  double ipc = 0.0;
  if (const auto it = args.flags.find("tree"); it != args.flags.end()) {
    const ml::DecisionTree tree = ml::load_tree(it->second);
    ipc = tree.predict(x);
  } else if (!registry_dir.empty() &&
             !registry::ModelRegistry(registry_dir).empty()) {
    const registry::Bundle bundle =
        registry::ModelRegistry(registry_dir)
            .load(args.flag_or("version", ""));
    std::fprintf(stderr, "loaded %s bundle %s from %s\n",
                 bundle.manifest.regressor_id.c_str(),
                 bundle.version.c_str(), registry_dir.c_str());
    ipc = bundle.estimator.predict(x);
  } else {
    std::fprintf(stderr, "no --tree given; training from scratch...\n");
    core::DatasetBuilder builder;
    core::PerformanceEstimator estimator("dt", seed_from(args));
    estimator.train(builder.build());
    ipc = estimator.predict(x);
  }
  std::printf("%s on %s: predicted IPC %.4f\n", model_name.c_str(),
              device_name.c_str(), ipc);
  return 0;
}

int cmd_dse(const Args& args) {
  if (args.positional.empty()) return usage();

  std::vector<std::string> models;
  const std::string& spec = args.positional.front();
  if (spec == "all") {
    for (const auto& entry : cnn::zoo::all_models())
      models.push_back(entry.name);
  } else {
    for (const std::string& part : split(spec, ',')) {
      const std::string name{trim(part)};
      if (name.empty()) continue;
      if (!cnn::zoo::has_model(name)) {
        std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
        return 1;
      }
      models.push_back(name);
    }
  }
  if (models.empty()) return usage();

  // Model source precedence, as in `predict`: --tree file, then a
  // registry bundle (--registry / $GPUPERF_REGISTRY), then the
  // retrain-from-scratch slow path.
  std::string registry_dir = args.flag_or("registry", "");
  if (registry_dir.empty())
    if (const char* env = std::getenv("GPUPERF_REGISTRY"))
      registry_dir = env;
  core::PerformanceEstimator estimator;
  std::string bundle_version;
  if (const auto it = args.flags.find("tree"); it != args.flags.end()) {
    estimator = core::PerformanceEstimator::load(it->second);
  } else if (!registry_dir.empty() &&
             !registry::ModelRegistry(registry_dir).empty()) {
    registry::Bundle bundle = registry::ModelRegistry(registry_dir)
                                  .load(args.flag_or("version", ""));
    std::fprintf(stderr, "loaded %s bundle %s from %s\n",
                 bundle.manifest.regressor_id.c_str(),
                 bundle.version.c_str(), registry_dir.c_str());
    bundle_version = bundle.version;
    estimator = std::move(bundle.estimator);
  } else {
    std::fprintf(stderr, "no --tree given; training from scratch...\n");
    estimator = core::PerformanceEstimator(args.flag_or("regressor", "dt"),
                                           seed_from(args));
    estimator.train(core::DatasetBuilder().build());
  }

  // A --store directory persists sweep cells across runs (shared with
  // the server's --feature-store layout).
  std::unique_ptr<dse::SweepCache> cache;
  dse::SweepEngine::Options engine_options;
  if (const auto it = args.flags.find("store"); it != args.flags.end()) {
    cache = std::make_unique<dse::SweepCache>(it->second);
    engine_options.cache = cache.get();
  }
  engine_options.bundle_key = dse::make_bundle_key(estimator, bundle_version);
  const dse::SweepEngine engine(estimator, std::move(engine_options));

  dse::SweepRequest request;
  request.models = std::move(models);
  if (const auto it = args.flags.find("devices"); it != args.flags.end())
    for (const std::string& part : split(it->second, ','))
      if (!trim(part).empty())
        request.devices.emplace_back(trim(part));
  const auto flag_double = [&](const char* key, double fallback) {
    const std::string value = args.flag_or(key, "");
    return value.empty() ? fallback : parse_double(value);
  };
  request.constraints.max_latency_ms = flag_double("max-latency-ms", 0.0);
  request.constraints.max_power_w = flag_double("max-power-w", 0.0);
  request.constraints.max_cost_usd = flag_double("max-cost-usd", 0.0);
  request.constraints.w_latency = flag_double("w-latency", 1.0);
  request.constraints.w_power = flag_double("w-power", 0.0);
  request.constraints.w_cost = flag_double("w-cost", 0.0);
  if (const auto it = args.flags.find("deadline-ms");
      it != args.flags.end())
    request.deadline = Deadline::after_ms(parse_int(it->second));
  request.allow_degrade = !args.has_flag("no-degrade");

  const dse::SweepResult result = engine.run(request);

  TextTable table("DSE sweep: " + std::to_string(request.models.size()) +
                  " models x " +
                  std::to_string(result.ranking.size()) + " devices");
  table.set_header({"rank", "device", "verdict", "score", "latency ms",
                    "peak W", "cost $", "cells ok/deg/fail"});
  int rank = 1;
  for (const auto& s : result.ranking) {
    std::string verdict = s.feasible
                              ? (s.pareto ? "pareto" : "feasible")
                              : "infeasible: " + s.infeasible_reason;
    table.add_row({s.feasible ? std::to_string(rank++) : "-", s.device,
                   verdict, s.feasible ? fixed(s.score, 3) : "-",
                   fixed(s.total_latency_ms, 2), fixed(s.peak_power_w, 0),
                   s.has_cost ? fixed(s.cost_usd, 0) : "?",
                   std::to_string(s.cells_ok) + "/" +
                       std::to_string(s.cells_degraded) + "/" +
                       std::to_string(s.cells_failed)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "%zu cells in %.2fs: %zu unique topologies (%zu duplicate models), "
      "%zu cache hits, %zu DCA feature passes, %zu degraded, %zu failed\n",
      result.cells.size(), result.elapsed_seconds,
      result.unique_topologies, result.duplicate_models,
      result.sweep_cache_hits, result.features_computed,
      result.degraded_cells, result.failed_cells);
  if (!result.feasible()) {
    std::fprintf(stderr, "no device satisfies the constraints\n");
    return 1;
  }
  return 0;
}

int cmd_rank(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& model_name = args.positional.front();
  if (!cnn::zoo::has_model(model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  core::DatasetBuilder builder;
  core::PerformanceEstimator estimator("dt", seed_from(args));
  estimator.train(builder.build());
  core::DseExplorer dse(estimator);
  std::vector<std::string> devices;
  for (const auto& d : gpu::device_database()) devices.push_back(d.name);
  TextTable table("predicted ranking for " + model_name);
  table.set_header({"rank", "device", "predicted IPC"});
  int rank = 1;
  for (const auto& r : dse.rank_devices(model_name, devices))
    table.add_row({std::to_string(rank++), r.device,
                   fixed(r.predicted_ipc, 4)});
  std::printf("%s", table.render().c_str());
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;

int cmd_serve(const Args& args) {
  serve::ServeOptions options;
  if (const auto it = args.flags.find("models"); it != args.flags.end())
    options.train_models = split(it->second, ',');
  if (const auto it = args.flags.find("devices"); it != args.flags.end())
    options.train_devices = split(it->second, ',');
  options.tree_path = args.flag_or("tree", "");
  options.regressor_id = args.flag_or("regressor", "dt");
  options.registry_dir = args.flag_or("registry", "");
  options.registry_version = args.flag_or("version", "");
  options.feature_store_dir = args.flag_or("feature-store", "");
  options.registry_poll_ms =
      static_cast<int>(parse_int(args.flag_or("poll-ms", "0")));
  options.seed = seed_from(args);
  if (const auto it = args.flags.find("threads"); it != args.flags.end())
    options.n_threads = static_cast<std::size_t>(parse_int(it->second));
  if (const auto it = args.flags.find("cache"); it != args.flags.end())
    options.cache_capacity =
        static_cast<std::size_t>(parse_int(it->second));
  options.batching = !args.has_flag("no-batch");
  options.default_deadline_ms =
      static_cast<int>(parse_int(args.flag_or("deadline-ms", "0")));
  options.dca_step_budget = static_cast<std::uint64_t>(
      parse_int(args.flag_or("step-budget", "0")));
  options.degradation = !args.has_flag("no-degrade");
  options.max_in_flight =
      static_cast<std::size_t>(parse_int(args.flag_or("max-inflight", "0")));
  options.max_queue =
      static_cast<std::size_t>(parse_int(args.flag_or("max-queue", "0")));
  options.breaker_threshold = static_cast<int>(parse_int(args.flag_or(
      "breaker-threshold", std::to_string(options.breaker_threshold))));
  options.breaker_cooldown_ms = static_cast<int>(parse_int(args.flag_or(
      "breaker-cooldown-ms",
      std::to_string(options.breaker_cooldown_ms))));
  options.dca_spill_dir = args.flag_or("dca-spill-dir", "");
  options.dca_spill_budget_bytes = static_cast<std::size_t>(
      parse_int(args.flag_or("dca-spill-budget", "0")));
  options.isolate_dca = args.has_flag("isolate-dca");
  options.dca_workers = static_cast<int>(parse_int(
      args.flag_or("dca-workers", std::to_string(options.dca_workers))));
  options.dca_worker_rss_mb = static_cast<std::size_t>(parse_int(
      args.flag_or("dca-worker-rss-mb",
                   std::to_string(options.dca_worker_rss_mb))));
  options.dca_hard_timeout_ms = static_cast<int>(parse_int(
      args.flag_or("dca-hard-timeout-ms",
                   std::to_string(options.dca_hard_timeout_ms))));
  options.dca_worker_as_mb = static_cast<std::size_t>(
      parse_int(args.flag_or("dca-worker-as-mb", "0")));
  options.dca_quarantine_dir = args.flag_or("dca-quarantine-dir", "");

  // Worker churn means broken pipes are routine; a SIGPIPE must never
  // take down the server (it surfaces as EPIPE instead).
  ignore_sigpipe();

  if (!options.registry_dir.empty())
    std::fprintf(stderr, "loading bundle from registry %s...\n",
                 options.registry_dir.c_str());
  else if (options.tree_path.empty())
    std::fprintf(stderr, "training %s estimator...\n",
                 options.regressor_id.c_str());
  serve::ServeSession session(options);

  serve::TcpServer::Options server_options;
  if (const auto it = args.flags.find("max-line-bytes");
      it != args.flags.end())
    server_options.max_line_bytes =
        static_cast<std::size_t>(parse_int(it->second));
  if (const auto it = args.flags.find("max-frame-bytes");
      it != args.flags.end())
    server_options.max_frame_payload_bytes =
        static_cast<std::size_t>(parse_int(it->second));
  server_options.backlog =
      static_cast<int>(parse_int(args.flag_or("backlog", "128")));
  server_options.idle_timeout_ms =
      static_cast<int>(parse_int(args.flag_or("idle-timeout-ms", "0")));
  server_options.read_progress_timeout_ms = static_cast<int>(
      parse_int(args.flag_or("read-progress-timeout-ms", "0")));
  server_options.max_output_buffer = static_cast<std::size_t>(parse_int(
      args.flag_or("max-output-buffer",
                   std::to_string(server_options.max_output_buffer))));
  server_options.worker_threads =
      static_cast<std::size_t>(parse_int(args.flag_or("workers", "0")));
  server_options.max_pending =
      static_cast<std::size_t>(parse_int(args.flag_or("max-pending", "0")));
  server_options.port =
      static_cast<int>(parse_int(args.flag_or("port", "0")));
  if (server_options.port == 0 && !args.has_flag("port"))
    server_options.port = kDefaultPort;
  serve::TcpServer server(session, server_options);
  server.start();
  // The smoke tests and scripts parse this exact line.
  std::printf("gpuperf serve listening on port %d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, [](int) { g_interrupted = 1; });
  std::signal(SIGTERM, [](int) { g_interrupted = 1; });
  while (!server.stop_requested() && !g_interrupted)
    server.wait_for_stop(200);

  // Graceful shutdown: stop accepting, let in-flight requests finish
  // (bounded), then print the traffic summary and exit cleanly — a
  // SIGTERM'd server under load never drops a half-answered request.
  const int drain_ms =
      static_cast<int>(parse_int(args.flag_or("drain-ms", "5000")));
  if (g_interrupted) std::fprintf(stderr, "\nshutting down: draining...\n");
  if (!server.drain(drain_ms))
    std::fprintf(stderr, "drain timed out after %d ms; closing\n",
                 drain_ms);
  server.stop();
  std::fprintf(stderr, "%s", session.summary().c_str());
  return 0;
}

int cmd_client(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string host = args.flag_or("host", "127.0.0.1");
  const int port =
      static_cast<int>(parse_int(args.flag_or("port",
                                              std::to_string(kDefaultPort))));
  serve::TcpClient::Options client_options;
  client_options.io_timeout_ms =
      static_cast<int>(parse_int(args.flag_or("timeout-ms", "30000")));
  client_options.connect_timeout_ms =
      std::min(client_options.io_timeout_ms, 5000);
  client_options.binary = args.has_flag("binary");
  serve::RetryPolicy policy;
  policy.attempts =
      static_cast<int>(parse_int(args.flag_or("retries", "3"))) + 1;
  const std::string line = join(args.positional, " ");
  std::string response;
  if (const auto it = args.flags.find("endpoints");
      it != args.flags.end()) {
    serve::FailoverClient::Options failover;
    failover.client = client_options;
    failover.retry = policy;
    failover.hedge = args.has_flag("hedge");
    failover.hedge_delay_ms =
        static_cast<int>(parse_int(args.flag_or("hedge-delay-ms", "250")));
    serve::FailoverClient client(serve::parse_endpoints(it->second),
                                 failover);
    response = client.request(line);
  } else {
    response = serve::request_with_retry(host, port, line, policy,
                                         client_options);
  }
  std::printf("%s\n", response.c_str());
  // Mirror the server's verdict in the exit code.
  return starts_with(response, "{\"ok\":true") ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  try {
    if (command == "models") return cmd_models();
    if (command == "devices") return cmd_devices();
    if (command == "analyze") return cmd_analyze(args);
    if (command == "ptx") return cmd_ptx(args);
    if (command == "dataset") return cmd_dataset(args);
    if (command == "train") return cmd_train(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "rank") return cmd_rank(args);
    if (command == "dse") return cmd_dse(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "client") return cmd_client(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
