// Ablation: which predictors earn their keep?  Retrains the Decision
// Tree with feature groups removed and reports held-out accuracy.
// Supports the paper's claims that (a) device features enable
// cross-platform prediction and (b) the CNN features add accuracy on
// top of the device identity.
#include <cstdio>
#include <set>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "experiment_common.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"

namespace {

using namespace gpuperf;

/// Copy a dataset keeping only the named features.
ml::Dataset project(const ml::Dataset& data,
                    const std::set<std::string>& keep) {
  std::vector<std::string> names;
  std::vector<std::size_t> indices;
  for (std::size_t j = 0; j < data.feature_names().size(); ++j) {
    if (keep.count(data.feature_names()[j])) {
      names.push_back(data.feature_names()[j]);
      indices.push_back(j);
    }
  }
  ml::Dataset out(names, data.target_name());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<double> x;
    for (std::size_t j : indices) x.push_back(data.row(i)[j]);
    out.add_row(std::move(x), data.target(i), data.tag(i));
  }
  return out;
}

}  // namespace

int main() {
  const ml::Dataset data = bench::build_paper_dataset();
  const auto [train, eval] = bench::paper_split(data);

  const std::set<std::string> all(data.feature_names().begin(),
                                  data.feature_names().end());
  std::set<std::string> cnn_only = {"executed_instructions",
                                    "trainable_params"};
  std::set<std::string> device_only = all;
  for (const auto& f : cnn_only) device_only.erase(f);
  std::set<std::string> no_instr = all;
  no_instr.erase("executed_instructions");
  std::set<std::string> no_params = all;
  no_params.erase("trainable_params");
  std::set<std::string> no_bandwidth = all;
  no_bandwidth.erase("mem_bandwidth_gbs");

  TextTable table("Feature ablation (Decision Tree, held-out MAPE)");
  table.set_header({"Feature set", "#features", "MAPE", "R^2"});

  const std::vector<std::pair<std::string, std::set<std::string>>> cases = {
      {"all predictors (paper)", all},
      {"CNN features only (no cross-platform)", cnn_only},
      {"device features only", device_only},
      {"without executed instructions", no_instr},
      {"without trainable parameters", no_params},
      {"without memory bandwidth", no_bandwidth},
  };

  for (const auto& [label, keep] : cases) {
    const ml::Dataset ptrain = project(train, keep);
    const ml::Dataset peval = project(eval, keep);
    ml::DecisionTree tree;
    tree.fit(ptrain);
    const auto predicted = tree.predict_all(peval);
    table.add_row({label, std::to_string(keep.size()),
                   fixed(ml::mape(peval.targets(), predicted), 2) + "%",
                   fixed(ml::r2(peval.targets(), predicted), 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: removing the device features hurts most (the\n"
      "response is device-dominated); dropping memory bandwidth is mostly\n"
      "absorbed by the other correlated device features.\n");
  return 0;
}
