// Ablation for the paper's core speed claim: slicing + symbolic
// execution versus brute-force interpretation of every thread.  Both
// must agree exactly on counts; the wall-clock gap is the reason the
// dynamic code analysis can replace a simulator.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "ptx/codegen.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/parser.hpp"
#include "ptx/symexec.hpp"

int main() {
  using namespace gpuperf;
  using namespace gpuperf::ptx;

  const PtxModule lib = parse_ptx(CodeGenerator::kernel_library().to_ptx());

  struct Case {
    const char* kernel;
    KernelLaunch launch;
  };
  std::vector<Case> cases;
  {
    KernelLaunch l;
    l.grid_dim = 64;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_a", 2}, {"p_n", 16000}};
    cases.push_back({"gp_relu", l});
  }
  {
    KernelLaunch l;
    l.grid_dim = 32;
    l.block_dim = 256;
    l.args = {{"p_c", 1}, {"p_a", 2}, {"p_b", 3}, {"p_bias", 4},
              {"p_total", 8000}, {"p_n", 40}, {"p_kt", 18}};
    cases.push_back({"gp_gemm", l});
  }
  {
    KernelLaunch l;
    l.grid_dim = 16;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_src", 2}, {"p_out", 4000},
              {"p_window", 9}, {"p_w", 3}};
    cases.push_back({"gp_dwconv", l});
  }
  {
    KernelLaunch l;
    l.grid_dim = 1;
    l.block_dim = 256;
    l.args = {{"p_dst", 1}, {"p_src", 2}, {"p_n", 1000}};
    cases.push_back({"gp_softmax", l});
  }

  TextTable table(
      "Slicing ablation: sliced symbolic execution vs full interpretation");
  table.set_header({"kernel", "threads", "instructions", "slice/total",
                    "t_sliced (ms)", "t_full (ms)", "speedup"});

  for (auto& c : cases) {
    c.launch.kernel = c.kernel;
    const PtxKernel& kernel = lib.kernel(c.kernel);
    const SymbolicExecutor sym(kernel);
    const Interpreter interp(kernel);

    Stopwatch w1;
    const ExecutionCounts sc = sym.run(c.launch);
    const double t_sliced = w1.elapsed_ms();

    Stopwatch w2;
    const ThreadCounts ic = interp.run_all(c.launch);
    const double t_full = w2.elapsed_ms();

    if (sc.total != ic.total) {
      std::fprintf(stderr, "COUNT MISMATCH on %s: %lld vs %lld\n", c.kernel,
                   static_cast<long long>(sc.total),
                   static_cast<long long>(ic.total));
      return 1;
    }

    table.add_row(
        {c.kernel, with_commas(c.launch.total_threads()),
         with_commas(sc.total),
         std::to_string(sym.slice().slice_size()) + "/" +
             std::to_string(kernel.instructions.size()),
         fixed(t_sliced, 3), fixed(t_full, 1),
         fixed(t_full / (t_sliced > 0 ? t_sliced : 1e-6), 0) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: identical instruction counts with orders-of-\n"
      "magnitude lower analysis time for the sliced executor.\n");
  return 0;
}
