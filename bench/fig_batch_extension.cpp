// Extension figure: IPC and throughput vs batch size.  Batching raises
// occupancy (more warps hide latency) until the device saturates — the
// standard deployment trade-off the estimator's device features must
// capture for throughput-oriented DSE.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"
#include "ptx/counter.hpp"

int main() {
  using namespace gpuperf;

  const gpu::Profiler profiler(0.0);
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const gpu::DeviceSpec& device = gpu::device("gtx1080ti");

  for (const char* name : {"MobileNetV2", "resnet50v2"}) {
    const cnn::Model model = cnn::zoo::build(name);
    TextTable table(std::string("Batched inference of ") + name +
                    " on gtx1080ti");
    table.set_header({"batch", "measured IPC", "latency (ms)",
                      "throughput (img/s)", "energy/img (mJ)"});
    for (std::int64_t batch : {1, 2, 4, 8, 16, 32}) {
      const ptx::CompiledModel compiled = codegen.compile(model, batch);
      const auto instr = counter.count(compiled);
      const gpu::ProfileResult r =
          profiler.profile_compiled(compiled, instr, device);
      table.add_row({std::to_string(batch), fixed(r.ipc, 4),
                     fixed(r.elapsed_ms, 2),
                     fixed(batch / (r.elapsed_ms / 1e3), 0),
                     fixed(r.energy_mj / batch, 1)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "expected shape: IPC and throughput rise with batch until the\n"
      "device saturates; energy per image falls as fixed overheads\n"
      "amortize.\n");
  return 0;
}
