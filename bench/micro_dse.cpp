// Microbenchmarks of the DSE sweep subsystem (docs/DSE.md): the cold
// cross-product sweep, the DCA-memo-warm sweep, the persistent
// sweep-cache replay, and the constraint/Pareto ranking pass in
// isolation.  main() runs the acceptance checks unconditionally before
// any benchmark: a warm full-zoo × seven-device sweep must beat naive
// per-pair evaluation by ≥ 10×, and a restarted process (fresh
// SweepCache over the same directory) must replay the whole sweep with
// zero DCA runs — asserted via the sweep's features_computed counter,
// the cache hit counter, and the process-wide DCA memo-miss delta.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cnn/zoo.hpp"
#include "common/stopwatch.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "core/features.hpp"
#include "dse/constraints.hpp"
#include "dse/sweep.hpp"
#include "dse/sweep_cache.hpp"
#include "gpu/device_db.hpp"
#include "ptx/counter.hpp"

namespace {

using namespace gpuperf;

const std::vector<std::string> kBenchModels = {"alexnet", "mobilenet",
                                               "MobileNetV2", "vgg16"};

std::string bench_dir(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("gpuperf_bench_" + name))
      .string();
}

/// One dt estimator trained on a small subset, built once.  Sweep cost
/// is dominated by DCA and cache I/O, not by which regressor answers
/// the per-cell predictions.
const core::PerformanceEstimator& bench_estimator() {
  static const core::PerformanceEstimator* est = [] {
    core::DatasetOptions dataset;
    dataset.models = kBenchModels;
    const ml::Dataset data = core::DatasetBuilder(dataset).build();
    auto* e = new core::PerformanceEstimator("dt", 42);
    e->train(data);
    return e;
  }();
  return *est;
}

std::vector<std::string> zoo_names() {
  std::vector<std::string> names;
  for (const auto& entry : cnn::zoo::all_models())
    names.push_back(entry.name);
  return names;
}

// The full cross-product sweep with a cold DCA memo and no sweep
// cache: every distinct topology pays static analysis + PTX codegen +
// sliced symbolic execution, fanned over the shared pool.
void BM_SweepCold(benchmark::State& state) {
  const dse::SweepEngine engine(bench_estimator());
  dse::SweepRequest request;
  request.models = kBenchModels;
  for (auto _ : state) {
    ptx::InstructionCounter::reset_memo();
    benchmark::DoNotOptimize(engine.run(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kBenchModels.size() * gpu::dse_devices().size()));
}
BENCHMARK(BM_SweepCold)->Unit(benchmark::kMillisecond);

// Same sweep with the process-wide DCA launch memo warm (PR-4): the
// symbolic runs are answered from the memo, so this isolates codegen +
// feature assembly + per-cell prediction + ranking.
void BM_SweepMemoWarm(benchmark::State& state) {
  const dse::SweepEngine engine(bench_estimator());
  dse::SweepRequest request;
  request.models = kBenchModels;
  engine.run(request);  // prime the memo
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.run(request));
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kBenchModels.size() * gpu::dse_devices().size()));
}
BENCHMARK(BM_SweepMemoWarm)->Unit(benchmark::kMillisecond);

// Sweep against a populated persistent cache: every cell streams from
// the journal-backed store, zero DCA.  This is the latency a repeat
// `dse` request (or a restarted server) pays.
void BM_SweepCacheWarm(benchmark::State& state) {
  const std::string dir = bench_dir("dse_bm_cache");
  std::filesystem::remove_all(dir);
  dse::SweepCache cache(dir);
  dse::SweepEngine::Options options;
  options.cache = &cache;
  const dse::SweepEngine engine(bench_estimator(), options);
  dse::SweepRequest request;
  request.models = kBenchModels;
  engine.run(request);  // populate the cache
  for (auto _ : state) {
    const dse::SweepResult result = engine.run(request);
    if (result.features_computed != 0) {
      state.SkipWithError("warm sweep ran DCA — sweep cache broken");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kBenchModels.size() * gpu::dse_devices().size()));
}
BENCHMARK(BM_SweepCacheWarm)->Unit(benchmark::kMicrosecond);

// The constraint engine alone: summarize cells per device, mark the
// Pareto frontier, scalarize and rank.  Pure arithmetic over an
// in-memory sweep result — this bounds what the `dse` verb adds on top
// of a fully cached sweep.
void BM_ConstraintRanking(benchmark::State& state) {
  const dse::SweepEngine engine(bench_estimator());
  dse::SweepRequest request;
  request.models = kBenchModels;
  const dse::SweepResult sweep = engine.run(request);
  const std::vector<std::string>& devices = gpu::dse_devices();
  std::vector<dse::DeviceCost> costs;
  for (const std::string& name : devices) {
    const gpu::DeviceSpec& spec = gpu::device(name);
    costs.push_back({spec.has_cost_usd() ? spec.cost_usd : -1.0});
  }
  dse::Constraints constraints;
  constraints.w_latency = 1.0;
  constraints.w_power = 0.5;
  constraints.w_cost = 0.5;
  for (auto _ : state) {
    std::vector<dse::DeviceSummary> ranking =
        dse::summarize_cells(sweep.cells, devices, costs, constraints);
    dse::mark_pareto(ranking);
    dse::rank_summaries(ranking, constraints);
    benchmark::DoNotOptimize(ranking);
  }
}
BENCHMARK(BM_ConstraintRanking)->Unit(benchmark::kMicrosecond);

/// Acceptance check 1 (ISSUE): a warm full-zoo × seven-device sweep
/// must be ≥ 10× faster than naive per-pair evaluation, where naive
/// means a cold DCA pass for every (model, device) pair — the
/// cost structure the paper's Table IV replaces with t_dca + n·t_pm.
/// Acceptance check 2: a fresh SweepCache over the same directory (a
/// restarted process) replays the sweep with zero DCA runs.
bool verify_sweep_acceptance() {
  const core::PerformanceEstimator& estimator = bench_estimator();
  const std::vector<std::string> zoo = zoo_names();
  const std::vector<std::string>& fleet = gpu::dse_devices();
  const std::size_t n_cells = zoo.size() * fleet.size();

  // ---- naive baseline: one cold DCA pass per pair -------------------
  Stopwatch naive_watch;
  for (const std::string& name : zoo) {
    const cnn::Model model = cnn::zoo::build(name);
    for (const std::string& device : fleet) {
      ptx::InstructionCounter::reset_memo();
      const core::FeatureExtractor extractor;
      const core::ModelFeatures features = extractor.compute(model);
      benchmark::DoNotOptimize(
          estimator.predict(features, gpu::device(device)));
    }
  }
  const double naive_s = naive_watch.elapsed_seconds();

  // ---- sweep: cold run populates the cache, second run is warm ------
  const std::string dir = bench_dir("dse_verify_cache");
  std::filesystem::remove_all(dir);
  dse::SweepRequest request;
  request.models = zoo;
  std::string bundle_key;
  double warm_s = 0.0;
  {
    dse::SweepCache cache(dir);
    dse::SweepEngine::Options options;
    options.cache = &cache;
    const dse::SweepEngine engine(estimator, options);
    bundle_key = engine.bundle_key();
    ptx::InstructionCounter::reset_memo();
    const dse::SweepResult cold = engine.run(request);
    if (cold.failed_cells != 0 || cold.degraded_cells != 0) {
      std::fprintf(stderr, "cold sweep not fully ok: %zu failed, %zu degraded\n",
                   cold.failed_cells, cold.degraded_cells);
      return false;
    }
    Stopwatch warm_watch;
    const dse::SweepResult warm = engine.run(request);
    warm_s = warm_watch.elapsed_seconds();
    if (warm.features_computed != 0 || warm.sweep_cache_hits != n_cells) {
      std::fprintf(stderr,
                   "warm sweep missed the cache: %zu features computed, "
                   "%zu/%zu cache hits\n",
                   warm.features_computed, warm.sweep_cache_hits, n_cells);
      return false;
    }
  }
  const double speedup = warm_s > 0.0 ? naive_s / warm_s : 1e9;
  std::printf(
      "full zoo x %zu devices (%zu cells): naive per-pair %.2fs, warm "
      "sweep %.4fs — %.0fx\n",
      fleet.size(), n_cells, naive_s, warm_s, speedup);
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: warm sweep speedup %.1fx < 10x\n", speedup);
    return false;
  }

  // ---- restart: a fresh cache over the same journal replays the
  // sweep with zero DCA — no feature passes, no memo misses.
  const ptx::InstructionCounter::MemoStats before =
      ptx::InstructionCounter::memo_stats();
  dse::SweepCache restarted(dir);
  dse::SweepEngine::Options options;
  options.cache = &restarted;
  options.bundle_key = bundle_key;
  const dse::SweepEngine engine(estimator, options);
  const dse::SweepResult replay = engine.run(request);
  const ptx::InstructionCounter::MemoStats after =
      ptx::InstructionCounter::memo_stats();
  const std::uint64_t memo_misses = after.misses - before.misses;
  std::printf(
      "restart replay: %zu journal records recovered, %zu/%zu store hits, "
      "%zu DCA feature passes, %llu dca_memo_misses\n",
      restarted.recovered_records(), replay.sweep_cache_hits, n_cells,
      replay.features_computed,
      static_cast<unsigned long long>(memo_misses));
  if (replay.features_computed != 0 || memo_misses != 0 ||
      replay.sweep_cache_hits != n_cells) {
    std::fprintf(stderr, "FAIL: restarted sweep did not replay from cache\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!verify_sweep_acceptance()) {
    std::fprintf(stderr, "FAIL: dse sweep acceptance checks\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
