// Reproduces Table I: the 31 CNN models with input size, weighted layer
// count, neurons and trainable parameters from our static analyzer.
#include <cstdio>

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main() {
  using namespace gpuperf;

  TextTable table(
      "Table I: An overview of CNN models used in the experiments");
  table.set_header(
      {"Model name", "Input Size", "Layers", "Weighted layers", "Neurons",
       "Trainable Parameters"});

  const cnn::StaticAnalyzer analyzer;
  for (const auto& entry : cnn::zoo::all_models()) {
    const cnn::Model model = entry.build();
    const cnn::ModelReport report = analyzer.analyze(model);
    const auto in = model.input_shape();
    table.add_row({entry.name,
                   std::to_string(in.h) + " x " + std::to_string(in.w),
                   std::to_string(entry.canonical_layers),
                   std::to_string(report.weighted_layers),
                   with_commas(report.neurons),
                   with_commas(report.trainable_params)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
