// Shared setup for the paper-reproduction bench binaries: the full
// 31-CNN x 2-GPU dataset with the canonical seed, and the 70/30 split
// used by Table II.
#pragma once

#include <cstdio>

#include "common/rng.hpp"
#include "core/dataset_builder.hpp"

namespace gpuperf::bench {

inline constexpr std::uint64_t kDatasetSeed = 0x67707570ULL;
inline constexpr std::uint64_t kSplitSeed = 7;
inline constexpr std::uint64_t kModelSeed = 42;

/// Phase-1 dataset: every Table I CNN profiled on the GTX 1080 Ti and
/// V100S with 2 % measurement noise.
inline ml::Dataset build_paper_dataset() {
  core::DatasetOptions options;
  options.seed = kDatasetSeed;
  options.noise_stddev = 0.02;
  core::DatasetBuilder builder(options);
  return builder.build();
}

/// The paper's 70 % / 30 % disjoint split.
inline std::pair<ml::Dataset, ml::Dataset> paper_split(
    const ml::Dataset& data) {
  Rng rng(kSplitSeed);
  return data.split(0.7, rng);
}

}  // namespace gpuperf::bench
