#!/usr/bin/env python3
"""Fold benchmark JSON reports into one compact per-stage summary.

Usage: summarize.py <benchmark_out.json> [more_out.json ...] <summary_out.json>

With several inputs the stages are concatenated in argument order into
a single summary (e.g. a loadgen report plus a google-benchmark report
both land in BENCH_serve.json); each input's context is kept under its
stem name in a "contexts" object.

Two input shapes are recognized:

google-benchmark: run the binary with --benchmark_repetitions=N and
--benchmark_out_format=json; the raw repetition entries are grouped by
benchmark name and emitted, per stage, as:

  {"name", "reps", "p50_ns", "p95_ns", "mean_ns", "ops_per_sec"}

p50/p95 are computed over the per-repetition real_time samples
(linear interpolation); ops_per_sec is 1e9 / p50_ns, i.e. how many
times the stage runs per second at the median.  Aggregate rows that
google-benchmark appends (_mean/_median/_stddev/_cv) are skipped —
we compute our own statistics from the raw repetitions.

loadgen-native (a top-level "runs" key, written by bench/loadgen
--out): each protocol run becomes one stage — per-request latency
percentiles in ns and ops_per_sec = measured requests per second —
so BENCH_serve.json has the same shape as every other BENCH file.
"""
import json
import sys


def loadgen_stages(report):
    stages = []
    for run in report["runs"]:
        stages.append({
            "name": "loadgen_%s_%s" % (
                run["protocol"], report.get("loadgen", {}).get("verb", "")),
            "reps": run["requests"],
            "p50_ns": round(run["p50_us"] * 1e3, 1),
            "p99_ns": round(run["p99_us"] * 1e3, 1),
            "p999_ns": round(run["p999_us"] * 1e3, 1),
            "connected": run["connected"],
            "errors": run["errors"],
            "ops_per_sec": round(run["rps"], 2),
        })
    return stages


def percentile(samples, q):
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def benchmark_stages(report):
    by_name = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        by_name.setdefault(b["name"], []).append(float(b["real_time"]))

    stages = []
    for name, samples in sorted(by_name.items()):
        p50 = percentile(samples, 0.50)
        stages.append({
            "name": name,
            "reps": len(samples),
            "p50_ns": round(p50, 1),
            "p95_ns": round(percentile(samples, 0.95), 1),
            "mean_ns": round(sum(samples) / len(samples), 1),
            "ops_per_sec": round(1e9 / p50, 2) if p50 > 0 else None,
        })
    return stages


def summarize_one(report):
    """-> (context, stages) for either input shape."""
    if "runs" in report:
        return report.get("loadgen", {}), loadgen_stages(report)
    return report.get("context", {}), benchmark_stages(report)


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    inputs, out_path = sys.argv[1:-1], sys.argv[-1]

    stages = []
    contexts = {}
    for path in inputs:
        with open(path) as f:
            context, batch = summarize_one(json.load(f))
        stem = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        contexts[stem] = context
        stages.extend(batch)

    if len(inputs) == 1:
        summary = {"context": next(iter(contexts.values())),
                   "stages": stages}
    else:
        summary = {"contexts": contexts, "stages": stages}
    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    for s in stages:
        tail_q = "p99_ns" if "p99_ns" in s else "p95_ns"
        print(f"{s['name']:45s} p50={s['p50_ns']:>12.1f}ns "
              f"{tail_q[:-3]}={s[tail_q]:>12.1f}ns "
              f"ops/s={s['ops_per_sec']}")


if __name__ == "__main__":
    main()
