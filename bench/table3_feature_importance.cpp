// Reproduces Table III: the top predictors of the final Decision Tree
// by impurity-decrease importance.
//
// Paper values: Memory Bandwidth 0.72583, trainable params 0.2599,
// executed instructions 0.0141.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/estimator.hpp"
#include "experiment_common.hpp"

int main() {
  using namespace gpuperf;

  const ml::Dataset data = bench::build_paper_dataset();
  core::PerformanceEstimator estimator("dt", bench::kModelSeed);
  estimator.train(data);  // final model trains on the full dataset

  const auto importances = estimator.feature_importances();
  const auto& names = core::FeatureExtractor::feature_names();

  std::vector<std::size_t> order(importances.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return importances[a] > importances[b];
  });

  TextTable table(
      "Table III: Predictors used by the Decision Tree (by importance)");
  table.set_header({"Feature", "Importance"});
  for (std::size_t i : order) {
    if (importances[i] < 1e-6) continue;
    table.add_row({names[i], fixed(importances[i], 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: memory bandwidth dominant, trainable parameters\n"
      "second, executed instructions a distant third (paper: 0.726 / "
      "0.260 / 0.014).\n");
  return 0;
}
