// The paper's positioning argument in one table: cycle-level
// simulation vs the analytical simulator vs the trained estimator, in
// accuracy-relevant output (IPC) and wall-clock cost per (CNN, GPU)
// query.  Simulators get slower as models grow; the estimator's cost
// is one dynamic code analysis plus a tree walk.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "experiment_common.hpp"
#include "gpu/cycle_sim.hpp"
#include "gpu/device_db.hpp"
#include "gpu/simulator.hpp"

int main() {
  using namespace gpuperf;

  core::PerformanceEstimator estimator("dt", bench::kModelSeed);
  estimator.train(bench::build_paper_dataset());

  const gpu::DeviceSpec& device = gpu::device("gtx1080ti");
  const gpu::GpuSimulator analytical(device);
  const gpu::CycleLevelSimulator cyclelevel(device);
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;

  TextTable table(
      "Per-query cost: cycle-level sim vs analytical sim vs estimator "
      "(gtx1080ti)");
  table.set_header({"CNN", "IPC cycle-sim", "IPC analytical",
                    "IPC estimator", "t cycle-sim (ms)",
                    "t analytical (ms)", "t estimator (ms)"});

  for (const char* name :
       {"MobileNetV2", "densenet121", "resnet50v2", "vgg16"}) {
    const cnn::Model model = cnn::zoo::build(name);
    const ptx::CompiledModel compiled = codegen.compile(model);
    const ptx::ModelInstructionProfile instr = counter.count(compiled);
    const auto workloads = gpu::build_workloads(compiled, instr);

    Stopwatch w1;
    const gpu::CycleSimResult cycle_result =
        cyclelevel.simulate_model(workloads);
    const double t_cycle = w1.elapsed_ms();

    Stopwatch w2;
    const gpu::ModelSimResult analytic_result =
        analytical.simulate_model(workloads);
    const double t_analytic = w2.elapsed_ms();

    Stopwatch w3;
    const double predicted = estimator.predict(name, device);
    const double t_estimate = w3.elapsed_ms();

    table.add_row({name, fixed(cycle_result.steady_ipc, 4),
                   fixed(analytic_result.ipc, 4), fixed(predicted, 4),
                   fixed(t_cycle, 1), fixed(t_analytic, 3),
                   fixed(t_estimate, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: all three agree on the IPC ballpark; the\n"
      "cycle-level simulator costs orders of magnitude more wall time —\n"
      "the gap the paper's 'simulators are significantly slower' claim\n"
      "rests on (and ours samples steady state; a full cycle-accurate\n"
      "run would be slower still).\n");
  return 0;
}
