// Reproduces Table II: MAPE / R^2 / adjusted R^2 of the five regression
// algorithms on the 70/30 split of the phase-1 dataset.
//
// Paper values for reference:
//   Linear Regression    8.07%  -0.0034  -0.4439
//   K-Nearest Neighbors  5.94%   0.34     0.08
//   Random Forest Tree   7.12%   0.22    -0.12
//   Decision Tree        5.73%   0.45     0.19
//   XG Boost             7.59%   0.14    -0.24
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/estimator.hpp"
#include "experiment_common.hpp"

int main() {
  using namespace gpuperf;

  const ml::Dataset data = bench::build_paper_dataset();
  const auto [train, eval] = bench::paper_split(data);
  std::printf("dataset: %zu observations (%zu train / %zu eval)\n\n",
              data.size(), train.size(), eval.size());

  TextTable table(
      "Table II: Comparison of ML-regression algorithms "
      "(accuracy on held-out data)");
  table.set_header({"Regression Model", "MAPE", "R^2", "adj. R^2"});

  for (const auto& id : ml::regressor_ids()) {
    core::PerformanceEstimator estimator(id, bench::kModelSeed);
    estimator.train(train);
    const ml::RegressionScore score = estimator.evaluate(eval);
    table.add_row({estimator.model().name(), fixed(score.mape, 2) + "%",
                   fixed(score.r2, 4), fixed(score.adjusted_r2, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: Decision Tree best, Linear Regression worst;\n"
      "non-linear models all in the single-digit-to-low-teens MAPE band.\n");
  return 0;
}
