// Reproduces Fig. 4 (a-d): predicted vs measured IPC on the GTX 1080 Ti
// for six standard CNNs held out of training, under the Decision Tree,
// K-NN, XGBoost and Random Forest models.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/estimator.hpp"
#include "experiment_common.hpp"
#include "gpu/device_db.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace gpuperf;

  const ml::Dataset data = bench::build_paper_dataset();
  const auto& holdouts = cnn::zoo::fig4_holdouts();
  const auto [train, held] = data.split_by_tag_prefix(holdouts);
  std::printf(
      "training on %zu observations; %zu held-out rows from 6 standard "
      "CNNs\n\n",
      train.size(), held.size());

  // Measured IPC of the holdouts on the 1080 Ti, straight from the
  // held-out rows.
  const std::string device_suffix = "@gtx1080ti";
  std::vector<double> actual(holdouts.size(), 0.0);
  for (std::size_t i = 0; i < held.size(); ++i) {
    for (std::size_t m = 0; m < holdouts.size(); ++m) {
      if (held.tag(i) == holdouts[m] + device_suffix)
        actual[m] = held.target(i);
    }
  }

  const gpu::DeviceSpec& device = gpu::device("gtx1080ti");
  const std::vector<std::pair<const char*, const char*>> panels = {
      {"dt", "Fig. 4a: Decision Tree"},
      {"knn", "Fig. 4b: K-Nearest Neighbors"},
      {"xgb", "Fig. 4c: XG Boost"},
      {"rf", "Fig. 4d: Random Forest Tree"},
  };

  for (const auto& [id, title] : panels) {
    core::PerformanceEstimator estimator(id, bench::kModelSeed);
    estimator.train(train);

    TextTable table(title);
    table.set_header({"CNN", "original IPC", "predicted IPC", "error"});
    std::vector<double> predicted;
    for (std::size_t m = 0; m < holdouts.size(); ++m) {
      const double p = estimator.predict(holdouts[m], device);
      predicted.push_back(p);
      const double err =
          actual[m] > 0 ? 100.0 * (p - actual[m]) / actual[m] : 0.0;
      table.add_row({holdouts[m], fixed(actual[m], 4), fixed(p, 4),
                     fixed(err, 1) + "%"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("MAPE on held-out CNNs (gtx1080ti): %.2f%%\n\n",
                ml::mape(actual, predicted));
  }
  std::printf(
      "expected shape: the four panels track the original IPC closely and\n"
      "do not differ much from each other (paper Fig. 4).\n");
  return 0;
}
