// Microbenchmarks of the dynamic code analysis pipeline: PTX parsing,
// CFG/slice construction, and symbolic execution of single launches and
// whole models.
#include <benchmark/benchmark.h>

#include "cnn/zoo.hpp"
#include "ptx/codegen.hpp"
#include "ptx/counter.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/parser.hpp"
#include "ptx/slicer.hpp"
#include "ptx/symexec.hpp"

namespace {

using namespace gpuperf;
using namespace gpuperf::ptx;

void BM_ParseKernelLibrary(benchmark::State& state) {
  const std::string text = CodeGenerator::kernel_library().to_ptx();
  for (auto _ : state) {
    PtxModule mod = parse_ptx(text);
    benchmark::DoNotOptimize(mod.kernels.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseKernelLibrary);

void BM_BuildSliceGemm(benchmark::State& state) {
  const PtxModule lib = parse_ptx(CodeGenerator::kernel_library().to_ptx());
  const PtxKernel& gemm = lib.kernel("gp_gemm");
  for (auto _ : state) {
    const DependencyGraph graph = DependencyGraph::build(gemm);
    const Slice slice = compute_slice(gemm, graph);
    benchmark::DoNotOptimize(slice.slice_size());
  }
}
BENCHMARK(BM_BuildSliceGemm);

void BM_SymExecGemm(benchmark::State& state) {
  const PtxModule lib = parse_ptx(CodeGenerator::kernel_library().to_ptx());
  const SymbolicExecutor sym(lib.kernel("gp_gemm"));
  KernelLaunch l;
  l.kernel = "gp_gemm";
  l.block_dim = 256;
  const std::int64_t total = state.range(0);
  l.grid_dim = (total + 255) / 256;
  l.args = {{"p_c", 1}, {"p_a", 2}, {"p_b", 3}, {"p_bias", 4},
            {"p_total", total}, {"p_n", 64}, {"p_kt", 36}};
  std::int64_t instructions = 0;
  for (auto _ : state) {
    const ExecutionCounts counts = sym.run(l);
    instructions = counts.total;
    benchmark::DoNotOptimize(counts.total);
  }
  state.counters["instr_counted"] =
      benchmark::Counter(static_cast<double>(instructions));
}
BENCHMARK(BM_SymExecGemm)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

constexpr const char* kModelNames[] = {"MobileNetV2", "resnet50v2", "vgg16"};

/// Cold DCA: every iteration starts with an empty launch memo, so each
/// launch pays the full (interned, possibly parallel) symbolic run.
void BM_CountWholeModelCold(benchmark::State& state) {
  const cnn::Model model = cnn::zoo::build(kModelNames[state.range(0)]);
  const CodeGenerator codegen;
  const CompiledModel compiled = codegen.compile(model);
  const InstructionCounter counter;
  for (auto _ : state) {
    state.PauseTiming();
    InstructionCounter::reset_memo();
    state.ResumeTiming();
    const ModelInstructionProfile profile = counter.count(compiled);
    benchmark::DoNotOptimize(profile.total_instructions);
  }
  state.SetLabel(kModelNames[state.range(0)]);
}
BENCHMARK(BM_CountWholeModelCold)->Arg(0)->Arg(1)->Arg(2);

/// Warm DCA: repeated counting of the same model — the zoo-sweep /
/// serve-traffic shape.  After the first iteration every launch is a
/// memo hit; this is the paper's t_dca term for repeat requests.
void BM_CountWholeModelWarm(benchmark::State& state) {
  const cnn::Model model = cnn::zoo::build(kModelNames[state.range(0)]);
  const CodeGenerator codegen;
  const CompiledModel compiled = codegen.compile(model);
  const InstructionCounter counter;
  counter.count(compiled);  // prime the memo
  for (auto _ : state) {
    const ModelInstructionProfile profile = counter.count(compiled);
    benchmark::DoNotOptimize(profile.total_instructions);
  }
  state.SetLabel(kModelNames[state.range(0)]);
}
BENCHMARK(BM_CountWholeModelWarm)->Arg(0)->Arg(1)->Arg(2);

/// Counter construction: binds to the process-shared parsed library —
/// O(1) after the first counter in the process (was: full PTX re-parse
/// plus per-kernel slicing, every time).
void BM_ConstructCounter(benchmark::State& state) {
  const InstructionCounter prime;  // pay the one-time analysis up front
  for (auto _ : state) {
    const InstructionCounter counter;
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_ConstructCounter);

void BM_CompileModel(benchmark::State& state) {
  const cnn::Model model = cnn::zoo::build("resnet50v2");
  const CodeGenerator codegen;
  for (auto _ : state) {
    const CompiledModel compiled = codegen.compile(model);
    benchmark::DoNotOptimize(compiled.launches.size());
  }
}
BENCHMARK(BM_CompileModel);

}  // namespace

BENCHMARK_MAIN();
