// Microbenchmarks of the CNN substrate: zoo construction, static
// analysis, and model serialization throughput.
#include <benchmark/benchmark.h>

#include "cnn/model_io.hpp"
#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"

namespace {

using namespace gpuperf;

void BM_BuildZooModel(benchmark::State& state, const char* name) {
  for (auto _ : state) {
    const cnn::Model model = cnn::zoo::build(name);
    benchmark::DoNotOptimize(model.node_count());
  }
  state.SetLabel(name);
}
BENCHMARK_CAPTURE(BM_BuildZooModel, alexnet, "alexnet");
BENCHMARK_CAPTURE(BM_BuildZooModel, resnet152v2, "resnet152v2");
BENCHMARK_CAPTURE(BM_BuildZooModel, efficientnetb7, "efficientnetb7");
BENCHMARK_CAPTURE(BM_BuildZooModel, nasnetlarge, "nasnetlarge");

void BM_StaticAnalysis(benchmark::State& state, const char* name) {
  const cnn::Model model = cnn::zoo::build(name);
  const cnn::StaticAnalyzer analyzer;
  for (auto _ : state) {
    const cnn::ModelReport report = analyzer.analyze(model);
    benchmark::DoNotOptimize(report.trainable_params);
  }
  state.SetLabel(name);
}
BENCHMARK_CAPTURE(BM_StaticAnalysis, mobilenetv2, "MobileNetV2");
BENCHMARK_CAPTURE(BM_StaticAnalysis, efficientnetb7, "efficientnetb7");

void BM_SerializeModel(benchmark::State& state) {
  const cnn::Model model = cnn::zoo::build("resnet50v2");
  for (auto _ : state) {
    const std::string text = cnn::serialize_model(model);
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_SerializeModel);

void BM_DeserializeModel(benchmark::State& state) {
  const std::string text =
      cnn::serialize_model(cnn::zoo::build("resnet50v2"));
  for (auto _ : state) {
    const cnn::Model model = cnn::deserialize_model(text);
    benchmark::DoNotOptimize(model.node_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_DeserializeModel);

void BM_AnalyzeWholeZoo(benchmark::State& state) {
  const cnn::StaticAnalyzer analyzer;
  for (auto _ : state) {
    std::int64_t total = 0;
    for (const auto& entry : cnn::zoo::all_models())
      total += analyzer.analyze(entry.build()).trainable_params;
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AnalyzeWholeZoo);

}  // namespace

BENCHMARK_MAIN();
