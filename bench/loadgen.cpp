// Multi-threaded load generator for the serving core (docs/SERVER.md).
// Drives many thousands of concurrent loopback connections against a
// gpuperf server — an external one (--host/--port) or an in-process
// one (--self) — in either framing, and reports throughput and
// latency percentiles as loadgen-native JSON that bench/summarize.py
// folds into the standard BENCH shape.
//
//   loadgen --self --connections 10000 --duration-s 5 --protocol both
//
// Closed-loop by default: every connection keeps --pipeline requests
// in flight and issues the next request as each response lands.
// --rps switches to open-loop arrival: requests are issued on a fixed
// schedule across the connection pool regardless of completions, so
// queueing delay shows up in the latency tail instead of hiding in a
// lower offered rate.
//
// Each worker thread owns an epoll set and an equal share of the
// connections; connects are issued in bounded waves so a 10k ramp
// doesn't overflow the listen backlog.  Latency is measured per
// request (send timestamp FIFO per connection — responses are FIFO in
// both framings) into the serve LatencyHistogram, warmup excluded.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "serve/binary_protocol.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace serve = gpuperf::serve;
namespace binary = serve::binary;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  bool self = false;        // spin up an in-process server
  int connections = 10000;  // total, split across threads
  int threads = 4;
  double warmup_s = 1.0;
  double duration_s = 5.0;
  int pipeline = 1;              // closed-loop in-flight per connection
  double rps = 0.0;              // >0: open-loop offered rate (total)
  std::string protocol = "both";  // line | binary | both
  std::string verb = "ping";      // ping | predict
  std::string out;                // JSON report path ("" = stdout only)
  bool require_binary_faster = false;
  /// Fault spec armed in-process before the run (common/fault.hpp
  /// grammar, e.g. "net.read=throw*100;net.write=throw*100").  Only
  /// the --self server shares the process, so faults only bite there.
  std::string fault_spec;
};

struct RunResult {
  std::string protocol;
  std::uint64_t connected = 0;  // connections that completed connect()
  std::uint64_t requests = 0;   // responses completed in the window
  std::uint64_t errors = 0;     // failed connects / bad frames
  std::uint64_t resets = 0;     // peer resets/EOF mid-run (ECONNRESET,
                                // EPIPE, RST) — expected under chaos,
                                // counted separately from errors
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

// warmup -> measuring -> done; workers poll this to bound their run.
enum class Phase : int { kWarmup, kMeasure, kDone };

struct Shared {
  std::atomic<Phase> phase{Phase::kWarmup};
  std::atomic<std::uint64_t> connected{0};
  std::atomic<std::uint64_t> measured{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> resets{0};
  serve::LatencyHistogram latency;
};

struct Conn {
  int fd = -1;
  bool connected = false;
  bool dead = false;
  std::string out;       // unsent request bytes
  std::size_t out_off = 0;
  std::string in;        // unparsed response bytes
  std::deque<Clock::time_point> sent_at;  // FIFO in-flight timestamps
};

/// One request on the wire for the chosen protocol + verb.
std::string request_bytes(const std::string& protocol,
                          const std::string& verb) {
  const bool predict = verb == "predict";
  if (protocol == "binary")
    return predict ? binary::encode_request(binary::Verb::kPredict,
                                            "alexnet v100s")
                   : binary::encode_request(binary::Verb::kPing, "");
  return predict ? std::string("predict alexnet v100s\n")
                 : std::string("ping\n");
}

void raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  lim.rlim_cur = lim.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &lim);
}

class Worker {
 public:
  Worker(const LoadgenOptions& options, const std::string& protocol,
         int port, int n_conns, double thread_rps, Shared& shared)
      : options_(options), protocol_(protocol), port_(port),
        request_(request_bytes(protocol, options.verb)),
        thread_interval_ns_(thread_rps > 0 ? 1e9 / thread_rps : 0),
        shared_(shared) {
    conns_.resize(static_cast<std::size_t>(n_conns));
  }

  void run() {
    epfd_ = ::epoll_create1(0);
    if (epfd_ < 0) return;
    kick_connects();

    auto next_send = Clock::now();
    epoll_event events[256];
    while (shared_.phase.load(std::memory_order_relaxed) != Phase::kDone) {
      int timeout_ms = 100;
      if (thread_interval_ns_ > 0) {
        const auto now = Clock::now();
        const double until_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(next_send -
                                                                 now)
                .count();
        timeout_ms = until_ns <= 0 ? 0 : static_cast<int>(until_ns / 1e6) + 1;
        if (timeout_ms > 100) timeout_ms = 100;
      }
      const int n = ::epoll_wait(epfd_, events,
                                 static_cast<int>(std::size(events)),
                                 timeout_ms);
      for (int i = 0; i < n; ++i) {
        const std::size_t idx = events[i].data.u32;
        Conn& conn = conns_[idx];
        if (conn.dead) continue;
        if (!conn.connected) {
          finish_connect(idx);
          continue;
        }
        if (events[i].events & (EPOLLERR | EPOLLHUP)) {
          fail_conn(conn, /*reset=*/true);
          continue;
        }
        if (events[i].events & EPOLLOUT) flush_out(idx);
        if (events[i].events & EPOLLIN) read_responses(idx);
      }
      // Open-loop arrival: issue every request whose scheduled time
      // passed, round-robin over the connected pool.
      if (thread_interval_ns_ > 0) {
        const auto now = Clock::now();
        while (next_send <= now) {
          issue_on_next_conn();
          next_send += std::chrono::nanoseconds(
              static_cast<std::int64_t>(thread_interval_ns_));
        }
      }
    }
    for (Conn& conn : conns_)
      if (conn.fd >= 0) ::close(conn.fd);
    ::close(epfd_);
  }

 private:
  static constexpr int kConnectWave = 256;

  void kick_connects() {
    while (next_to_connect_ < conns_.size() &&
           connecting_ < kConnectWave) {
      start_connect(next_to_connect_++);
    }
  }

  void start_connect(std::size_t idx) {
    Conn& conn = conns_[idx];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (conn.fd < 0) {
      conn.dead = true;
      shared_.errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // RST on close: a 10k-connection run must not leave 10k TIME_WAIT
    // sockets behind to slow down the next protocol's run.
    const linger hard_close{1, 0};
    ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &hard_close,
                 sizeof(hard_close));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr);
    const int rc =
        ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      fail_conn(conn);
      return;
    }
    ++connecting_;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u32 = static_cast<std::uint32_t>(idx);
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn.fd, &ev);
  }

  void finish_connect(std::size_t idx) {
    Conn& conn = conns_[idx];
    --connecting_;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      fail_conn(conn);
      kick_connects();
      return;
    }
    conn.connected = true;
    shared_.connected.fetch_add(1, std::memory_order_relaxed);
    update_interest(idx);
    // Closed loop: prime the pipeline window.
    if (thread_interval_ns_ <= 0)
      for (int k = 0; k < options_.pipeline; ++k) issue(idx);
    kick_connects();
  }

  /// `reset` distinguishes a peer that dropped us mid-run (expected
  /// under fault injection; the run carries on with one connection
  /// fewer) from connect failures and protocol errors.
  void fail_conn(Conn& conn, bool reset = false) {
    if (conn.fd >= 0) {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      ::close(conn.fd);
    }
    conn.fd = -1;
    conn.dead = true;
    (reset ? shared_.resets : shared_.errors)
        .fetch_add(1, std::memory_order_relaxed);
  }

  void update_interest(std::size_t idx) {
    Conn& conn = conns_[idx];
    epoll_event ev{};
    ev.events = EPOLLIN |
                (conn.out_off < conn.out.size() ? EPOLLOUT : 0u);
    ev.data.u32 = static_cast<std::uint32_t>(idx);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  /// Queue one request on connection idx and push its timestamp.
  void issue(std::size_t idx) {
    Conn& conn = conns_[idx];
    if (conn.dead || !conn.connected) return;
    conn.out.append(request_);
    conn.sent_at.push_back(Clock::now());
    flush_out(idx);
  }

  void issue_on_next_conn() {
    for (std::size_t tries = 0; tries < conns_.size(); ++tries) {
      const std::size_t idx = rr_++ % conns_.size();
      if (!conns_[idx].dead && conns_[idx].connected) {
        issue(idx);
        return;
      }
    }
  }

  void flush_out(std::size_t idx) {
    Conn& conn = conns_[idx];
    while (conn.out_off < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      fail_conn(conn,
                /*reset=*/n < 0 && (errno == ECONNRESET || errno == EPIPE));
      return;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
    }
    update_interest(idx);
  }

  void read_responses(std::size_t idx) {
    Conn& conn = conns_[idx];
    char chunk[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or reset mid-run: the server closed us (idle reap, chaos
      // fault, backpressure) — count as a reset, not a protocol error.
      fail_conn(conn, /*reset=*/n == 0 || errno == ECONNRESET);
      return;
    }
    if (protocol_ == "binary")
      parse_binary(conn);
    else
      parse_lines(conn);
    // Closed-loop re-issues queue on conn.out; push them out now.
    if (!conn.dead && conn.out_off < conn.out.size()) flush_out(idx);
  }

  void parse_lines(Conn& conn) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = conn.in.find('\n', start);
      if (nl == std::string::npos) break;
      complete_one(conn);
      start = nl + 1;
    }
    if (start > 0) conn.in.erase(0, start);
  }

  void parse_binary(Conn& conn) {
    gpuperf::InputLimits limits = gpuperf::InputLimits::defaults();
    limits.max_frame_payload_bytes = limits.max_response_bytes;
    std::size_t start = 0;
    for (;;) {
      const binary::DecodeResult r = binary::decode_frame(
          std::string_view(conn.in).substr(start), limits);
      if (r.status == binary::DecodeStatus::kNeedMore) break;
      if (r.status != binary::DecodeStatus::kFrame) {
        fail_conn(conn);
        return;
      }
      complete_one(conn);
      start += r.consumed;
    }
    if (start > 0) conn.in.erase(0, start);
  }

  void complete_one(Conn& conn) {
    Clock::time_point sent{};
    if (!conn.sent_at.empty()) {
      sent = conn.sent_at.front();
      conn.sent_at.pop_front();
    }
    const Phase phase = shared_.phase.load(std::memory_order_relaxed);
    if (phase == Phase::kMeasure) {
      shared_.measured.fetch_add(1, std::memory_order_relaxed);
      if (sent != Clock::time_point{}) {
        const double seconds =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - sent)
                .count() *
            1e-9;
        shared_.latency.record(seconds);
      }
    }
    // Closed loop: keep the pipeline window full.
    if (thread_interval_ns_ <= 0 && phase != Phase::kDone)
      conn.out.append(request_), conn.sent_at.push_back(Clock::now());
  }

  const LoadgenOptions& options_;
  const std::string protocol_;
  const int port_;
  const std::string request_;
  const double thread_interval_ns_;
  Shared& shared_;

  int epfd_ = -1;
  std::vector<Conn> conns_;
  std::size_t next_to_connect_ = 0;
  int connecting_ = 0;
  std::size_t rr_ = 0;
};

/// One measurement slice: ramp connections, warm up, measure for
/// `duration_s`.  Counters and the latency histogram accumulate into
/// `shared` (reused across slices of the same protocol); returns the
/// measured wall seconds.  `connected_this_slice` reports the slice's
/// own connection count.
double run_slice(const LoadgenOptions& options, const std::string& protocol,
                 int port, double duration_s, Shared& shared,
                 std::uint64_t& connected_this_slice) {
  shared.phase.store(Phase::kWarmup);
  const std::uint64_t connected_before = shared.connected.load();
  const int threads = std::max(1, options.threads);
  const double thread_rps = options.rps > 0 ? options.rps / threads : 0.0;

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> pool;
  int remaining = options.connections;
  for (int t = 0; t < threads; ++t) {
    const int share = remaining / (threads - t);
    remaining -= share;
    workers.push_back(std::make_unique<Worker>(options, protocol, port,
                                               share, thread_rps, shared));
  }
  for (auto& worker : workers)
    pool.emplace_back([&worker] { worker->run(); });

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(options.warmup_s * 1000)));
  const auto measure_start = Clock::now();
  shared.phase.store(Phase::kMeasure);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration_s * 1000)));
  shared.phase.store(Phase::kDone);
  const double measured_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           measure_start)
          .count() *
      1e-9;
  for (auto& thread : pool) thread.join();
  connected_this_slice = shared.connected.load() - connected_before;
  return measured_s;
}

/// Compare protocols with an ABBA slice schedule — line, binary,
/// binary, line — so slow drift (scheduler, thermal, page cache) hits
/// both protocols equally instead of whichever happened to run second.
std::vector<RunResult> run_all(const LoadgenOptions& options, int port) {
  std::vector<std::string> schedule;
  double slice_s = options.duration_s;
  if (options.protocol == "both") {
    schedule = {"line", "binary", "binary", "line"};
    slice_s = options.duration_s / 2.0;
  } else {
    schedule = {options.protocol};
  }

  std::map<std::string, Shared> shared;  // per-protocol accumulators
  std::map<std::string, double> measured_s;
  std::map<std::string, std::uint64_t> peak_connected;
  for (const std::string& protocol : schedule) {
    std::cerr << "loadgen: " << protocol << " x" << options.connections
              << " conns, " << slice_s << "s slice...\n";
    std::uint64_t connected = 0;
    measured_s[protocol] += run_slice(options, protocol, port, slice_s,
                                      shared[protocol], connected);
    peak_connected[protocol] =
        std::max(peak_connected[protocol], connected);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::vector<RunResult> runs;
  for (const std::string& protocol :
       options.protocol == "both"
           ? std::vector<std::string>{"line", "binary"}
           : std::vector<std::string>{options.protocol}) {
    const Shared& s = shared[protocol];
    RunResult result;
    result.protocol = protocol;
    result.connected = peak_connected[protocol];
    result.requests = s.measured.load();
    result.errors = s.errors.load();
    result.resets = s.resets.load();
    result.rps = measured_s[protocol] > 0
                     ? result.requests / measured_s[protocol]
                     : 0.0;
    result.p50_us = s.latency.percentile(0.50) * 1e6;
    result.p99_us = s.latency.percentile(0.99) * 1e6;
    result.p999_us = s.latency.percentile(0.999) * 1e6;
    runs.push_back(result);
  }
  return runs;
}

std::string report_json(const LoadgenOptions& options,
                        const std::vector<RunResult>& runs) {
  std::ostringstream out;
  out << "{\n  \"loadgen\": {"
      << "\"connections\": " << options.connections
      << ", \"threads\": " << options.threads
      << ", \"duration_s\": " << options.duration_s
      << ", \"pipeline\": " << options.pipeline
      << ", \"rps_target\": " << options.rps << ", \"verb\": \""
      << options.verb << "\"},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << "    {\"protocol\": \"" << r.protocol << "\""
        << ", \"connected\": " << r.connected
        << ", \"requests\": " << r.requests
        << ", \"errors\": " << r.errors << ", \"resets\": " << r.resets
        << ", \"rps\": " << r.rps
        << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
        << ", \"p999_us\": " << r.p999_us << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --host A           server address (default 127.0.0.1)\n"
      << "  --port N           server port (required unless --self)\n"
      << "  --self             start an in-process server to load\n"
      << "  --connections N    concurrent connections (default 10000)\n"
      << "  --threads N        worker threads (default 4)\n"
      << "  --warmup-s S       excluded from stats (default 1)\n"
      << "  --duration-s S     measured window (default 5)\n"
      << "  --pipeline N       closed-loop in-flight/conn (default 1)\n"
      << "  --rps N            open-loop offered rate (0 = closed loop)\n"
      << "  --protocol P       line | binary | both (default both)\n"
      << "  --verb V           ping | predict (default ping)\n"
      << "  --out FILE         write loadgen-native JSON report\n"
      << "  --fault-spec S     arm in-process faults (--self only),\n"
      << "                     e.g. net.read=throw*100;net.write=throw*50\n"
      << "  --require-binary-faster  exit 1 unless binary rps > line\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") options.host = value();
    else if (arg == "--port") options.port = std::stoi(value());
    else if (arg == "--self") options.self = true;
    else if (arg == "--connections") options.connections = std::stoi(value());
    else if (arg == "--threads") options.threads = std::stoi(value());
    else if (arg == "--warmup-s") options.warmup_s = std::stod(value());
    else if (arg == "--duration-s") options.duration_s = std::stod(value());
    else if (arg == "--pipeline") options.pipeline = std::stoi(value());
    else if (arg == "--rps") options.rps = std::stod(value());
    else if (arg == "--protocol") options.protocol = value();
    else if (arg == "--verb") options.verb = value();
    else if (arg == "--out") options.out = value();
    else if (arg == "--fault-spec") options.fault_spec = value();
    else if (arg == "--require-binary-faster")
      options.require_binary_faster = true;
    else
      return usage(argv[0]);
  }
  if (options.protocol != "line" && options.protocol != "binary" &&
      options.protocol != "both")
    return usage(argv[0]);
  if (!options.self && options.port == 0) return usage(argv[0]);

  raise_fd_limit();

  if (!options.fault_spec.empty()) {
    if (!options.self)
      std::cerr << "loadgen: --fault-spec arms faults in THIS process; "
                   "without --self the external server is unaffected\n";
    gpuperf::fault::arm_from_spec(options.fault_spec);
  }

  // In-process target: small training subset (we measure serving I/O,
  // not training) and a backlog sized for the connect ramp.
  std::unique_ptr<serve::ServeSession> session;
  std::unique_ptr<serve::TcpServer> server;
  int port = options.port;
  if (options.self) {
    serve::ServeOptions serve_options;
    serve_options.train_models = {"alexnet", "mobilenet"};
    session = std::make_unique<serve::ServeSession>(serve_options);
    serve::TcpServer::Options server_options;
    server_options.backlog = std::max(1024, options.connections);
    server = std::make_unique<serve::TcpServer>(*session, server_options);
    server->start();
    port = server->port();
  }

  const std::vector<RunResult> runs = run_all(options, port);
  for (const RunResult& r : runs) {
    std::cerr << "  " << r.protocol << ": connected=" << r.connected
              << " requests=" << r.requests << " errors=" << r.errors
              << " resets=" << r.resets
              << " rps=" << r.rps << " p50=" << r.p50_us
              << "us p99=" << r.p99_us << "us p999=" << r.p999_us
              << "us\n";
  }

  if (server) {
    server->drain(2000);
    server->stop();
  }

  const std::string report = report_json(options, runs);
  std::cout << report;
  if (!options.out.empty()) {
    std::ofstream file(options.out);
    file << report;
  }

  if (options.require_binary_faster && runs.size() == 2 &&
      runs[1].rps <= runs[0].rps) {
    std::cerr << "loadgen: binary (" << runs[1].rps
              << " rps) did not beat line (" << runs[0].rps << " rps)\n";
    return 1;
  }
  return 0;
}
