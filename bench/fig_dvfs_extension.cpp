// Extension figure (paper future work): IPC under dynamic frequency
// scaling.  Trains the estimator on a coarse DVFS grid of the two
// training GPUs and predicts held-out operating points; also prints
// the measured IPC series across core-clock scaling, whose shape
// (memory-bound kernels gain IPC as the core slows) is the physics the
// feature set has to capture.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "experiment_common.hpp"
#include "gpu/device_db.hpp"
#include "gpu/dvfs.hpp"
#include "gpu/profiler.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace gpuperf;

  // Training grid: both paper GPUs at {0.6, 0.8, 1.0, 1.2}^2 operating
  // points.  Held-out evaluation at intermediate points.
  const std::vector<double> train_scales = {0.6, 0.8, 1.0, 1.2};
  const std::vector<double> eval_scales = {0.7, 0.9, 1.1};

  core::DatasetOptions options;
  options.seed = bench::kDatasetSeed;
  options.models = {"resnet50v2", "MobileNetV2", "vgg16", "densenet121",
                    "efficientnetb0", "efficientnetb3", "Xception",
                    "mobilenet", "inceptionv3", "alexnet"};
  for (const auto& dev : gpu::training_devices())
    for (const auto& spec :
         gpu::dvfs_grid(gpu::device(dev), train_scales, train_scales))
      options.custom_devices.push_back(spec);

  std::printf("training on %zu CNNs x %zu DVFS operating points...\n",
              options.models.size(), options.custom_devices.size());
  const ml::Dataset train = core::DatasetBuilder(options).build();
  core::PerformanceEstimator estimator("dt", bench::kModelSeed);
  estimator.train(train);

  // Measured-vs-predicted on held-out operating points.
  const gpu::Profiler profiler(0.0);
  core::FeatureExtractor extractor;
  std::vector<double> actual, predicted;
  for (const auto& model_name : options.models) {
    const core::ModelFeatures& features =
        extractor.for_zoo_model(model_name);
    const cnn::Model model = cnn::zoo::build(model_name);
    for (double c : eval_scales) {
      const gpu::DeviceSpec spec = gpu::scale_device(
          gpu::device("gtx1080ti"), gpu::DvfsPoint{c, 1.0});
      actual.push_back(profiler.profile(model, spec).ipc);
      predicted.push_back(estimator.predict(
          core::FeatureExtractor::feature_vector(features, spec)));
    }
  }
  std::printf(
      "held-out DVFS points (%zu): MAPE %.2f%%, R^2 %.4f\n\n",
      actual.size(), ml::mape(actual, predicted),
      ml::r2(actual, predicted));

  // The IPC-vs-core-clock series for one model.
  TextTable table(
      "Measured and predicted IPC of resnet50v2 on gtx1080ti vs core "
      "clock scale (memory clock fixed)");
  table.set_header({"core scale", "boost MHz", "measured IPC",
                    "predicted IPC"});
  const cnn::Model resnet = cnn::zoo::build("resnet50v2");
  const core::ModelFeatures& rf = extractor.for_zoo_model("resnet50v2");
  for (double c : {0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}) {
    const gpu::DeviceSpec spec = gpu::scale_device(
        gpu::device("gtx1080ti"), gpu::DvfsPoint{c, 1.0});
    const double measured = profiler.profile(resnet, spec).ipc;
    const double pred = estimator.predict(
        core::FeatureExtractor::feature_vector(rf, spec));
    table.add_row({fixed(c, 2), fixed(spec.boost_clock_mhz, 0),
                   fixed(measured, 4), fixed(pred, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: measured IPC falls as the core clock rises\n"
      "(memory-bound kernels wait more cycles per byte); predictions\n"
      "track the trend from the clock features.\n");
  return 0;
}
