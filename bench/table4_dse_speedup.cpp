// Reproduces Table IV: execution time of the naive approach (profile
// every GPU with nvprof) versus ours (one dynamic code analysis plus n
// model inferences) for seven CNNs across n = 1..7 GPUs.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dse/sweep.hpp"
#include "experiment_common.hpp"
#include "gpu/device_db.hpp"

int main() {
  using namespace gpuperf;

  const ml::Dataset data = bench::build_paper_dataset();
  core::PerformanceEstimator estimator("dt", bench::kModelSeed);
  estimator.train(data);

  constexpr int kMaxDevices = 7;

  TextTable table(
      "Table IV: Execution time (s), naive profiling vs proposed approach");
  std::vector<std::string> header = {"CNN", "t_p", "t_dca", "t_pm"};
  for (int n = 1; n <= kMaxDevices; ++n) {
    header.push_back("naive n=" + std::to_string(n));
    header.push_back("ours n=" + std::to_string(n));
  }
  table.set_header(header);

  double total_speedup_n1 = 0.0;
  double total_speedup_n7 = 0.0;
  int rows = 0;

  // The whole Table IV model set in one call to the DSE subsystem.
  const std::vector<core::DseTiming> timings = dse::time_models(
      estimator, cnn::zoo::table4_models(), gpu::dse_devices());

  for (const core::DseTiming& timing : timings) {
    std::vector<std::string> row = {timing.model, fixed(timing.t_p, 1),
                                    fixed(timing.t_dca, 4),
                                    fixed(timing.t_pm, 6)};
    for (int n = 1; n <= kMaxDevices; ++n) {
      row.push_back(fixed(timing.t_measur(n), 1));
      row.push_back(fixed(timing.t_est(n), 4));
    }
    table.add_row(row);
    total_speedup_n1 += timing.speedup(1);
    total_speedup_n7 += timing.speedup(kMaxDevices);
    ++rows;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\naverage speedup: %.0fx at n=1, %.0fx at n=7 (paper: 33x average "
      "for a single GPU, growing with n)\n",
      total_speedup_n1 / rows, total_speedup_n7 / rows);
  return 0;
}
