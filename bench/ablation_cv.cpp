// Robustness check on Table II: the paper scores each algorithm on a
// single 70/30 split of 62 observations, where one lucky draw can move
// MAPE by points.  This bench repeats the comparison with 5-fold
// cross-validation and reports per-fold spread, so the ordering claim
// can be judged against its variance.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "experiment_common.hpp"
#include "ml/cross_validation.hpp"

int main() {
  using namespace gpuperf;

  const ml::Dataset data = bench::build_paper_dataset();
  constexpr std::size_t kFolds = 5;

  TextTable table("Table II under 5-fold cross-validation");
  table.set_header({"Regression Model", "MAPE (pooled)", "MAPE mean±sd",
                    "R^2 (pooled)"});

  for (const auto& id : ml::regressor_ids()) {
    const ml::CvResult cv =
        ml::cross_validate(data, kFolds, id, bench::kModelSeed);
    const auto model = ml::make_regressor(id);
    table.add_row({model->name(), fixed(cv.pooled.mape, 2) + "%",
                   fixed(cv.mape_mean, 2) + "% ± " +
                       fixed(cv.mape_stddev, 2),
                   fixed(cv.pooled.r2, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: same ordering as the single-split Table II, with\n"
      "fold-to-fold spread of a few MAPE points — the single split the\n"
      "paper reports sits inside this band.\n");
  return 0;
}
