// Microbenchmarks of the model registry (docs/REGISTRY.md): bundle
// load + verify, the hot-swap a `reload` request pays, and the warm
// restart a persistent DCA feature store buys over a cold one.  The
// warm/cold restart pair is the headline number — loading serialized
// features is file I/O, recomputing them is static analysis + PTX
// codegen + sliced symbolic execution per model.  main() asserts the
// warm path executed zero DCA passes before running the benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "registry/registry.hpp"
#include "serve/session.hpp"

namespace {

using namespace gpuperf;

const std::vector<std::string> kBenchModels = {"alexnet", "mobilenet",
                                               "MobileNetV2", "vgg16"};

std::string bench_dir(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("gpuperf_bench_" + name))
      .string();
}

/// A registry with one dt and one knn bundle, built once.
const std::string& bench_registry() {
  static const std::string root = [] {
    const std::string dir = bench_dir("registry");
    std::filesystem::remove_all(dir);
    core::DatasetOptions dataset;
    dataset.models = kBenchModels;
    const ml::Dataset data = core::DatasetBuilder(dataset).build();
    registry::ModelRegistry reg(dir);
    core::PerformanceEstimator dt("dt", 42);
    dt.train(data);
    reg.publish(dt, {});
    core::PerformanceEstimator knn("knn", 42);
    knn.train(data);
    reg.publish(knn, {});
    return dir;
  }();
  return root;
}

// Bundle load: manifest parse, checksum verification over the model
// text, model deserialization, schema validation.
void BM_BundleLoad(benchmark::State& state) {
  registry::ModelRegistry reg(bench_registry());
  for (auto _ : state)
    benchmark::DoNotOptimize(reg.load("v0001"));
}
BENCHMARK(BM_BundleLoad)->Unit(benchmark::kMicrosecond);

// The full hot-swap a live server pays per `reload` request: bundle
// load + estimator install + prediction-cache invalidation.  In-flight
// predicts keep their snapshot, so this latency never blocks them.
void BM_HotSwap(benchmark::State& state) {
  serve::ServeOptions options;
  options.registry_dir = bench_registry();
  options.n_threads = 2;
  serve::ServeSession session(options);
  std::size_t i = 0;
  for (auto _ : state)
    session.reload(++i % 2 == 0 ? "v0001" : "v0002");
}
BENCHMARK(BM_HotSwap)->Unit(benchmark::kMicrosecond);

// Server restart with an empty feature store: every first predict runs
// the full DCA pipeline.
void BM_RestartCold(benchmark::State& state) {
  serve::ServeOptions options;
  options.registry_dir = bench_registry();
  options.n_threads = 2;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string store = bench_dir("cold_store");
    std::filesystem::remove_all(store);
    options.feature_store_dir = store;
    state.ResumeTiming();
    serve::ServeSession session(options);
    for (const auto& model : kBenchModels)
      benchmark::DoNotOptimize(session.predict(model, "v100s"));
  }
}
BENCHMARK(BM_RestartCold)->Unit(benchmark::kMillisecond);

// Server restart against a populated feature store: the DCA features
// stream in from disk, zero slicing/symexec runs.
void BM_RestartWarm(benchmark::State& state) {
  serve::ServeOptions options;
  options.registry_dir = bench_registry();
  options.feature_store_dir = bench_dir("warm_store");
  options.n_threads = 2;
  std::filesystem::remove_all(options.feature_store_dir);
  {
    serve::ServeSession primer(options);
    for (const auto& model : kBenchModels) primer.predict(model, "v100s");
  }
  for (auto _ : state) {
    serve::ServeSession session(options);
    for (const auto& model : kBenchModels)
      benchmark::DoNotOptimize(session.predict(model, "v100s"));
    if (session.dca_compute_count() != 0) {
      state.SkipWithError("warm restart ran DCA — feature store broken");
      return;
    }
  }
}
BENCHMARK(BM_RestartWarm)->Unit(benchmark::kMillisecond);

/// The acceptance check behind BM_RestartWarm, run unconditionally so
/// a plain `./micro_registry` run verifies it even with filters set.
bool verify_warm_restart_runs_no_dca() {
  serve::ServeOptions options;
  options.registry_dir = bench_registry();
  options.feature_store_dir = bench_dir("verify_store");
  options.n_threads = 2;
  std::filesystem::remove_all(options.feature_store_dir);
  {
    serve::ServeSession primer(options);
    for (const auto& model : kBenchModels) primer.predict(model, "v100s");
  }
  serve::ServeSession warm(options);
  for (const auto& model : kBenchModels) warm.predict(model, "v100s");
  std::printf("warm restart: %llu DCA passes, %llu feature-store hits\n",
              static_cast<unsigned long long>(warm.dca_compute_count()),
              static_cast<unsigned long long>(
                  warm.feature_store_hit_count()));
  return warm.dca_compute_count() == 0 &&
         warm.feature_store_hit_count() == kBenchModels.size();
}

}  // namespace

int main(int argc, char** argv) {
  if (!verify_warm_restart_runs_no_dca()) {
    std::fprintf(stderr,
                 "FAIL: warm restart recomputed DCA features\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
