// Microbenchmarks of the estimation service: cold predictions (full
// DCA) vs cache hits, the protocol overhead on a warm path, and burst
// handling with the micro-batcher on vs off.  The cold/hit pair is the
// headline number — the service exists because a warm predict is
// orders of magnitude cheaper than a cold one.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "common/fault.hpp"
#include "sandbox/worker_pool.hpp"
#include "serve/session.hpp"

namespace {

using namespace gpuperf;

serve::ServeOptions bench_options() {
  serve::ServeOptions options;
  // Small training subset: the benches measure serving, not training.
  options.train_models = {"alexnet", "mobilenet", "MobileNetV2", "vgg16"};
  return options;
}

serve::ServeSession& shared_session() {
  static serve::ServeSession session(bench_options());
  return session;
}

// A cold predict pays for static analysis + PTX codegen + sliced
// symbolic execution.  Clearing the caches each iteration re-exposes
// that full path (the clear itself is a few map erases — noise).
void BM_PredictCold(benchmark::State& state) {
  serve::ServeSession& session = shared_session();
  for (auto _ : state) {
    session.reset_caches();
    benchmark::DoNotOptimize(session.predict("mobilenet", "v100s"));
  }
}
BENCHMARK(BM_PredictCold)->Unit(benchmark::kMicrosecond);

// A warm predict is a result-cache lookup.
void BM_PredictCacheHit(benchmark::State& state) {
  serve::ServeSession& session = shared_session();
  session.predict("mobilenet", "v100s");  // prime
  for (auto _ : state)
    benchmark::DoNotOptimize(session.predict("mobilenet", "v100s"));
}
BENCHMARK(BM_PredictCacheHit)->Unit(benchmark::kMicrosecond);

// Feature-cache hit but result-cache miss: DCA is amortized, only the
// tree walk and bookkeeping run.  Alternating devices on one model
// keeps the feature entry warm while forcing a fresh prediction.
void BM_PredictFeatureHitResultMiss(benchmark::State& state) {
  serve::ServeSession& session = shared_session();
  session.predict("mobilenet", "v100s");  // prime the feature cache
  const std::string devices[] = {"gtx1080ti", "teslat4"};
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    session.reset_result_cache();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        session.predict("mobilenet", devices[i++ % 2]));
  }
}
BENCHMARK(BM_PredictFeatureHitResultMiss)->Unit(benchmark::kMicrosecond);

#ifdef GPUPERF_FAULT_INJECTION
// The degraded path: DCA is forced to fail, so every predict falls
// back to static-features-only estimation with an imputed
// executed-instructions value (docs/ROBUSTNESS.md).  Degraded results
// are never cached, so each iteration pays the full fallback:
// single-flight miss + failed compute + static-report lookup +
// estimator walk.  This is the latency floor a client sees when the
// analysis budget trips — it must sit near the warm path, far from the
// cold one.
void BM_PredictDegraded(benchmark::State& state) {
  serve::ServeSession session(bench_options());
  // Seed the imputation mean and the static-report cache with one
  // healthy pass before arming the fault.
  session.predict("alexnet", "v100s");
  session.handle_line("analyze mobilenet");
  fault::ScopedFault fail_dca("dca.compute", fault::Spec{});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        session.handle_line("predict mobilenet v100s"));
}
BENCHMARK(BM_PredictDegraded)->Unit(benchmark::kMicrosecond);
#endif  // GPUPERF_FAULT_INJECTION

// The crash-isolation tax (docs/ROBUSTNESS.md "Crash isolation"): the
// same cold predict as BM_PredictCold, but the DCA pass runs in a
// sandboxed worker process — fork-pool scheduling, request/response
// framing over pipes, and the cross-process copy of the feature
// vector all land on top of the analysis itself.  Tracked next to the
// in-process number in BENCH_serve.json so the overhead stays an
// explicit, diffable slice.
void BM_PredictColdIsolated(benchmark::State& state) {
  serve::ServeOptions options = bench_options();
  options.isolate_dca = true;
  serve::ServeSession session(options);
  session.predict("mobilenet", "v100s");  // pre-fork + first-touch once
  for (auto _ : state) {
    session.reset_caches();
    benchmark::DoNotOptimize(session.predict("mobilenet", "v100s"));
  }
}
BENCHMARK(BM_PredictColdIsolated)->Unit(benchmark::kMicrosecond);

// The sandbox round-trip floor: a request the worker answers almost
// for free (parsing a four-line PTX kernel), so the number is pure
// pool overhead — slot acquisition, two CRC-framed pipe hops, and the
// worker's read-serve-write loop.  The gap between this and an
// in-process parse_ptx call bounds what isolation can ever cost a
// request that misses every cache.
void BM_SandboxRoundtrip(benchmark::State& state) {
  sandbox::PoolOptions options;
  options.workers = 1;
  sandbox::WorkerPool pool(options);
  const std::string tiny = ".visible .entry noop() {\n  ret;\n}\n";
  pool.check_ptx(tiny, Deadline());  // first-touch fork once
  for (auto _ : state) pool.check_ptx(tiny, Deadline());
}
BENCHMARK(BM_SandboxRoundtrip)->Unit(benchmark::kMicrosecond);

// The full wire-facing path on a warm cache: parse + dispatch +
// metrics + JSON serialization.
void BM_HandleLineCacheHit(benchmark::State& state) {
  serve::ServeSession& session = shared_session();
  session.handle_line("predict mobilenet v100s");  // prime
  for (auto _ : state)
    benchmark::DoNotOptimize(
        session.handle_line("predict mobilenet v100s"));
}
BENCHMARK(BM_HandleLineCacheHit)->Unit(benchmark::kMicrosecond);

void BM_StatsEndpoint(benchmark::State& state) {
  serve::ServeSession& session = shared_session();
  for (auto _ : state)
    benchmark::DoNotOptimize(session.handle_line("stats"));
}
BENCHMARK(BM_StatsEndpoint)->Unit(benchmark::kMicrosecond);

// Burst of concurrent predicts for one model across several devices,
// caches cleared each iteration so every burst pays one DCA.  Arg(1)
// routes through the micro-batcher (requests grouped per model, one
// feature fetch per group, predicts spread over the pool); Arg(0) runs
// each request inline on its client thread — the single-flight feature
// cache is then the only deduplication.
void BM_BurstPredicts(benchmark::State& state) {
  serve::ServeOptions options = bench_options();
  options.batching = state.range(0) != 0;
  options.n_threads = 4;
  serve::ServeSession session(options);
  session.predict("mobilenet", "v100s");  // pay training/first-touch once
  const std::vector<std::string> devices = {"gtx1080ti", "v100s",
                                            "teslat4"};
  constexpr int kClients = 6;
  constexpr int kPerClient = 4;
  for (auto _ : state) {
    state.PauseTiming();
    session.reset_caches();
    state.ResumeTiming();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i)
          benchmark::DoNotOptimize(session.predict(
              "mobilenet", devices[(c + i) % devices.size()]));
      });
    for (auto& client : clients) client.join();
  }
  state.SetItemsProcessed(state.iterations() * kClients * kPerClient);
  state.SetLabel(options.batching ? "batched" : "serial");
}
BENCHMARK(BM_BurstPredicts)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
