// The paper's future work: add FLOPs/MACs (and other topology
// statistics) to the predictor set.  Compares the published feature
// set against the extended one under cross-validation.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "experiment_common.hpp"
#include "ml/cross_validation.hpp"

int main() {
  using namespace gpuperf;

  core::DatasetOptions base_options;
  base_options.seed = bench::kDatasetSeed;
  core::DatasetOptions extended_options = base_options;
  extended_options.extended_cnn_features = true;

  const ml::Dataset base = core::DatasetBuilder(base_options).build();
  const ml::Dataset extended =
      core::DatasetBuilder(extended_options).build();

  TextTable table(
      "Extended predictor set (paper future work: + MACs, neurons, "
      "layers), 5-fold CV");
  table.set_header({"Model", "feature set", "#features", "MAPE (pooled)",
                    "R^2 (pooled)"});

  for (const auto& id : {"dt", "knn", "rf"}) {
    const auto model_name = ml::make_regressor(id)->name();
    const ml::CvResult b =
        ml::cross_validate(base, 5, id, bench::kModelSeed);
    const ml::CvResult e =
        ml::cross_validate(extended, 5, id, bench::kModelSeed);
    table.add_row({model_name, "paper (instr, params, device)",
                   std::to_string(base.n_features()),
                   fixed(b.pooled.mape, 2) + "%", fixed(b.pooled.r2, 4)});
    table.add_row({model_name, "+ macs, neurons, layers",
                   std::to_string(extended.n_features()),
                   fixed(e.pooled.mape, 2) + "%", fixed(e.pooled.r2, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: the extra topology features help modestly — the\n"
      "response is device-dominated, so gains are incremental.\n");
  return 0;
}
