// Microbenchmarks of the regression stack: training and single-row
// prediction latency for each of the five algorithms (the t_pm of the
// paper's DSE timing model).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"

namespace {

using namespace gpuperf;
using namespace gpuperf::ml;

Dataset synthetic(std::size_t rows, std::size_t features,
                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (std::size_t j = 0; j < features; ++j)
    names.push_back("f" + std::to_string(j));
  Dataset d(names, "y");
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> x(features);
    double y = 0.0;
    for (std::size_t j = 0; j < features; ++j) {
      x[j] = rng.uniform(0, 1);
      y += (j % 2 ? 1.0 : -0.5) * x[j] * x[j];
    }
    d.add_row(std::move(x), y + rng.normal(0, 0.05));
  }
  return d;
}

void BM_Train(benchmark::State& state, const char* id) {
  const Dataset data = synthetic(64, 10, 1);
  for (auto _ : state) {
    auto model = make_regressor(id, 42);
    model->fit(data);
    benchmark::DoNotOptimize(model->is_fitted());
  }
}
BENCHMARK_CAPTURE(BM_Train, linear, "linear");
BENCHMARK_CAPTURE(BM_Train, knn, "knn");
BENCHMARK_CAPTURE(BM_Train, dt, "dt");
BENCHMARK_CAPTURE(BM_Train, rf, "rf");
BENCHMARK_CAPTURE(BM_Train, xgb, "xgb");

void BM_Predict(benchmark::State& state, const char* id) {
  const Dataset data = synthetic(64, 10, 2);
  auto model = make_regressor(id, 42);
  model->fit(data);
  Rng rng(3);
  std::vector<double> x(10);
  for (auto& v : x) v = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(x));
  }
}
BENCHMARK_CAPTURE(BM_Predict, linear, "linear");
BENCHMARK_CAPTURE(BM_Predict, knn, "knn");
BENCHMARK_CAPTURE(BM_Predict, dt, "dt");
BENCHMARK_CAPTURE(BM_Predict, rf, "rf");
BENCHMARK_CAPTURE(BM_Predict, xgb, "xgb");

void BM_TreeTrainScaling(benchmark::State& state) {
  const Dataset data =
      synthetic(static_cast<std::size_t>(state.range(0)), 10, 4);
  for (auto _ : state) {
    DecisionTree tree;
    tree.fit(data);
    benchmark::DoNotOptimize(tree.leaf_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreeTrainScaling)->Range(64, 4096)->Complexity();

}  // namespace

BENCHMARK_MAIN();
