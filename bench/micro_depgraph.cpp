// Microbenchmarks of the dependency-graph layer: CSR construction and
// backward-closure traversal (docs/PERF.md "Graph memory layout"), on
// real library kernels and on synthetic giant kernels, with heap usage
// counters so the flat-storage win over per-node vectors is visible in
// BENCH_depgraph.json — not just the time.
#include <benchmark/benchmark.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "ptx/codegen.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/parser.hpp"
#include "ptx/slicer.hpp"
#include "ptx/synthetic.hpp"

namespace {

using namespace gpuperf;
using namespace gpuperf::ptx;

/// Current bytes the allocator holds for live heap allocations (0 when
/// the platform has no mallinfo2).  CSR/arena memory is mmap-backed and
/// deliberately does NOT show up here — that is the point.
std::size_t heap_bytes() {
#if defined(__GLIBC__)
  const struct mallinfo2 mi = mallinfo2();
  return mi.uordblks;
#else
  return 0;
#endif
}

PtxModule synthetic(std::size_t body) {
  SyntheticSpec spec;
  spec.body_instructions = body;
  return synthetic_module(spec);
}

/// Cold graph build: every iteration constructs the CSR arrays from
/// scratch (the thread-local scratch arena stays warm after the first
/// pass, exactly as in steady-state serving).
void BM_BuildDepGraph(benchmark::State& state) {
  const PtxModule mod = synthetic(static_cast<std::size_t>(state.range(0)));
  const PtxKernel& kernel = mod.kernels.front();
  const std::size_t heap_before = heap_bytes();
  std::size_t csr = 0;
  for (auto _ : state) {
    const DependencyGraph graph = DependencyGraph::build(kernel);
    csr = graph.csr_bytes();
    benchmark::DoNotOptimize(graph.edge_count());
  }
  state.counters["csr_bytes"] = benchmark::Counter(static_cast<double>(csr));
  state.counters["heap_delta_bytes"] = benchmark::Counter(
      static_cast<double>(heap_bytes() - heap_before));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(kernel.instructions.size()) *
      state.iterations());
}
BENCHMARK(BM_BuildDepGraph)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BuildDepGraphGemm(benchmark::State& state) {
  const PtxModule lib = parse_ptx(CodeGenerator::kernel_library().to_ptx());
  const PtxKernel& gemm = lib.kernel("gp_gemm");
  for (auto _ : state) {
    const DependencyGraph graph = DependencyGraph::build(gemm);
    benchmark::DoNotOptimize(graph.edge_count());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(gemm.instructions.size()) *
      state.iterations());
}
BENCHMARK(BM_BuildDepGraphGemm);

/// Backward-closure traversal on a prebuilt graph — the pure
/// pointer-chasing-vs-sequential-span comparison.
void BM_BackwardClosure(benchmark::State& state) {
  const PtxModule mod = synthetic(static_cast<std::size_t>(state.range(0)));
  const PtxKernel& kernel = mod.kernels.front();
  const DependencyGraph graph = DependencyGraph::build(kernel);
  for (auto _ : state) {
    const Slice slice = compute_slice(kernel, graph);
    benchmark::DoNotOptimize(slice.slice_size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(kernel.instructions.size()) *
      state.iterations());
}
BENCHMARK(BM_BackwardClosure)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_BackwardClosureGemm(benchmark::State& state) {
  const PtxModule lib = parse_ptx(CodeGenerator::kernel_library().to_ptx());
  const PtxKernel& gemm = lib.kernel("gp_gemm");
  const DependencyGraph graph = DependencyGraph::build(gemm);
  for (auto _ : state) {
    const Slice slice = compute_slice(gemm, graph);
    benchmark::DoNotOptimize(slice.slice_size());
  }
}
BENCHMARK(BM_BackwardClosureGemm);

/// Whole library, build + slice per kernel — the per-request cold path
/// the serve layer pays on a memo miss.
void BM_BuildAndSliceLibrary(benchmark::State& state) {
  const PtxModule lib = parse_ptx(CodeGenerator::kernel_library().to_ptx());
  for (auto _ : state) {
    std::size_t total = 0;
    for (const PtxKernel& kernel : lib.kernels) {
      const DependencyGraph graph = DependencyGraph::build(kernel);
      total += compute_slice(kernel, graph).slice_size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_BuildAndSliceLibrary);

}  // namespace

BENCHMARK_MAIN();
