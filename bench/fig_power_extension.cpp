// Extension: power estimation of CNNs on GPGPUs with the same feature
// set — the authors' companion line of work ([11] CODES+ISSS'21, [17]
// DDECS'22), which the performance paper builds on.  Trains a Decision
// Tree on the simulator's activity-based power model and evaluates on
// held-out CNNs.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/features.hpp"
#include "experiment_common.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace gpuperf;

  // Build a power dataset over the full zoo and both training devices,
  // with the same predictors as the performance model.
  const gpu::Profiler profiler(0.02, bench::kDatasetSeed);
  core::FeatureExtractor extractor;
  ml::Dataset data(core::FeatureExtractor::feature_names(), "power_w");
  for (const auto& entry : cnn::zoo::all_models()) {
    const core::ModelFeatures& features =
        extractor.for_zoo_model(entry.name);
    const cnn::Model model = entry.build();
    for (const auto& device_name : gpu::training_devices()) {
      const gpu::DeviceSpec& device = gpu::device(device_name);
      const gpu::ProfileResult r = profiler.profile(model, device);
      data.add_row(
          core::FeatureExtractor::feature_vector(features, device),
          r.average_power_w, entry.name + "@" + device_name);
    }
  }

  // Hold out the Fig. 4 CNNs entirely, as in the performance setup.
  const auto [train, held] =
      data.split_by_tag_prefix(cnn::zoo::fig4_holdouts());
  ml::DecisionTree tree;
  tree.fit(train);

  TextTable table(
      "Power prediction for held-out CNNs (same predictors as IPC)");
  table.set_header({"CNN@device", "measured W", "predicted W", "error"});
  std::vector<double> actual, predicted;
  for (std::size_t i = 0; i < held.size(); ++i) {
    const double p = tree.predict(held.row(i));
    actual.push_back(held.target(i));
    predicted.push_back(p);
    table.add_row({held.tag(i), fixed(held.target(i), 1), fixed(p, 1),
                   fixed(100.0 * (p - held.target(i)) / held.target(i), 1) +
                       "%"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npower MAPE on held-out CNNs: %.2f%%  (R^2 %.4f)\n",
              ml::mape(actual, predicted), ml::r2(actual, predicted));
  std::printf(
      "expected shape: power is even more device-determined than IPC (TDP\n"
      "dominates), so the same features predict it well — consistent with\n"
      "the authors' separate power-estimation results.\n");
  return 0;
}
