// The paper's closing remark: "these results can be improved by
// considering a more extensive range of GPGPUs for the generation of
// training data sets" (and more CNNs).  This ablation enlarges the
// training set along both axes and reports the Decision Tree's 5-fold
// cross-validated accuracy.
#include <cstdio>

#include "cnn/zoo.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/dataset_builder.hpp"
#include "experiment_common.hpp"
#include "gpu/device_db.hpp"
#include "ml/cross_validation.hpp"

int main() {
  using namespace gpuperf;

  std::vector<std::string> table1_models;
  for (const auto& e : cnn::zoo::all_models())
    table1_models.push_back(e.name);
  std::vector<std::string> extended = table1_models;
  for (const auto& e : cnn::zoo::extended_models())
    extended.push_back(e.name);

  const std::vector<std::string> two_devices = gpu::training_devices();
  const std::vector<std::string> seven_devices = gpu::dse_devices();

  struct Config {
    const char* label;
    std::vector<std::string> models;
    std::vector<std::string> devices;
  };
  const std::vector<Config> configs = {
      {"paper: 31 CNNs x 2 GPUs", table1_models, two_devices},
      {"+3 extended CNNs x 2 GPUs", extended, two_devices},
      {"31 CNNs x 7 GPUs", table1_models, seven_devices},
      {"+3 extended CNNs x 7 GPUs", extended, seven_devices},
  };

  TextTable table(
      "Training-set ablation (Decision Tree, 5-fold CV pooled)");
  table.set_header({"training set", "rows", "MAPE", "R^2"});
  for (const auto& config : configs) {
    core::DatasetOptions options;
    options.models = config.models;
    options.devices = config.devices;
    options.seed = bench::kDatasetSeed;
    const ml::Dataset data = core::DatasetBuilder(options).build();
    const ml::CvResult cv =
        ml::cross_validate(data, 5, "dt", bench::kModelSeed);
    table.add_row({config.label, std::to_string(data.size()),
                   fixed(cv.pooled.mape, 2) + "%",
                   fixed(cv.pooled.r2, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: accuracy improves with more training GPUs (the\n"
      "device envelope widens) and, more modestly, with more CNNs — the\n"
      "paper's stated path to better results.\n");
  return 0;
}
