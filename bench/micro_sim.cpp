// Microbenchmarks of the GPU simulator and the end-to-end profiling
// facade (codegen -> DCA -> simulation).
#include <benchmark/benchmark.h>

#include "cnn/zoo.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"
#include "gpu/simulator.hpp"

namespace {

using namespace gpuperf;
using namespace gpuperf::gpu;

std::vector<KernelWorkload> resnet_workloads() {
  static const std::vector<KernelWorkload> workloads = [] {
    const cnn::Model model = cnn::zoo::build("resnet50v2");
    const ptx::CodeGenerator codegen;
    const ptx::InstructionCounter counter;
    const ptx::CompiledModel compiled = codegen.compile(model);
    return build_workloads(compiled, counter.count(compiled));
  }();
  return workloads;
}

void BM_SimulateKernel(benchmark::State& state) {
  const GpuSimulator sim(device("gtx1080ti"));
  const auto workloads = resnet_workloads();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(workloads[i]).cycles);
    i = (i + 1) % workloads.size();
  }
}
BENCHMARK(BM_SimulateKernel);

void BM_SimulateModel(benchmark::State& state) {
  const GpuSimulator sim(device("v100s"));
  const auto workloads = resnet_workloads();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate_model(workloads).ipc);
  }
  state.counters["kernels"] =
      benchmark::Counter(static_cast<double>(workloads.size()));
}
BENCHMARK(BM_SimulateModel);

void BM_ProfileEndToEnd(benchmark::State& state) {
  const Profiler profiler(0.02);
  const cnn::Model model = cnn::zoo::build("MobileNetV2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profiler.profile(model, device("gtx1080ti")).ipc);
  }
}
BENCHMARK(BM_ProfileEndToEnd);

void BM_ProfileCompiledAcrossDevices(benchmark::State& state) {
  const Profiler profiler(0.0);
  const cnn::Model model = cnn::zoo::build("MobileNetV2");
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;
  const ptx::CompiledModel compiled = codegen.compile(model);
  const auto instr = counter.count(compiled);
  std::size_t d = 0;
  for (auto _ : state) {
    const auto& dev = device_database()[d];
    benchmark::DoNotOptimize(
        profiler.profile_compiled(compiled, instr, dev).ipc);
    d = (d + 1) % device_database().size();
  }
}
BENCHMARK(BM_ProfileCompiledAcrossDevices);

}  // namespace

BENCHMARK_MAIN();
