// Standalone corpus replayer: a main() for the fuzz harnesses on
// toolchains without libFuzzer (the default gcc build).  Every path
// argument — file or directory — is read and fed through
// LLVMFuzzerTestOneInput, first verbatim, then through a small
// deterministic set of mutations (prefix truncations and single-byte
// flips).  No randomness: the same corpus always exercises the same
// inputs, so a ctest run is reproducible.
//
// Coverage-guided exploration still needs the real libFuzzer build
// (-DGPUPERF_LIBFUZZER=ON under clang); this driver exists so the known
// corpus keeps running as a plain regression test everywhere.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::size_t g_executions = 0;

void run_one(const std::string& bytes) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  ++g_executions;
}

void run_with_mutations(const std::string& bytes) {
  run_one(bytes);
  if (bytes.empty()) return;
  // Prefix truncations: halves down to one byte — catches parsers that
  // index past a header the input no longer contains.
  for (std::size_t len = bytes.size() / 2; len >= 1; len /= 2)
    run_one(bytes.substr(0, len));
  run_one(bytes.substr(0, bytes.size() - 1));
  // Byte flips at a stride that caps the work per seed (~64 variants),
  // hitting magic bytes, length fields and separators alike.
  const std::size_t stride = bytes.size() / 64 + 1;
  for (std::size_t i = 0; i < bytes.size(); i += stride) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xFF);
    run_one(flipped);
    flipped[i] = '\0';
    run_one(flipped);
  }
}

bool run_path(const fs::path& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    // Sorted for run-to-run determinism (directory order is not).
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(path, ec))
      if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    bool any = false;
    for (const fs::path& file : files) any = run_path(file) || any;
    return any;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz runner: cannot read %s\n",
                 path.string().c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  run_with_mutations(bytes);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 2;
  }
  bool any = false;
  for (int i = 1; i < argc; ++i) any = run_path(argv[i]) || any;
  if (!any) {
    std::fprintf(stderr, "fuzz runner: no corpus inputs found\n");
    return 2;
  }
  std::printf("fuzz runner: %zu inputs executed, no crash\n",
              g_executions);
  return 0;
}
