// Fuzz target for the PTX lexer + parser.  Contract: arbitrary bytes
// either parse into a PtxModule or raise InputRejected / LimitExceeded
// (both CheckError).  Anything else — a crash, std::out_of_range
// escaping, an allocation past the budget — aborts the process and the
// fuzzer reports it.
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/limits.hpp"
#include "ptx/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Tight budgets keep each execution cheap; the limit paths themselves
  // are part of the surface under test.
  gpuperf::InputLimits limits = gpuperf::InputLimits::defaults();
  limits.max_ptx_bytes = 1 << 20;
  limits.max_tokens = 1 << 16;
  limits.max_kernels = 64;
  limits.max_instructions = 1 << 13;
  limits.max_alloc_bytes = 16u << 20;

  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)gpuperf::ptx::parse_ptx(text, limits);
  } catch (const gpuperf::CheckError&) {
    // Typed rejection is the expected outcome for malformed input.
  }
  return 0;
}
