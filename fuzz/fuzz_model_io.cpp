// Fuzz target for the model deserializers: the ml regressor reader
// (header-dispatched: tree, linear, forest, boosting, knn) and the CNN
// topology reader.  Contract: arbitrary bytes either deserialize or
// raise InputRejected / LimitExceeded — never an unbounded allocation,
// never a raw std::out_of_range / std::length_error.
#include <cstddef>
#include <cstdint>
#include <string>

#include "cnn/model_io.hpp"
#include "common/check.hpp"
#include "common/limits.hpp"
#include "ml/model_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  gpuperf::InputLimits limits = gpuperf::InputLimits::defaults();
  limits.max_model_bytes = 1 << 20;
  limits.max_trees = 64;
  limits.max_tree_nodes = 1 << 14;
  limits.max_rows = 4096;
  limits.max_features = 64;
  limits.max_cnn_bytes = 1 << 20;
  limits.max_cnn_nodes = 4096;
  limits.max_alloc_bytes = 16u << 20;

  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)gpuperf::ml::deserialize_regressor(text, limits);
  } catch (const gpuperf::CheckError&) {
  }
  try {
    (void)gpuperf::cnn::deserialize_model(text, limits);
  } catch (const gpuperf::CheckError&) {
  }
  return 0;
}
