// Fuzz target for the registry bundle-manifest parser.  Contract:
// arbitrary bytes either yield a Manifest or raise InputRejected /
// LimitExceeded (both CheckError).
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/limits.hpp"
#include "registry/manifest.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  gpuperf::InputLimits limits = gpuperf::InputLimits::defaults();
  limits.max_manifest_bytes = 1 << 16;
  limits.max_manifest_fields = 64;

  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)gpuperf::registry::deserialize_manifest(text, limits);
  } catch (const gpuperf::CheckError&) {
  }
  return 0;
}
