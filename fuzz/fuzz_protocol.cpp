// Fuzz target for the serve wire protocol: the request-line parser
// (which is also the CLI argv parser) and the JSON string escaper.
// Contract: any line parses or raises CheckError; json_escape never
// crashes and never emits a newline.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "serve/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  try {
    const gpuperf::serve::Request request =
        gpuperf::serve::parse_request(line);
    (void)request.cmd.flag_or("deadline-ms", "");
  } catch (const gpuperf::CheckError&) {
    // Malformed lines are the caller's fault; a typed throw is fine.
  }
  const std::string escaped = gpuperf::serve::json_escape(line);
  if (escaped.find('\n') != std::string::npos)
    std::abort();  // one response must stay one line
  return 0;
}
