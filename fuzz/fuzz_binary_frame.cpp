// Fuzz target for the length-prefixed binary frame decoder
// (serve/binary_protocol.hpp).  Contract: decode_frame never crashes
// and never throws on arbitrary bytes — every input maps to a typed
// DecodeStatus.  A decoded frame must round-trip through to_request
// (parse or typed CheckError) and re-encode to the identical bytes.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "common/limits.hpp"
#include "serve/binary_protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace binary = gpuperf::serve::binary;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // A small payload budget keeps the length check on the hot path.
  gpuperf::InputLimits limits = gpuperf::InputLimits::defaults();
  limits.max_frame_payload_bytes = 4096;

  const binary::DecodeResult r = binary::decode_frame(input, limits);
  switch (r.status) {
    case binary::DecodeStatus::kFrame: {
      if (r.consumed > input.size()) std::abort();
      // Re-encoding the decoded frame must reproduce the input bytes.
      const std::string wire = binary::encode_request(
          r.frame.verb, std::string(r.frame.payload));
      if (r.frame.flags == 0 &&
          std::string_view(wire) != input.substr(0, r.consumed))
        std::abort();
      try {
        const gpuperf::serve::Request request =
            binary::to_request(r.frame);
        (void)request.cmd.flag_or("deadline-ms", "");
      } catch (const gpuperf::CheckError&) {
        // Hostile payload text; a typed throw is the contract.
      }
      break;
    }
    case binary::DecodeStatus::kNeedMore:
      if (r.consumed != 0) std::abort();
      break;
    case binary::DecodeStatus::kBadMagic:
    case binary::DecodeStatus::kBadVersion:
    case binary::DecodeStatus::kBadVerb:
    case binary::DecodeStatus::kBadCrc:
    case binary::DecodeStatus::kTooLarge:
      // Typed rejection: fine.  The status must stringify.
      if (binary::decode_status_name(r.status).empty()) std::abort();
      break;
  }
  return 0;
}
