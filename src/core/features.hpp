// Feature extraction for the predictive model: the paper's observation
// vector d = (y, p, c1..cm, t) where p is the dynamically counted PTX
// instruction total (dynamic code analysis), t the statically counted
// trainable parameters, and c1..cm the GPU architectural features.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cnn/model.hpp"
#include "common/deadline.hpp"
#include "gpu/device_spec.hpp"
#include "ptx/counter.hpp"

namespace gpuperf::core {

struct ModelFeatures {
  std::string model_name;
  std::int64_t executed_instructions = 0;  // p — dynamic code analysis
  std::int64_t trainable_params = 0;       // t — static analyzer
  // Diagnostics (not part of the paper's predictor set, but exposed for
  // the extension experiments on FLOPs/MACs).
  std::int64_t macs = 0;
  std::int64_t neurons = 0;
  std::int64_t weighted_layers = 0;
  double dca_seconds = 0.0;  // wall time of the dynamic code analysis
};

class FeatureExtractor {
 public:
  /// Static analysis + PTX generation + sliced symbolic execution for
  /// one model.  `deadline` bounds the dynamic code analysis; expiry
  /// throws AnalysisTimeout (the static half is never the bottleneck).
  ModelFeatures compute(const cnn::Model& model,
                        const Deadline& deadline = {}) const;

  /// Cached compute() for zoo models, keyed by Table I name.
  const ModelFeatures& for_zoo_model(const std::string& name);

  /// Assemble the regression feature vector (CNN features + device
  /// features), aligned with feature_names().
  static std::vector<double> feature_vector(const ModelFeatures& model,
                                            const gpu::DeviceSpec& device);
  static const std::vector<std::string>& feature_names();

  /// Extended predictor set (the paper's future work): the base
  /// features plus MACs, neurons and weighted-layer count.
  static std::vector<double> extended_feature_vector(
      const ModelFeatures& model, const gpu::DeviceSpec& device);
  static const std::vector<std::string>& extended_feature_names();

 private:
  ptx::CodeGenerator codegen_;
  // Binds to the process-shared kernel-library analysis (parse + slice
  // once per process); count() memoizes per-launch results, so repeat
  // extractions cost codegen only.
  ptx::InstructionCounter counter_;
  std::map<std::string, ModelFeatures> cache_;
};

}  // namespace gpuperf::core
