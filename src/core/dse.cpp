#include "core/dse.hpp"

#include <algorithm>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"

namespace gpuperf::core {

DseExplorer::DseExplorer(const PerformanceEstimator& estimator)
    : estimator_(estimator) {
  GP_CHECK_MSG(estimator_.is_trained(), "DSE needs a trained estimator");
}

std::vector<DeviceRanking> DseExplorer::rank_devices(
    const std::string& zoo_model,
    const std::vector<std::string>& device_names) const {
  GP_CHECK(!device_names.empty());
  // Extract once, predict per device through the thread-safe const
  // overload — the model's features do not depend on the device.
  const ModelFeatures features =
      estimator_.extractor().compute(cnn::zoo::build(zoo_model));
  std::vector<DeviceRanking> out;
  out.reserve(device_names.size());
  for (const std::string& name : device_names) {
    const gpu::DeviceSpec& device = gpu::device(name);
    DeviceRanking r;
    r.device = name;
    r.predicted_ipc = estimator_.predict(features, device);
    r.predicted_throughput = r.predicted_ipc * device.sm_count *
                             device.boost_clock_mhz;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const DeviceRanking& a, const DeviceRanking& b) {
              return a.predicted_throughput > b.predicted_throughput;
            });
  return out;
}

DseTiming DseExplorer::time_model(
    const std::string& zoo_model,
    const std::vector<std::string>& device_names) const {
  GP_CHECK(!device_names.empty());
  DseTiming timing;
  timing.model = zoo_model;

  // Run one prediction to populate the measured DCA / inference times
  // (the extractor caches, so force a cold run through compute()).
  const cnn::Model model = cnn::zoo::build(zoo_model);
  const ModelFeatures features = estimator_.extractor().compute(model);
  timing.t_dca = features.dca_seconds;

  Stopwatch watch;
  double sink = 0.0;
  constexpr int kReps = 100;  // predictions are microseconds; average
  for (int i = 0; i < kReps; ++i) {
    const gpu::DeviceSpec& device =
        gpu::device(device_names[i % device_names.size()]);
    sink += estimator_.predict(
        FeatureExtractor::feature_vector(features, device));
  }
  timing.t_pm = watch.elapsed_seconds() / kReps;
  GP_CHECK(sink == sink);  // keep the loop alive

  // Modeled nvprof cost, averaged over the sweep devices.
  const gpu::Profiler profiler(0.0);
  double total = 0.0;
  for (const std::string& name : device_names) {
    const gpu::ProfileResult r =
        profiler.profile(model, gpu::device(name));
    total += r.profiling_wall_seconds;
  }
  timing.t_p = total / static_cast<double>(device_names.size());
  return timing;
}

}  // namespace gpuperf::core
