// Automated model selection — the paper's third contribution
// ("comparing different ML algorithms to obtain the best performance
// predictive model") as a library operation: cross-validate every
// candidate algorithm on the training dataset and return the winner by
// pooled MAPE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/cross_validation.hpp"

namespace gpuperf::core {

struct CandidateScore {
  std::string regressor_id;
  std::string regressor_name;
  ml::CvResult cv;
};

struct SelectionResult {
  /// Winner's id ("dt" on the paper's data).
  std::string best_id;
  /// Every candidate's CV score, best first.
  std::vector<CandidateScore> candidates;
};

/// Cross-validate the five paper algorithms (or a custom candidate
/// list) and rank them by pooled CV MAPE.
SelectionResult select_regressor(
    const ml::Dataset& data, std::size_t k_folds = 5,
    const std::vector<std::string>& candidate_ids = {},
    std::uint64_t seed = 42);

}  // namespace gpuperf::core
