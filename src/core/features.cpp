#include "core/features.hpp"

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace gpuperf::core {

ModelFeatures FeatureExtractor::compute(const cnn::Model& model,
                                        const Deadline& deadline) const {
  ModelFeatures out;
  out.model_name = model.name();

  const cnn::StaticAnalyzer analyzer;
  const cnn::ModelReport report = analyzer.analyze(model);
  out.trainable_params = report.trainable_params;
  out.macs = report.macs;
  out.neurons = report.neurons;
  out.weighted_layers = report.weighted_layers;

  Stopwatch dca_watch;
  const ptx::CompiledModel compiled = codegen_.compile(model);
  const ptx::ModelInstructionProfile profile =
      counter_.count(compiled, deadline);
  out.executed_instructions = profile.total_instructions;
  // Wall time of codegen + counting.  Counting is memoized per launch
  // config, so a repeat model reports its true (near-zero) warm cost.
  out.dca_seconds = dca_watch.elapsed_seconds();
  return out;
}

const ModelFeatures& FeatureExtractor::for_zoo_model(
    const std::string& name) {
  const auto it = cache_.find(name);
  if (it != cache_.end()) return it->second;
  GP_CHECK_MSG(cnn::zoo::has_model(name), "unknown zoo model '" << name
                                                                << "'");
  return cache_.emplace(name, compute(cnn::zoo::build(name))).first->second;
}

std::vector<double> FeatureExtractor::feature_vector(
    const ModelFeatures& model, const gpu::DeviceSpec& device) {
  std::vector<double> out;
  out.reserve(feature_names().size());
  out.push_back(static_cast<double>(model.executed_instructions));
  out.push_back(static_cast<double>(model.trainable_params));
  for (double f : device.features()) out.push_back(f);
  GP_CHECK(out.size() == feature_names().size());
  return out;
}

const std::vector<std::string>& FeatureExtractor::feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n = {"executed_instructions",
                                  "trainable_params"};
    for (const auto& f : gpu::DeviceSpec::feature_names()) n.push_back(f);
    return n;
  }();
  return names;
}

std::vector<double> FeatureExtractor::extended_feature_vector(
    const ModelFeatures& model, const gpu::DeviceSpec& device) {
  std::vector<double> out = feature_vector(model, device);
  out.push_back(static_cast<double>(model.macs));
  out.push_back(static_cast<double>(model.neurons));
  out.push_back(static_cast<double>(model.weighted_layers));
  GP_CHECK(out.size() == extended_feature_names().size());
  return out;
}

const std::vector<std::string>& FeatureExtractor::extended_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n = feature_names();
    n.push_back("macs");
    n.push_back("neurons");
    n.push_back("weighted_layers");
    return n;
  }();
  return names;
}

}  // namespace gpuperf::core
