// The predictive model (Fig. 3, phase 2): trains one of the five
// regression algorithms on the generated dataset and predicts the IPC
// of new CNNs on arbitrary devices without executing them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/features.hpp"
#include "ml/metrics.hpp"
#include "ml/regressor.hpp"

namespace gpuperf::core {

class PerformanceEstimator {
 public:
  /// regressor_id: "linear" | "knn" | "dt" | "rf" | "xgb" (the paper
  /// selects "dt" after the Table II comparison).
  explicit PerformanceEstimator(std::string regressor_id = "dt",
                                std::uint64_t seed = 42);

  void train(const ml::Dataset& data);
  bool is_trained() const;

  /// Predict from an explicit feature vector (schema of
  /// FeatureExtractor::feature_names()).
  double predict(const std::vector<double>& features) const;

  /// Predict for a zoo CNN on a device — runs (cached) static analysis
  /// + dynamic code analysis, then the model; no hardware involved.
  /// Not thread-safe (mutates the feature cache and timing fields);
  /// concurrent callers should use the const overload below.
  double predict(const std::string& zoo_model,
                 const gpu::DeviceSpec& device);

  /// Thread-safe predict from precomputed CNN features: touches no
  /// mutable estimator state, so any number of threads may call it on
  /// a trained, no-longer-mutated estimator.  This is the serving hot
  /// path (src/serve), with features supplied by the DCA cache.
  double predict(const ModelFeatures& features,
                 const gpu::DeviceSpec& device) const;

  /// External feature cache hook: when set, predict(zoo_model, device)
  /// asks the provider for the model's features before falling back to
  /// the built-in extractor (which re-runs DCA on a cold key).  A
  /// provider returning nullptr means "not cached — compute yourself".
  using FeatureProvider =
      std::function<std::shared_ptr<const ModelFeatures>(
          const std::string& zoo_model)>;
  void set_feature_provider(FeatureProvider provider);

  /// Per-row predictions + the Table II metric triple on a dataset.
  ml::RegressionScore evaluate(const ml::Dataset& data) const;

  const ml::Regressor& model() const;
  const std::string& regressor_id() const { return regressor_id_; }

  /// Feature importances of the trained model (Table III), aligned
  /// with FeatureExtractor::feature_names(); empty if the algorithm
  /// has none.
  std::vector<double> feature_importances() const;

  /// Seconds spent inside the last predict(zoo_model, device) call,
  /// split into dynamic code analysis and model inference (the t_dca
  /// and t_pm of the paper's DSE timing model).
  double last_dca_seconds() const { return last_dca_seconds_; }
  double last_predict_seconds() const { return last_predict_seconds_; }

  /// Persist / restore a trained estimator.  Every paper regressor
  /// serializes (ml/model_io); load() detects the algorithm from the
  /// file header and validates the feature width against the
  /// extractor's schema.
  void save(const std::string& path) const;
  static PerformanceEstimator load(const std::string& path);

  /// Wrap an already-restored regressor (the registry's load path).
  /// GP_CHECK-fails unless the model is fitted with this estimator's
  /// feature schema width.
  static PerformanceEstimator adopt(std::string regressor_id,
                                    std::unique_ptr<ml::Regressor> model);

  FeatureExtractor& extractor() { return extractor_; }
  /// Const access for shared-estimator callers (DSE sweeps): compute()
  /// is const, so concurrent feature extraction through this accessor
  /// touches no estimator state.
  const FeatureExtractor& extractor() const { return extractor_; }

 private:
  std::string regressor_id_;
  std::unique_ptr<ml::Regressor> regressor_;
  FeatureExtractor extractor_;
  FeatureProvider feature_provider_;
  double last_dca_seconds_ = 0.0;
  double last_predict_seconds_ = 0.0;
};

}  // namespace gpuperf::core
