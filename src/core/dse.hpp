// Design-space exploration (the paper's Section V application): rank
// candidate GPGPUs for a CNN using the predictive model, and compare
// the cost of doing so against profiling every device —
//   T_est    = t_dca + n * t_pm
//   T_measur = n * t_p
// (Table IV).
#pragma once

#include <string>
#include <vector>

#include "core/estimator.hpp"

namespace gpuperf::core {

struct DeviceRanking {
  std::string device;
  double predicted_ipc = 0.0;
  /// Predicted relative throughput proxy: IPC * SMs * boost clock.
  double predicted_throughput = 0.0;
};

struct DseTiming {
  std::string model;
  double t_dca = 0.0;  // dynamic code analysis, seconds (measured)
  double t_pm = 0.0;   // one model inference, seconds (measured)
  double t_p = 0.0;    // one nvprof profiling pass, seconds (modeled)

  double t_est(int n_devices) const { return t_dca + n_devices * t_pm; }
  double t_measur(int n_devices) const { return n_devices * t_p; }
  double speedup(int n_devices) const {
    return t_measur(n_devices) / t_est(n_devices);
  }
};

class DseExplorer {
 public:
  /// The estimator is shared, not owned, and never mutated: every
  /// method runs through the const predict path, so any number of
  /// threads (the src/dse sweep engine's workers) can explore through
  /// one trained estimator without aliasing doubt.
  explicit DseExplorer(const PerformanceEstimator& estimator);

  /// Predict the CNN's IPC on every listed device, best first (by the
  /// throughput proxy).
  std::vector<DeviceRanking> rank_devices(
      const std::string& zoo_model,
      const std::vector<std::string>& device_names) const;

  /// Timing comparison for one CNN: measured t_dca / t_pm from this
  /// process plus the modeled profiling cost averaged over `devices`.
  DseTiming time_model(const std::string& zoo_model,
                       const std::vector<std::string>& device_names) const;

 private:
  const PerformanceEstimator& estimator_;
};

}  // namespace gpuperf::core
