#include "core/model_selection.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuperf::core {

SelectionResult select_regressor(
    const ml::Dataset& data, std::size_t k_folds,
    const std::vector<std::string>& candidate_ids, std::uint64_t seed) {
  const std::vector<std::string>& ids =
      candidate_ids.empty() ? ml::regressor_ids() : candidate_ids;
  GP_CHECK(!ids.empty());

  SelectionResult result;
  for (const auto& id : ids) {
    CandidateScore score;
    score.regressor_id = id;
    score.regressor_name = ml::make_regressor(id)->name();
    score.cv = ml::cross_validate(data, k_folds, id, seed);
    result.candidates.push_back(std::move(score));
  }
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const CandidateScore& a, const CandidateScore& b) {
                     return a.cv.pooled.mape < b.cv.pooled.mape;
                   });
  result.best_id = result.candidates.front().regressor_id;
  return result;
}

}  // namespace gpuperf::core
