#include "core/estimator.hpp"

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "ml/model_io.hpp"

namespace gpuperf::core {

PerformanceEstimator::PerformanceEstimator(std::string regressor_id,
                                           std::uint64_t seed)
    : regressor_id_(std::move(regressor_id)),
      regressor_(ml::make_regressor(regressor_id_, seed)) {}

void PerformanceEstimator::train(const ml::Dataset& data) {
  GP_CHECK_MSG(data.feature_names() == FeatureExtractor::feature_names(),
               "dataset schema does not match the estimator's features");
  regressor_->fit(data);
}

bool PerformanceEstimator::is_trained() const {
  return regressor_->is_fitted();
}

double PerformanceEstimator::predict(
    const std::vector<double>& features) const {
  GP_CHECK_MSG(is_trained(), "predict before train");
  return regressor_->predict(features);
}

double PerformanceEstimator::predict(const std::string& zoo_model,
                                     const gpu::DeviceSpec& device) {
  GP_CHECK_MSG(is_trained(), "predict before train");
  Stopwatch watch;
  std::shared_ptr<const ModelFeatures> provided;
  if (feature_provider_) provided = feature_provider_(zoo_model);
  const ModelFeatures& features =
      provided ? *provided : extractor_.for_zoo_model(zoo_model);
  last_dca_seconds_ = provided ? 0.0 : features.dca_seconds;
  watch.reset();
  const double ipc =
      regressor_->predict(FeatureExtractor::feature_vector(features, device));
  last_predict_seconds_ = watch.elapsed_seconds();
  return ipc;
}

double PerformanceEstimator::predict(const ModelFeatures& features,
                                     const gpu::DeviceSpec& device) const {
  GP_CHECK_MSG(is_trained(), "predict before train");
  return regressor_->predict(
      FeatureExtractor::feature_vector(features, device));
}

void PerformanceEstimator::set_feature_provider(FeatureProvider provider) {
  feature_provider_ = std::move(provider);
}

ml::RegressionScore PerformanceEstimator::evaluate(
    const ml::Dataset& data) const {
  GP_CHECK_MSG(is_trained(), "evaluate before train");
  const std::vector<double> predicted = regressor_->predict_all(data);
  return ml::score_regression(data.targets(), predicted,
                              data.n_features());
}

const ml::Regressor& PerformanceEstimator::model() const {
  return *regressor_;
}

void PerformanceEstimator::save(const std::string& path) const {
  GP_CHECK_MSG(is_trained(), "save before train");
  ml::save_regressor(*regressor_, path);
}

PerformanceEstimator PerformanceEstimator::load(const std::string& path) {
  ml::LoadedRegressor loaded = ml::load_regressor(path);
  return adopt(std::move(loaded.id), std::move(loaded.model));
}

PerformanceEstimator PerformanceEstimator::adopt(
    std::string regressor_id, std::unique_ptr<ml::Regressor> model) {
  GP_CHECK(model != nullptr);
  GP_CHECK_MSG(model->is_fitted(), "adopt of an unfitted model");
  GP_CHECK_MSG(
      model->n_features() == FeatureExtractor::feature_names().size(),
      "model '" << regressor_id
                << "' does not match the estimator feature schema ("
                << model->n_features() << " features vs "
                << FeatureExtractor::feature_names().size() << ")");
  PerformanceEstimator est(std::move(regressor_id));
  est.regressor_ = std::move(model);
  return est;
}

std::vector<double> PerformanceEstimator::feature_importances() const {
  GP_CHECK_MSG(is_trained(), "importances before train");
  return regressor_->feature_importances();
}

}  // namespace gpuperf::core
