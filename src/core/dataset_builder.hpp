// Training-dataset creation (Fig. 3, phase 1): profile every CNN of
// the zoo on every training GPU, pair the measured IPC response with
// the static/dynamic CNN features and the device features.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "ml/dataset.hpp"

namespace gpuperf::core {

struct DatasetOptions {
  /// Table I zoo names; empty = all 31.
  std::vector<std::string> models;
  /// Device short ids; empty = the paper's two training devices.
  std::vector<std::string> devices;
  /// Explicit device specs (e.g. DVFS operating points from
  /// gpu::dvfs_grid); when non-empty they are used instead of
  /// `devices`.
  std::vector<gpu::DeviceSpec> custom_devices;
  /// Add the extended CNN predictors (MACs, neurons, layers — the
  /// paper's future-work feature set) to every row.
  bool extended_cnn_features = false;
  /// Profiling (simulator) measurement-noise stddev.
  double noise_stddev = 0.02;
  std::uint64_t seed = 0x67707570ULL;
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetOptions options = {});

  /// Build the full dataset; rows are tagged "<model>@<device>".
  /// Feature extraction runs once per model and is shared across
  /// devices (the cross-platform design of the paper).
  ml::Dataset build();

  /// The extractor with its populated per-model cache (reusable by the
  /// estimator for the evaluation phase).
  FeatureExtractor& extractor() { return extractor_; }

 private:
  DatasetOptions options_;
  FeatureExtractor extractor_;
};

}  // namespace gpuperf::core
