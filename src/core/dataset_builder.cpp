#include "core/dataset_builder.hpp"

#include "cnn/static_analyzer.hpp"
#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "gpu/device_db.hpp"
#include "gpu/profiler.hpp"

namespace gpuperf::core {

DatasetBuilder::DatasetBuilder(DatasetOptions options)
    : options_(std::move(options)) {
  if (options_.models.empty())
    for (const auto& e : cnn::zoo::all_models())
      options_.models.push_back(e.name);
  if (options_.custom_devices.empty()) {
    if (options_.devices.empty()) options_.devices = gpu::training_devices();
    for (const auto& d : options_.devices)
      GP_CHECK_MSG(gpu::has_device(d), "unknown device '" << d << "'");
    for (const auto& d : options_.devices)
      options_.custom_devices.push_back(gpu::device(d));
  }
}

ml::Dataset DatasetBuilder::build() {
  const bool extended = options_.extended_cnn_features;
  ml::Dataset dataset(extended
                          ? FeatureExtractor::extended_feature_names()
                          : FeatureExtractor::feature_names(),
                      "ipc");
  const gpu::Profiler profiler(options_.noise_stddev, options_.seed);
  const ptx::CodeGenerator codegen;
  const ptx::InstructionCounter counter;  // shared; run() is const

  struct Row {
    std::vector<double> x;
    double y = 0.0;
    std::string tag;
  };
  std::vector<std::vector<Row>> rows_per_model(options_.models.size());

  // One feature-extraction pass per model, shared across devices (the
  // paper's cross-platform design); parallel across models, committed
  // in model order for determinism.
  ThreadPool::shared().parallel_for(
      options_.models.size(), [&](std::size_t mi) {
        const std::string& model_name = options_.models[mi];
        const cnn::Model model = cnn::zoo::build(model_name);

        const cnn::StaticAnalyzer analyzer;
        const cnn::ModelReport report = analyzer.analyze(model);

        Stopwatch dca_watch;
        const ptx::CompiledModel compiled = codegen.compile(model);
        const ptx::ModelInstructionProfile instr = counter.count(compiled);

        ModelFeatures features;
        features.model_name = model_name;
        features.executed_instructions = instr.total_instructions;
        features.trainable_params = report.trainable_params;
        features.macs = report.macs;
        features.neurons = report.neurons;
        features.weighted_layers = report.weighted_layers;
        features.dca_seconds = dca_watch.elapsed_seconds();

        for (const gpu::DeviceSpec& device : options_.custom_devices) {
          const gpu::ProfileResult result =
              profiler.profile_compiled(compiled, instr, device);
          Row row;
          row.x = extended
                      ? FeatureExtractor::extended_feature_vector(features,
                                                                  device)
                      : FeatureExtractor::feature_vector(features, device);
          row.y = result.ipc;
          row.tag = model_name + "@" + device.name;
          rows_per_model[mi].push_back(std::move(row));
        }
        GP_LOG(kInfo) << "profiled " << model_name << " on "
                      << options_.custom_devices.size() << " device(s)";
      });

  for (const auto& rows : rows_per_model)
    for (const Row& row : rows) dataset.add_row(row.x, row.y, row.tag);
  return dataset;
}

}  // namespace gpuperf::core
