// Persistent sweep-result cache: the cheap half of a fleet sweep — the
// per-(model, device) prediction and its derived latency/power figures
// — cached *across processes*, layered on the same crash-safe journal
// idiom as the PR-2 feature store (docs/FILE_FORMATS.md).
//
// Entries are keyed on model-topology × device × estimator-bundle
// version: the topology hash makes renamed-but-identical models share
// one entry, the device name scopes the prediction, and the bundle key
// guarantees a hot-reloaded or retrained estimator can never serve
// another model's numbers.  Together with the feature store this makes
// a repeated fleet sweep near-free — a restarted process replays
// yesterday's sweep with zero DCA runs and zero predictions.
//
// Durability: one append-only journal file ("sweep.journal") of
// length-prefixed, CRC-32-checked records, last-writer-wins per key.
// A record is
//
//   "GPSC" | u32 LE payload length | u32 LE crc32(payload) | payload
//
// where the payload is the line-oriented "gpuperf-sweep v1" text.  On
// open the journal is replayed; the first torn, corrupt or oversized
// record marks the recovery point and the tail beyond it is truncated
// away.  Each put appends one record and fsyncs.  Degraded cells are
// never written — a fallback prediction must not masquerade as a warm
// full-analysis result on the next sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/limits.hpp"

namespace gpuperf::dse {

class SweepCache {
 public:
  /// Opens (creating directories as needed) the cache at `root` and
  /// replays the journal, truncating any torn tail.  The root may be
  /// shared with a registry::FeatureStore — the journals have distinct
  /// names.
  explicit SweepCache(std::string root,
                      const InputLimits& limits = InputLimits::defaults());

  const std::string& root() const { return root_; }
  std::string journal_path() const;

  /// One cached cell: everything the sweep needs without re-running
  /// analysis or prediction.
  struct Entry {
    double predicted_ipc = 0.0;
    double latency_ms = 0.0;
    double power_w = 0.0;
  };

  /// Cache key of one cell.  `bundle_key` identifies the estimator
  /// (registry version, or a content hash for ad-hoc models) and must
  /// be whitespace-free.
  static std::string cell_key(std::uint64_t topology,
                              const std::string& device,
                              const std::string& bundle_key);

  /// nullptr on miss — including a key whose on-disk record was corrupt
  /// at open time (never throws for bad on-disk data).
  std::shared_ptr<const Entry> get(const std::string& key) const;

  /// Append one record and fsync; last writer wins on replay.
  void put(const std::string& key, const Entry& entry);

  std::size_t size() const;

  // ---- telemetry (serve exposes these in `stats`) -------------------
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  /// Valid records recovered by the replay at open time.
  std::size_t recovered_records() const { return recovered_records_; }
  /// Bytes of torn/corrupt tail truncated away at open time.
  std::size_t torn_tail_bytes() const { return torn_tail_bytes_; }

 private:
  void replay_journal();
  void append_record(const std::string& payload) const;

  std::string root_;
  InputLimits limits_;  // by value: the cache outlives any caller's copy
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> index_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::size_t recovered_records_ = 0;
  std::size_t torn_tail_bytes_ = 0;
};

}  // namespace gpuperf::dse
