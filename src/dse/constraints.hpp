// Constraint engine of the fleet-scale DSE subsystem (docs/DSE.md):
// turns raw sweep cells — one (model, device) prediction each — into
// per-device summaries, filters them against user constraints on
// latency / power / cost, marks the Pareto frontier over the three
// objectives, and produces a deterministic scalarized ranking.
//
// The power figure reuses the activity-based board-power model of
// gpu/simulator.cpp (the authors' companion power-estimation work):
// predicted IPC stands in for compute activity, its complement for
// memory activity — the roofline view that a warp slot not issuing
// compute is waiting on memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/device_spec.hpp"

namespace gpuperf::dse {

/// User constraints and ranking weights for one sweep.  A zero bound
/// means "unconstrained"; weights scalarize the surviving devices
/// (score = sum of weight * objective / best feasible objective, lower
/// is better).
struct Constraints {
  /// Bound on the *worst single-model* latency on a device (a per-
  /// inference SLA), milliseconds.
  double max_latency_ms = 0.0;
  /// Bound on the peak predicted board power across the sweep's models.
  double max_power_w = 0.0;
  /// Bound on the device's board price.  A device without cost data is
  /// infeasible under a cost bound (unknown is not free).
  double max_cost_usd = 0.0;

  double w_latency = 1.0;
  double w_power = 0.0;
  double w_cost = 0.0;
};

enum class CellStatus {
  kOk,        ///< full DCA-backed prediction (fresh or cached)
  kDegraded,  ///< static-features fallback — DCA timed out or failed
  kFailed,    ///< no prediction at all; `error` says why
};

const char* cell_status_name(CellStatus status);

/// One evaluated (model, device) pair of the cross product.
struct SweepCell {
  std::string model;
  std::string device;
  CellStatus status = CellStatus::kFailed;
  /// Served from the persistent sweep cache (no prediction ran).
  bool cached = false;
  double predicted_ipc = 0.0;
  double latency_ms = 0.0;
  double power_w = 0.0;
  std::string error;  // kFailed only
};

/// Per-device aggregate over every model of the sweep, plus the
/// constraint verdict and ranking outputs.
struct DeviceSummary {
  std::string device;
  int cells_ok = 0;
  int cells_degraded = 0;
  int cells_failed = 0;

  /// Sum of per-model latencies (ok + degraded cells) — the ranking's
  /// latency objective (batch cost of running the whole model set).
  double total_latency_ms = 0.0;
  /// Worst single-model latency — what max_latency_ms bounds.
  double worst_latency_ms = 0.0;
  /// Peak predicted board power across the models.
  double peak_power_w = 0.0;
  double cost_usd = 0.0;
  bool has_cost = false;

  bool feasible = true;
  std::string infeasible_reason;  // first violated constraint
  /// Scalarized ranking score (lower is better); infinity when
  /// infeasible.
  double score = 0.0;
  /// On the Pareto frontier of (total latency, peak power, cost) among
  /// feasible devices.
  bool pareto = false;
};

/// Latency proxy for one model on one device, milliseconds: warp
/// instructions / (IPC * SMs) cycles at the boost clock.
double estimate_latency_ms(std::int64_t executed_instructions, double ipc,
                           const gpu::DeviceSpec& device);

/// Activity-based board power (the simulator's formula with IPC-derived
/// activities): idle floor + compute + memory shares of TDP.
double estimate_power_w(double ipc, const gpu::DeviceSpec& device);

/// Per-device cost lookup for summarize_cells: parallel to
/// `device_order`; a negative value means "unknown".
struct DeviceCost {
  double cost_usd = -1.0;
};

/// Aggregate cells per device (in `device_order`, with `costs` parallel
/// to it — pass an empty vector for all-unknown) and apply the
/// constraint filter.  Failed cells make a device infeasible — an
/// incomplete sweep must not win on the cells it happened to finish.
std::vector<DeviceSummary> summarize_cells(
    const std::vector<SweepCell>& cells,
    const std::vector<std::string>& device_order,
    const std::vector<DeviceCost>& costs, const Constraints& constraints);

/// Mark the Pareto frontier among feasible summaries: a device is on
/// the frontier unless some other feasible device is at least as good
/// on every objective and strictly better on one (ties are kept — two
/// identical devices are both frontier members).  Unknown cost compares
/// as +infinity.
void mark_pareto(std::vector<DeviceSummary>& summaries);

/// Fill in scalarized scores and sort: feasible devices first by
/// ascending score, name as the deterministic tiebreak; infeasible
/// devices trail in name order.
void rank_summaries(std::vector<DeviceSummary>& summaries,
                    const Constraints& constraints);

}  // namespace gpuperf::dse
