#include "dse/constraints.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>

#include "common/check.hpp"

namespace gpuperf::dse {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The simulator's activity-based power split (gpu/simulator.cpp): idle
// floor 0.30, compute share 0.45, memory share 0.25 of TDP.  Keep these
// in sync — docs/DSE.md documents them as one model.
constexpr double kIdleShare = 0.30;
constexpr double kComputeShare = 0.45;
constexpr double kMemoryShare = 0.25;

/// Cost objective for dominance comparisons: unknown compares as
/// +infinity, so a device with real cost data always dominates an
/// otherwise-equal device without it.
double cost_or_inf(const DeviceSummary& s) {
  return s.has_cost ? s.cost_usd : kInf;
}

/// a is at least as good as b on every objective and strictly better on
/// one (minimization; weak Pareto dominance).
bool dominates(const DeviceSummary& a, const DeviceSummary& b) {
  if (a.total_latency_ms > b.total_latency_ms) return false;
  if (a.peak_power_w > b.peak_power_w) return false;
  if (cost_or_inf(a) > cost_or_inf(b)) return false;
  return a.total_latency_ms < b.total_latency_ms ||
         a.peak_power_w < b.peak_power_w ||
         cost_or_inf(a) < cost_or_inf(b);
}

}  // namespace

const char* cell_status_name(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kDegraded:
      return "degraded";
    case CellStatus::kFailed:
      return "failed";
  }
  return "failed";
}

double estimate_latency_ms(std::int64_t executed_instructions, double ipc,
                           const gpu::DeviceSpec& device) {
  GP_CHECK(device.sm_count > 0 && device.boost_clock_mhz > 0.0);
  if (ipc <= 0.0) return kInf;
  const double warp_instructions =
      static_cast<double>(executed_instructions) / 32.0;
  const double cycles = warp_instructions / (ipc * device.sm_count);
  // cycles / (MHz * 1e6) seconds = cycles / (MHz * 1e3) milliseconds.
  return cycles / (device.boost_clock_mhz * 1e3);
}

double estimate_power_w(double ipc, const gpu::DeviceSpec& device) {
  if (!device.has_tdp_w()) return 0.0;
  // IPC saturates at one instruction per warp scheduler per cycle:
  // cores_per_sm()/32 warp-wide issue slots.  The compute activity is
  // how full those slots are; the rest of the time the SM is waiting on
  // the memory system (the roofline reading of an IPC shortfall).
  const double peak_ipc =
      static_cast<double>(device.cores_per_sm()) / 32.0;
  const double a =
      peak_ipc > 0.0 ? std::clamp(ipc / peak_ipc, 0.0, 1.0) : 0.0;
  return device.tdp_w *
         (kIdleShare + kComputeShare * a + kMemoryShare * (1.0 - a));
}

std::vector<DeviceSummary> summarize_cells(
    const std::vector<SweepCell>& cells,
    const std::vector<std::string>& device_order,
    const std::vector<DeviceCost>& costs, const Constraints& constraints) {
  GP_CHECK_MSG(costs.empty() || costs.size() == device_order.size(),
               "device cost list must parallel the device order");
  std::map<std::string, DeviceSummary> by_device;
  for (std::size_t i = 0; i < device_order.size(); ++i) {
    DeviceSummary s;
    s.device = device_order[i];
    if (!costs.empty() && costs[i].cost_usd >= 0.0) {
      s.cost_usd = costs[i].cost_usd;
      s.has_cost = true;
    }
    by_device.emplace(device_order[i], std::move(s));
  }
  for (const SweepCell& cell : cells) {
    const auto it = by_device.find(cell.device);
    GP_CHECK_MSG(it != by_device.end(),
                 "cell device '" << cell.device
                                 << "' missing from device order");
    DeviceSummary& s = it->second;
    if (cell.status == CellStatus::kFailed) {
      ++s.cells_failed;
      continue;
    }
    if (cell.status == CellStatus::kDegraded) ++s.cells_degraded;
    else ++s.cells_ok;
    s.total_latency_ms += cell.latency_ms;
    s.worst_latency_ms = std::max(s.worst_latency_ms, cell.latency_ms);
    s.peak_power_w = std::max(s.peak_power_w, cell.power_w);
  }

  std::vector<DeviceSummary> out;
  out.reserve(device_order.size());
  for (const std::string& name : device_order) {
    DeviceSummary s = std::move(by_device.at(name));
    // Constraint verdict: first violation wins the reason string.
    // Incomplete devices never pass — a sweep that lost cells must not
    // win on the ones it happened to finish.
    if (s.cells_failed > 0) {
      s.feasible = false;
      s.infeasible_reason = "incomplete (failed cells)";
    } else if (constraints.max_latency_ms > 0.0 &&
               s.worst_latency_ms > constraints.max_latency_ms) {
      s.feasible = false;
      s.infeasible_reason = "latency above max_latency_ms";
    } else if (constraints.max_power_w > 0.0 &&
               s.peak_power_w > constraints.max_power_w) {
      s.feasible = false;
      s.infeasible_reason = "power above max_power_w";
    } else if (constraints.max_cost_usd > 0.0 && !s.has_cost) {
      s.feasible = false;
      s.infeasible_reason = "cost unknown under max_cost_usd";
    } else if (constraints.max_cost_usd > 0.0 &&
               s.cost_usd > constraints.max_cost_usd) {
      s.feasible = false;
      s.infeasible_reason = "cost above max_cost_usd";
    } else if (constraints.w_cost > 0.0 && !s.has_cost) {
      // A cost-weighted ranking can't place a device of unknown price.
      s.feasible = false;
      s.infeasible_reason = "cost unknown under w_cost";
    }
    out.push_back(std::move(s));
  }
  return out;
}

void mark_pareto(std::vector<DeviceSummary>& summaries) {
  for (DeviceSummary& candidate : summaries) {
    candidate.pareto = false;
    if (!candidate.feasible) continue;
    candidate.pareto = std::none_of(
        summaries.begin(), summaries.end(),
        [&](const DeviceSummary& other) {
          return other.feasible && &other != &candidate &&
                 dominates(other, candidate);
        });
  }
}

void rank_summaries(std::vector<DeviceSummary>& summaries,
                    const Constraints& constraints) {
  // Per-objective minima over the feasible set normalize the score so
  // the weights are unit-free ("2x the best latency" beats "700 ms").
  double min_latency = kInf, min_power = kInf, min_cost = kInf;
  for (const DeviceSummary& s : summaries) {
    if (!s.feasible) continue;
    min_latency = std::min(min_latency, s.total_latency_ms);
    min_power = std::min(min_power, s.peak_power_w);
    if (s.has_cost) min_cost = std::min(min_cost, s.cost_usd);
  }
  const auto ratio = [](double value, double best) {
    return best > 0.0 && std::isfinite(best) ? value / best : 1.0;
  };
  for (DeviceSummary& s : summaries) {
    if (!s.feasible) {
      s.score = kInf;
      continue;
    }
    s.score =
        constraints.w_latency * ratio(s.total_latency_ms, min_latency) +
        constraints.w_power * ratio(s.peak_power_w, min_power) +
        (s.has_cost ? constraints.w_cost * ratio(s.cost_usd, min_cost)
                    : 0.0);
  }
  std::sort(summaries.begin(), summaries.end(),
            [](const DeviceSummary& a, const DeviceSummary& b) {
              if (a.feasible != b.feasible) return a.feasible;
              if (a.feasible && a.score != b.score)
                return a.score < b.score;
              return a.device < b.device;
            });
}

}  // namespace gpuperf::dse
