#include "dse/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/stopwatch.hpp"
#include "gpu/device_db.hpp"
#include "ml/model_io.hpp"
#include "registry/feature_store.hpp"
#include "registry/hash.hpp"

namespace gpuperf::dse {

bool SweepResult::feasible() const {
  return std::any_of(ranking.begin(), ranking.end(),
                     [](const DeviceSummary& s) { return s.feasible; });
}

std::vector<core::DseTiming> time_models(
    const core::PerformanceEstimator& estimator,
    const std::vector<std::string>& models,
    const std::vector<std::string>& devices) {
  const core::DseExplorer explorer(estimator);
  std::vector<core::DseTiming> out;
  out.reserve(models.size());
  for (const std::string& model : models)
    out.push_back(explorer.time_model(model, devices));
  return out;
}

std::string make_bundle_key(const core::PerformanceEstimator& estimator,
                            const std::string& registry_version) {
  if (!registry_version.empty()) return registry_version;
  GP_CHECK_MSG(estimator.is_trained(),
               "bundle key needs a trained estimator");
  // Content-address the whole regressor: two ad-hoc estimators trained
  // on different data (or seeds) must never share sweep-cache entries.
  return "adhoc-" +
         registry::hex64(
             registry::fnv1a64(ml::serialize_regressor(estimator.model())));
}

SweepEngine::SweepEngine(const core::PerformanceEstimator& estimator)
    : SweepEngine(estimator, Options()) {}

SweepEngine::SweepEngine(const core::PerformanceEstimator& estimator,
                         Options options)
    : estimator_(estimator),
      cache_(options.cache),
      pool_(options.pool),
      feature_source_(std::move(options.feature_source)),
      bundle_key_(options.bundle_key.empty()
                      ? make_bundle_key(estimator, "")
                      : std::move(options.bundle_key)) {
  GP_CHECK_MSG(estimator_.is_trained(),
               "DSE sweep needs a trained estimator");
}

std::shared_ptr<const core::ModelFeatures> SweepEngine::degraded_features(
    const cnn::Model& model, const std::string& name) const {
  const cnn::ModelReport report = analyzer_.analyze(model);
  auto features = std::make_shared<core::ModelFeatures>();
  features->model_name = name;
  features->trainable_params = report.trainable_params;
  features->macs = report.macs;
  features->neurons = report.neurons;
  features->weighted_layers = report.weighted_layers;
  // The serve layer's cold-start imputation (session.cpp): a params-
  // proportional guess keeps executed_instructions in a plausible order
  // of magnitude; the paper's Gini analysis puts its importance at only
  // 0.014, so the prediction stays useful.
  constexpr std::int64_t kInstructionsPerParam = 16;
  features->executed_instructions =
      report.trainable_params * kInstructionsPerParam;
  return features;
}

SweepResult SweepEngine::run(const SweepRequest& request) const {
  Stopwatch watch;
  GP_CHECK_MSG(!request.models.empty(),
               "dse sweep needs at least one model");
  for (const std::string& model : request.models)
    GP_CHECK_MSG(cnn::zoo::has_model(model),
                 "unknown model '" << model << "'");
  const std::vector<std::string> devices =
      request.devices.empty() ? gpu::dse_devices() : request.devices;
  std::vector<const gpu::DeviceSpec*> specs;
  specs.reserve(devices.size());
  for (const std::string& name : devices) {
    GP_CHECK_MSG(gpu::has_device(name), "unknown device '" << name << "'");
    specs.push_back(&gpu::device(name));
  }

  // ---- plan: deduplicate the model list by topology fingerprint -----
  // Two names that build the identical DAG (or the same name twice)
  // share one DCA pass and one row of cells.
  struct Topology {
    std::uint64_t hash = 0;
    std::string representative;  // first model name with this topology
    cnn::Model model;
  };
  std::vector<Topology> topologies;
  std::vector<std::size_t> topology_of_model(request.models.size());
  {
    std::unordered_map<std::uint64_t, std::size_t> by_hash;
    for (std::size_t mi = 0; mi < request.models.size(); ++mi) {
      cnn::Model model = cnn::zoo::build(request.models[mi]);
      const std::uint64_t hash =
          registry::FeatureStore::topology_hash(model);
      const auto it = by_hash.find(hash);
      if (it != by_hash.end()) {
        topology_of_model[mi] = it->second;
        continue;
      }
      by_hash.emplace(hash, topologies.size());
      topology_of_model[mi] = topologies.size();
      topologies.push_back(
          {hash, request.models[mi], std::move(model)});
    }
  }

  // ---- execute: one parallel job per distinct topology --------------
  struct CellValue {
    CellStatus status = CellStatus::kFailed;
    bool cached = false;
    double ipc = 0.0;
    double latency_ms = 0.0;
    double power_w = 0.0;
    std::string error;
  };
  std::vector<std::vector<CellValue>> values(
      topologies.size(), std::vector<CellValue>(devices.size()));
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> features_computed{0};

  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::shared();
  pool.parallel_for(topologies.size(), [&](std::size_t ti) {
    const Topology& topo = topologies[ti];
    std::vector<CellValue>& row = values[ti];

    // 1. Probe the persistent cache per device: a full hit row skips
    //    feature acquisition (and therefore DCA) entirely.
    std::vector<std::size_t> missing;
    for (std::size_t di = 0; di < devices.size(); ++di) {
      if (cache_ != nullptr) {
        try {
          if (const auto hit = cache_->get(SweepCache::cell_key(
                  topo.hash, devices[di], bundle_key_))) {
            row[di] = {CellStatus::kOk, true, hit->predicted_ipc,
                       hit->latency_ms, hit->power_w, ""};
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        } catch (const std::exception&) {
          // An unreadable cache is a miss, not a failed cell.
        }
      }
      missing.push_back(di);
    }
    if (missing.empty()) return;

    // 2. Features once per topology.  Each job charges a private copy
    //    of the request deadline: the wall clock is naturally shared,
    //    a shared step counter would race across worker threads.
    const Deadline deadline = request.deadline;
    std::shared_ptr<const core::ModelFeatures> features;
    CellStatus status = CellStatus::kOk;
    std::string error;
    try {
      GPUPERF_FAULT_POINT_D("dse.features", &deadline);
      features =
          feature_source_
              ? feature_source_(topo.representative, deadline)
              : std::make_shared<const core::ModelFeatures>(
                    extractor_.compute(topo.model, deadline));
      GP_CHECK_MSG(features != nullptr, "feature source returned null");
      features_computed.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& primary) {
      features = nullptr;
      if (request.allow_degrade) {
        try {
          features = degraded_features(topo.model, topo.representative);
          status = CellStatus::kDegraded;
        } catch (const std::exception& fallback) {
          status = CellStatus::kFailed;
          error = fallback.what();
        }
      } else {
        status = CellStatus::kFailed;
        error = primary.what();
      }
    }

    // 3. Fill the missing cells from the (full or fallback) features.
    for (const std::size_t di : missing) {
      CellValue& cell = row[di];
      if (!features) {
        cell = {CellStatus::kFailed, false, 0.0, 0.0, 0.0, error};
        continue;
      }
      cell.status = status;
      cell.cached = false;
      cell.ipc = estimator_.predict(*features, *specs[di]);
      cell.latency_ms = estimate_latency_ms(
          features->executed_instructions, cell.ipc, *specs[di]);
      cell.power_w = estimate_power_w(cell.ipc, *specs[di]);
      if (cache_ != nullptr && status == CellStatus::kOk) {
        try {
          cache_->put(
              SweepCache::cell_key(topo.hash, devices[di], bundle_key_),
              {cell.ipc, cell.latency_ms, cell.power_w});
        } catch (const std::exception&) {
          // The cell is in hand — failing to persist it must not fail
          // the sweep.
        }
      }
    }
  });

  // ---- assemble: model-major cells, then the constraint verdicts ----
  SweepResult result;
  result.unique_topologies = topologies.size();
  result.duplicate_models = request.models.size() - topologies.size();
  result.sweep_cache_hits = cache_hits.load();
  result.features_computed = features_computed.load();
  result.cells.reserve(request.models.size() * devices.size());
  for (std::size_t mi = 0; mi < request.models.size(); ++mi) {
    const std::vector<CellValue>& row = values[topology_of_model[mi]];
    for (std::size_t di = 0; di < devices.size(); ++di) {
      const CellValue& v = row[di];
      SweepCell cell;
      cell.model = request.models[mi];
      cell.device = devices[di];
      cell.status = v.status;
      cell.cached = v.cached;
      cell.predicted_ipc = v.ipc;
      cell.latency_ms = v.latency_ms;
      cell.power_w = v.power_w;
      cell.error = v.error;
      if (v.status == CellStatus::kDegraded) ++result.degraded_cells;
      if (v.status == CellStatus::kFailed) ++result.failed_cells;
      result.cells.push_back(std::move(cell));
    }
  }

  std::vector<DeviceCost> costs;
  costs.reserve(specs.size());
  for (const gpu::DeviceSpec* spec : specs)
    costs.push_back({spec->has_cost_usd() ? spec->cost_usd : -1.0});
  result.ranking =
      summarize_cells(result.cells, devices, costs, request.constraints);
  mark_pareto(result.ranking);
  rank_summaries(result.ranking, request.constraints);
  for (const DeviceSummary& s : result.ranking)
    if (s.pareto) result.pareto.push_back(s.device);

  result.elapsed_seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace gpuperf::dse
