// Fleet-scale design-space exploration (docs/DSE.md): evaluate a model
// set × device table cross product under user constraints and return
// ranked recommendations.  This is the paper's Table IV scenario
// productized — one DCA pass per *distinct topology* (deduplicated by
// module fingerprint), fanned out over the process-shared thread pool,
// every (model, device) cell answered by the trained estimator instead
// of a profiler, and the whole sweep persisted so the next run is
// near-free.
//
// Robustness contract (PR-3 semantics): a sweep with one pathological
// model still returns every other cell.  Per-cell status is `ok`
// (full DCA-backed prediction), `degraded` (DCA timed out or failed;
// static-features fallback) or `failed` (no prediction; `error` says
// why).  Only `ok` cells enter the persistent cache.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cnn/static_analyzer.hpp"
#include "common/deadline.hpp"
#include "common/thread_pool.hpp"
#include "core/dse.hpp"
#include "core/estimator.hpp"
#include "core/features.hpp"
#include "dse/constraints.hpp"
#include "dse/sweep_cache.hpp"

namespace gpuperf::dse {

/// One bulk sweep: which models on which devices, under which
/// constraints and analysis budget.
struct SweepRequest {
  /// Zoo model names (duplicates allowed — identical topologies are
  /// analyzed once).  Must not be empty.
  std::vector<std::string> models;
  /// Device short ids; empty = the paper's seven-device Table IV fleet.
  std::vector<std::string> devices;
  Constraints constraints;
  /// Analysis budget.  Wall clock is shared across the sweep; the step
  /// budget applies per topology (each parallel job charges its own
  /// copy — a shared mutable counter would race).
  Deadline deadline;
  /// Fall back to static-only features when DCA times out or fails
  /// (cells marked degraded) instead of failing those cells.
  bool allow_degrade = true;
};

struct SweepResult {
  /// Model-major, device-minor — request order, deterministic.
  std::vector<SweepCell> cells;
  /// Per-device verdicts, feasible-first in ranking order.
  std::vector<DeviceSummary> ranking;
  /// Devices on the Pareto frontier, in ranking order.
  std::vector<std::string> pareto;

  // ---- sweep telemetry ----------------------------------------------
  std::size_t unique_topologies = 0;
  /// Requested models that shared a fingerprint with an earlier one.
  std::size_t duplicate_models = 0;
  /// Cells answered straight from the persistent sweep cache.
  std::size_t sweep_cache_hits = 0;
  /// Topologies whose features this sweep had to obtain (cache misses
  /// that reached the DCA path — the warm-replay bench asserts 0).
  std::size_t features_computed = 0;
  std::size_t degraded_cells = 0;
  std::size_t failed_cells = 0;
  double elapsed_seconds = 0.0;

  bool feasible() const;
};

/// Table IV timing rows (T_est = t_dca + n·t_pm vs T_measur = n·t_p)
/// for a whole model set — the batch face of
/// core::DseExplorer::time_model, used by bench/table4_dse_speedup.
/// Deliberately serial: each row measures its own wall times, and
/// parallel contention would inflate them.
std::vector<core::DseTiming> time_models(
    const core::PerformanceEstimator& estimator,
    const std::vector<std::string>& models,
    const std::vector<std::string>& devices);

/// Estimator identity for sweep-cache keying: the registry bundle
/// version when serving from a registry, else a content hash of the
/// serialized regressor ("adhoc-<hex>") so two differently-trained
/// ad-hoc models never share cache entries.
std::string make_bundle_key(const core::PerformanceEstimator& estimator,
                            const std::string& registry_version);

class SweepEngine {
 public:
  /// Every knob is optional: a default-constructed Options gives an
  /// uncached, shared-pool engine that computes features itself.
  struct Options {
    /// Persistent sweep-result cache (not owned; may be nullptr).
    SweepCache* cache = nullptr;
    /// Estimator identity for cache keys; empty = derived via
    /// make_bundle_key from the estimator content.
    std::string bundle_key;
    /// Worker pool (not owned); nullptr = ThreadPool::shared().
    ThreadPool* pool = nullptr;
    /// External feature source, e.g. the serve session's single-flight
    /// DCA cache + persistent feature store.  Called once per distinct
    /// topology; may throw AnalysisTimeout or any analysis error.
    /// nullptr = the engine runs its own extractor.
    using FeatureSource =
        std::function<std::shared_ptr<const core::ModelFeatures>(
            const std::string& zoo_model, const Deadline& deadline)>;
    FeatureSource feature_source;
  };

  /// The estimator is shared, not owned, and must stay alive (and
  /// untouched) for the engine's lifetime — serve callers pass a
  /// snapshot shared_ptr's referent and hold the snapshot.
  explicit SweepEngine(const core::PerformanceEstimator& estimator);
  SweepEngine(const core::PerformanceEstimator& estimator,
              Options options);

  const std::string& bundle_key() const { return bundle_key_; }

  /// Run one sweep.  Throws CheckError on unknown model/device names or
  /// an empty model list; per-cell analysis failures do NOT throw (they
  /// become degraded/failed cells).  Safe to call concurrently.
  SweepResult run(const SweepRequest& request) const;

 private:
  std::shared_ptr<const core::ModelFeatures> degraded_features(
      const cnn::Model& model, const std::string& name) const;

  const core::PerformanceEstimator& estimator_;
  SweepCache* cache_;
  ThreadPool* pool_;
  Options::FeatureSource feature_source_;
  std::string bundle_key_;
  core::FeatureExtractor extractor_;
  cnn::StaticAnalyzer analyzer_;
};

}  // namespace gpuperf::dse
