#include "dse/sweep_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/fault.hpp"
#include "common/strings.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::dse {

namespace {

constexpr char kRecordMagic[4] = {'G', 'P', 'S', 'C'};
constexpr std::size_t kRecordHeaderBytes = 12;  // magic + length + crc

std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string entry_body(const std::string& key,
                       const SweepCache::Entry& e) {
  std::ostringstream os;
  os << "gpuperf-sweep v1\n";
  os << "key " << key << "\n";
  os << "ipc " << full_precision(e.predicted_ipc) << "\n";
  os << "latency_ms " << full_precision(e.latency_ms) << "\n";
  os << "power_w " << full_precision(e.power_w) << "\n";
  return os.str();
}

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32_le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
          << 24);
}

std::string encode_record(const std::string& payload) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  out.append(kRecordMagic, sizeof(kRecordMagic));
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(out, crc32(payload));
  out.append(payload);
  return out;
}

/// Parse a "gpuperf-sweep v1" payload into (key, entry); nullopt on
/// anything malformed.
std::optional<
    std::pair<std::string, std::shared_ptr<SweepCache::Entry>>>
parse_body(const std::string& body) {
  auto out = std::make_shared<SweepCache::Entry>();
  std::string key;
  try {
    std::istringstream is(body);
    std::string line;
    if (!std::getline(is, line) || trim(line) != "gpuperf-sweep v1")
      return std::nullopt;
    while (std::getline(is, line)) {
      if (trim(line).empty()) continue;
      const auto kv = split_ws(line);
      if (kv.size() != 2) return std::nullopt;
      if (kv[0] == "key") {
        key = kv[1];
      } else if (kv[0] == "ipc") {
        out->predicted_ipc = parse_double(kv[1]);
      } else if (kv[0] == "latency_ms") {
        out->latency_ms = parse_double(kv[1]);
      } else if (kv[0] == "power_w") {
        out->power_w = parse_double(kv[1]);
      } else {
        return std::nullopt;
      }
    }
  } catch (const CheckError&) {
    return std::nullopt;  // unparsable numbers
  }
  if (key.empty()) return std::nullopt;
  return std::make_pair(std::move(key), std::move(out));
}

}  // namespace

SweepCache::SweepCache(std::string root, const InputLimits& limits)
    : root_(std::move(root)), limits_(limits) {
  GP_CHECK_MSG(!root_.empty(), "sweep cache root must not be empty");
  fs::create_directories(root_);
  replay_journal();
}

std::string SweepCache::journal_path() const {
  return (fs::path(root_) / "sweep.journal").string();
}

std::string SweepCache::cell_key(std::uint64_t topology,
                                 const std::string& device,
                                 const std::string& bundle_key) {
  GP_CHECK_MSG(!device.empty() && !bundle_key.empty(),
               "sweep cell key needs a device and a bundle key");
  // ':' never appears in device names or bundle keys (registry versions
  // are "v<counter>-<hash>", ad-hoc keys are hex), so the joined key
  // parses back unambiguously and survives the journal's whitespace-
  // split payload format.
  return registry::hex64(topology) + ':' + device + ':' + bundle_key;
}

void SweepCache::replay_journal() {
  std::ifstream in(journal_path(), std::ios::binary);
  if (!in.good()) return;  // no journal yet

  std::size_t offset = 0;     // start of the record being read
  std::size_t valid_end = 0;  // end of the last fully-valid record
  char header[kRecordHeaderBytes];
  std::string payload;

  while (in.read(header, kRecordHeaderBytes)) {
    if (std::string_view(header, 4) !=
        std::string_view(kRecordMagic, 4))
      break;
    const std::uint32_t length = get_u32_le(header + 4);
    const std::uint32_t stored_crc = get_u32_le(header + 8);
    if (length == 0 || length > limits_.max_store_record_bytes) break;
    payload.resize(length);
    if (!in.read(payload.data(), length)) break;  // torn tail
    if (crc32(payload) != stored_crc) break;
    auto parsed = parse_body(payload);
    if (!parsed) break;
    index_[parsed->first] = std::move(parsed->second);
    ++recovered_records_;
    offset += kRecordHeaderBytes + length;
    valid_end = offset;
  }
  in.close();

  // Torn tail or bit rot: truncate back to the last fully-valid record;
  // everything before it is intact because records are append-only.
  std::error_code ec;
  const auto file_size = fs::file_size(journal_path(), ec);
  if (!ec && file_size > valid_end) {
    torn_tail_bytes_ = static_cast<std::size_t>(file_size) - valid_end;
    fs::resize_file(journal_path(), valid_end, ec);
  }
}

std::shared_ptr<const SweepCache::Entry> SweepCache::get(
    const std::string& key) const {
  GPUPERF_FAULT_POINT("sweep_cache.get");  // a dead volume: read throws
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SweepCache::append_record(const std::string& payload) const {
  enforce_limit(payload.size(), limits_.max_store_record_bytes,
                "sweep-cache record bytes");
  const std::string record = encode_record(payload);
  const int fd = ::open(journal_path().c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  GP_CHECK_MSG(fd >= 0, "cannot open journal '" << journal_path() << "'");
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd, record.data() + written, record.size() - written);
    if (n < 0) {
      ::close(fd);
      GP_CHECK_MSG(false, "journal append to '" << journal_path()
                                                << "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before acknowledging: a put that returned must survive a
  // crash (the record is either fully there or becomes the torn tail).
  const int rc = ::fsync(fd);
  ::close(fd);
  GP_CHECK_MSG(rc == 0, "journal fsync of '" << journal_path()
                                             << "' failed");
}

void SweepCache::put(const std::string& key, const Entry& entry) {
  GPUPERF_FAULT_POINT("sweep_cache.put");  // a full/dead volume
  const std::string payload = entry_body(key, entry);
  std::lock_guard<std::mutex> lock(mutex_);
  append_record(payload);
  index_[key] = std::make_shared<const Entry>(entry);
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

}  // namespace gpuperf::dse
