// NASNet-A Mobile / Large (Zoph et al.): the architecture-search cells
// with their two-input (current, previous) wiring.  Each cell adjusts
// the previous feature map to the current one's geometry, squeezes the
// current map to the cell width, and combines five block pairs of
// stacked separable convolutions and pools.
#include "cnn/zoo.hpp"

#include "common/check.hpp"
#include "cnn/static_analyzer.hpp"

namespace gpuperf::cnn::zoo {

namespace {

struct CellIo {
  NodeId out = -1;
  NodeId prev = -1;  // becomes the next cell's "previous" input
};

class NasnetBuilder {
 public:
  explicit NasnetBuilder(Model& m) : m_(m) {}

  /// Shape of a node, recomputed on demand (models are built once;
  /// clarity beats caching here).
  TensorShape shape(NodeId id) {
    const auto shapes = analyzer_.infer_shapes(m_);
    return shapes[static_cast<std::size_t>(id)];
  }

  NodeId relu(NodeId x) {
    return m_.add(Layer::activation(ActivationKind::kReLU), x);
  }

  /// relu + 1x1 conv + bn: brings a map to `filters` channels.
  NodeId squeeze(NodeId x, std::int64_t filters) {
    NodeId y = relu(x);
    y = m_.add(Layer::conv2d(filters, 1, 1, Padding::kSame, false), y);
    return m_.add(Layer::batch_norm(), y);
  }

  /// Twice-stacked separable conv (the NASNet separable_conv_block):
  /// relu, depthwise+pointwise (strided), bn, relu, depthwise+pointwise,
  /// bn.
  NodeId sep_block(NodeId x, std::int64_t filters, int kernel,
                   int stride = 1) {
    NodeId y = relu(x);
    y = m_.add(Layer::depthwise_conv2d(
                   kernel, stride,
                   stride > 1 ? Padding::kSame : Padding::kSame, false),
               y);
    y = m_.add(Layer::conv2d(filters, 1, 1, Padding::kSame, false), y);
    y = m_.add(Layer::batch_norm(), y);
    y = relu(y);
    y = m_.add(Layer::depthwise_conv2d(kernel, 1, Padding::kSame, false), y);
    y = m_.add(Layer::conv2d(filters, 1, 1, Padding::kSame, false), y);
    return m_.add(Layer::batch_norm(), y);
  }

  /// Make `p` match `target`'s spatial extent and `filters` channels.
  NodeId adjust(NodeId p, NodeId target, std::int64_t filters) {
    const TensorShape ps = shape(p);
    const TensorShape ts = shape(target);
    if (ps.h != ts.h || ps.w != ts.w) {
      // Factorized reduction: two strided 1x1 average-pool paths, each
      // projected to filters/2, concatenated.
      NodeId y = relu(p);
      NodeId p1 = m_.add(Layer::avg_pool(1, 2, Padding::kValid), y);
      p1 = m_.add(Layer::conv2d(filters / 2, 1, 1, Padding::kSame, false),
                  p1);
      NodeId p2 = m_.add(Layer::avg_pool(1, 2, Padding::kValid), y);
      p2 = m_.add(
          Layer::conv2d(filters - filters / 2, 1, 1, Padding::kSame, false),
          p2);
      NodeId cat = m_.add(Layer::concat(), {p1, p2});
      return m_.add(Layer::batch_norm(), cat);
    }
    if (ps.c != filters) return squeeze(p, filters);
    return p;
  }

  CellIo normal_cell(NodeId h, NodeId p, std::int64_t filters) {
    p = adjust(p, h, filters);
    NodeId h1 = squeeze(h, filters);

    NodeId b1 = m_.add(Layer::add(), {sep_block(h1, filters, 5),
                                      sep_block(p, filters, 3)});
    NodeId b2 = m_.add(Layer::add(), {sep_block(p, filters, 5),
                                      sep_block(p, filters, 3)});
    NodeId b3 = m_.add(
        Layer::add(), {m_.add(Layer::avg_pool(3, 1, Padding::kSame), h1), p});
    NodeId b4 = m_.add(Layer::add(),
                       {m_.add(Layer::avg_pool(3, 1, Padding::kSame), p),
                        m_.add(Layer::avg_pool(3, 1, Padding::kSame), p)});
    NodeId b5 = m_.add(Layer::add(), {sep_block(h1, filters, 3), h1});

    NodeId out = m_.add(Layer::concat(), {p, b1, b2, b3, b4, b5});
    return {out, h};
  }

  CellIo reduction_cell(NodeId h, NodeId p, std::int64_t filters) {
    p = adjust(p, h, filters);
    NodeId h1 = squeeze(h, filters);

    NodeId b1 = m_.add(Layer::add(), {sep_block(h1, filters, 5, 2),
                                      sep_block(p, filters, 7, 2)});
    NodeId b2 = m_.add(Layer::add(),
                       {m_.add(Layer::max_pool(3, 2, Padding::kSame), h1),
                        sep_block(p, filters, 7, 2)});
    NodeId b3 = m_.add(Layer::add(),
                       {m_.add(Layer::avg_pool(3, 2, Padding::kSame), h1),
                        sep_block(p, filters, 5, 2)});
    NodeId b4 = m_.add(Layer::add(),
                       {m_.add(Layer::max_pool(3, 2, Padding::kSame), h1),
                        sep_block(b1, filters, 3, 1)});
    NodeId b5 = m_.add(Layer::add(),
                       {m_.add(Layer::avg_pool(3, 1, Padding::kSame), b1),
                        b2});

    NodeId out = m_.add(Layer::concat(), {b2, b3, b4, b5});
    (void)b5;  // b5 feeds the concat in some NASNet variants; A-cell uses 4
    return {out, h};
  }

 private:
  Model& m_;
  cnn::StaticAnalyzer analyzer_;
};

Model build_nasnet(const std::string& name, std::int64_t input_size,
                   std::int64_t stem_filters,
                   std::int64_t penultimate_filters, int n_blocks) {
  GP_CHECK(penultimate_filters % 24 == 0);
  const std::int64_t filters = penultimate_filters / 24;

  Model m(name);
  NodeId x = m.add_input(input_size, input_size, 3);
  x = m.add(Layer::conv2d(stem_filters, 3, 2, Padding::kValid, false), x);
  x = m.add(Layer::batch_norm(), x);

  NasnetBuilder b(m);

  // Two stem reduction cells at filters/4 and filters/2.
  CellIo io = b.reduction_cell(x, x, filters / 4);
  io = b.reduction_cell(io.out, io.prev, filters / 2);

  // Three stages of N normal cells, separated by reduction cells that
  // double the cell width.
  std::int64_t f = filters;
  for (int stage = 0; stage < 3; ++stage) {
    for (int i = 0; i < n_blocks; ++i)
      io = b.normal_cell(io.out, io.prev, f);
    if (stage < 2) {
      io = b.reduction_cell(io.out, io.prev, 2 * f);
      f *= 2;
    }
  }

  NodeId y = m.add(Layer::activation(ActivationKind::kReLU), io.out);
  y = m.add(Layer::global_avg_pool(), y);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), y);
  return m;
}

}  // namespace

Model nasnet_mobile() {
  return build_nasnet("nasnetmobile", 224, 32, 1056, 4);
}

Model nasnet_large() {
  return build_nasnet("nasnetlarge", 331, 96, 4032, 6);
}

}  // namespace gpuperf::cnn::zoo
