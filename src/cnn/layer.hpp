// Layer descriptions and their shape / parameter / MAC algebra.
//
// A Layer is a plain description (no weights are stored — the library
// analyzes architectures, it does not run them).  Parameter counting
// follows the Keras conventions the paper's Table I numbers come from:
// conv k_h*k_w*(C_in/groups)*F + F bias, dense n*m + m, batch-norm 2C
// trainable + 2C frozen statistics, pool/activation/merge 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnn/shape.hpp"

namespace gpuperf::cnn {

enum class LayerKind {
  kInput,
  kConv2D,
  kDepthwiseConv2D,
  kDense,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kActivation,
  kBatchNorm,
  kAdd,
  kMultiply,
  kConcat,
  kFlatten,
  kZeroPad,
  kDropout,
};

enum class ActivationKind {
  kLinear,
  kReLU,
  kReLU6,
  kSigmoid,
  kSwish,
  kSoftmax,
  kTanh,
};

const char* layer_kind_name(LayerKind kind);
const char* activation_name(ActivationKind kind);

/// One layer description.  Construct through the factory functions —
/// they validate the fields that matter for each kind.
struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;

  // Input.
  TensorShape input_shape;

  // Conv / depthwise-conv / pool windows.
  int kernel_h = 0, kernel_w = 0;
  int stride_h = 1, stride_w = 1;
  Padding padding = Padding::kSame;

  // Conv2D: output channels; Dense: units.
  std::int64_t filters = 0;
  int groups = 1;            // grouped convolution (AlexNet, ResNeXt)
  int depth_multiplier = 1;  // depthwise conv
  bool use_bias = true;

  ActivationKind act = ActivationKind::kLinear;  // fused epilogue

  // ZeroPad amounts.
  int pad_top = 0, pad_bottom = 0, pad_left = 0, pad_right = 0;

  double dropout_rate = 0.0;

  // ---- factories ----
  static Layer input(std::int64_t h, std::int64_t w, std::int64_t c);
  static Layer conv2d(std::int64_t filters, int kernel, int stride = 1,
                      Padding padding = Padding::kSame, bool use_bias = true,
                      ActivationKind act = ActivationKind::kLinear,
                      int groups = 1);
  static Layer conv2d_rect(std::int64_t filters, int kernel_h, int kernel_w,
                           int stride_h = 1, int stride_w = 1,
                           Padding padding = Padding::kSame,
                           bool use_bias = true);
  static Layer depthwise_conv2d(int kernel, int stride = 1,
                                Padding padding = Padding::kSame,
                                bool use_bias = true,
                                int depth_multiplier = 1);
  static Layer dense(std::int64_t units, bool use_bias = true,
                     ActivationKind act = ActivationKind::kLinear);
  static Layer max_pool(int pool, int stride = 0,
                        Padding padding = Padding::kValid);
  static Layer avg_pool(int pool, int stride = 0,
                        Padding padding = Padding::kValid);
  static Layer global_avg_pool();
  static Layer activation(ActivationKind act);
  static Layer batch_norm();
  static Layer add();
  static Layer multiply();
  static Layer concat();
  static Layer flatten();
  static Layer zero_pad(int top, int bottom, int left, int right);
  static Layer dropout(double rate);
};

/// Parameter counts for a layer given its input shapes.
struct ParamCount {
  std::int64_t trainable = 0;
  std::int64_t non_trainable = 0;
  std::int64_t total() const { return trainable + non_trainable; }
};

/// Number of inputs a layer kind accepts: merge layers take >= 2,
/// kInput takes 0, everything else exactly 1.
bool valid_input_arity(LayerKind kind, std::size_t n_inputs);

/// Infer the output shape; GP_CHECK-fails on incompatible inputs (e.g.
/// Add over mismatched shapes, Dense on a rank-3 tensor).
TensorShape infer_output_shape(const Layer& layer,
                               const std::vector<TensorShape>& inputs);

/// Trainable / non-trainable parameter counts.
ParamCount count_params(const Layer& layer,
                        const std::vector<TensorShape>& inputs);

/// Multiply-accumulate operations for one inference pass.
std::int64_t count_macs(const Layer& layer,
                        const std::vector<TensorShape>& inputs);

/// True for layers the paper counts toward a model's "Layers" column
/// (weighted layers: conv, depthwise conv, dense).
bool is_weighted_layer(LayerKind kind);

}  // namespace gpuperf::cnn
