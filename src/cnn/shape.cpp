#include "cnn/shape.hpp"

#include <sstream>

#include "common/check.hpp"

namespace gpuperf::cnn {

TensorShape TensorShape::hwc(std::int64_t h, std::int64_t w,
                             std::int64_t c) {
  GP_CHECK(h > 0 && w > 0 && c > 0);
  return TensorShape{h, w, c, 3};
}

TensorShape TensorShape::flat(std::int64_t n) {
  GP_CHECK(n > 0);
  return TensorShape{n, 1, 1, 1};
}

std::int64_t TensorShape::elements() const { return h * w * c; }

std::string TensorShape::to_string() const {
  std::ostringstream os;
  if (rank == 1)
    os << "(" << h << ")";
  else
    os << "(" << h << ", " << w << ", " << c << ")";
  return os.str();
}

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, Padding padding) {
  GP_CHECK(in > 0 && kernel > 0 && stride > 0);
  if (padding == Padding::kSame) return (in + stride - 1) / stride;
  GP_CHECK_MSG(kernel <= in, "valid-padding window " << kernel
                                                     << " larger than input "
                                                     << in);
  return (in - kernel) / stride + 1;
}

}  // namespace gpuperf::cnn
