// The paper's Static Analyzer module (Fig. 3, phase 1): walks a model's
// DAG, infers every layer's output shape, and totals trainable
// parameters, neurons (activations), MACs and FLOPs.  These are the
// CNN-side predictors of the training dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnn/model.hpp"

namespace gpuperf::cnn {

struct LayerReport {
  std::string name;
  LayerKind kind = LayerKind::kInput;
  TensorShape output_shape;
  std::int64_t trainable_params = 0;
  std::int64_t non_trainable_params = 0;
  std::int64_t neurons = 0;  // output elements
  std::int64_t macs = 0;
};

struct ModelReport {
  std::string model_name;
  TensorShape input_shape;
  std::int64_t trainable_params = 0;
  std::int64_t non_trainable_params = 0;
  std::int64_t total_params = 0;
  /// Sum of output activations over all non-input layers — the
  /// "Neurons" column of the paper's Table I.
  std::int64_t neurons = 0;
  std::int64_t macs = 0;
  std::int64_t flops = 0;  // 2 * macs
  /// Count of weighted layers (conv / depthwise conv / dense) — the
  /// "Layers" column of Table I.
  std::int64_t weighted_layers = 0;
  std::int64_t node_count = 0;
  std::vector<LayerReport> layers;
};

class StaticAnalyzer {
 public:
  /// Full analysis; GP_CHECK-fails on shape-inconsistent models.
  ModelReport analyze(const Model& model) const;

  /// Just the output shape of every node (index = NodeId).
  std::vector<TensorShape> infer_shapes(const Model& model) const;
};

/// Render a ModelReport summary (per-layer table plus totals).
std::string to_string(const ModelReport& report, bool per_layer = false);

}  // namespace gpuperf::cnn
