#include "cnn/zoo.hpp"

#include "common/check.hpp"

namespace gpuperf::cnn::zoo {

const std::vector<ZooEntry>& all_models() {
  // Table I order.
  static const std::vector<ZooEntry> entries = {
      {"m-r50x1", bit_r50x1, 50},
      {"m-r50x3", bit_r50x3, 50},
      {"m-r101x3", bit_r101x3, 101},
      {"m-r101x1", bit_r101x1, 101},
      {"m-r154x4", bit_r152x4, 154},
      {"resnet101", resnet101, 101},
      {"resnet152", resnet152, 152},
      {"resnet50v2", resnet50_v2, 50},
      {"resnet101v2", resnet101_v2, 101},
      {"resnet152v2", resnet152_v2, 152},
      {"nasnetmobile", nasnet_mobile, 771},
      {"nasnetlarge", nasnet_large, 1041},
      {"densenet121", densenet121, 121},
      {"densenet169", densenet169, 169},
      {"densenet201", densenet201, 201},
      {"mobilenet", mobilenet, 28},
      {"inceptionv3", inception_v3, 48},
      {"vgg16", vgg16, 16},
      {"vgg19", vgg19, 19},
      {"efficientnetb0", efficientnet_b0, 240},
      {"efficientnetb1", efficientnet_b1, 342},
      {"efficientnetb2", efficientnet_b2, 342},
      {"efficientnetb3", efficientnet_b3, 387},
      {"efficientnetb4", efficientnet_b4, 477},
      {"efficientnetb5", efficientnet_b5, 579},
      {"efficientnetb6", efficientnet_b6, 669},
      {"efficientnetb7", efficientnet_b7, 816},
      {"Xception", xception, 71},
      {"MobileNetV2", mobilenet_v2, 53},
      {"InceptionResNetV2", inception_resnet_v2, 164},
      {"alexnet", alexnet, 8},
  };
  return entries;
}

Model build(const std::string& name) {
  for (const auto& e : all_models())
    if (e.name == name) return e.build();
  for (const auto& e : extended_models())
    if (e.name == name) return e.build();
  GP_CHECK_MSG(false, "no zoo model named '" << name << "'");
}

bool has_model(const std::string& name) {
  for (const auto& e : all_models())
    if (e.name == name) return true;
  for (const auto& e : extended_models())
    if (e.name == name) return true;
  return false;
}

const std::vector<std::string>& fig4_holdouts() {
  // Six standard CNNs "entirely independent of the training phase"
  // (paper cites [20] AlexNet, [24] EfficientNet, [25] Xception).
  static const std::vector<std::string> names = {
      "alexnet",        "efficientnetb0", "efficientnetb4",
      "efficientnetb7", "Xception",       "MobileNetV2"};
  return names;
}

const std::vector<std::string>& table4_models() {
  static const std::vector<std::string> names = {
      "efficientnetb3", "efficientnetb4", "efficientnetb5",
      "efficientnetb6", "efficientnetb7", "Xception",
      "MobileNetV2"};
  return names;
}

}  // namespace gpuperf::cnn::zoo
