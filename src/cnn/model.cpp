#include "cnn/model.hpp"

#include "common/check.hpp"

namespace gpuperf::cnn {

Model::Model(std::string name) : name_(std::move(name)) {
  GP_CHECK_MSG(!name_.empty(), "model needs a name");
}

NodeId Model::add(Layer layer, std::vector<NodeId> inputs) {
  GP_CHECK_MSG(valid_input_arity(layer.kind, inputs.size()),
               layer_kind_name(layer.kind) << " with " << inputs.size()
                                           << " inputs");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId in : inputs)
    GP_CHECK_MSG(in >= 0 && in < id,
                 "input " << in << " not an earlier node of " << name_);
  if (layer.kind == LayerKind::kInput)
    GP_CHECK_MSG(nodes_.empty(), "input layer must be the first node");
  else
    GP_CHECK_MSG(!nodes_.empty(), "add an input layer first");
  if (layer.name.empty()) {
    layer.name =
        std::string(layer_kind_name(layer.kind)) + "_" + std::to_string(id);
  }
  nodes_.push_back(ModelNode{std::move(layer), std::move(inputs)});
  return id;
}

NodeId Model::add(Layer layer, NodeId input) {
  return add(std::move(layer), std::vector<NodeId>{input});
}

NodeId Model::add_input(std::int64_t h, std::int64_t w, std::int64_t c) {
  return add(Layer::input(h, w, c), std::vector<NodeId>{});
}

NodeId Model::conv_bn_act(NodeId input, std::int64_t filters, int kernel,
                          int stride, Padding padding, ActivationKind act,
                          bool bias, int groups) {
  NodeId x = add(Layer::conv2d(filters, kernel, stride, padding, bias,
                               ActivationKind::kLinear, groups),
                 input);
  x = add(Layer::batch_norm(), x);
  if (act != ActivationKind::kLinear) x = add(Layer::activation(act), x);
  return x;
}

const ModelNode& Model::node(NodeId id) const {
  GP_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId Model::output() const {
  GP_CHECK_MSG(!nodes_.empty(), "empty model");
  return output_ >= 0 ? output_ : static_cast<NodeId>(nodes_.size() - 1);
}

void Model::set_output(NodeId id) {
  GP_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  output_ = id;
}

TensorShape Model::input_shape() const {
  GP_CHECK(!nodes_.empty());
  GP_CHECK(nodes_.front().layer.kind == LayerKind::kInput);
  return nodes_.front().layer.input_shape;
}

void Model::validate() const {
  GP_CHECK_MSG(!nodes_.empty(), "empty model " << name_);
  GP_CHECK_MSG(nodes_.front().layer.kind == LayerKind::kInput,
               "first node of " << name_ << " is not an input");
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    GP_CHECK_MSG(nodes_[i].layer.kind != LayerKind::kInput,
                 "multiple input layers in " << name_);
  // add() already enforces arity and topological ordering; output() is
  // validated by its accessor.
  (void)output();
}

}  // namespace gpuperf::cnn
