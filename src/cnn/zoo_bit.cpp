// Big Transfer (BiT-M) backbones: ResNet-v2 with a width multiplier.
// BiT replaces batch norm with group norm + weight standardization;
// group norm has the same 2C trainable parameters as our batch-norm
// layer, so the parameter algebra is unchanged.  The paper's "m-r154x4"
// is BiT's R152x4.
#include "cnn/zoo.hpp"
#include "cnn/zoo_resnet_common.hpp"

namespace gpuperf::cnn::zoo {

Model bit_r50x1() {
  return build_resnet("m-r50x1", {3, 4, 6, 3}, 2, 1);
}

Model bit_r50x3() {
  return build_resnet("m-r50x3", {3, 4, 6, 3}, 2, 3);
}

Model bit_r101x1() {
  return build_resnet("m-r101x1", {3, 4, 23, 3}, 2, 1);
}

Model bit_r101x3() {
  return build_resnet("m-r101x3", {3, 4, 23, 3}, 2, 3);
}

Model bit_r152x4() {
  return build_resnet("m-r154x4", {3, 8, 36, 3}, 2, 4);
}

}  // namespace gpuperf::cnn::zoo
