// MobileNet v1 (Howard et al.) and MobileNetV2 (Sandler et al.):
// depthwise-separable stacks, v2 adds inverted residual bottlenecks
// with linear projections.
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

/// v1 separable block: depthwise 3x3 + pointwise 1x1, both bn + relu6.
NodeId separable_v1(Model& m, NodeId x, std::int64_t filters, int stride) {
  if (stride > 1) x = m.add(Layer::zero_pad(0, 1, 0, 1), x);
  x = m.add(Layer::depthwise_conv2d(
                3, stride, stride > 1 ? Padding::kValid : Padding::kSame,
                false),
            x);
  x = m.add(Layer::batch_norm(), x);
  x = m.add(Layer::activation(ActivationKind::kReLU6), x);
  x = m.add(Layer::conv2d(filters, 1, 1, Padding::kSame, false), x);
  x = m.add(Layer::batch_norm(), x);
  return m.add(Layer::activation(ActivationKind::kReLU6), x);
}

/// v2 inverted residual: 1x1 expansion (t), depthwise 3x3, linear 1x1
/// projection; identity skip when stride 1 and channels match.
NodeId inverted_residual(Model& m, NodeId x, std::int64_t in_channels,
                         std::int64_t out_channels, int stride,
                         int expansion) {
  NodeId y = x;
  if (expansion != 1) {
    y = m.add(Layer::conv2d(in_channels * expansion, 1, 1, Padding::kSame,
                            false),
              y);
    y = m.add(Layer::batch_norm(), y);
    y = m.add(Layer::activation(ActivationKind::kReLU6), y);
  }
  if (stride > 1) y = m.add(Layer::zero_pad(0, 1, 0, 1), y);
  y = m.add(Layer::depthwise_conv2d(
                3, stride, stride > 1 ? Padding::kValid : Padding::kSame,
                false),
            y);
  y = m.add(Layer::batch_norm(), y);
  y = m.add(Layer::activation(ActivationKind::kReLU6), y);
  y = m.add(Layer::conv2d(out_channels, 1, 1, Padding::kSame, false), y);
  y = m.add(Layer::batch_norm(), y);
  if (stride == 1 && in_channels == out_channels)
    y = m.add(Layer::add(), {x, y});
  return y;
}

}  // namespace

Model mobilenet() {
  Model m("mobilenet");
  NodeId x = m.add_input(224, 224, 3);

  x = m.add(Layer::zero_pad(0, 1, 0, 1), x);
  x = m.add(Layer::conv2d(32, 3, 2, Padding::kValid, false), x);
  x = m.add(Layer::batch_norm(), x);
  x = m.add(Layer::activation(ActivationKind::kReLU6), x);

  struct Block {
    std::int64_t filters;
    int stride;
  };
  const Block blocks[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                          {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                          {512, 1}, {1024, 2}, {1024, 1}};
  for (const Block& b : blocks) x = separable_v1(m, x, b.filters, b.stride);

  x = m.add(Layer::global_avg_pool(), x);
  x = m.add(Layer::dropout(1e-3), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

Model mobilenet_v2() {
  Model m("MobileNetV2");
  NodeId x = m.add_input(200, 200, 3);  // Table I lists a 200x200 input

  x = m.add(Layer::zero_pad(0, 1, 0, 1), x);
  x = m.add(Layer::conv2d(32, 3, 2, Padding::kValid, false), x);
  x = m.add(Layer::batch_norm(), x);
  x = m.add(Layer::activation(ActivationKind::kReLU6), x);

  struct Stage {
    int expansion;
    std::int64_t channels;
    int repeats;
    int stride;
  };
  const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  std::int64_t in_channels = 32;
  for (const Stage& s : stages) {
    for (int r = 0; r < s.repeats; ++r) {
      const int stride = r == 0 ? s.stride : 1;
      x = inverted_residual(m, x, in_channels, s.channels, stride,
                            s.expansion);
      in_channels = s.channels;
    }
  }

  x = m.add(Layer::conv2d(1280, 1, 1, Padding::kSame, false), x);
  x = m.add(Layer::batch_norm(), x);
  x = m.add(Layer::activation(ActivationKind::kReLU6), x);
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace gpuperf::cnn::zoo
