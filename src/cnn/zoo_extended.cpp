// Extended zoo — the paper's future work ("we work on preparing more
// standard CNNs and variations of well-known CNNs ... to expand our
// training dataset").  Three standard torchvision architectures not in
// Table I; parameter counts reproduce the published values exactly.
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

/// torchvision-style bottleneck (bias-free convs, BN everywhere) with a
/// configurable internal width and grouped 3x3 — covers ResNeXt and
/// Wide ResNet.
NodeId bottleneck_tv(Model& m, NodeId x, std::int64_t width,
                     std::int64_t out_channels, int stride, int groups,
                     bool project) {
  NodeId shortcut = x;
  if (project) {
    shortcut = m.add(
        Layer::conv2d(out_channels, 1, stride, Padding::kSame, false), x);
    shortcut = m.add(Layer::batch_norm(), shortcut);
  }
  NodeId y = m.conv_bn_act(x, width, 1, 1);
  y = m.conv_bn_act(y, width, 3, stride, Padding::kSame,
                    ActivationKind::kReLU, /*bias=*/false, groups);
  y = m.add(Layer::conv2d(out_channels, 1, 1, Padding::kSame, false), y);
  y = m.add(Layer::batch_norm(), y);
  y = m.add(Layer::add(), {shortcut, y});
  return m.add(Layer::activation(ActivationKind::kReLU), y);
}

Model build_resnet_tv(const std::string& name, std::int64_t base_width,
                      int groups) {
  Model m(name);
  NodeId x = m.add_input(224, 224, 3);
  x = m.add(Layer::zero_pad(3, 3, 3, 3), x);
  x = m.conv_bn_act(x, 64, 7, 2, Padding::kValid);
  x = m.add(Layer::zero_pad(1, 1, 1, 1), x);
  x = m.add(Layer::max_pool(3, 2), x);

  const int blocks[4] = {3, 4, 6, 3};
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = base_width << stage;
    const std::int64_t out_channels = 256LL << stage;
    for (int b = 0; b < blocks[stage]; ++b) {
      const int stride = (b == 0 && stage > 0) ? 2 : 1;
      x = bottleneck_tv(m, x, width, out_channels, stride, groups, b == 0);
    }
  }
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

/// SqueezeNet fire module: 1x1 squeeze, then parallel 1x1/3x3 expands
/// concatenated.  All convs biased, no batch norm (the original).
NodeId fire(Model& m, NodeId x, std::int64_t squeeze, std::int64_t expand) {
  NodeId s = m.add(Layer::conv2d(squeeze, 1, 1, Padding::kSame, true,
                                 ActivationKind::kReLU),
                   x);
  NodeId e1 = m.add(Layer::conv2d(expand, 1, 1, Padding::kSame, true,
                                  ActivationKind::kReLU),
                    s);
  NodeId e3 = m.add(Layer::conv2d(expand, 3, 1, Padding::kSame, true,
                                  ActivationKind::kReLU),
                    s);
  return m.add(Layer::concat(), {e1, e3});
}

}  // namespace

Model resnext50_32x4d() {
  // Internal widths 128/256/512/1024 split over 32 groups of 4.
  return build_resnet_tv("resnext50_32x4d", 128, 32);
}

Model wide_resnet50_2() {
  // ResNet-50 with doubled internal widths.
  return build_resnet_tv("wide_resnet50_2", 128, 1);
}

Model squeezenet() {
  Model m("squeezenet");
  NodeId x = m.add_input(224, 224, 3);
  x = m.add(Layer::conv2d(96, 7, 2, Padding::kValid, true,
                          ActivationKind::kReLU),
            x);
  x = m.add(Layer::max_pool(3, 2), x);
  x = fire(m, x, 16, 64);
  x = fire(m, x, 16, 64);
  x = fire(m, x, 32, 128);
  x = m.add(Layer::max_pool(3, 2), x);
  x = fire(m, x, 32, 128);
  x = fire(m, x, 48, 192);
  x = fire(m, x, 48, 192);
  x = fire(m, x, 64, 256);
  x = m.add(Layer::max_pool(3, 2), x);
  x = fire(m, x, 64, 256);
  x = m.add(Layer::dropout(0.5), x);
  x = m.add(Layer::conv2d(1000, 1, 1, Padding::kSame, true,
                          ActivationKind::kReLU),
            x);
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::activation(ActivationKind::kSoftmax), x);
  return m;
}

const std::vector<ZooEntry>& extended_models() {
  static const std::vector<ZooEntry> entries = {
      {"resnext50_32x4d", resnext50_32x4d, 50},
      {"wide_resnet50_2", wide_resnet50_2, 50},
      {"squeezenet", squeezenet, 18},
  };
  return entries;
}

}  // namespace gpuperf::cnn::zoo
