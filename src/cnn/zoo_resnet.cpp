// ResNet v1 (He et al., 2015) and ResNet v2 (pre-activation, He et al.,
// 2016) with bottleneck blocks, following the Keras Applications
// topologies the paper's Table I parameter counts come from.
#include "cnn/zoo_resnet_common.hpp"

#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

/// v1 bottleneck: conv1x1-bn-relu, conv3x3-bn-relu, conv1x1(4f)-bn,
/// projection shortcut on shape change, add, relu.
NodeId bottleneck_v1(Model& m, NodeId x, std::int64_t filters, int stride,
                     bool project) {
  NodeId shortcut = x;
  if (project) {
    shortcut = m.add(Layer::conv2d(4 * filters, 1, stride, Padding::kSame,
                                   true),
                     x);
    shortcut = m.add(Layer::batch_norm(), shortcut);
  }
  NodeId y = m.conv_bn_act(x, filters, 1, stride, Padding::kSame,
                           ActivationKind::kReLU, /*bias=*/true);
  y = m.conv_bn_act(y, filters, 3, 1, Padding::kSame, ActivationKind::kReLU,
                    /*bias=*/true);
  y = m.add(Layer::conv2d(4 * filters, 1, 1, Padding::kSame, true), y);
  y = m.add(Layer::batch_norm(), y);
  y = m.add(Layer::add(), {shortcut, y});
  return m.add(Layer::activation(ActivationKind::kReLU), y);
}

/// v2 bottleneck: bn-relu preactivation feeding both the residual path
/// and (on projection blocks) the shortcut conv.
NodeId bottleneck_v2(Model& m, NodeId x, std::int64_t filters, int stride,
                     bool project) {
  NodeId preact = m.add(Layer::batch_norm(), x);
  preact = m.add(Layer::activation(ActivationKind::kReLU), preact);

  NodeId shortcut = x;
  if (project) {
    shortcut = m.add(
        Layer::conv2d(4 * filters, 1, stride, Padding::kSame, true), preact);
  } else if (stride > 1) {
    shortcut = m.add(Layer::max_pool(1, stride), x);
  }

  NodeId y = m.add(Layer::conv2d(filters, 1, 1, Padding::kSame, false),
                   preact);
  y = m.add(Layer::batch_norm(), y);
  y = m.add(Layer::activation(ActivationKind::kReLU), y);
  y = m.add(Layer::zero_pad(1, 1, 1, 1), y);
  y = m.add(Layer::conv2d(filters, 3, stride, Padding::kValid, false), y);
  y = m.add(Layer::batch_norm(), y);
  y = m.add(Layer::activation(ActivationKind::kReLU), y);
  y = m.add(Layer::conv2d(4 * filters, 1, 1, Padding::kSame, true), y);
  return m.add(Layer::add(), {shortcut, y});
}

}  // namespace

Model build_resnet(const std::string& name,
                   const std::vector<int>& blocks_per_stage, int version,
                   int width_multiplier, std::int64_t head_classes) {
  Model m(name);
  NodeId x = m.add_input(224, 224, 3);

  // Stem: 7x7/2 conv then 3x3/2 max pool, both with explicit padding.
  x = m.add(Layer::zero_pad(3, 3, 3, 3), x);
  if (version == 1) {
    x = m.conv_bn_act(x, 64LL * width_multiplier, 7, 2, Padding::kValid,
                      ActivationKind::kReLU, /*bias=*/true);
  } else {
    // v2 defers normalization to the block preactivations.
    x = m.add(Layer::conv2d(64LL * width_multiplier, 7, 2, Padding::kValid,
                            true),
              x);
  }
  x = m.add(Layer::zero_pad(1, 1, 1, 1), x);
  x = m.add(Layer::max_pool(3, 2), x);

  const std::int64_t stage_filters[4] = {64, 128, 256, 512};
  for (std::size_t stage = 0; stage < blocks_per_stage.size(); ++stage) {
    const std::int64_t filters = stage_filters[stage] * width_multiplier;
    const int blocks = blocks_per_stage[stage];
    for (int b = 0; b < blocks; ++b) {
      const bool first = b == 0;
      int stride = 1;
      if (version == 1) {
        // v1 downsamples at the first block of stages 2-4.
        if (first && stage > 0) stride = 2;
        x = bottleneck_v1(m, x, filters, stride, first);
      } else {
        // Keras v2 downsamples at the *last* block of stages 1-3.
        const bool last = b == blocks - 1;
        if (last && stage + 1 < blocks_per_stage.size()) stride = 2;
        x = bottleneck_v2(m, x, filters, stride, first);
      }
    }
  }

  if (version == 2) {
    x = m.add(Layer::batch_norm(), x);
    x = m.add(Layer::activation(ActivationKind::kReLU), x);
  }
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(head_classes, true, ActivationKind::kSoftmax), x);
  return m;
}

Model resnet101() { return build_resnet("resnet101", {3, 4, 23, 3}, 1); }
Model resnet152() { return build_resnet("resnet152", {3, 8, 36, 3}, 1); }
Model resnet50_v2() { return build_resnet("resnet50v2", {3, 4, 6, 3}, 2); }
Model resnet101_v2() {
  return build_resnet("resnet101v2", {3, 4, 23, 3}, 2);
}
Model resnet152_v2() {
  return build_resnet("resnet152v2", {3, 8, 36, 3}, 2);
}

}  // namespace gpuperf::cnn::zoo
