// AlexNet (Krizhevsky et al., 2012) — the original two-tower network
// expressed with grouped convolutions, 227x227 input as in the paper's
// Table I.
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

Model alexnet() {
  Model m("alexnet");
  NodeId x = m.add_input(227, 227, 3);

  // conv1: 96 x 11x11 / 4, valid -> 55x55.
  x = m.add(Layer::conv2d(96, 11, 4, Padding::kValid, true,
                          ActivationKind::kReLU),
            x);
  x = m.add(Layer::max_pool(3, 2), x);  // -> 27x27

  // conv2: grouped (the historical two-GPU split).
  x = m.add(Layer::conv2d(256, 5, 1, Padding::kSame, true,
                          ActivationKind::kReLU, 2),
            x);
  x = m.add(Layer::max_pool(3, 2), x);  // -> 13x13

  x = m.add(Layer::conv2d(384, 3, 1, Padding::kSame, true,
                          ActivationKind::kReLU),
            x);
  x = m.add(Layer::conv2d(384, 3, 1, Padding::kSame, true,
                          ActivationKind::kReLU, 2),
            x);
  x = m.add(Layer::conv2d(256, 3, 1, Padding::kSame, true,
                          ActivationKind::kReLU, 2),
            x);
  x = m.add(Layer::max_pool(3, 2), x);  // -> 6x6x256

  x = m.add(Layer::flatten(), x);
  x = m.add(Layer::dropout(0.5), x);
  x = m.add(Layer::dense(4096, true, ActivationKind::kReLU), x);
  x = m.add(Layer::dropout(0.5), x);
  x = m.add(Layer::dense(4096, true, ActivationKind::kReLU), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace gpuperf::cnn::zoo
