// Shared ResNet builder used by the v1/v2 models and the Big Transfer
// (BiT) variants, which are width-multiplied ResNet-v2 backbones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnn/model.hpp"

namespace gpuperf::cnn::zoo {

/// version: 1 = post-activation bottlenecks, 2 = pre-activation.
/// width_multiplier scales every stage's filter count (BiT's x1/x3/x4).
Model build_resnet(const std::string& name,
                   const std::vector<int>& blocks_per_stage, int version,
                   int width_multiplier = 1, std::int64_t head_classes = 1000);

}  // namespace gpuperf::cnn::zoo
