// A CNN architecture as a DAG of layers.  Node ids are assigned in
// insertion order and inputs must refer to earlier nodes, so the node
// vector is always a valid topological order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnn/layer.hpp"

namespace gpuperf::cnn {

using NodeId = std::int32_t;

struct ModelNode {
  Layer layer;
  std::vector<NodeId> inputs;
};

class Model {
 public:
  explicit Model(std::string name);

  const std::string& name() const { return name_; }

  /// Append a layer fed by `inputs`; returns its node id.  Arity and
  /// topological ordering are validated here, shapes at analysis time.
  NodeId add(Layer layer, std::vector<NodeId> inputs);

  /// Convenience: single-input add.
  NodeId add(Layer layer, NodeId input);

  /// Add the input layer (must be the first node).
  NodeId add_input(std::int64_t h, std::int64_t w, std::int64_t c);

  /// Chain helper: conv + batch-norm + activation, the dominant idiom
  /// in every zoo architecture.  `bias` defaults to false because the
  /// batch norm's beta subsumes it (Keras convention).
  NodeId conv_bn_act(NodeId input, std::int64_t filters, int kernel,
                     int stride = 1, Padding padding = Padding::kSame,
                     ActivationKind act = ActivationKind::kReLU,
                     bool bias = false, int groups = 1);

  const std::vector<ModelNode>& nodes() const { return nodes_; }
  const ModelNode& node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// The designated output node (defaults to the last added).
  NodeId output() const;
  void set_output(NodeId id);

  /// Shape of the input layer.
  TensorShape input_shape() const;

  /// Structural checks beyond per-add validation: exactly one input
  /// node, every node reachable from the output is well-formed.
  void validate() const;

 private:
  std::string name_;
  std::vector<ModelNode> nodes_;
  NodeId output_ = -1;
};

}  // namespace gpuperf::cnn
