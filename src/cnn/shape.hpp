// Tensor shape algebra for feature maps (height x width x channels) and
// flat vectors.  Implements the output-dimension arithmetic the paper's
// Section III-A calls out as essential for counting trainable
// parameters across conv -> pool -> dense transitions.
#pragma once

#include <cstdint>
#include <string>

namespace gpuperf::cnn {

enum class Padding { kSame, kValid };

/// Feature-map shape.  rank 3 = HWC feature map, rank 1 = flat vector
/// (w == c == 1 unused; elements stored in h).
struct TensorShape {
  std::int64_t h = 0;
  std::int64_t w = 0;
  std::int64_t c = 0;
  int rank = 3;

  static TensorShape hwc(std::int64_t h, std::int64_t w, std::int64_t c);
  static TensorShape flat(std::int64_t n);

  /// Total element count.
  std::int64_t elements() const;

  bool operator==(const TensorShape&) const = default;

  std::string to_string() const;
};

/// Output spatial extent of a convolution/pool window.
/// kSame: ceil(in / stride); kValid: floor((in - kernel) / stride) + 1.
/// GP_CHECK-fails if kValid with kernel > in.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, Padding padding);

}  // namespace gpuperf::cnn
