#include "cnn/model_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/limits.hpp"
#include "common/strings.hpp"

namespace gpuperf::cnn {

namespace {

const char* kind_token(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv2D: return "conv2d";
    case LayerKind::kDepthwiseConv2D: return "depthwise_conv2d";
    case LayerKind::kDense: return "dense";
    case LayerKind::kMaxPool: return "max_pool";
    case LayerKind::kAvgPool: return "avg_pool";
    case LayerKind::kGlobalAvgPool: return "global_avg_pool";
    case LayerKind::kActivation: return "activation";
    case LayerKind::kBatchNorm: return "batch_norm";
    case LayerKind::kAdd: return "add";
    case LayerKind::kMultiply: return "multiply";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kFlatten: return "flatten";
    case LayerKind::kZeroPad: return "zero_pad";
    case LayerKind::kDropout: return "dropout";
  }
  return "?";
}

LayerKind kind_from_token(const std::string& token, int line) {
  static const std::map<std::string, LayerKind> kinds = {
      {"input", LayerKind::kInput},
      {"conv2d", LayerKind::kConv2D},
      {"depthwise_conv2d", LayerKind::kDepthwiseConv2D},
      {"dense", LayerKind::kDense},
      {"max_pool", LayerKind::kMaxPool},
      {"avg_pool", LayerKind::kAvgPool},
      {"global_avg_pool", LayerKind::kGlobalAvgPool},
      {"activation", LayerKind::kActivation},
      {"batch_norm", LayerKind::kBatchNorm},
      {"add", LayerKind::kAdd},
      {"multiply", LayerKind::kMultiply},
      {"concat", LayerKind::kConcat},
      {"flatten", LayerKind::kFlatten},
      {"zero_pad", LayerKind::kZeroPad},
      {"dropout", LayerKind::kDropout}};
  const auto it = kinds.find(token);
  GP_CHECK_MSG(it != kinds.end(),
               "unknown layer kind '" << token << "' at line " << line);
  return it->second;
}

ActivationKind act_from_token(const std::string& token, int line) {
  static const std::map<std::string, ActivationKind> acts = {
      {"linear", ActivationKind::kLinear},
      {"relu", ActivationKind::kReLU},
      {"relu6", ActivationKind::kReLU6},
      {"sigmoid", ActivationKind::kSigmoid},
      {"swish", ActivationKind::kSwish},
      {"softmax", ActivationKind::kSoftmax},
      {"tanh", ActivationKind::kTanh}};
  const auto it = acts.find(token);
  GP_CHECK_MSG(it != acts.end(),
               "unknown activation '" << token << "' at line " << line);
  return it->second;
}

}  // namespace

std::string serialize_model(const Model& model) {
  model.validate();
  std::ostringstream os;
  os << "gpuperf-model v1\n";
  os << "name " << model.name() << "\n";

  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const ModelNode& node = model.node(static_cast<NodeId>(i));
    const Layer& l = node.layer;
    os << "node " << i << ' ' << kind_token(l.kind);

    if (!node.inputs.empty()) {
      os << " in=";
      for (std::size_t j = 0; j < node.inputs.size(); ++j) {
        if (j) os << ',';
        os << node.inputs[j];
      }
    }

    switch (l.kind) {
      case LayerKind::kInput:
        os << " h=" << l.input_shape.h << " w=" << l.input_shape.w
           << " c=" << l.input_shape.c;
        break;
      case LayerKind::kConv2D:
        os << " filters=" << l.filters << " kernel=" << l.kernel_h << 'x'
           << l.kernel_w << " stride=" << l.stride_h << 'x' << l.stride_w
           << " pad=" << (l.padding == Padding::kSame ? "same" : "valid")
           << " bias=" << (l.use_bias ? 1 : 0)
           << " act=" << activation_name(l.act) << " groups=" << l.groups;
        break;
      case LayerKind::kDepthwiseConv2D:
        os << " kernel=" << l.kernel_h << 'x' << l.kernel_w
           << " stride=" << l.stride_h << 'x' << l.stride_w
           << " pad=" << (l.padding == Padding::kSame ? "same" : "valid")
           << " bias=" << (l.use_bias ? 1 : 0)
           << " mult=" << l.depth_multiplier;
        break;
      case LayerKind::kDense:
        os << " units=" << l.filters << " bias=" << (l.use_bias ? 1 : 0)
           << " act=" << activation_name(l.act);
        break;
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool:
        os << " pool=" << l.kernel_h << " stride=" << l.stride_h
           << " pad=" << (l.padding == Padding::kSame ? "same" : "valid");
        break;
      case LayerKind::kActivation:
        os << " act=" << activation_name(l.act);
        break;
      case LayerKind::kZeroPad:
        os << " t=" << l.pad_top << " b=" << l.pad_bottom
           << " l=" << l.pad_left << " r=" << l.pad_right;
        break;
      case LayerKind::kDropout:
        os << " rate=" << fixed(l.dropout_rate, 6);
        break;
      default:
        break;  // no extra attributes
    }
    os << "\n";
  }
  os << "output " << model.output() << "\n";
  return os.str();
}

namespace {
Model deserialize_model_impl(const std::string& text,
                             const InputLimits& limits);
}  // namespace

Model deserialize_model(const std::string& text,
                        const InputLimits& limits) {
  try {
    return deserialize_model_impl(text, limits);
  } catch (const InputRejected&) {
    throw;
  } catch (const CheckError& e) {
    throw InputRejected(std::string("model deserialization: ") + e.what());
  } catch (const std::out_of_range& e) {
    throw InputRejected(
        std::string("model deserialization: truncated input (") + e.what() +
        ")");
  } catch (const std::length_error& e) {
    throw InputRejected(
        std::string("model deserialization: oversized input (") + e.what() +
        ")");
  }
}

namespace {

Model deserialize_model_impl(const std::string& text,
                             const InputLimits& limits) {
  enforce_limit(text.size(), limits.max_cnn_bytes, "CNN model bytes");
  std::istringstream is(text);
  std::string line;
  int line_no = 0;

  auto next_line = [&](bool required) {
    while (std::getline(is, line)) {
      ++line_no;
      if (!trim(line).empty()) return true;
    }
    GP_CHECK_MSG(!required, "unexpected end of model file");
    return false;
  };

  GP_CHECK(next_line(true));
  GP_CHECK_MSG(trim(line) == "gpuperf-model v1",
               "bad model header: '" << line << "'");

  GP_CHECK(next_line(true));
  auto parts = split_ws(line);
  GP_CHECK_MSG(parts.size() == 2 && parts[0] == "name",
               "expected 'name <id>' at line " << line_no);
  Model model(parts[1]);

  bool have_output = false;
  while (next_line(false)) {
    parts = split_ws(line);
    GP_CHECK(!parts.empty());

    if (parts[0] == "output") {
      GP_CHECK_MSG(parts.size() == 2, "bad output line " << line_no);
      model.set_output(static_cast<NodeId>(parse_int(parts[1])));
      have_output = true;
      continue;
    }

    GP_CHECK_MSG(parts[0] == "node" && parts.size() >= 3,
                 "expected 'node <id> <kind> ...' at line " << line_no);
    enforce_limit(model.node_count() + 1, limits.max_cnn_nodes,
                  "CNN nodes");
    const std::int64_t id = parse_int(parts[1]);
    GP_CHECK_MSG(id == static_cast<std::int64_t>(model.node_count()),
                 "non-sequential node id at line " << line_no);
    const LayerKind kind = kind_from_token(parts[2], line_no);

    // Attribute map and input list.
    std::map<std::string, std::string> attrs;
    std::vector<NodeId> inputs;
    for (std::size_t i = 3; i < parts.size(); ++i) {
      const auto eq = parts[i].find('=');
      GP_CHECK_MSG(eq != std::string::npos,
                   "bad attribute '" << parts[i] << "' at line " << line_no);
      const std::string key = parts[i].substr(0, eq);
      const std::string value = parts[i].substr(eq + 1);
      if (key == "in") {
        for (const auto& tok : split(value, ','))
          inputs.push_back(static_cast<NodeId>(parse_int(tok)));
      } else {
        attrs[key] = value;
      }
    }

    auto attr = [&](const char* key) -> const std::string& {
      const auto it = attrs.find(key);
      GP_CHECK_MSG(it != attrs.end(), "missing attribute '"
                                          << key << "' at line " << line_no);
      return it->second;
    };
    auto attr_int = [&](const char* key) { return parse_int(attr(key)); };
    auto attr_or = [&](const char* key, const std::string& fallback) {
      const auto it = attrs.find(key);
      return it == attrs.end() ? fallback : it->second;
    };
    auto parse_pair = [&](const std::string& value, int& a, int& b) {
      const auto x = value.find('x');
      GP_CHECK_MSG(x != std::string::npos,
                   "expected AxB value at line " << line_no);
      a = static_cast<int>(parse_int(value.substr(0, x)));
      b = static_cast<int>(parse_int(value.substr(x + 1)));
    };
    auto padding = [&](const std::string& value) {
      GP_CHECK_MSG(value == "same" || value == "valid",
                   "bad padding at line " << line_no);
      return value == "same" ? Padding::kSame : Padding::kValid;
    };

    Layer layer;
    switch (kind) {
      case LayerKind::kInput:
        layer = Layer::input(attr_int("h"), attr_int("w"), attr_int("c"));
        break;
      case LayerKind::kConv2D: {
        int kh, kw, sh, sw;
        parse_pair(attr("kernel"), kh, kw);
        parse_pair(attr("stride"), sh, sw);
        layer = Layer::conv2d_rect(attr_int("filters"), kh, kw, sh, sw,
                                   padding(attr("pad")),
                                   attr_int("bias") != 0);
        layer.act = act_from_token(attr_or("act", "linear"), line_no);
        layer.groups = static_cast<int>(parse_int(attr_or("groups", "1")));
        break;
      }
      case LayerKind::kDepthwiseConv2D: {
        int kh, kw, sh, sw;
        parse_pair(attr("kernel"), kh, kw);
        parse_pair(attr("stride"), sh, sw);
        GP_CHECK_MSG(kh == kw && sh == sw,
                     "depthwise conv must be square at line " << line_no);
        layer = Layer::depthwise_conv2d(
            kh, sh, padding(attr("pad")), attr_int("bias") != 0,
            static_cast<int>(parse_int(attr_or("mult", "1"))));
        break;
      }
      case LayerKind::kDense:
        layer = Layer::dense(attr_int("units"), attr_int("bias") != 0,
                             act_from_token(attr_or("act", "linear"),
                                            line_no));
        break;
      case LayerKind::kMaxPool:
        layer = Layer::max_pool(static_cast<int>(attr_int("pool")),
                                static_cast<int>(attr_int("stride")),
                                padding(attr("pad")));
        break;
      case LayerKind::kAvgPool:
        layer = Layer::avg_pool(static_cast<int>(attr_int("pool")),
                                static_cast<int>(attr_int("stride")),
                                padding(attr("pad")));
        break;
      case LayerKind::kGlobalAvgPool:
        layer = Layer::global_avg_pool();
        break;
      case LayerKind::kActivation:
        layer = Layer::activation(act_from_token(attr("act"), line_no));
        break;
      case LayerKind::kBatchNorm:
        layer = Layer::batch_norm();
        break;
      case LayerKind::kAdd:
        layer = Layer::add();
        break;
      case LayerKind::kMultiply:
        layer = Layer::multiply();
        break;
      case LayerKind::kConcat:
        layer = Layer::concat();
        break;
      case LayerKind::kFlatten:
        layer = Layer::flatten();
        break;
      case LayerKind::kZeroPad:
        layer = Layer::zero_pad(static_cast<int>(attr_int("t")),
                                static_cast<int>(attr_int("b")),
                                static_cast<int>(attr_int("l")),
                                static_cast<int>(attr_int("r")));
        break;
      case LayerKind::kDropout:
        layer = Layer::dropout(parse_double(attr("rate")));
        break;
    }
    model.add(std::move(layer), std::move(inputs));
  }

  GP_CHECK_MSG(have_output, "model file has no output line");
  model.validate();
  return model;
}

}  // namespace

void save_model(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GP_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << serialize_model(model);
  GP_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

Model load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return deserialize_model(os.str());
}

}  // namespace gpuperf::cnn
