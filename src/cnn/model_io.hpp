// Text serialization for Model DAGs, so architectures can be stored,
// versioned and exchanged without C++ (e.g. NAS candidates emitted by
// an external search, then scored by the estimator).
//
// Line-oriented format:
//   gpuperf-model v1
//   name my-net
//   node 0 input h=224 w=224 c=3
//   node 1 conv2d in=0 filters=64 kernel=7x7 stride=2x2 pad=same
//          bias=1 act=relu groups=1
//   node 2 add in=0,1
//   output 2
#pragma once

#include <string>

#include "cnn/model.hpp"
#include "common/limits.hpp"

namespace gpuperf::cnn {

std::string serialize_model(const Model& model);

/// Parse a serialized model; throws InputRejected (a CheckError) with a
/// line number on malformed input and LimitExceeded when the text blows
/// the byte / node budget.
Model deserialize_model(const std::string& text,
                        const InputLimits& limits = InputLimits::defaults());

void save_model(const Model& model, const std::string& path);
Model load_model(const std::string& path);

}  // namespace gpuperf::cnn
