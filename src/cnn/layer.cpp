#include "cnn/layer.hpp"

#include "common/check.hpp"

namespace gpuperf::cnn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "Input";
    case LayerKind::kConv2D:
      return "Conv2D";
    case LayerKind::kDepthwiseConv2D:
      return "DepthwiseConv2D";
    case LayerKind::kDense:
      return "Dense";
    case LayerKind::kMaxPool:
      return "MaxPool";
    case LayerKind::kAvgPool:
      return "AvgPool";
    case LayerKind::kGlobalAvgPool:
      return "GlobalAvgPool";
    case LayerKind::kActivation:
      return "Activation";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kAdd:
      return "Add";
    case LayerKind::kMultiply:
      return "Multiply";
    case LayerKind::kConcat:
      return "Concat";
    case LayerKind::kFlatten:
      return "Flatten";
    case LayerKind::kZeroPad:
      return "ZeroPad";
    case LayerKind::kDropout:
      return "Dropout";
  }
  return "?";
}

const char* activation_name(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kLinear:
      return "linear";
    case ActivationKind::kReLU:
      return "relu";
    case ActivationKind::kReLU6:
      return "relu6";
    case ActivationKind::kSigmoid:
      return "sigmoid";
    case ActivationKind::kSwish:
      return "swish";
    case ActivationKind::kSoftmax:
      return "softmax";
    case ActivationKind::kTanh:
      return "tanh";
  }
  return "?";
}

Layer Layer::input(std::int64_t h, std::int64_t w, std::int64_t c) {
  Layer l;
  l.kind = LayerKind::kInput;
  l.input_shape = TensorShape::hwc(h, w, c);
  return l;
}

Layer Layer::conv2d(std::int64_t filters, int kernel, int stride,
                    Padding padding, bool use_bias, ActivationKind act,
                    int groups) {
  GP_CHECK(filters > 0 && kernel > 0 && stride > 0 && groups > 0);
  GP_CHECK_MSG(filters % groups == 0, "filters must divide by groups");
  Layer l;
  l.kind = LayerKind::kConv2D;
  l.filters = filters;
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.padding = padding;
  l.use_bias = use_bias;
  l.act = act;
  l.groups = groups;
  return l;
}

Layer Layer::conv2d_rect(std::int64_t filters, int kernel_h, int kernel_w,
                         int stride_h, int stride_w, Padding padding,
                         bool use_bias) {
  GP_CHECK(filters > 0 && kernel_h > 0 && kernel_w > 0 && stride_h > 0 &&
           stride_w > 0);
  Layer l;
  l.kind = LayerKind::kConv2D;
  l.filters = filters;
  l.kernel_h = kernel_h;
  l.kernel_w = kernel_w;
  l.stride_h = stride_h;
  l.stride_w = stride_w;
  l.padding = padding;
  l.use_bias = use_bias;
  return l;
}

Layer Layer::depthwise_conv2d(int kernel, int stride, Padding padding,
                              bool use_bias, int depth_multiplier) {
  GP_CHECK(kernel > 0 && stride > 0 && depth_multiplier > 0);
  Layer l;
  l.kind = LayerKind::kDepthwiseConv2D;
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.padding = padding;
  l.use_bias = use_bias;
  l.depth_multiplier = depth_multiplier;
  return l;
}

Layer Layer::dense(std::int64_t units, bool use_bias, ActivationKind act) {
  GP_CHECK(units > 0);
  Layer l;
  l.kind = LayerKind::kDense;
  l.filters = units;
  l.use_bias = use_bias;
  l.act = act;
  return l;
}

namespace {

Layer make_pool(LayerKind kind, int pool, int stride, Padding padding) {
  GP_CHECK(pool > 0 && stride >= 0);
  Layer l;
  l.kind = kind;
  l.kernel_h = l.kernel_w = pool;
  const int s = stride == 0 ? pool : stride;  // Keras default: stride=pool
  l.stride_h = l.stride_w = s;
  l.padding = padding;
  return l;
}

}  // namespace

Layer Layer::max_pool(int pool, int stride, Padding padding) {
  return make_pool(LayerKind::kMaxPool, pool, stride, padding);
}

Layer Layer::avg_pool(int pool, int stride, Padding padding) {
  return make_pool(LayerKind::kAvgPool, pool, stride, padding);
}

Layer Layer::global_avg_pool() {
  Layer l;
  l.kind = LayerKind::kGlobalAvgPool;
  return l;
}

Layer Layer::activation(ActivationKind act) {
  Layer l;
  l.kind = LayerKind::kActivation;
  l.act = act;
  return l;
}

Layer Layer::batch_norm() {
  Layer l;
  l.kind = LayerKind::kBatchNorm;
  return l;
}

Layer Layer::add() {
  Layer l;
  l.kind = LayerKind::kAdd;
  return l;
}

Layer Layer::multiply() {
  Layer l;
  l.kind = LayerKind::kMultiply;
  return l;
}

Layer Layer::concat() {
  Layer l;
  l.kind = LayerKind::kConcat;
  return l;
}

Layer Layer::flatten() {
  Layer l;
  l.kind = LayerKind::kFlatten;
  return l;
}

Layer Layer::zero_pad(int top, int bottom, int left, int right) {
  GP_CHECK(top >= 0 && bottom >= 0 && left >= 0 && right >= 0);
  Layer l;
  l.kind = LayerKind::kZeroPad;
  l.pad_top = top;
  l.pad_bottom = bottom;
  l.pad_left = left;
  l.pad_right = right;
  return l;
}

Layer Layer::dropout(double rate) {
  GP_CHECK(rate >= 0.0 && rate < 1.0);
  Layer l;
  l.kind = LayerKind::kDropout;
  l.dropout_rate = rate;
  return l;
}

bool valid_input_arity(LayerKind kind, std::size_t n_inputs) {
  switch (kind) {
    case LayerKind::kInput:
      return n_inputs == 0;
    case LayerKind::kAdd:
    case LayerKind::kMultiply:
    case LayerKind::kConcat:
      return n_inputs >= 2;
    default:
      return n_inputs == 1;
  }
}

namespace {

const TensorShape& sole_input(const std::vector<TensorShape>& inputs) {
  GP_CHECK(inputs.size() == 1);
  return inputs.front();
}

}  // namespace

TensorShape infer_output_shape(const Layer& layer,
                               const std::vector<TensorShape>& inputs) {
  GP_CHECK_MSG(valid_input_arity(layer.kind, inputs.size()),
               layer_kind_name(layer.kind) << " with " << inputs.size()
                                           << " inputs");
  switch (layer.kind) {
    case LayerKind::kInput:
      return layer.input_shape;

    case LayerKind::kConv2D: {
      const TensorShape& in = sole_input(inputs);
      GP_CHECK_MSG(in.rank == 3, "Conv2D needs a rank-3 input");
      GP_CHECK_MSG(in.c % layer.groups == 0,
                   "input channels " << in.c << " not divisible by groups "
                                     << layer.groups);
      return TensorShape::hwc(
          conv_out_dim(in.h, layer.kernel_h, layer.stride_h, layer.padding),
          conv_out_dim(in.w, layer.kernel_w, layer.stride_w, layer.padding),
          layer.filters);
    }

    case LayerKind::kDepthwiseConv2D: {
      const TensorShape& in = sole_input(inputs);
      GP_CHECK_MSG(in.rank == 3, "DepthwiseConv2D needs a rank-3 input");
      return TensorShape::hwc(
          conv_out_dim(in.h, layer.kernel_h, layer.stride_h, layer.padding),
          conv_out_dim(in.w, layer.kernel_w, layer.stride_w, layer.padding),
          in.c * layer.depth_multiplier);
    }

    case LayerKind::kDense: {
      const TensorShape& in = sole_input(inputs);
      GP_CHECK_MSG(in.rank == 1,
                   "Dense needs a flat input; add Flatten/GlobalAvgPool");
      return TensorShape::flat(layer.filters);
    }

    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const TensorShape& in = sole_input(inputs);
      GP_CHECK_MSG(in.rank == 3, "pooling needs a rank-3 input");
      return TensorShape::hwc(
          conv_out_dim(in.h, layer.kernel_h, layer.stride_h, layer.padding),
          conv_out_dim(in.w, layer.kernel_w, layer.stride_w, layer.padding),
          in.c);
    }

    case LayerKind::kGlobalAvgPool: {
      const TensorShape& in = sole_input(inputs);
      GP_CHECK_MSG(in.rank == 3, "global pooling needs a rank-3 input");
      return TensorShape::flat(in.c);
    }

    case LayerKind::kActivation:
    case LayerKind::kBatchNorm:
    case LayerKind::kDropout:
      return sole_input(inputs);

    case LayerKind::kAdd: {
      const TensorShape& first = inputs.front();
      for (const auto& s : inputs)
        GP_CHECK_MSG(s == first, "Add over mismatched shapes "
                                     << first.to_string() << " vs "
                                     << s.to_string());
      return first;
    }

    case LayerKind::kMultiply: {
      // Elementwise, with channel broadcast: a rank-1 (C) operand scales
      // a rank-3 (H, W, C) map — the squeeze-and-excitation idiom.
      TensorShape out = inputs.front();
      for (const auto& s : inputs) {
        if (s == out) continue;
        const bool broadcast =
            (out.rank == 3 && s.rank == 1 && s.h == out.c) ||
            (out.rank == 1 && s.rank == 3 && out.h == s.c);
        GP_CHECK_MSG(broadcast, "Multiply over incompatible shapes "
                                    << out.to_string() << " vs "
                                    << s.to_string());
        if (out.rank == 1) out = s;  // rank-3 operand wins
      }
      return out;
    }

    case LayerKind::kConcat: {
      const TensorShape& first = inputs.front();
      GP_CHECK(first.rank == 3);
      std::int64_t channels = 0;
      for (const auto& s : inputs) {
        GP_CHECK_MSG(s.rank == 3 && s.h == first.h && s.w == first.w,
                     "concat over mismatched spatial dims");
        channels += s.c;
      }
      return TensorShape::hwc(first.h, first.w, channels);
    }

    case LayerKind::kFlatten: {
      const TensorShape& in = sole_input(inputs);
      return TensorShape::flat(in.elements());
    }

    case LayerKind::kZeroPad: {
      const TensorShape& in = sole_input(inputs);
      GP_CHECK(in.rank == 3);
      return TensorShape::hwc(in.h + layer.pad_top + layer.pad_bottom,
                              in.w + layer.pad_left + layer.pad_right, in.c);
    }
  }
  GP_CHECK_MSG(false, "unhandled layer kind");
}

ParamCount count_params(const Layer& layer,
                        const std::vector<TensorShape>& inputs) {
  ParamCount out;
  switch (layer.kind) {
    case LayerKind::kConv2D: {
      const TensorShape& in = sole_input(inputs);
      out.trainable = static_cast<std::int64_t>(layer.kernel_h) *
                      layer.kernel_w * (in.c / layer.groups) * layer.filters;
      if (layer.use_bias) out.trainable += layer.filters;
      break;
    }
    case LayerKind::kDepthwiseConv2D: {
      const TensorShape& in = sole_input(inputs);
      const std::int64_t ch_out = in.c * layer.depth_multiplier;
      out.trainable = static_cast<std::int64_t>(layer.kernel_h) *
                      layer.kernel_w * ch_out;
      if (layer.use_bias) out.trainable += ch_out;
      break;
    }
    case LayerKind::kDense: {
      const TensorShape& in = sole_input(inputs);
      out.trainable = in.h * layer.filters;
      if (layer.use_bias) out.trainable += layer.filters;
      break;
    }
    case LayerKind::kBatchNorm: {
      const TensorShape& in = sole_input(inputs);
      const std::int64_t c = in.rank == 3 ? in.c : in.h;
      out.trainable = 2 * c;      // gamma, beta
      out.non_trainable = 2 * c;  // moving mean, moving variance
      break;
    }
    default:
      break;  // no parameters
  }
  return out;
}

std::int64_t count_macs(const Layer& layer,
                        const std::vector<TensorShape>& inputs) {
  switch (layer.kind) {
    case LayerKind::kConv2D: {
      const TensorShape& in = sole_input(inputs);
      const TensorShape out = infer_output_shape(layer, inputs);
      return out.h * out.w * out.c * layer.kernel_h * layer.kernel_w *
             (in.c / layer.groups);
    }
    case LayerKind::kDepthwiseConv2D: {
      const TensorShape out = infer_output_shape(layer, inputs);
      return out.h * out.w * out.c * layer.kernel_h * layer.kernel_w;
    }
    case LayerKind::kDense: {
      const TensorShape& in = sole_input(inputs);
      return in.h * layer.filters;
    }
    case LayerKind::kAvgPool:
    case LayerKind::kMaxPool: {
      const TensorShape out = infer_output_shape(layer, inputs);
      // Window reductions: one op per window element.
      return out.elements() * layer.kernel_h * layer.kernel_w;
    }
    case LayerKind::kGlobalAvgPool:
      return sole_input(inputs).elements();
    case LayerKind::kBatchNorm:
    case LayerKind::kActivation:
      return sole_input(inputs).elements();
    case LayerKind::kAdd:
    case LayerKind::kMultiply:
      return infer_output_shape(layer, inputs).elements() *
             static_cast<std::int64_t>(inputs.size() - 1);
    default:
      return 0;
  }
}

bool is_weighted_layer(LayerKind kind) {
  return kind == LayerKind::kConv2D || kind == LayerKind::kDepthwiseConv2D ||
         kind == LayerKind::kDense;
}

}  // namespace gpuperf::cnn
