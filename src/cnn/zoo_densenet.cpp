// DenseNet-121/169/201 (Huang et al.): dense blocks of bn-relu-conv1x1
// -bn-relu-conv3x3 units concatenated onto a growing feature stack,
// with halving transition layers between blocks.  Growth rate 32.
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

constexpr std::int64_t kGrowthRate = 32;

NodeId dense_unit(Model& m, NodeId x) {
  NodeId y = m.add(Layer::batch_norm(), x);
  y = m.add(Layer::activation(ActivationKind::kReLU), y);
  y = m.add(Layer::conv2d(4 * kGrowthRate, 1, 1, Padding::kSame, false), y);
  y = m.add(Layer::batch_norm(), y);
  y = m.add(Layer::activation(ActivationKind::kReLU), y);
  y = m.add(Layer::conv2d(kGrowthRate, 3, 1, Padding::kSame, false), y);
  return m.add(Layer::concat(), {x, y});
}

NodeId transition(Model& m, NodeId x, std::int64_t channels) {
  NodeId y = m.add(Layer::batch_norm(), x);
  y = m.add(Layer::activation(ActivationKind::kReLU), y);
  y = m.add(Layer::conv2d(channels / 2, 1, 1, Padding::kSame, false), y);
  return m.add(Layer::avg_pool(2, 2), y);
}

Model build_densenet(const std::string& name,
                     const std::vector<int>& blocks) {
  Model m(name);
  NodeId x = m.add_input(224, 224, 3);

  x = m.add(Layer::zero_pad(3, 3, 3, 3), x);
  x = m.add(Layer::conv2d(64, 7, 2, Padding::kValid, false), x);
  x = m.add(Layer::batch_norm(), x);
  x = m.add(Layer::activation(ActivationKind::kReLU), x);
  x = m.add(Layer::zero_pad(1, 1, 1, 1), x);
  x = m.add(Layer::max_pool(3, 2), x);

  std::int64_t channels = 64;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (int u = 0; u < blocks[b]; ++u) {
      x = dense_unit(m, x);
      channels += kGrowthRate;
    }
    if (b + 1 < blocks.size()) {
      x = transition(m, x, channels);
      channels /= 2;
    }
  }

  x = m.add(Layer::batch_norm(), x);
  x = m.add(Layer::activation(ActivationKind::kReLU), x);
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace

Model densenet121() {
  return build_densenet("densenet121", {6, 12, 24, 16});
}

Model densenet169() {
  return build_densenet("densenet169", {6, 12, 32, 32});
}

Model densenet201() {
  return build_densenet("densenet201", {6, 12, 48, 32});
}

}  // namespace gpuperf::cnn::zoo
