// EfficientNet B0-B7 (Tan & Le): MBConv inverted bottlenecks with
// squeeze-and-excitation, compound-scaled by the published width /
// depth / resolution coefficients.
#include <cmath>

#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

/// Width scaling with the divisor-8 rounding rule from the reference
/// implementation.
std::int64_t round_filters(std::int64_t filters, double width) {
  const double scaled = static_cast<double>(filters) * width;
  std::int64_t out =
      std::max<std::int64_t>(8, (static_cast<std::int64_t>(scaled) + 4) / 8 * 8);
  if (static_cast<double>(out) < 0.9 * scaled) out += 8;
  return out;
}

std::int64_t round_repeats(std::int64_t repeats, double depth) {
  return static_cast<std::int64_t>(
      std::ceil(depth * static_cast<double>(repeats)));
}

NodeId bn_swish(Model& m, NodeId x) {
  x = m.add(Layer::batch_norm(), x);
  return m.add(Layer::activation(ActivationKind::kSwish), x);
}

/// MBConv: 1x1 expansion, depthwise, squeeze-excite, linear projection,
/// identity skip on stride-1 channel-preserving blocks.
NodeId mbconv(Model& m, NodeId x, std::int64_t in_ch, std::int64_t out_ch,
              int kernel, int stride, int expand) {
  NodeId y = x;
  const std::int64_t mid = in_ch * expand;
  if (expand != 1) {
    y = m.add(Layer::conv2d(mid, 1, 1, Padding::kSame, false), y);
    y = bn_swish(m, y);
  }

  if (stride > 1) {
    const int pad = kernel / 2;
    y = m.add(Layer::zero_pad(pad - (kernel % 2 == 0 ? 1 : 0), pad,
                              pad - (kernel % 2 == 0 ? 1 : 0), pad),
              y);
  }
  y = m.add(Layer::depthwise_conv2d(
                kernel, stride, stride > 1 ? Padding::kValid : Padding::kSame,
                false),
            y);
  y = bn_swish(m, y);

  // Squeeze-and-excitation on the pre-expansion width (ratio 0.25).
  const std::int64_t se_units = std::max<std::int64_t>(1, in_ch / 4);
  NodeId se = m.add(Layer::global_avg_pool(), y);
  se = m.add(Layer::dense(se_units, true, ActivationKind::kSwish), se);
  se = m.add(Layer::dense(mid, true, ActivationKind::kSigmoid), se);
  y = m.add(Layer::multiply(), {y, se});

  y = m.add(Layer::conv2d(out_ch, 1, 1, Padding::kSame, false), y);
  y = m.add(Layer::batch_norm(), y);
  if (stride == 1 && in_ch == out_ch) y = m.add(Layer::add(), {x, y});
  return y;
}

Model build_efficientnet(const std::string& name, double width, double depth,
                         std::int64_t resolution) {
  Model m(name);
  NodeId x = m.add_input(resolution, resolution, 3);

  x = m.add(Layer::zero_pad(0, 1, 0, 1), x);
  x = m.add(Layer::conv2d(round_filters(32, width), 3, 2, Padding::kValid,
                          false),
            x);
  x = bn_swish(m, x);

  struct Stage {
    int kernel;
    std::int64_t repeats;
    std::int64_t in_ch, out_ch;
    int expand;
    int stride;
  };
  const Stage stages[] = {
      {3, 1, 32, 16, 1, 1},  {3, 2, 16, 24, 6, 2},  {5, 2, 24, 40, 6, 2},
      {3, 3, 40, 80, 6, 2},  {5, 3, 80, 112, 6, 1}, {5, 4, 112, 192, 6, 2},
      {3, 1, 192, 320, 6, 1}};

  std::int64_t in_ch = round_filters(32, width);
  for (const Stage& s : stages) {
    const std::int64_t out_ch = round_filters(s.out_ch, width);
    const std::int64_t reps = round_repeats(s.repeats, depth);
    for (std::int64_t r = 0; r < reps; ++r) {
      const int stride = r == 0 ? s.stride : 1;
      x = mbconv(m, x, in_ch, out_ch, s.kernel, stride, s.expand);
      in_ch = out_ch;
    }
  }

  x = m.add(Layer::conv2d(round_filters(1280, width), 1, 1, Padding::kSame,
                          false),
            x);
  x = bn_swish(m, x);
  x = m.add(Layer::global_avg_pool(), x);
  x = m.add(Layer::dropout(0.2), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace

// Published compound-scaling coefficients (width, depth, resolution).
Model efficientnet_b0() {
  return build_efficientnet("efficientnetb0", 1.0, 1.0, 224);
}
Model efficientnet_b1() {
  return build_efficientnet("efficientnetb1", 1.0, 1.1, 240);
}
Model efficientnet_b2() {
  return build_efficientnet("efficientnetb2", 1.1, 1.2, 260);
}
Model efficientnet_b3() {
  return build_efficientnet("efficientnetb3", 1.2, 1.4, 300);
}
Model efficientnet_b4() {
  return build_efficientnet("efficientnetb4", 1.4, 1.8, 380);
}
Model efficientnet_b5() {
  return build_efficientnet("efficientnetb5", 1.6, 2.2, 456);
}
Model efficientnet_b6() {
  return build_efficientnet("efficientnetb6", 1.8, 2.6, 528);
}
Model efficientnet_b7() {
  return build_efficientnet("efficientnetb7", 2.0, 3.1, 600);
}

}  // namespace gpuperf::cnn::zoo
