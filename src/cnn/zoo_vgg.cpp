// VGG-16 / VGG-19 (Simonyan & Zisserman).  Plain 3x3 conv stacks with
// max-pool downsampling and the classic 4096-4096-1000 head; parameter
// counts reproduce the published 138.4M / 143.7M exactly.
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

Model build_vgg(const std::string& name,
                const std::vector<std::vector<std::int64_t>>& blocks) {
  Model m(name);
  NodeId x = m.add_input(224, 224, 3);
  for (const auto& block : blocks) {
    for (std::int64_t filters : block) {
      x = m.add(Layer::conv2d(filters, 3, 1, Padding::kSame, true,
                              ActivationKind::kReLU),
                x);
    }
    x = m.add(Layer::max_pool(2, 2), x);
  }
  x = m.add(Layer::flatten(), x);
  x = m.add(Layer::dense(4096, true, ActivationKind::kReLU), x);
  x = m.add(Layer::dense(4096, true, ActivationKind::kReLU), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace

Model vgg16() {
  return build_vgg("vgg16", {{64, 64},
                             {128, 128},
                             {256, 256, 256},
                             {512, 512, 512},
                             {512, 512, 512}});
}

Model vgg19() {
  return build_vgg("vgg19", {{64, 64},
                             {128, 128},
                             {256, 256, 256, 256},
                             {512, 512, 512, 512},
                             {512, 512, 512, 512}});
}

}  // namespace gpuperf::cnn::zoo
