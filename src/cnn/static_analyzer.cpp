#include "cnn/static_analyzer.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gpuperf::cnn {

std::vector<TensorShape> StaticAnalyzer::infer_shapes(
    const Model& model) const {
  model.validate();
  std::vector<TensorShape> shapes;
  shapes.reserve(model.node_count());
  for (const auto& node : model.nodes()) {
    std::vector<TensorShape> inputs;
    inputs.reserve(node.inputs.size());
    for (NodeId in : node.inputs)
      inputs.push_back(shapes[static_cast<std::size_t>(in)]);
    shapes.push_back(infer_output_shape(node.layer, inputs));
  }
  return shapes;
}

ModelReport StaticAnalyzer::analyze(const Model& model) const {
  const std::vector<TensorShape> shapes = infer_shapes(model);

  ModelReport report;
  report.model_name = model.name();
  report.input_shape = model.input_shape();
  report.node_count = static_cast<std::int64_t>(model.node_count());

  for (std::size_t i = 0; i < model.node_count(); ++i) {
    const ModelNode& node = model.node(static_cast<NodeId>(i));
    std::vector<TensorShape> inputs;
    inputs.reserve(node.inputs.size());
    for (NodeId in : node.inputs)
      inputs.push_back(shapes[static_cast<std::size_t>(in)]);

    const ParamCount params = count_params(node.layer, inputs);
    LayerReport lr;
    lr.name = node.layer.name;
    lr.kind = node.layer.kind;
    lr.output_shape = shapes[i];
    lr.trainable_params = params.trainable;
    lr.non_trainable_params = params.non_trainable;
    lr.neurons = node.layer.kind == LayerKind::kInput ? 0
                                                      : shapes[i].elements();
    lr.macs = count_macs(node.layer, inputs);

    report.trainable_params += lr.trainable_params;
    report.non_trainable_params += lr.non_trainable_params;
    report.neurons += lr.neurons;
    report.macs += lr.macs;
    if (is_weighted_layer(node.layer.kind)) ++report.weighted_layers;
    report.layers.push_back(std::move(lr));
  }
  report.total_params =
      report.trainable_params + report.non_trainable_params;
  report.flops = 2 * report.macs;
  return report;
}

std::string to_string(const ModelReport& report, bool per_layer) {
  std::ostringstream os;
  os << "Model: " << report.model_name << "  input "
     << report.input_shape.to_string() << "\n";
  if (per_layer) {
    TextTable t;
    t.set_header({"layer", "kind", "output", "params", "MACs"});
    for (const auto& l : report.layers) {
      t.add_row({l.name, layer_kind_name(l.kind), l.output_shape.to_string(),
                 with_commas(l.trainable_params + l.non_trainable_params),
                 with_commas(l.macs)});
    }
    os << t.render();
  }
  os << "weighted layers: " << report.weighted_layers
     << "  neurons: " << with_commas(report.neurons)
     << "  trainable params: " << with_commas(report.trainable_params)
     << "  total params: " << with_commas(report.total_params)
     << "  MACs: " << with_commas(report.macs) << "\n";
  return os.str();
}

}  // namespace gpuperf::cnn
