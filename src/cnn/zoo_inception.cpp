// Inception v3 (Szegedy et al.), Inception-ResNet v2, and Xception
// (Chollet) — the factorized-convolution family, following the Keras
// Applications topologies.
#include "cnn/zoo.hpp"

namespace gpuperf::cnn::zoo {

namespace {

/// conv + bn + relu, no bias (the inception "conv2d_bn" idiom).
NodeId conv_bn(Model& m, NodeId x, std::int64_t filters, int kh, int kw,
               int stride = 1, Padding padding = Padding::kSame) {
  x = m.add(Layer::conv2d_rect(filters, kh, kw, stride, stride, padding,
                               false),
            x);
  x = m.add(Layer::batch_norm(), x);
  return m.add(Layer::activation(ActivationKind::kReLU), x);
}

/// Depthwise-separable conv (depthwise + 1x1 pointwise, both unbiased)
/// followed by batch norm — Keras' SeparableConv2D + BN as used in
/// Xception.
NodeId sep_conv_bn(Model& m, NodeId x, std::int64_t filters, int kernel) {
  x = m.add(Layer::depthwise_conv2d(kernel, 1, Padding::kSame, false), x);
  x = m.add(Layer::conv2d(filters, 1, 1, Padding::kSame, false), x);
  return m.add(Layer::batch_norm(), x);
}

NodeId relu(Model& m, NodeId x) {
  return m.add(Layer::activation(ActivationKind::kReLU), x);
}

}  // namespace

Model inception_v3() {
  Model m("inceptionv3");
  NodeId x = m.add_input(299, 299, 3);

  x = conv_bn(m, x, 32, 3, 3, 2, Padding::kValid);
  x = conv_bn(m, x, 32, 3, 3, 1, Padding::kValid);
  x = conv_bn(m, x, 64, 3, 3);
  x = m.add(Layer::max_pool(3, 2), x);
  x = conv_bn(m, x, 80, 1, 1, 1, Padding::kValid);
  x = conv_bn(m, x, 192, 3, 3, 1, Padding::kValid);
  x = m.add(Layer::max_pool(3, 2), x);

  // mixed 0-2 (35x35 inception-A blocks; pool branch 32 then 64).
  for (int i = 0; i < 3; ++i) {
    NodeId b1 = conv_bn(m, x, 64, 1, 1);
    NodeId b5 = conv_bn(m, x, 48, 1, 1);
    b5 = conv_bn(m, b5, 64, 5, 5);
    NodeId b3 = conv_bn(m, x, 64, 1, 1);
    b3 = conv_bn(m, b3, 96, 3, 3);
    b3 = conv_bn(m, b3, 96, 3, 3);
    NodeId bp = m.add(Layer::avg_pool(3, 1, Padding::kSame), x);
    bp = conv_bn(m, bp, i == 0 ? 32 : 64, 1, 1);
    x = m.add(Layer::concat(), {b1, b5, b3, bp});
  }

  // mixed 3 (reduction to 17x17).
  {
    NodeId b3 = conv_bn(m, x, 384, 3, 3, 2, Padding::kValid);
    NodeId bd = conv_bn(m, x, 64, 1, 1);
    bd = conv_bn(m, bd, 96, 3, 3);
    bd = conv_bn(m, bd, 96, 3, 3, 2, Padding::kValid);
    NodeId bp = m.add(Layer::max_pool(3, 2), x);
    x = m.add(Layer::concat(), {b3, bd, bp});
  }

  // mixed 4-7 (17x17 factorized-7x7 blocks; widths 128,160,160,192).
  const std::int64_t widths[4] = {128, 160, 160, 192};
  for (std::int64_t w : widths) {
    NodeId b1 = conv_bn(m, x, 192, 1, 1);
    NodeId b7 = conv_bn(m, x, w, 1, 1);
    b7 = conv_bn(m, b7, w, 1, 7);
    b7 = conv_bn(m, b7, 192, 7, 1);
    NodeId bd = conv_bn(m, x, w, 1, 1);
    bd = conv_bn(m, bd, w, 7, 1);
    bd = conv_bn(m, bd, w, 1, 7);
    bd = conv_bn(m, bd, w, 7, 1);
    bd = conv_bn(m, bd, 192, 1, 7);
    NodeId bp = m.add(Layer::avg_pool(3, 1, Padding::kSame), x);
    bp = conv_bn(m, bp, 192, 1, 1);
    x = m.add(Layer::concat(), {b1, b7, bd, bp});
  }

  // mixed 8 (reduction to 8x8).
  {
    NodeId b3 = conv_bn(m, x, 192, 1, 1);
    b3 = conv_bn(m, b3, 320, 3, 3, 2, Padding::kValid);
    NodeId b7 = conv_bn(m, x, 192, 1, 1);
    b7 = conv_bn(m, b7, 192, 1, 7);
    b7 = conv_bn(m, b7, 192, 7, 1);
    b7 = conv_bn(m, b7, 192, 3, 3, 2, Padding::kValid);
    NodeId bp = m.add(Layer::max_pool(3, 2), x);
    x = m.add(Layer::concat(), {b3, b7, bp});
  }

  // mixed 9-10 (8x8 expanded blocks).
  for (int i = 0; i < 2; ++i) {
    NodeId b1 = conv_bn(m, x, 320, 1, 1);
    NodeId b3 = conv_bn(m, x, 384, 1, 1);
    NodeId b3a = conv_bn(m, b3, 384, 1, 3);
    NodeId b3b = conv_bn(m, b3, 384, 3, 1);
    NodeId b3c = m.add(Layer::concat(), {b3a, b3b});
    NodeId bd = conv_bn(m, x, 448, 1, 1);
    bd = conv_bn(m, bd, 384, 3, 3);
    NodeId bda = conv_bn(m, bd, 384, 1, 3);
    NodeId bdb = conv_bn(m, bd, 384, 3, 1);
    NodeId bdc = m.add(Layer::concat(), {bda, bdb});
    NodeId bp = m.add(Layer::avg_pool(3, 1, Padding::kSame), x);
    bp = conv_bn(m, bp, 192, 1, 1);
    x = m.add(Layer::concat(), {b1, b3c, bdc, bp});
  }

  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

Model inception_resnet_v2() {
  Model m("InceptionResNetV2");
  NodeId x = m.add_input(200, 200, 3);  // Table I lists a 200x200 input

  // Stem.
  x = conv_bn(m, x, 32, 3, 3, 2, Padding::kValid);
  x = conv_bn(m, x, 32, 3, 3, 1, Padding::kValid);
  x = conv_bn(m, x, 64, 3, 3);
  x = m.add(Layer::max_pool(3, 2), x);
  x = conv_bn(m, x, 80, 1, 1, 1, Padding::kValid);
  x = conv_bn(m, x, 192, 3, 3, 1, Padding::kValid);
  x = m.add(Layer::max_pool(3, 2), x);

  // mixed_5b (Inception-A) -> 320 channels.
  {
    NodeId b0 = conv_bn(m, x, 96, 1, 1);
    NodeId b1 = conv_bn(m, x, 48, 1, 1);
    b1 = conv_bn(m, b1, 64, 5, 5);
    NodeId b2 = conv_bn(m, x, 64, 1, 1);
    b2 = conv_bn(m, b2, 96, 3, 3);
    b2 = conv_bn(m, b2, 96, 3, 3);
    NodeId bp = m.add(Layer::avg_pool(3, 1, Padding::kSame), x);
    bp = conv_bn(m, bp, 64, 1, 1);
    x = m.add(Layer::concat(), {b0, b1, b2, bp});
  }

  // 10x block35.  The residual branch ends in a biased linear 1x1 conv
  // ("up"); the fixed residual scale (0.17) has no parameters and is
  // folded into the add.
  for (int i = 0; i < 10; ++i) {
    NodeId b0 = conv_bn(m, x, 32, 1, 1);
    NodeId b1 = conv_bn(m, x, 32, 1, 1);
    b1 = conv_bn(m, b1, 32, 3, 3);
    NodeId b2 = conv_bn(m, x, 32, 1, 1);
    b2 = conv_bn(m, b2, 48, 3, 3);
    b2 = conv_bn(m, b2, 64, 3, 3);
    NodeId mix = m.add(Layer::concat(), {b0, b1, b2});
    NodeId up = m.add(Layer::conv2d(320, 1, 1, Padding::kSame, true), mix);
    x = m.add(Layer::add(), {x, up});
    x = relu(m, x);
  }

  // mixed_6a (Reduction-A) -> 1088 channels at 17x17.
  {
    NodeId b0 = conv_bn(m, x, 384, 3, 3, 2, Padding::kValid);
    NodeId b1 = conv_bn(m, x, 256, 1, 1);
    b1 = conv_bn(m, b1, 256, 3, 3);
    b1 = conv_bn(m, b1, 384, 3, 3, 2, Padding::kValid);
    NodeId bp = m.add(Layer::max_pool(3, 2), x);
    x = m.add(Layer::concat(), {b0, b1, bp});
  }

  // 20x block17.
  for (int i = 0; i < 20; ++i) {
    NodeId b0 = conv_bn(m, x, 192, 1, 1);
    NodeId b1 = conv_bn(m, x, 128, 1, 1);
    b1 = conv_bn(m, b1, 160, 1, 7);
    b1 = conv_bn(m, b1, 192, 7, 1);
    NodeId mix = m.add(Layer::concat(), {b0, b1});
    NodeId up = m.add(Layer::conv2d(1088, 1, 1, Padding::kSame, true), mix);
    x = m.add(Layer::add(), {x, up});
    x = relu(m, x);
  }

  // mixed_7a (Reduction-B) -> 2080 channels at 8x8.
  {
    NodeId b0 = conv_bn(m, x, 256, 1, 1);
    b0 = conv_bn(m, b0, 384, 3, 3, 2, Padding::kValid);
    NodeId b1 = conv_bn(m, x, 256, 1, 1);
    b1 = conv_bn(m, b1, 288, 3, 3, 2, Padding::kValid);
    NodeId b2 = conv_bn(m, x, 256, 1, 1);
    b2 = conv_bn(m, b2, 288, 3, 3);
    b2 = conv_bn(m, b2, 320, 3, 3, 2, Padding::kValid);
    NodeId bp = m.add(Layer::max_pool(3, 2), x);
    x = m.add(Layer::concat(), {b0, b1, b2, bp});
  }

  // 10x block8 (the final one keeps the residual unactivated).
  for (int i = 0; i < 10; ++i) {
    NodeId b0 = conv_bn(m, x, 192, 1, 1);
    NodeId b1 = conv_bn(m, x, 192, 1, 1);
    b1 = conv_bn(m, b1, 224, 1, 3);
    b1 = conv_bn(m, b1, 256, 3, 1);
    NodeId mix = m.add(Layer::concat(), {b0, b1});
    NodeId up = m.add(Layer::conv2d(2080, 1, 1, Padding::kSame, true), mix);
    x = m.add(Layer::add(), {x, up});
    if (i + 1 < 10) x = relu(m, x);
  }

  x = conv_bn(m, x, 1536, 1, 1);
  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

Model xception() {
  Model m("Xception");
  NodeId x = m.add_input(299, 299, 3);

  // Entry flow.
  x = conv_bn(m, x, 32, 3, 3, 2, Padding::kValid);
  x = conv_bn(m, x, 64, 3, 3, 1, Padding::kValid);

  const std::int64_t entry_filters[3] = {128, 256, 728};
  for (int b = 0; b < 3; ++b) {
    const std::int64_t f = entry_filters[b];
    NodeId residual =
        m.add(Layer::conv2d(f, 1, 2, Padding::kSame, false), x);
    residual = m.add(Layer::batch_norm(), residual);

    NodeId y = x;
    if (b > 0) y = relu(m, y);
    y = sep_conv_bn(m, y, f, 3);
    y = relu(m, y);
    y = sep_conv_bn(m, y, f, 3);
    y = m.add(Layer::max_pool(3, 2, Padding::kSame), y);
    x = m.add(Layer::add(), {residual, y});
  }

  // Middle flow: 8 residual triples of 728-wide separable convs.
  for (int b = 0; b < 8; ++b) {
    NodeId y = relu(m, x);
    y = sep_conv_bn(m, y, 728, 3);
    y = relu(m, y);
    y = sep_conv_bn(m, y, 728, 3);
    y = relu(m, y);
    y = sep_conv_bn(m, y, 728, 3);
    x = m.add(Layer::add(), {x, y});
  }

  // Exit flow.
  {
    NodeId residual =
        m.add(Layer::conv2d(1024, 1, 2, Padding::kSame, false), x);
    residual = m.add(Layer::batch_norm(), residual);
    NodeId y = relu(m, x);
    y = sep_conv_bn(m, y, 728, 3);
    y = relu(m, y);
    y = sep_conv_bn(m, y, 1024, 3);
    y = m.add(Layer::max_pool(3, 2, Padding::kSame), y);
    x = m.add(Layer::add(), {residual, y});
  }
  x = sep_conv_bn(m, x, 1536, 3);
  x = relu(m, x);
  x = sep_conv_bn(m, x, 2048, 3);
  x = relu(m, x);

  x = m.add(Layer::global_avg_pool(), x);
  m.add(Layer::dense(1000, true, ActivationKind::kSoftmax), x);
  return m;
}

}  // namespace gpuperf::cnn::zoo
