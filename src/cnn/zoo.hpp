// Model zoo: builders for the 31 CNN architectures of the paper's
// Table I (the table lists 31 rows although the text says 32; we follow
// the table).  Every builder returns a full Model DAG whose static
// analysis lands on the published layer/parameter ballpark.
//
// Note: the paper lists efficientnetb5 with a 156x156 input — a typo
// for EfficientNet-B5's standard 456x456, which we use.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cnn/model.hpp"

namespace gpuperf::cnn::zoo {

// --- classic stacks ---
Model vgg16();
Model vgg19();
Model alexnet();

// --- residual networks (v1 / v2 / Big Transfer) ---
Model resnet101();
Model resnet152();
Model resnet50_v2();
Model resnet101_v2();
Model resnet152_v2();
Model bit_r50x1();
Model bit_r50x3();
Model bit_r101x1();
Model bit_r101x3();
Model bit_r152x4();  // the paper's "m-r154x4"

// --- densely connected ---
Model densenet121();
Model densenet169();
Model densenet201();

// --- depthwise-separable families ---
Model mobilenet();
Model mobilenet_v2();
Model xception();

// --- inception family ---
Model inception_v3();
Model inception_resnet_v2();

// --- architecture-search families ---
Model nasnet_mobile();
Model nasnet_large();
Model efficientnet_b0();
Model efficientnet_b1();
Model efficientnet_b2();
Model efficientnet_b3();
Model efficientnet_b4();
Model efficientnet_b5();
Model efficientnet_b6();
Model efficientnet_b7();

/// Registry entry: Table I name, its builder, and the architecture's
/// canonical published depth (the paper's "Layers" column, e.g. 50 for
/// ResNet-50 — a naming convention that counts only the main weighted
/// stages, unlike StaticAnalyzer's exhaustive weighted-layer count).
struct ZooEntry {
  std::string name;
  std::function<Model()> build;
  int canonical_layers = 0;
};

/// All models in the paper's Table I order.
const std::vector<ZooEntry>& all_models();

// --- extended zoo (paper future work: more standard CNNs) ---
Model resnext50_32x4d();
Model wide_resnet50_2();
Model squeezenet();

/// Additional standard architectures beyond Table I, usable for
/// enlarged training sets (ablation_training_set).
const std::vector<ZooEntry>& extended_models();

/// Build by name (Table I or extended); GP_CHECK-fails on unknown
/// names.
Model build(const std::string& name);

bool has_model(const std::string& name);

/// The six standard CNNs held out of training for the Fig. 4
/// prediction-vs-actual comparison.
const std::vector<std::string>& fig4_holdouts();

/// The seven CNNs of the Table IV DSE timing experiment.
const std::vector<std::string>& table4_models();

}  // namespace gpuperf::cnn::zoo
