// Random Forest regression: bagged CART trees with per-node feature
// subsampling, averaged at prediction time.  Trees train in parallel on
// the shared thread pool with per-tree deterministic RNG streams, so
// the forest is reproducible regardless of thread scheduling.
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"

namespace gpuperf::ml {

struct ForestParams {
  std::size_t n_trees = 100;
  TreeParams tree;
  /// Fraction of rows drawn (with replacement) per tree.
  double bootstrap_fraction = 1.0;
  /// 0 = default max_features of ceil(n_features / 3), the classic
  /// regression-forest heuristic; otherwise an explicit subset size.
  std::size_t max_features = 0;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(ForestParams params = {}, std::uint64_t seed = 42);

  std::string name() const override { return "Random Forest Tree"; }
  void fit(const Dataset& data) override;
  bool is_fitted() const override { return !trees_.empty(); }
  double predict(const std::vector<double>& x) const override;
  std::size_t n_features() const override { return n_features_; }

  /// Mean of the member trees' normalized importances.
  std::vector<double> feature_importances() const override;

  std::size_t tree_count() const { return trees_.size(); }
  const DecisionTree& tree(std::size_t i) const;

  /// Rebuild from serialized state (model_io).
  void restore(std::vector<std::unique_ptr<DecisionTree>> trees,
               std::size_t n_features);

 private:
  ForestParams params_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace gpuperf::ml
