// K-Nearest Neighbors regression with internally standardized features
// and inverse-distance weighting (uniform weighting available).  Brute
// force search: the paper's datasets are tens of rows, where an index
// structure would only add constants.
#pragma once

#include "ml/regressor.hpp"

namespace gpuperf::ml {

class KnnRegressor final : public Regressor {
 public:
  enum class Weighting { kUniform, kInverseDistance };

  explicit KnnRegressor(std::size_t k = 3,
                        Weighting weighting = Weighting::kInverseDistance);

  std::string name() const override { return "K-Nearest Neighbors"; }
  void fit(const Dataset& data) override;
  bool is_fitted() const override { return fitted_; }
  double predict(const std::vector<double>& x) const override;

  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Weighting weighting_;
  bool fitted_ = false;
  Dataset::Standardization st_;
  std::vector<std::vector<double>> points_;  // standardized
  std::vector<double> targets_;
};

}  // namespace gpuperf::ml
