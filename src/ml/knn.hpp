// K-Nearest Neighbors regression with internally standardized features
// and inverse-distance weighting (uniform weighting available).  Brute
// force search: the paper's datasets are tens of rows, where an index
// structure would only add constants.
#pragma once

#include "ml/regressor.hpp"

namespace gpuperf::ml {

class KnnRegressor final : public Regressor {
 public:
  enum class Weighting { kUniform, kInverseDistance };

  explicit KnnRegressor(std::size_t k = 3,
                        Weighting weighting = Weighting::kInverseDistance);

  std::string name() const override { return "K-Nearest Neighbors"; }
  void fit(const Dataset& data) override;
  bool is_fitted() const override { return fitted_; }
  double predict(const std::vector<double>& x) const override;
  std::size_t n_features() const override { return st_.mean.size(); }

  std::size_t k() const { return k_; }
  Weighting weighting() const { return weighting_; }
  const Dataset::Standardization& standardization() const { return st_; }
  const std::vector<std::vector<double>>& points() const { return points_; }
  const std::vector<double>& targets() const { return targets_; }

  /// Rebuild from serialized state (model_io): the embedded training
  /// set (already standardized) plus the standardization that produced
  /// it.
  void restore(Dataset::Standardization st,
               std::vector<std::vector<double>> points,
               std::vector<double> targets, std::size_t k,
               Weighting weighting);

 private:
  std::size_t k_;
  Weighting weighting_;
  bool fitted_ = false;
  Dataset::Standardization st_;
  std::vector<std::vector<double>> points_;  // standardized
  std::vector<double> targets_;
};

}  // namespace gpuperf::ml
