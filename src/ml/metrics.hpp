// Regression evaluation metrics used by the paper: MAPE, R² and
// adjusted R² (Table II), plus MAE/RMSE for diagnostics.
#pragma once

#include <cstddef>
#include <vector>

namespace gpuperf::ml {

/// Mean Absolute Percentage Error, in percent (5.73 means 5.73 %).
/// Rows with |actual| < `eps` are skipped (percentage undefined);
/// GP_CHECK-fails if every row is skipped.
double mape(const std::vector<double>& actual,
            const std::vector<double>& predicted, double eps = 1e-12);

/// Coefficient of determination.  Can be negative for models worse than
/// predicting the mean (the paper's Linear Regression row).
double r2(const std::vector<double>& actual,
          const std::vector<double>& predicted);

/// Adjusted R² for `n_features` predictors:
///   1 - (1 - R²) (n - 1) / (n - p - 1).
/// Requires n > n_features + 1.
double adjusted_r2(const std::vector<double>& actual,
                   const std::vector<double>& predicted,
                   std::size_t n_features);

double mae(const std::vector<double>& actual,
           const std::vector<double>& predicted);

double rmse(const std::vector<double>& actual,
            const std::vector<double>& predicted);

/// The paper's Table II triple for one model evaluation.
struct RegressionScore {
  double mape = 0.0;
  double r2 = 0.0;
  double adjusted_r2 = 0.0;
};

RegressionScore score_regression(const std::vector<double>& actual,
                                 const std::vector<double>& predicted,
                                 std::size_t n_features);

}  // namespace gpuperf::ml
