// Small dense linear algebra: a row-major double matrix and a
// Householder-QR least-squares solver.  This is all the linear algebra
// the regression stack needs (LinearRegression fits via QR), so no
// external BLAS/LAPACK dependency is taken.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace gpuperf::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Pointer to the start of row r (row-major storage).
  double* row(std::size_t r);
  const double* row(std::size_t r) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);

  /// Matrix * vector.
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Max |a - b| over all entries; GP_CHECK-fails on shape mismatch.
  double max_abs_diff(const Matrix& other) const;

  std::string to_string(int digits = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve min ||A x - b||_2 via Householder QR with column pivoting
/// disabled (A is expected to be well-formed; rank deficiency is handled
/// by a tiny ridge fallback).  Requires A.rows() >= A.cols().
std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b);

/// Dot product; GP_CHECK-fails on size mismatch.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

}  // namespace gpuperf::ml
