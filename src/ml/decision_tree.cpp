#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace gpuperf::ml {

DecisionTree::DecisionTree(TreeParams params) : params_(params) {
  GP_CHECK(params_.max_depth >= 1);
  GP_CHECK(params_.min_samples_split >= 2);
  GP_CHECK(params_.min_samples_leaf >= 1);
}

struct DecisionTree::BuildContext {
  const Dataset* data = nullptr;
  Rng* rng = nullptr;
  std::vector<std::size_t> feature_pool;  // scratch for subsampling
};

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0);
  fit_indexed(data, rows, nullptr);
}

void DecisionTree::fit_indexed(const Dataset& data,
                               const std::vector<std::size_t>& rows,
                               Rng* rng) {
  GP_CHECK_MSG(!rows.empty(), "fit on empty row set");
  GP_CHECK(params_.max_features == 0 || rng != nullptr);
  n_features_ = data.n_features();
  nodes_.clear();
  importance_raw_.assign(n_features_, 0.0);

  BuildContext ctx;
  ctx.data = &data;
  ctx.rng = rng;
  ctx.feature_pool.resize(n_features_);
  std::iota(ctx.feature_pool.begin(), ctx.feature_pool.end(), 0);

  std::vector<std::size_t> work = rows;
  build_node(ctx, work, 0);
}

namespace {

/// Sum and sum-of-squares of targets over a row set.
struct Moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;

  void add(double y) {
    sum += y;
    sum_sq += y * y;
    ++n;
  }
  void remove(double y) {
    sum -= y;
    sum_sq -= y * y;
    --n;
  }
  double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
  /// Sum of squared error around the mean (n * variance).
  double sse() const {
    if (n == 0) return 0.0;
    const double s = sum_sq - sum * sum / static_cast<double>(n);
    return s > 0.0 ? s : 0.0;  // clamp negative round-off
  }
};

}  // namespace

std::int32_t DecisionTree::build_node(BuildContext& ctx,
                                      std::vector<std::size_t>& rows,
                                      std::size_t depth) {
  const Dataset& data = *ctx.data;

  Moments all;
  for (std::size_t r : rows) all.add(data.target(r));

  const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[index].value = all.mean();
  nodes_[index].n_samples = static_cast<std::uint32_t>(rows.size());

  const bool can_split = depth < params_.max_depth &&
                         rows.size() >= params_.min_samples_split &&
                         all.sse() > 1e-12;
  if (!can_split) return index;

  // Choose the candidate feature set for this node.
  const std::size_t n_candidates =
      params_.max_features == 0
          ? n_features_
          : std::min(params_.max_features, n_features_);
  if (n_candidates < n_features_) {
    // Partial Fisher-Yates: the first n_candidates entries become a
    // uniform random subset.
    for (std::size_t i = 0; i < n_candidates; ++i) {
      const std::size_t j =
          i + ctx.rng->uniform_index(n_features_ - i);
      std::swap(ctx.feature_pool[i], ctx.feature_pool[j]);
    }
  }

  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::size_t> order = rows;  // re-sorted per feature
  for (std::size_t fi = 0; fi < n_candidates; ++fi) {
    const std::size_t f = ctx.feature_pool[fi];
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[f] < data.row(b)[f];
    });

    Moments left;
    Moments right = all;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const double y = data.target(order[i]);
      left.add(y);
      right.remove(y);

      const double v = data.row(order[i])[f];
      const double v_next = data.row(order[i + 1])[f];
      if (v_next <= v) continue;  // no midpoint between equal values
      if (left.n < params_.min_samples_leaf ||
          right.n < params_.min_samples_leaf)
        continue;

      const double gain = all.sse() - left.sse() - right.sse();
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = f;
        best_threshold = v + (v_next - v) / 2.0;
      }
    }
  }

  if (best_gain <= 0.0) return index;  // no useful split found

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    (data.row(r)[best_feature] <= best_threshold ? left_rows : right_rows)
        .push_back(r);
  }
  GP_DCHECK(!left_rows.empty() && !right_rows.empty());

  importance_raw_[best_feature] += best_gain;
  rows.clear();
  rows.shrink_to_fit();  // free before recursing

  const std::int32_t left = build_node(ctx, left_rows, depth + 1);
  const std::int32_t right = build_node(ctx, right_rows, depth + 1);
  nodes_[index].feature = static_cast<std::int32_t>(best_feature);
  nodes_[index].threshold = best_threshold;
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

double DecisionTree::predict(const std::vector<double>& x) const {
  GP_CHECK_MSG(is_fitted(), "predict before fit");
  GP_CHECK(x.size() == n_features_);
  std::int32_t i = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature == Node::kLeaf) return n.value;
    i = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                              : n.right;
  }
}

std::vector<double> DecisionTree::feature_importances() const {
  GP_CHECK_MSG(is_fitted(), "importances before fit");
  double total = 0.0;
  for (double v : importance_raw_) total += v;
  std::vector<double> out(importance_raw_.size(), 0.0);
  if (total <= 0.0) return out;  // stump: no splits, no importance
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = importance_raw_[i] / total;
  return out;
}

std::size_t DecisionTree::depth() const {
  GP_CHECK(is_fitted());
  // Iterative depth over the flat representation.
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.feature != Node::kLeaf) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return best;
}

std::size_t DecisionTree::leaf_count() const {
  GP_CHECK(is_fitted());
  std::size_t leaves = 0;
  for (const Node& n : nodes_)
    if (n.feature == Node::kLeaf) ++leaves;
  return leaves;
}

void DecisionTree::restore(std::vector<Node> nodes,
                           std::vector<double> importances,
                           std::size_t n_features) {
  GP_CHECK(!nodes.empty());
  GP_CHECK(importances.size() == n_features);
  nodes_ = std::move(nodes);
  importance_raw_ = std::move(importances);
  n_features_ = n_features;
}

}  // namespace gpuperf::ml
