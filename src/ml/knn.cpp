#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace gpuperf::ml {

KnnRegressor::KnnRegressor(std::size_t k, Weighting weighting)
    : k_(k), weighting_(weighting) {
  GP_CHECK(k_ >= 1);
}

void KnnRegressor::fit(const Dataset& data) {
  GP_CHECK_MSG(data.size() >= 1, "K-NN needs at least one row");
  st_ = data.standardization();
  points_.clear();
  targets_.clear();
  points_.reserve(data.size());
  targets_.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    points_.push_back(st_.apply(data.row(i)));
    targets_.push_back(data.target(i));
  }
  fitted_ = true;
}

void KnnRegressor::restore(Dataset::Standardization st,
                           std::vector<std::vector<double>> points,
                           std::vector<double> targets, std::size_t k,
                           Weighting weighting) {
  GP_CHECK(k >= 1);
  GP_CHECK_MSG(!points.empty() && points.size() == targets.size(),
               "K-NN restore needs a consistent training set");
  GP_CHECK(!st.mean.empty() && st.mean.size() == st.stddev.size());
  for (const auto& p : points) GP_CHECK(p.size() == st.mean.size());
  st_ = std::move(st);
  points_ = std::move(points);
  targets_ = std::move(targets);
  k_ = k;
  weighting_ = weighting;
  fitted_ = true;
}

double KnnRegressor::predict(const std::vector<double>& x) const {
  GP_CHECK_MSG(fitted_, "predict before fit");
  GP_CHECK(x.size() == st_.mean.size());
  const std::vector<double> z = st_.apply(x);

  // Distances to every training point, then partial sort for the k best.
  std::vector<std::pair<double, std::size_t>> dist(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < z.size(); ++j) {
      const double d = z[j] - points_[i][j];
      d2 += d * d;
    }
    dist[i] = {d2, i};
  }
  const std::size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());

  if (weighting_ == Weighting::kUniform) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += targets_[dist[i].second];
    return sum / static_cast<double>(k);
  }

  // Inverse-distance weighting; an exact hit short-circuits to its target.
  double wsum = 0.0, ysum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(dist[i].first);
    if (d < 1e-12) return targets_[dist[i].second];
    const double w = 1.0 / d;
    wsum += w;
    ysum += w * targets_[dist[i].second];
  }
  return ysum / wsum;
}

}  // namespace gpuperf::ml
