#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace gpuperf::ml {

GradientBoosting::GradientBoosting(BoostingParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  GP_CHECK(params_.n_rounds >= 1);
  GP_CHECK(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0);
  GP_CHECK(params_.lambda >= 0.0);
  GP_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

void GradientBoosting::fit(const Dataset& data) {
  GP_CHECK_MSG(data.size() >= 2, "boosting needs at least 2 rows");
  n_features_ = data.n_features();
  trees_.clear();
  Rng rng(seed_);

  base_score_ = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) base_score_ += data.target(i);
  base_score_ /= static_cast<double>(data.size());

  std::vector<double> pred(data.size(), base_score_);
  std::vector<std::size_t> all_rows(data.size());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  const std::size_t n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(
             params_.subsample * static_cast<double>(data.size()))));

  for (std::size_t round = 0; round < params_.n_rounds; ++round) {
    // Residuals are the negative gradient of the squared loss.
    Dataset residuals(data.feature_names(), "residual");
    for (std::size_t i = 0; i < data.size(); ++i)
      residuals.add_row(data.row(i), data.target(i) - pred[i]);

    std::vector<std::size_t> rows = all_rows;
    if (n_sub < rows.size()) {
      rng.shuffle(rows);
      rows.resize(n_sub);
    }

    auto tree = std::make_unique<DecisionTree>(params_.tree);
    tree->fit_indexed(residuals, rows, nullptr);

    // XGBoost leaf value for squared loss is sum(g)/(n + lambda); the
    // CART leaf holds mean(g) = sum(g)/n, so scale by n/(n + lambda).
    if (params_.lambda > 0.0) {
      auto nodes = tree->nodes();
      for (auto& node : nodes) {
        if (node.feature == DecisionTree::Node::kLeaf && node.n_samples > 0) {
          const double n = static_cast<double>(node.n_samples);
          node.value *= n / (n + params_.lambda);
        }
      }
      tree->restore(std::move(nodes), tree->feature_importances(),
                    n_features_);
    }

    for (std::size_t i = 0; i < data.size(); ++i)
      pred[i] += params_.learning_rate * tree->predict(data.row(i));
    trees_.push_back(std::move(tree));

    // Early exit once the training residuals are numerically dead;
    // keeps tiny datasets from growing hundreds of identical stumps.
    double max_res = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
      max_res = std::max(max_res, std::fabs(data.target(i) - pred[i]));
    if (max_res < 1e-10) break;
  }
  fitted_ = true;
}

double GradientBoosting::predict(const std::vector<double>& x) const {
  GP_CHECK_MSG(fitted_, "predict before fit");
  GP_CHECK(x.size() == n_features_);
  double y = base_score_;
  for (const auto& t : trees_) y += params_.learning_rate * t->predict(x);
  return y;
}

const DecisionTree& GradientBoosting::tree(std::size_t i) const {
  GP_CHECK(i < trees_.size());
  return *trees_[i];
}

void GradientBoosting::restore(
    std::vector<std::unique_ptr<DecisionTree>> trees, double base_score,
    double learning_rate, std::size_t n_features) {
  GP_CHECK_MSG(!trees.empty(), "boosting restore needs at least one tree");
  GP_CHECK(learning_rate > 0.0 && learning_rate <= 1.0);
  GP_CHECK(n_features >= 1);
  for (const auto& t : trees) GP_CHECK(t != nullptr && t->is_fitted());
  trees_ = std::move(trees);
  base_score_ = base_score;
  params_.learning_rate = learning_rate;
  params_.n_rounds = trees_.size();
  n_features_ = n_features;
  fitted_ = true;
}

std::vector<double> GradientBoosting::feature_importances() const {
  GP_CHECK_MSG(fitted_, "importances before fit");
  std::vector<double> out(n_features_, 0.0);
  for (const auto& t : trees_) {
    const auto imp = t->feature_importances();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += imp[i];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0)
    for (double& v : out) v /= total;
  return out;
}

}  // namespace gpuperf::ml
