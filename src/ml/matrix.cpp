#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    GP_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  GP_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  GP_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double* Matrix::row(std::size_t r) {
  GP_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::row(std::size_t r) const {
  GP_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  GP_CHECK_MSG(cols_ == rhs.rows_, "matmul shape mismatch: "
                                       << rows_ << "x" << cols_ << " * "
                                       << rhs.rows_ << "x" << rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* rhs_row = rhs.row(k);
      double* out_row = out.row(i);
      for (std::size_t j = 0; j < rhs.cols_; ++j) out_row[j] += aik * rhs_row[j];
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  GP_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  GP_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  GP_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  GP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

std::string Matrix::to_string(int digits) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << fixed((*this)(r, c), digits);
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

namespace {

/// In-place Householder QR on `a`, applying the same transforms to `b`,
/// then back-substitution on the upper-triangular top block.  Returns
/// false when a diagonal entry underflows (rank-deficient system).
bool qr_solve(Matrix a, std::vector<double> b, std::vector<double>& x) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12) return false;
    // Give norm the sign of the pivot so the Householder vector's k-th
    // entry is 1 + |x_k|/|x| (no cancellation).
    if (a(k, k) < 0) norm = -norm;
    for (std::size_t i = k; i < m; ++i) a(i, k) /= norm;
    a(k, k) += 1.0;

    // Apply reflector to the remaining columns and to b.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += a(i, k) * a(i, j);
      s = -s / a(k, k);
      for (std::size_t i = k; i < m; ++i) a(i, j) += s * a(i, k);
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += a(i, k) * b[i];
    s = -s / a(k, k);
    for (std::size_t i = k; i < m; ++i) b[i] += s * a(i, k);

    a(k, k) = -norm;  // store R's diagonal
  }

  x.assign(n, 0.0);
  for (std::size_t kk = n; kk-- > 0;) {
    double acc = b[kk];
    for (std::size_t j = kk + 1; j < n; ++j) acc -= a(kk, j) * x[j];
    if (std::fabs(a(kk, kk)) < 1e-12) return false;
    x[kk] = acc / a(kk, kk);
  }
  return true;
}

}  // namespace

std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b) {
  GP_CHECK(a.rows() == b.size());
  GP_CHECK_MSG(a.rows() >= a.cols(),
               "underdetermined system: " << a.rows() << " rows, "
                                          << a.cols() << " cols");
  std::vector<double> x;
  if (qr_solve(a, b, x)) return x;

  // Rank-deficient fallback: ridge via augmented rows
  // [A; sqrt(lambda) I] x = [b; 0], which keeps the QR path.
  const double lambda = 1e-8;
  Matrix aug(a.rows() + a.cols(), a.cols());
  std::vector<double> baug(a.rows() + a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) aug(r, c) = a(r, c);
    baug[r] = b[r];
  }
  for (std::size_t c = 0; c < a.cols(); ++c)
    aug(a.rows() + c, c) = std::sqrt(lambda);
  GP_CHECK_MSG(qr_solve(aug, baug, x), "ridge-regularized solve failed");
  return x;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  GP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

}  // namespace gpuperf::ml
