// CART regression tree — the paper's winning model (Table II) and the
// source of its Table III feature importances.
//
// Splits are exact greedy: for every feature the rows are sorted and
// every midpoint between distinct adjacent values is scored by sum-of-
// squared-error reduction (variance impurity — the regression analogue
// of the paper's "Gini Coefficient" importance).  Importances are the
// per-feature totals of weighted impurity decrease, normalized to 1.
#pragma once

#include <cstdint>
#include <limits>

#include "ml/regressor.hpp"

namespace gpuperf::ml {

struct TreeParams {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features examined per split: 0 = all (plain CART); forests pass
  /// a subset size for decorrelation.
  std::size_t max_features = 0;
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(TreeParams params = {});

  std::string name() const override { return "Decision Tree"; }
  void fit(const Dataset& data) override;
  bool is_fitted() const override { return !nodes_.empty(); }
  double predict(const std::vector<double>& x) const override;
  std::vector<double> feature_importances() const override;
  std::size_t n_features() const override { return n_features_; }

  /// Fit on an index subset of `data` (bootstrap sample), with an RNG
  /// for feature subsampling.  Used by RandomForest; rng may be null
  /// when max_features == 0.
  void fit_indexed(const Dataset& data, const std::vector<std::size_t>& rows,
                   Rng* rng);

  /// Flat node storage; exposed for serialization and invariants tests.
  struct Node {
    // Leaf iff feature == kLeaf.
    static constexpr std::int32_t kLeaf = -1;
    std::int32_t feature = kLeaf;
    double threshold = 0.0;   // go left iff x[feature] <= threshold
    std::int32_t left = -1;   // child indices into nodes()
    std::int32_t right = -1;
    double value = 0.0;       // leaf prediction (mean of its rows)
    std::uint32_t n_samples = 0;
  };
  const std::vector<Node>& nodes() const { return nodes_; }
  std::size_t depth() const;
  std::size_t leaf_count() const;

  const TreeParams& params() const { return params_; }

  /// Rebuild from serialized state (model_io).
  void restore(std::vector<Node> nodes, std::vector<double> importances,
               std::size_t n_features);

 private:
  struct BuildContext;
  std::int32_t build_node(BuildContext& ctx, std::vector<std::size_t>& rows,
                          std::size_t depth);

  TreeParams params_;
  std::vector<Node> nodes_;
  std::vector<double> importance_raw_;  // un-normalized impurity decrease
  std::size_t n_features_ = 0;
};

}  // namespace gpuperf::ml
