#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::ml {

Dataset::Dataset(std::vector<std::string> feature_names,
                 std::string target_name)
    : feature_names_(std::move(feature_names)),
      target_name_(std::move(target_name)) {
  GP_CHECK(!feature_names_.empty());
}

void Dataset::add_row(std::vector<double> features, double target,
                      std::string tag) {
  GP_CHECK_MSG(features.size() == feature_names_.size(),
               "feature width " << features.size() << " != schema width "
                                << feature_names_.size());
  for (double v : features) GP_CHECK_MSG(std::isfinite(v), "non-finite feature");
  GP_CHECK_MSG(std::isfinite(target), "non-finite target");
  rows_.push_back(std::move(features));
  targets_.push_back(target);
  tags_.push_back(std::move(tag));
}

const std::vector<double>& Dataset::row(std::size_t i) const {
  GP_CHECK(i < rows_.size());
  return rows_[i];
}

double Dataset::target(std::size_t i) const {
  GP_CHECK(i < targets_.size());
  return targets_[i];
}

const std::string& Dataset::tag(std::size_t i) const {
  GP_CHECK(i < tags_.size());
  return tags_[i];
}

std::size_t Dataset::feature_index(const std::string& name) const {
  for (std::size_t i = 0; i < feature_names_.size(); ++i)
    if (feature_names_[i] == name) return i;
  GP_CHECK_MSG(false, "no feature named '" << name << "'");
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(feature_names_, target_name_);
  for (std::size_t i : indices) {
    GP_CHECK(i < size());
    out.add_row(rows_[i], targets_[i], tags_[i]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           Rng& rng) const {
  GP_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  GP_CHECK_MSG(size() >= 2, "cannot split a dataset with < 2 rows");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  // Round to nearest but keep both sides non-empty.
  std::size_t n_train = static_cast<std::size_t>(
      std::lround(train_fraction * static_cast<double>(size())));
  n_train = std::clamp<std::size_t>(n_train, 1, size() - 1);
  std::vector<std::size_t> train_idx(order.begin(), order.begin() + n_train);
  std::vector<std::size_t> eval_idx(order.begin() + n_train, order.end());
  return {subset(train_idx), subset(eval_idx)};
}

std::pair<Dataset, Dataset> Dataset::split_by_tag_prefix(
    const std::vector<std::string>& prefixes) const {
  std::vector<std::size_t> keep, held_out;
  for (std::size_t i = 0; i < size(); ++i) {
    const bool match = std::any_of(
        prefixes.begin(), prefixes.end(),
        [&](const std::string& p) { return starts_with(tags_[i], p); });
    (match ? held_out : keep).push_back(i);
  }
  return {subset(keep), subset(held_out)};
}

std::vector<double> Dataset::Standardization::apply(
    const std::vector<double>& x) const {
  GP_CHECK(x.size() == mean.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = (x[i] - mean[i]) / stddev[i];
  return out;
}

Dataset::Standardization Dataset::standardization() const {
  GP_CHECK(!empty());
  const std::size_t d = n_features();
  Standardization st;
  st.mean.assign(d, 0.0);
  st.stddev.assign(d, 0.0);
  for (const auto& r : rows_)
    for (std::size_t j = 0; j < d; ++j) st.mean[j] += r[j];
  for (double& m : st.mean) m /= static_cast<double>(size());
  for (const auto& r : rows_)
    for (std::size_t j = 0; j < d; ++j) {
      const double dlt = r[j] - st.mean[j];
      st.stddev[j] += dlt * dlt;
    }
  for (double& s : st.stddev) {
    s = std::sqrt(s / static_cast<double>(size()));
    if (s < 1e-12) s = 1.0;
  }
  return st;
}

CsvDocument Dataset::to_csv() const {
  CsvDocument doc;
  doc.header.push_back("tag");
  for (const auto& f : feature_names_) doc.header.push_back(f);
  doc.header.push_back(target_name_);
  for (std::size_t i = 0; i < size(); ++i) {
    std::vector<std::string> row;
    row.push_back(tags_[i]);
    for (double v : rows_[i]) row.push_back(fixed(v, 9));
    row.push_back(fixed(targets_[i], 9));
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

Dataset Dataset::from_csv(const CsvDocument& doc) {
  GP_CHECK_MSG(doc.header.size() >= 3,
               "dataset CSV needs tag, >=1 feature, target");
  GP_CHECK(doc.header.front() == "tag");
  std::vector<std::string> features(doc.header.begin() + 1,
                                    doc.header.end() - 1);
  Dataset out(std::move(features), doc.header.back());
  for (const auto& row : doc.rows) {
    std::vector<double> x;
    x.reserve(row.size() - 2);
    for (std::size_t j = 1; j + 1 < row.size(); ++j)
      x.push_back(parse_double(row[j]));
    out.add_row(std::move(x), parse_double(row.back()), row.front());
  }
  return out;
}

}  // namespace gpuperf::ml
