// Common interface for the five regression algorithms the paper
// compares (Table II).  Models fit on a Dataset and predict from raw
// feature vectors; standardization, where an algorithm needs it (K-NN),
// is owned by the model itself so callers never pre-scale.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace gpuperf::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Human-readable algorithm name ("Decision Tree").
  virtual std::string name() const = 0;

  /// Train on the dataset; replaces any previous fit.
  virtual void fit(const Dataset& data) = 0;

  virtual bool is_fitted() const = 0;

  /// Predict a single observation; GP_CHECK-fails if not fitted or the
  /// feature width differs from the training schema.
  virtual double predict(const std::vector<double>& x) const = 0;

  /// Predict every row of a dataset.
  std::vector<double> predict_all(const Dataset& data) const;

  /// Width of the training feature schema; 0 before fit.  Lets generic
  /// consumers (model_io, the registry) validate a deserialized model
  /// against an expected schema without knowing the concrete type.
  virtual std::size_t n_features() const = 0;

  /// Per-feature importances summing to 1.  Empty for algorithms
  /// without a natural importance notion (K-NN); tree models report
  /// normalized impurity decrease (the paper's Table III).
  virtual std::vector<double> feature_importances() const { return {}; }
};

/// Factory covering the paper's five algorithms, keyed by a short id:
/// "linear", "knn", "dt", "rf", "xgb".  Seed feeds the stochastic
/// models (forest bootstraps, boosting row subsampling).
std::unique_ptr<Regressor> make_regressor(const std::string& id,
                                          std::uint64_t seed = 42);

/// The ids accepted by make_regressor, in the paper's Table II order.
const std::vector<std::string>& regressor_ids();

}  // namespace gpuperf::ml
