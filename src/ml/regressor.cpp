#include "ml/regressor.hpp"

#include "common/check.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/knn.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"

namespace gpuperf::ml {

std::vector<double> Regressor::predict_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    out.push_back(predict(data.row(i)));
  return out;
}

std::unique_ptr<Regressor> make_regressor(const std::string& id,
                                          std::uint64_t seed) {
  if (id == "linear") return std::make_unique<LinearRegression>();
  if (id == "knn") return std::make_unique<KnnRegressor>(3);
  if (id == "dt") return std::make_unique<DecisionTree>();
  if (id == "rf") return std::make_unique<RandomForest>(ForestParams{}, seed);
  if (id == "xgb")
    return std::make_unique<GradientBoosting>(BoostingParams{}, seed);
  GP_CHECK_MSG(false, "unknown regressor id '" << id << "'");
}

const std::vector<std::string>& regressor_ids() {
  // Paper's Table II order.
  static const std::vector<std::string> ids = {"linear", "knn", "rf", "dt",
                                               "xgb"};
  return ids;
}

}  // namespace gpuperf::ml
