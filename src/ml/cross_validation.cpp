#include "ml/cross_validation.hpp"

#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace gpuperf::ml {

std::vector<std::size_t> make_folds(std::size_t n_rows, std::size_t k,
                                    Rng& rng) {
  GP_CHECK_MSG(k >= 2, "cross-validation needs k >= 2");
  GP_CHECK_MSG(n_rows >= k, "fewer rows than folds");
  std::vector<std::size_t> order(n_rows);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<std::size_t> fold_of(n_rows);
  for (std::size_t pos = 0; pos < n_rows; ++pos)
    fold_of[order[pos]] = pos % k;
  return fold_of;
}

CvResult cross_validate(
    const Dataset& data, std::size_t k,
    const std::function<std::unique_ptr<Regressor>()>& factory,
    std::uint64_t seed) {
  GP_CHECK(factory != nullptr);
  Rng rng(seed);
  const std::vector<std::size_t> fold_of = make_folds(data.size(), k, rng);

  CvResult result;
  std::vector<double> pooled_actual, pooled_predicted;
  pooled_actual.reserve(data.size());
  pooled_predicted.reserve(data.size());

  for (std::size_t fold = 0; fold < k; ++fold) {
    std::vector<std::size_t> train_idx, eval_idx;
    for (std::size_t i = 0; i < data.size(); ++i)
      (fold_of[i] == fold ? eval_idx : train_idx).push_back(i);
    GP_CHECK(!train_idx.empty() && !eval_idx.empty());

    const Dataset train = data.subset(train_idx);
    const Dataset eval = data.subset(eval_idx);
    auto model = factory();
    model->fit(train);
    const std::vector<double> predicted = model->predict_all(eval);

    result.folds.push_back(
        score_regression(eval.targets(), predicted, data.n_features()));
    for (std::size_t i = 0; i < eval.size(); ++i) {
      pooled_actual.push_back(eval.target(i));
      pooled_predicted.push_back(predicted[i]);
    }
  }

  double sum = 0.0;
  for (const auto& s : result.folds) sum += s.mape;
  result.mape_mean = sum / static_cast<double>(k);
  double var = 0.0;
  for (const auto& s : result.folds) {
    const double d = s.mape - result.mape_mean;
    var += d * d;
  }
  result.mape_stddev = std::sqrt(var / static_cast<double>(k));
  result.pooled = score_regression(pooled_actual, pooled_predicted,
                                   data.n_features());
  return result;
}

CvResult cross_validate(const Dataset& data, std::size_t k,
                        const std::string& regressor_id,
                        std::uint64_t seed) {
  std::uint64_t model_seed = seed ^ 0x5eedULL;
  return cross_validate(
      data, k,
      [&regressor_id, model_seed] {
        return make_regressor(regressor_id, model_seed);
      },
      seed);
}

}  // namespace gpuperf::ml
