#include "ml/metrics.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gpuperf::ml {

namespace {

void check_sizes(const std::vector<double>& actual,
                 const std::vector<double>& predicted) {
  GP_CHECK_MSG(actual.size() == predicted.size(),
               "metric input sizes differ: " << actual.size() << " vs "
                                             << predicted.size());
  GP_CHECK_MSG(!actual.empty(), "metric on empty vectors");
}

}  // namespace

double mape(const std::vector<double>& actual,
            const std::vector<double>& predicted, double eps) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::fabs(actual[i]) < eps) continue;
    sum += std::fabs((actual[i] - predicted[i]) / actual[i]);
    ++counted;
  }
  GP_CHECK_MSG(counted > 0, "MAPE undefined: all actuals ~ 0");
  return 100.0 * sum / static_cast<double>(counted);
}

double r2(const std::vector<double>& actual,
          const std::vector<double>& predicted) {
  check_sizes(actual, predicted);
  double mean = 0.0;
  for (double a : actual) mean += a;
  mean /= static_cast<double>(actual.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double e = actual[i] - predicted[i];
    const double d = actual[i] - mean;
    ss_res += e * e;
    ss_tot += d * d;
  }
  // A constant target makes R² degenerate; report 1 for a perfect fit,
  // 0 otherwise (matches scikit-learn's convention closely enough for
  // diagnostics and keeps the value finite).
  if (ss_tot < 1e-300) return ss_res < 1e-300 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double adjusted_r2(const std::vector<double>& actual,
                   const std::vector<double>& predicted,
                   std::size_t n_features) {
  check_sizes(actual, predicted);
  const double n = static_cast<double>(actual.size());
  const double p = static_cast<double>(n_features);
  GP_CHECK_MSG(n > p + 1.0, "adjusted R² needs n > p + 1 (n="
                                << actual.size() << ", p=" << n_features
                                << ")");
  const double r = r2(actual, predicted);
  return 1.0 - (1.0 - r) * (n - 1.0) / (n - p - 1.0);
}

double mae(const std::vector<double>& actual,
           const std::vector<double>& predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    sum += std::fabs(actual[i] - predicted[i]);
  return sum / static_cast<double>(actual.size());
}

double rmse(const std::vector<double>& actual,
            const std::vector<double>& predicted) {
  check_sizes(actual, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double e = actual[i] - predicted[i];
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(actual.size()));
}

RegressionScore score_regression(const std::vector<double>& actual,
                                 const std::vector<double>& predicted,
                                 std::size_t n_features) {
  RegressionScore s;
  s.mape = mape(actual, predicted);
  s.r2 = r2(actual, predicted);
  // The adjustment formula needs n > p + 1; on smaller evaluation sets
  // (tiny folds, wide feature sets) fall back to the plain R² rather
  // than refusing to score.
  s.adjusted_r2 = actual.size() > n_features + 1
                      ? adjusted_r2(actual, predicted, n_features)
                      : s.r2;
  return s;
}

}  // namespace gpuperf::ml
