// Gradient-boosted regression trees in the XGBoost style: squared-error
// objective (gradient = residual, hessian = 1), shrinkage (eta), L2 leaf
// regularization (lambda, folded into leaf values as n/(n+lambda)), and
// optional row subsampling per boosting round.
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"
#include "ml/regressor.hpp"

namespace gpuperf::ml {

struct BoostingParams {
  std::size_t n_rounds = 200;
  double learning_rate = 0.1;   // eta
  double lambda = 1.0;          // L2 leaf regularization
  double subsample = 1.0;       // row fraction per round (without repl.)
  TreeParams tree{.max_depth = 4,
                  .min_samples_split = 2,
                  .min_samples_leaf = 1,
                  .max_features = 0};
};

class GradientBoosting final : public Regressor {
 public:
  explicit GradientBoosting(BoostingParams params = {},
                            std::uint64_t seed = 42);

  std::string name() const override { return "XG Boost"; }
  void fit(const Dataset& data) override;
  bool is_fitted() const override { return fitted_; }
  double predict(const std::vector<double>& x) const override;
  std::size_t n_features() const override { return n_features_; }

  /// Mean of member trees' normalized importances.
  std::vector<double> feature_importances() const override;

  std::size_t round_count() const { return trees_.size(); }
  double base_score() const { return base_score_; }
  double learning_rate() const { return params_.learning_rate; }
  const DecisionTree& tree(std::size_t i) const;

  /// Rebuild from serialized state (model_io).
  void restore(std::vector<std::unique_ptr<DecisionTree>> trees,
               double base_score, double learning_rate,
               std::size_t n_features);

 private:
  BoostingParams params_;
  std::uint64_t seed_;
  bool fitted_ = false;
  double base_score_ = 0.0;  // initial prediction: mean target
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace gpuperf::ml
