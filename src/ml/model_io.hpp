// Text serialization for trained models, so a predictive model built in
// the training phase can be shipped and reloaded without retraining
// (the paper's deployment story: train once, predict anywhere).
//
// Format: line-oriented, human-diffable.  Every paper regressor
// round-trips: DecisionTree and LinearRegression as flat sections,
// RandomForest and GradientBoosting as an ensemble header followed by
// repeated tree sections, K-NN as its standardization plus the embedded
// (standardized) training set.
// Deserializers are hardened (docs/ROBUSTNESS.md): byte size, tree /
// node / row / feature counts and total allocation are charged against
// an InputLimits budget, and malformed input raises a typed
// InputRejected (a CheckError) instead of an unbounded allocation or a
// raw std::out_of_range / std::length_error.
#pragma once

#include <memory>
#include <string>

#include "common/limits.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/knn.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"

namespace gpuperf::ml {

std::string serialize_tree(const DecisionTree& tree);

/// Rebuild a tree; throws InputRejected (a CheckError) on malformed
/// input and LimitExceeded past the budget.
DecisionTree deserialize_tree(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

std::string serialize_linear(const LinearRegression& model);
LinearRegression deserialize_linear(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

std::string serialize_forest(const RandomForest& forest);
RandomForest deserialize_forest(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

std::string serialize_boosting(const GradientBoosting& model);
GradientBoosting deserialize_boosting(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

std::string serialize_knn(const KnnRegressor& model);
KnnRegressor deserialize_knn(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

/// Serialize any fitted regressor from make_regressor; GP_CHECK-fails
/// on an unknown concrete type or an unfitted model.
std::string serialize_regressor(const Regressor& model);

/// A deserialized regressor plus the make_regressor id its header
/// mapped to ("dt", "linear", "rf", "xgb", "knn").
struct LoadedRegressor {
  std::string id;
  std::unique_ptr<Regressor> model;
};

/// Detect the format from the header line and rebuild the model.
LoadedRegressor deserialize_regressor(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

void save_tree(const DecisionTree& tree, const std::string& path);
DecisionTree load_tree(const std::string& path);

void save_regressor(const Regressor& model, const std::string& path);
LoadedRegressor load_regressor(const std::string& path);

}  // namespace gpuperf::ml
