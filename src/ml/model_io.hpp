// Text serialization for trained models, so a predictive model built in
// the training phase can be shipped and reloaded without retraining
// (the paper's deployment story: train once, predict anywhere).
//
// Format: line-oriented, human-diffable.  Only the models that make
// sense to persist are supported (DecisionTree, LinearRegression);
// ensembles serialize as repeated tree sections.
#pragma once

#include <string>

#include "ml/decision_tree.hpp"
#include "ml/linear_regression.hpp"

namespace gpuperf::ml {

std::string serialize_tree(const DecisionTree& tree);

/// Rebuild a tree; GP_CHECK-fails on malformed input.
DecisionTree deserialize_tree(const std::string& text);

std::string serialize_linear(const LinearRegression& model);
LinearRegression deserialize_linear(const std::string& text);

void save_tree(const DecisionTree& tree, const std::string& path);
DecisionTree load_tree(const std::string& path);

}  // namespace gpuperf::ml
