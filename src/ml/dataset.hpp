// Tabular regression dataset: named feature columns, one numeric
// target, optional per-row tags (the CNN/GPU names a row came from).
//
// Mirrors the paper's formalization d = (y, p, c1..cm, t): each row is
// one observation with its measured IPC target.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"

namespace gpuperf::ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names, std::string target_name);

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::string& target_name() const { return target_name_; }
  std::size_t n_features() const { return feature_names_.size(); }
  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }

  /// Append an observation.  `tag` is a free-form row label (e.g.
  /// "resnet101@gtx1080ti") carried through splits for reporting.
  void add_row(std::vector<double> features, double target,
               std::string tag = "");

  const std::vector<double>& row(std::size_t i) const;
  double target(std::size_t i) const;
  const std::string& tag(std::size_t i) const;
  const std::vector<double>& targets() const { return targets_; }

  /// Index of a feature column by name; GP_CHECK-fails if absent.
  std::size_t feature_index(const std::string& name) const;

  /// Subset by row indices (copies rows).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Deterministic shuffled split: `train_fraction` of rows to the first
  /// dataset, the rest to the second; the two are disjoint (the paper's
  /// 70/30 protocol).
  std::pair<Dataset, Dataset> split(double train_fraction, Rng& rng) const;

  /// Rows whose tag starts with any of `prefixes` go to the second
  /// (held-out) dataset; all others to the first.  Implements the
  /// paper's Fig. 4 protocol of excluding whole CNNs from training.
  std::pair<Dataset, Dataset> split_by_tag_prefix(
      const std::vector<std::string>& prefixes) const;

  /// Column means / standard deviations (population stddev; zero-variance
  /// columns get stddev 1 so standardization is a no-op for them).
  struct Standardization {
    std::vector<double> mean;
    std::vector<double> stddev;
    std::vector<double> apply(const std::vector<double>& x) const;
  };
  Standardization standardization() const;

  /// CSV round-trip (first column "tag", last column the target).
  CsvDocument to_csv() const;
  static Dataset from_csv(const CsvDocument& doc);

 private:
  std::vector<std::string> feature_names_;
  std::string target_name_ = "y";
  std::vector<std::vector<double>> rows_;
  std::vector<double> targets_;
  std::vector<std::string> tags_;
};

}  // namespace gpuperf::ml
