// Ordinary least squares with intercept, fit by Householder QR.  The
// paper includes it as the linear-dependence baseline; on this problem
// it is expected to score worst (negative R²), and our reproduction
// should preserve that ordering.
#pragma once

#include "ml/matrix.hpp"
#include "ml/regressor.hpp"

namespace gpuperf::ml {

class LinearRegression final : public Regressor {
 public:
  std::string name() const override { return "Linear Regression"; }
  void fit(const Dataset& data) override;
  bool is_fitted() const override { return fitted_; }
  double predict(const std::vector<double>& x) const override;
  std::size_t n_features() const override { return coef_.size(); }

  /// Weights (one per feature) and the intercept term.
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

  /// Rebuild from serialized state (model_io).
  void restore(std::vector<double> coef, double intercept);

 private:
  bool fitted_ = false;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  // Features are standardized internally before the solve for numeric
  // conditioning; coef_/intercept_ are reported back in raw units.
  std::size_t n_features_ = 0;
};

}  // namespace gpuperf::ml
