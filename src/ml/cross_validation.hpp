// K-fold cross-validation.  The paper evaluates on a single 70/30
// split of 62 observations; CV over the same data gives the
// reproduction a variance estimate the paper lacks (and the
// ablation_cv bench reports it).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "ml/regressor.hpp"

namespace gpuperf::ml {

/// Deterministic shuffled fold assignment: fold_of[i] in [0, k).
/// Folds differ in size by at most one row.
std::vector<std::size_t> make_folds(std::size_t n_rows, std::size_t k,
                                    Rng& rng);

struct CvResult {
  /// Per-fold held-out scores.
  std::vector<RegressionScore> folds;
  /// Mean and standard deviation of the per-fold MAPE.
  double mape_mean = 0.0;
  double mape_stddev = 0.0;
  /// Pooled out-of-fold predictions scored once (more stable than the
  /// per-fold mean for small folds).
  RegressionScore pooled;
};

/// Run k-fold CV for a regressor built fresh per fold by `factory`.
CvResult cross_validate(
    const Dataset& data, std::size_t k,
    const std::function<std::unique_ptr<Regressor>()>& factory,
    std::uint64_t seed = 42);

/// Convenience: CV a regressor id from make_regressor.
CvResult cross_validate(const Dataset& data, std::size_t k,
                        const std::string& regressor_id,
                        std::uint64_t seed = 42);

}  // namespace gpuperf::ml
