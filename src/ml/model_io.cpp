#include "ml/model_io.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::ml {

namespace {

// 17 significant digits round-trips an IEEE double exactly.
std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string serialize_tree(const DecisionTree& tree) {
  GP_CHECK_MSG(tree.is_fitted(), "serialize before fit");
  std::ostringstream os;
  const auto importances = tree.feature_importances();
  os << "gpuperf-tree v1\n";
  os << "features " << importances.size() << "\n";
  os << "importances";
  for (double v : importances) os << ' ' << full_precision(v);
  os << "\n";
  os << "nodes " << tree.nodes().size() << "\n";
  for (const auto& n : tree.nodes()) {
    os << n.feature << ' ' << full_precision(n.threshold) << ' ' << n.left
       << ' ' << n.right << ' ' << full_precision(n.value) << ' '
       << n.n_samples << "\n";
  }
  return os.str();
}

DecisionTree deserialize_tree(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  GP_CHECK(std::getline(is, line));
  GP_CHECK_MSG(trim(line) == "gpuperf-tree v1",
               "bad tree header: '" << line << "'");

  GP_CHECK(std::getline(is, line));
  auto parts = split_ws(line);
  GP_CHECK(parts.size() == 2 && parts[0] == "features");
  const std::size_t n_features =
      static_cast<std::size_t>(parse_int(parts[1]));
  GP_CHECK(n_features >= 1);

  GP_CHECK(std::getline(is, line));
  parts = split_ws(line);
  GP_CHECK(parts.size() == n_features + 1 && parts[0] == "importances");
  std::vector<double> importances;
  for (std::size_t i = 1; i < parts.size(); ++i)
    importances.push_back(parse_double(parts[i]));

  GP_CHECK(std::getline(is, line));
  parts = split_ws(line);
  GP_CHECK(parts.size() == 2 && parts[0] == "nodes");
  const std::size_t n_nodes = static_cast<std::size_t>(parse_int(parts[1]));
  GP_CHECK(n_nodes >= 1);

  std::vector<DecisionTree::Node> nodes;
  nodes.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    GP_CHECK_MSG(std::getline(is, line), "truncated tree file");
    parts = split_ws(line);
    GP_CHECK_MSG(parts.size() == 6, "bad node line: '" << line << "'");
    DecisionTree::Node n;
    n.feature = static_cast<std::int32_t>(parse_int(parts[0]));
    n.threshold = parse_double(parts[1]);
    n.left = static_cast<std::int32_t>(parse_int(parts[2]));
    n.right = static_cast<std::int32_t>(parse_int(parts[3]));
    n.value = parse_double(parts[4]);
    n.n_samples = static_cast<std::uint32_t>(parse_int(parts[5]));
    GP_CHECK(n.feature >= DecisionTree::Node::kLeaf &&
             n.feature < static_cast<std::int32_t>(n_features));
    if (n.feature != DecisionTree::Node::kLeaf) {
      GP_CHECK(n.left >= 0 && n.left < static_cast<std::int32_t>(n_nodes));
      GP_CHECK(n.right >= 0 && n.right < static_cast<std::int32_t>(n_nodes));
    }
    nodes.push_back(n);
  }

  DecisionTree tree;
  tree.restore(std::move(nodes), std::move(importances), n_features);
  return tree;
}

std::string serialize_linear(const LinearRegression& model) {
  GP_CHECK_MSG(model.is_fitted(), "serialize before fit");
  std::ostringstream os;
  os << "gpuperf-linear v1\n";
  os << "intercept " << full_precision(model.intercept()) << "\n";
  os << "coefficients";
  for (double c : model.coefficients()) os << ' ' << full_precision(c);
  os << "\n";
  return os.str();
}

LinearRegression deserialize_linear(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  GP_CHECK(std::getline(is, line));
  GP_CHECK_MSG(trim(line) == "gpuperf-linear v1",
               "bad linear-model header: '" << line << "'");

  GP_CHECK(std::getline(is, line));
  auto parts = split_ws(line);
  GP_CHECK(parts.size() == 2 && parts[0] == "intercept");
  const double intercept = parse_double(parts[1]);

  GP_CHECK(std::getline(is, line));
  parts = split_ws(line);
  GP_CHECK(parts.size() >= 2 && parts[0] == "coefficients");
  std::vector<double> coef;
  for (std::size_t i = 1; i < parts.size(); ++i)
    coef.push_back(parse_double(parts[i]));

  LinearRegression model;
  model.restore(std::move(coef), intercept);
  return model;
}

void save_tree(const DecisionTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GP_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << serialize_tree(tree);
  GP_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

DecisionTree load_tree(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return deserialize_tree(os.str());
}

}  // namespace gpuperf::ml
