#include "ml/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/limits.hpp"
#include "common/strings.hpp"

namespace gpuperf::ml {

namespace {

/// Run a deserializer body, normalizing every failure mode to the typed
/// contract: malformed input is InputRejected (LimitExceeded passes
/// through unchanged), and no raw std::out_of_range / std::length_error
/// from string or container access may escape on truncated input.
template <typename Fn>
auto rejecting(const char* what, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const InputRejected&) {
    throw;
  } catch (const CheckError& e) {
    throw InputRejected(std::string(what) + ": " + e.what());
  } catch (const std::out_of_range& e) {
    throw InputRejected(std::string(what) + ": truncated input (" +
                        e.what() + ")");
  } catch (const std::length_error& e) {
    throw InputRejected(std::string(what) + ": oversized input (" +
                        e.what() + ")");
  }
}

// 17 significant digits round-trips an IEEE double exactly.
std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_doubles(std::ostream& os, const char* label,
                   const std::vector<double>& values) {
  os << label;
  for (double v : values) os << ' ' << full_precision(v);
  os << "\n";
}

std::vector<double> read_doubles(std::istream& is, const char* label,
                                 std::size_t expected) {
  std::string line;
  GP_CHECK_MSG(std::getline(is, line), "missing '" << label << "' line");
  const auto parts = split_ws(line);
  GP_CHECK_MSG(parts.size() == expected + 1 && parts[0] == label,
               "bad '" << label << "' line: '" << line << "'");
  std::vector<double> out;
  out.reserve(expected);
  for (std::size_t i = 1; i < parts.size(); ++i)
    out.push_back(parse_double(parts[i]));
  return out;
}

// Tree sections are self-delimiting (the node count precedes the node
// lines), so ensembles can embed them back to back in one stream.
void write_tree(std::ostream& os, const DecisionTree& tree) {
  GP_CHECK_MSG(tree.is_fitted(), "serialize before fit");
  const auto importances = tree.feature_importances();
  os << "gpuperf-tree v1\n";
  os << "features " << importances.size() << "\n";
  write_doubles(os, "importances", importances);
  os << "nodes " << tree.nodes().size() << "\n";
  for (const auto& n : tree.nodes()) {
    os << n.feature << ' ' << full_precision(n.threshold) << ' ' << n.left
       << ' ' << n.right << ' ' << full_precision(n.value) << ' '
       << n.n_samples << "\n";
  }
}

DecisionTree read_tree(std::istream& is, ResourceBudget& budget) {
  std::string line;

  GP_CHECK(std::getline(is, line));
  GP_CHECK_MSG(trim(line) == "gpuperf-tree v1",
               "bad tree header: '" << line << "'");

  GP_CHECK(std::getline(is, line));
  auto parts = split_ws(line);
  GP_CHECK(parts.size() == 2 && parts[0] == "features");
  const std::size_t n_features =
      static_cast<std::size_t>(parse_int(parts[1]));
  GP_CHECK(n_features >= 1);
  enforce_limit(n_features, budget.limits().max_features, "tree features");
  budget.charge_alloc(n_features * sizeof(double));

  std::vector<double> importances =
      read_doubles(is, "importances", n_features);

  GP_CHECK(std::getline(is, line));
  parts = split_ws(line);
  GP_CHECK(parts.size() == 2 && parts[0] == "nodes");
  const std::size_t n_nodes = static_cast<std::size_t>(parse_int(parts[1]));
  GP_CHECK(n_nodes >= 1);
  // Charge before reserve: a node count forged into the header must trip
  // the budget, not the allocator.
  enforce_limit(n_nodes, budget.limits().max_tree_nodes, "tree nodes");
  budget.charge_alloc(n_nodes * sizeof(DecisionTree::Node));

  std::vector<DecisionTree::Node> nodes;
  nodes.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    GP_CHECK_MSG(std::getline(is, line), "truncated tree file");
    parts = split_ws(line);
    GP_CHECK_MSG(parts.size() == 6, "bad node line: '" << line << "'");
    DecisionTree::Node n;
    n.feature = static_cast<std::int32_t>(parse_int(parts[0]));
    n.threshold = parse_double(parts[1]);
    n.left = static_cast<std::int32_t>(parse_int(parts[2]));
    n.right = static_cast<std::int32_t>(parse_int(parts[3]));
    n.value = parse_double(parts[4]);
    n.n_samples = static_cast<std::uint32_t>(parse_int(parts[5]));
    GP_CHECK(n.feature >= DecisionTree::Node::kLeaf &&
             n.feature < static_cast<std::int32_t>(n_features));
    if (n.feature != DecisionTree::Node::kLeaf) {
      GP_CHECK(n.left >= 0 && n.left < static_cast<std::int32_t>(n_nodes));
      GP_CHECK(n.right >= 0 && n.right < static_cast<std::int32_t>(n_nodes));
    }
    nodes.push_back(n);
  }

  DecisionTree tree;
  tree.restore(std::move(nodes), std::move(importances), n_features);
  return tree;
}

/// `header` is e.g. "gpuperf-forest v1"; the count line is
/// "<count_label> N features M".
std::pair<std::size_t, std::size_t> read_ensemble_header(
    std::istream& is, const char* header, const char* count_label,
    ResourceBudget& budget) {
  std::string line;
  GP_CHECK(std::getline(is, line));
  GP_CHECK_MSG(trim(line) == header, "bad header: '" << line << "'");
  GP_CHECK(std::getline(is, line));
  const auto parts = split_ws(line);
  GP_CHECK_MSG(parts.size() == 4 && parts[0] == count_label &&
                   parts[2] == "features",
               "bad ensemble size line: '" << line << "'");
  const std::size_t count = static_cast<std::size_t>(parse_int(parts[1]));
  const std::size_t n_features =
      static_cast<std::size_t>(parse_int(parts[3]));
  GP_CHECK(count >= 1 && n_features >= 1);
  enforce_limit(count, budget.limits().max_trees, "ensemble trees");
  enforce_limit(n_features, budget.limits().max_features,
                "ensemble features");
  return {count, n_features};
}

std::vector<std::unique_ptr<DecisionTree>> read_trees(
    std::istream& is, std::size_t count, std::size_t n_features,
    ResourceBudget& budget) {
  budget.charge_alloc(count * sizeof(std::unique_ptr<DecisionTree>));
  std::vector<std::unique_ptr<DecisionTree>> trees;
  trees.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    auto tree = std::make_unique<DecisionTree>(read_tree(is, budget));
    GP_CHECK_MSG(tree->n_features() == n_features,
                 "tree " << t << " feature width mismatch");
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace

std::string serialize_tree(const DecisionTree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

DecisionTree deserialize_tree(const std::string& text,
                              const InputLimits& limits) {
  return rejecting("tree deserialization", [&] {
    enforce_limit(text.size(), limits.max_model_bytes, "model bytes");
    ResourceBudget budget(limits);
    std::istringstream is(text);
    return read_tree(is, budget);
  });
}

std::string serialize_linear(const LinearRegression& model) {
  GP_CHECK_MSG(model.is_fitted(), "serialize before fit");
  std::ostringstream os;
  os << "gpuperf-linear v1\n";
  os << "intercept " << full_precision(model.intercept()) << "\n";
  write_doubles(os, "coefficients", model.coefficients());
  return os.str();
}

LinearRegression deserialize_linear(const std::string& text,
                                    const InputLimits& limits) {
  return rejecting("linear deserialization", [&] {
    enforce_limit(text.size(), limits.max_model_bytes, "model bytes");
    std::istringstream is(text);
    std::string line;

    GP_CHECK(std::getline(is, line));
    GP_CHECK_MSG(trim(line) == "gpuperf-linear v1",
                 "bad linear-model header: '" << line << "'");

    GP_CHECK(std::getline(is, line));
    auto parts = split_ws(line);
    GP_CHECK(parts.size() == 2 && parts[0] == "intercept");
    const double intercept = parse_double(parts[1]);

    GP_CHECK(std::getline(is, line));
    parts = split_ws(line);
    GP_CHECK(parts.size() >= 2 && parts[0] == "coefficients");
    enforce_limit(parts.size() - 1, limits.max_features,
                  "linear coefficients");
    std::vector<double> coef;
    for (std::size_t i = 1; i < parts.size(); ++i)
      coef.push_back(parse_double(parts[i]));

    LinearRegression model;
    model.restore(std::move(coef), intercept);
    return model;
  });
}

std::string serialize_forest(const RandomForest& forest) {
  GP_CHECK_MSG(forest.is_fitted(), "serialize before fit");
  std::ostringstream os;
  os << "gpuperf-forest v1\n";
  os << "trees " << forest.tree_count() << " features "
     << forest.n_features() << "\n";
  for (std::size_t t = 0; t < forest.tree_count(); ++t)
    write_tree(os, forest.tree(t));
  return os.str();
}

RandomForest deserialize_forest(const std::string& text,
                                const InputLimits& limits) {
  return rejecting("forest deserialization", [&] {
    enforce_limit(text.size(), limits.max_model_bytes, "model bytes");
    ResourceBudget budget(limits);
    std::istringstream is(text);
    const auto [count, n_features] =
        read_ensemble_header(is, "gpuperf-forest v1", "trees", budget);
    RandomForest forest;
    forest.restore(read_trees(is, count, n_features, budget), n_features);
    return forest;
  });
}

std::string serialize_boosting(const GradientBoosting& model) {
  GP_CHECK_MSG(model.is_fitted(), "serialize before fit");
  std::ostringstream os;
  os << "gpuperf-boosting v1\n";
  os << "rounds " << model.round_count() << " features "
     << model.n_features() << "\n";
  os << "base_score " << full_precision(model.base_score()) << "\n";
  os << "learning_rate " << full_precision(model.learning_rate()) << "\n";
  for (std::size_t t = 0; t < model.round_count(); ++t)
    write_tree(os, model.tree(t));
  return os.str();
}

GradientBoosting deserialize_boosting(const std::string& text,
                                      const InputLimits& limits) {
  return rejecting("boosting deserialization", [&] {
    enforce_limit(text.size(), limits.max_model_bytes, "model bytes");
    ResourceBudget budget(limits);
    std::istringstream is(text);
    const auto [count, n_features] =
        read_ensemble_header(is, "gpuperf-boosting v1", "rounds", budget);
    const double base_score = read_doubles(is, "base_score", 1).front();
    const double learning_rate =
        read_doubles(is, "learning_rate", 1).front();
    GradientBoosting model;
    model.restore(read_trees(is, count, n_features, budget), base_score,
                  learning_rate, n_features);
    return model;
  });
}

std::string serialize_knn(const KnnRegressor& model) {
  GP_CHECK_MSG(model.is_fitted(), "serialize before fit");
  std::ostringstream os;
  os << "gpuperf-knn v1\n";
  os << "k " << model.k() << " weighting "
     << (model.weighting() == KnnRegressor::Weighting::kUniform
             ? "uniform"
             : "inverse")
     << "\n";
  os << "rows " << model.points().size() << " features "
     << model.n_features() << "\n";
  write_doubles(os, "mean", model.standardization().mean);
  write_doubles(os, "stddev", model.standardization().stddev);
  for (std::size_t i = 0; i < model.points().size(); ++i) {
    os << "row";
    for (double v : model.points()[i]) os << ' ' << full_precision(v);
    os << ' ' << full_precision(model.targets()[i]) << "\n";
  }
  return os.str();
}

KnnRegressor deserialize_knn(const std::string& text,
                             const InputLimits& limits) {
  return rejecting("knn deserialization", [&] {
    enforce_limit(text.size(), limits.max_model_bytes, "model bytes");
    ResourceBudget budget(limits);
    std::istringstream is(text);
    std::string line;

    GP_CHECK(std::getline(is, line));
    GP_CHECK_MSG(trim(line) == "gpuperf-knn v1",
                 "bad knn header: '" << line << "'");

    GP_CHECK(std::getline(is, line));
    auto parts = split_ws(line);
    GP_CHECK_MSG(parts.size() == 4 && parts[0] == "k" &&
                     parts[2] == "weighting",
                 "bad knn k line: '" << line << "'");
    const std::size_t k = static_cast<std::size_t>(parse_int(parts[1]));
    GP_CHECK_MSG(k >= 1, "knn k must be >= 1");
    GP_CHECK_MSG(parts[3] == "uniform" || parts[3] == "inverse",
                 "bad knn weighting '" << parts[3] << "'");
    const auto weighting = parts[3] == "uniform"
                               ? KnnRegressor::Weighting::kUniform
                               : KnnRegressor::Weighting::kInverseDistance;

    GP_CHECK(std::getline(is, line));
    parts = split_ws(line);
    GP_CHECK_MSG(parts.size() == 4 && parts[0] == "rows" &&
                     parts[2] == "features",
                 "bad knn rows line: '" << line << "'");
    const std::size_t n_rows =
        static_cast<std::size_t>(parse_int(parts[1]));
    const std::size_t n_features =
        static_cast<std::size_t>(parse_int(parts[3]));
    GP_CHECK(n_rows >= 1 && n_features >= 1);
    enforce_limit(n_rows, limits.max_rows, "knn rows");
    enforce_limit(n_features, limits.max_features, "knn features");
    budget.charge_alloc(n_rows * (n_features + 1) * sizeof(double));

    Dataset::Standardization st;
    st.mean = read_doubles(is, "mean", n_features);
    st.stddev = read_doubles(is, "stddev", n_features);

    std::vector<std::vector<double>> points;
    std::vector<double> targets;
    points.reserve(n_rows);
    targets.reserve(n_rows);
    for (std::size_t i = 0; i < n_rows; ++i) {
      std::vector<double> row = read_doubles(is, "row", n_features + 1);
      targets.push_back(row.back());
      row.pop_back();
      points.push_back(std::move(row));
    }

    KnnRegressor model;
    model.restore(std::move(st), std::move(points), std::move(targets), k,
                  weighting);
    return model;
  });
}

std::string serialize_regressor(const Regressor& model) {
  if (const auto* tree = dynamic_cast<const DecisionTree*>(&model))
    return serialize_tree(*tree);
  if (const auto* linear = dynamic_cast<const LinearRegression*>(&model))
    return serialize_linear(*linear);
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model))
    return serialize_forest(*forest);
  if (const auto* boost = dynamic_cast<const GradientBoosting*>(&model))
    return serialize_boosting(*boost);
  if (const auto* knn = dynamic_cast<const KnnRegressor*>(&model))
    return serialize_knn(*knn);
  GP_CHECK_MSG(false, "unknown regressor type '" << model.name() << "'");
  return {};
}

LoadedRegressor deserialize_regressor(const std::string& text,
                                      const InputLimits& limits) {
  return rejecting("model deserialization", [&]() -> LoadedRegressor {
    enforce_limit(text.size(), limits.max_model_bytes, "model bytes");
    std::istringstream is(text);
    std::string header;
    GP_CHECK_MSG(std::getline(is, header), "empty model text");
    header = std::string(trim(header));
    if (header == "gpuperf-tree v1")
      return {"dt",
              std::make_unique<DecisionTree>(deserialize_tree(text, limits))};
    if (header == "gpuperf-linear v1")
      return {"linear", std::make_unique<LinearRegression>(
                            deserialize_linear(text, limits))};
    if (header == "gpuperf-forest v1")
      return {"rf", std::make_unique<RandomForest>(
                        deserialize_forest(text, limits))};
    if (header == "gpuperf-boosting v1")
      return {"xgb", std::make_unique<GradientBoosting>(
                         deserialize_boosting(text, limits))};
    if (header == "gpuperf-knn v1")
      return {"knn",
              std::make_unique<KnnRegressor>(deserialize_knn(text, limits))};
    GP_CHECK_MSG(false, "unknown model header: '" << header << "'");
    return {};
  });
}

namespace {

void write_text_file(const std::string& text, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GP_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << text;
  GP_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

void save_tree(const DecisionTree& tree, const std::string& path) {
  write_text_file(serialize_tree(tree), path);
}

DecisionTree load_tree(const std::string& path) {
  return deserialize_tree(read_text_file(path));
}

void save_regressor(const Regressor& model, const std::string& path) {
  write_text_file(serialize_regressor(model), path);
}

LoadedRegressor load_regressor(const std::string& path) {
  return deserialize_regressor(read_text_file(path));
}

}  // namespace gpuperf::ml
