#include "ml/linear_regression.hpp"

#include "common/check.hpp"

namespace gpuperf::ml {

void LinearRegression::fit(const Dataset& data) {
  GP_CHECK_MSG(data.size() >= data.n_features() + 1,
               "OLS needs at least n_features + 1 rows");
  n_features_ = data.n_features();

  // Standardize the design matrix for conditioning; the trainable-param
  // and instruction-count columns span ~6 orders of magnitude.
  const auto st = data.standardization();
  const std::size_t n = data.size();
  const std::size_t d = n_features_;

  Matrix a(n, d + 1);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto z = st.apply(data.row(i));
    for (std::size_t j = 0; j < d; ++j) a(i, j) = z[j];
    a(i, d) = 1.0;  // intercept column
    b[i] = data.target(i);
  }

  const std::vector<double> w = solve_least_squares(a, b);

  // Un-standardize: y = sum_j wj (xj - mu_j)/sd_j + w_d
  //               = sum_j (wj/sd_j) xj + (w_d - sum_j wj mu_j / sd_j).
  coef_.assign(d, 0.0);
  intercept_ = w[d];
  for (std::size_t j = 0; j < d; ++j) {
    coef_[j] = w[j] / st.stddev[j];
    intercept_ -= w[j] * st.mean[j] / st.stddev[j];
  }
  fitted_ = true;
}

void LinearRegression::restore(std::vector<double> coef, double intercept) {
  GP_CHECK(!coef.empty());
  coef_ = std::move(coef);
  intercept_ = intercept;
  n_features_ = coef_.size();
  fitted_ = true;
}

double LinearRegression::predict(const std::vector<double>& x) const {
  GP_CHECK_MSG(fitted_, "predict before fit");
  GP_CHECK(x.size() == n_features_);
  double y = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) y += coef_[j] * x[j];
  return y;
}

}  // namespace gpuperf::ml
