#include "ml/random_forest.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace gpuperf::ml {

RandomForest::RandomForest(ForestParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  GP_CHECK(params_.n_trees >= 1);
  GP_CHECK(params_.bootstrap_fraction > 0.0 &&
           params_.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data) {
  GP_CHECK_MSG(data.size() >= 2, "forest needs at least 2 rows");
  n_features_ = data.n_features();

  std::size_t max_features = params_.max_features;
  if (max_features == 0)
    max_features = static_cast<std::size_t>(
        std::ceil(static_cast<double>(n_features_) / 3.0));
  max_features = std::min(max_features, n_features_);

  const std::size_t n_draw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(
             params_.bootstrap_fraction * static_cast<double>(data.size()))));

  trees_.clear();
  trees_.resize(params_.n_trees);

  ThreadPool::shared().parallel_for(params_.n_trees, [&](std::size_t t) {
    // Stream derived from (seed, tree index) only — independent of the
    // thread that runs the task.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
    std::vector<std::size_t> rows(n_draw);
    for (auto& r : rows) r = rng.uniform_index(data.size());

    TreeParams tp = params_.tree;
    tp.max_features = max_features;
    auto tree = std::make_unique<DecisionTree>(tp);
    tree->fit_indexed(data, rows, &rng);
    trees_[t] = std::move(tree);
  });
}

double RandomForest::predict(const std::vector<double>& x) const {
  GP_CHECK_MSG(is_fitted(), "predict before fit");
  double sum = 0.0;
  for (const auto& t : trees_) sum += t->predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::feature_importances() const {
  GP_CHECK_MSG(is_fitted(), "importances before fit");
  std::vector<double> out(n_features_, 0.0);
  for (const auto& t : trees_) {
    const auto imp = t->feature_importances();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += imp[i];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0)
    for (double& v : out) v /= total;
  return out;
}

const DecisionTree& RandomForest::tree(std::size_t i) const {
  GP_CHECK(i < trees_.size());
  return *trees_[i];
}

void RandomForest::restore(std::vector<std::unique_ptr<DecisionTree>> trees,
                           std::size_t n_features) {
  GP_CHECK_MSG(!trees.empty(), "forest restore needs at least one tree");
  GP_CHECK(n_features >= 1);
  for (const auto& t : trees) GP_CHECK(t != nullptr && t->is_fitted());
  trees_ = std::move(trees);
  n_features_ = n_features;
  params_.n_trees = trees_.size();
}

}  // namespace gpuperf::ml
