#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace gpuperf::net {

int listen_tcp(const std::string& bind_address, int port, int backlog) {
  GP_CHECK_MSG(port >= 0 && port <= 65535, "port " << port
                                                   << " out of range");
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  GP_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));

  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    GP_CHECK_MSG(false, "bad bind address '" << bind_address << "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    GP_CHECK_MSG(false, "bind to " << bind_address << ":" << port
                                   << " failed: " << std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    GP_CHECK_MSG(false, "listen() failed: " << std::strerror(err));
  }
  return fd;
}

int bound_port(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  GP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
           0);
  return ntohs(bound.sin_port);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int open_spare_fd() {
  return ::open("/dev/null", O_RDONLY | O_CLOEXEC);
}

}  // namespace gpuperf::net
