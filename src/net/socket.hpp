// Thin POSIX socket helpers shared by the event loop and the load
// generator: listener setup (SO_REUSEADDR, nonblocking, CLOEXEC,
// configurable backlog), fd mode switches, and the reserved spare fd
// used to survive EMFILE on accept (close the spare, accept the
// pending connection, close it politely, reopen the spare — instead of
// spinning on an accept() that can never succeed).
#pragma once

#include <cstddef>
#include <string>

namespace gpuperf::net {

/// Create, bind and listen a nonblocking CLOEXEC TCP socket.
/// GP_CHECK-fails with a descriptive message on a taken port or a bad
/// address.  `port` 0 picks an ephemeral port; read it back with
/// bound_port().
int listen_tcp(const std::string& bind_address, int port, int backlog);

/// The local port of a bound socket.
int bound_port(int fd);

void set_nonblocking(int fd);

/// An fd on /dev/null, reserved so the process always has one fd to
/// spare when the table fills up.  Returns -1 when even /dev/null
/// cannot be opened.
int open_spare_fd();

}  // namespace gpuperf::net
