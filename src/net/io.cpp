#include "net/io.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "common/fault.hpp"

namespace gpuperf::net::io {

#ifdef GPUPERF_FAULT_INJECTION

namespace {

/// Interprets an armed Spec as a forced errno result.  Returns true
/// when the syscall outcome was overridden; `forced_errno` carries the
/// errno to report, and `short_io` asks the caller to transfer at most
/// one byte instead of failing.
///
/// kDelay semantics differ by direction.  The sleep always lands on the
/// calling thread (tripping the loop watchdog when that thread is the
/// event loop); afterwards, `delay_forces_again` decides whether the
/// syscall then reports spurious EAGAIN or proceeds for real.  Reads
/// must proceed: with edge-triggered epoll a swallowed read loses the
/// readiness edge forever and would turn a "slow read" fault into a
/// permanent hang.  Writes and accepts may report EAGAIN safely —
/// EPOLLOUT re-fires once the kernel buffer has room, and the listener
/// is level-triggered.
bool consume_site(const char* site, int err_hard, int err_timeout,
                  bool delay_forces_again, int* forced_errno,
                  bool* short_io) {
  fault::Spec spec;
  if (!fault::consume_nonthrowing(site, spec)) return false;
  *short_io = false;
  switch (spec.action) {
    case fault::Action::kThrow:
      *forced_errno = err_hard;
      return true;
    case fault::Action::kTimeout:
      *forced_errno = err_timeout;
      return true;
    case fault::Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec.delay_ms));
      if (!delay_forces_again) return false;  // slow but real
      *forced_errno = EAGAIN;
      return true;
    case fault::Action::kCorrupt:
      *short_io = true;
      return true;
  }
  return false;
}

}  // namespace

ssize_t read(int fd, void* buf, std::size_t len) {
  int forced = 0;
  bool short_io = false;
  if (consume_site("net.read", ECONNRESET, EINTR,
                   /*delay_forces_again=*/false, &forced, &short_io)) {
    if (!short_io) {
      errno = forced;
      return -1;
    }
    len = len > 0 ? 1 : 0;  // genuine partial read, no corruption
  }
  return ::recv(fd, buf, len, 0);
}

ssize_t write(int fd, const void* buf, std::size_t len) {
  int forced = 0;
  bool short_io = false;
  if (consume_site("net.write", EPIPE, EINTR,
                   /*delay_forces_again=*/true, &forced, &short_io)) {
    if (!short_io) {
      errno = forced;
      return -1;
    }
    len = len > 0 ? 1 : 0;  // genuine partial write, no corruption
  }
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags) {
  int forced = 0;
  bool short_io = false;
  if (consume_site("net.accept", EMFILE, EINTR,
                   /*delay_forces_again=*/true, &forced, &short_io)) {
    errno = short_io ? ECONNABORTED : forced;
    return -1;
  }
  return ::accept4(fd, addr, addrlen, flags);
}

int connect(int fd, const sockaddr* addr, socklen_t addrlen) {
  fault::Spec spec;
  if (fault::consume_nonthrowing("net.connect", spec)) {
    switch (spec.action) {
      case fault::Action::kThrow:
        errno = ECONNREFUSED;
        return -1;
      case fault::Action::kTimeout:
        errno = ETIMEDOUT;
        return -1;
      case fault::Action::kDelay:
        // Slow connect: sleep, then proceed normally — exercises the
        // client's connect-timeout poll path.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec.delay_ms));
        break;
      case fault::Action::kCorrupt:
        errno = ECONNRESET;
        return -1;
    }
  }
  return ::connect(fd, addr, addrlen);
}

#else  // !GPUPERF_FAULT_INJECTION

ssize_t read(int fd, void* buf, std::size_t len) {
  return ::recv(fd, buf, len, 0);
}

ssize_t write(int fd, const void* buf, std::size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags) {
  return ::accept4(fd, addr, addrlen, flags);
}

int connect(int fd, const sockaddr* addr, socklen_t addrlen) {
  return ::connect(fd, addr, addrlen);
}

#endif  // GPUPERF_FAULT_INJECTION

}  // namespace gpuperf::net::io
