#include "net/event_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/io.hpp"
#include "net/socket.hpp"

namespace gpuperf::net {

namespace {

constexpr std::size_t kReadChunk = 16384;
constexpr std::uint32_t kConnEvents = EPOLLIN | EPOLLET | EPOLLRDHUP;
// Bounded accepts per wakeup; the listener is level-triggered so the
// remainder re-fires immediately, and no connection starves the loop.
constexpr int kAcceptBatch = 128;
// An iteration spending longer than this processing events means
// something blocked the loop thread (a handler, a stalled syscall);
// counted in loop_stalls and visible through heartbeat_age_ms().
constexpr std::int64_t kStallThresholdMs = 1000;

std::int64_t clamp_tick(int idle_timeout_ms, int read_progress_ms) {
  std::int64_t tick = 1000;
  if (idle_timeout_ms > 0)
    tick = std::min<std::int64_t>(
        tick, std::clamp<std::int64_t>(idle_timeout_ms / 4, 10, 1000));
  if (read_progress_ms > 0)
    tick = std::min<std::int64_t>(
        tick, std::clamp<std::int64_t>(read_progress_ms / 4, 10, 1000));
  return tick;
}

}  // namespace

EventLoop::EventLoop(int listen_fd, Handler& handler, Options options)
    : handler_(handler), options_(options), listen_fd_(listen_fd),
      tick_ms_(clamp_tick(options.idle_timeout_ms,
                          options.read_progress_timeout_ms)),
      wheel_(tick_ms_, 512) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  GP_CHECK_MSG(epoll_fd_ >= 0,
               "epoll_create1 failed: " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  GP_CHECK_MSG(wake_fd_ >= 0,
               "eventfd failed: " << std::strerror(errno));
  spare_fd_ = open_spare_fd();
  if (spare_fd_ < 0) {
    // Armed-but-dead EMFILE recovery would otherwise fail silently the
    // first time the fd table fills up.
    stats_.spare_fd_unavailable.store(1, std::memory_order_relaxed);
    GP_LOG(kWarn) << "could not reserve a spare fd (" <<
        std::strerror(errno) << "); EMFILE accept recovery is disabled";
  }
}

EventLoop::~EventLoop() {
  // run()'s teardown delivered on_close for everything it saw; anything
  // left means run() never executed — just release the fds.
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (spare_fd_ >= 0) ::close(spare_fd_);
}

std::int64_t EventLoop::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

EventLoop::Conn* EventLoop::find(ConnId id) {
  const auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

void EventLoop::run() {
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered listener: see kAcceptBatch
  ev.data.u64 = 0;
  GP_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.u64 = 1;
  GP_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);

  std::vector<epoll_event> events(256);
  heartbeat_ms_.store(now_ms(), std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_acquire)) {
    // Always a finite timeout: the watchdog heartbeat must advance even
    // on a traffic-free loop, and the periodic sweeps need a tick.
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()),
                     static_cast<int>(tick_ms_));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const std::int64_t iteration_start = now_ms();
    stats_.epoll_wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const ConnId id = events[i].data.u64;
      if (id == 0) {
        accept_ready();
        continue;
      }
      if (id == 1) {
        std::uint64_t drainer = 0;
        while (::read(wake_fd_, &drainer, sizeof(drainer)) > 0) {
        }
        continue;
      }
      Conn* conn = find(id);
      if (conn == nullptr) continue;  // closed earlier in this batch
      const std::uint32_t e = events[i].events;
      if ((e & EPOLLERR) != 0) {
        close_conn(id);
        continue;
      }
      if ((e & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
        conn_readable(*conn);
        conn = find(id);
        if (conn == nullptr) continue;
      }
      if ((e & EPOLLOUT) != 0) {
        if (!flush_output(*conn)) continue;
        conn = find(id);
        if (conn != nullptr) maybe_close(*conn);
      }
    }
    process_pending_sends();
    if (drain_requested_.load(std::memory_order_acquire) && !drained_)
      do_drain();
    if (options_.idle_timeout_ms > 0) expire_idle();
    if (options_.read_progress_timeout_ms > 0) expire_stalled_reads();
    const std::int64_t iteration_end = now_ms();
    if (iteration_end - iteration_start > kStallThresholdMs)
      stats_.loop_stalls.fetch_add(1, std::memory_order_relaxed);
    heartbeat_ms_.store(iteration_end, std::memory_order_relaxed);
  }

  // Teardown: every surviving connection closes with on_close
  // delivered, so the handler's bookkeeping ends balanced.
  std::vector<ConnId> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const ConnId id : ids) close_conn(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void EventLoop::accept_ready() {
  for (int i = 0; i < kAcceptBatch; ++i) {
    const int fd =
        io::accept4(listen_fd_, nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO)
        continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: sacrifice the spare to accept the pending
        // connection and close it immediately — the client sees a
        // clean close instead of a half-open socket, and the loop
        // doesn't spin on a level-triggered accept that can never
        // succeed.
        stats_.accept_emfile.fetch_add(1, std::memory_order_relaxed);
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
        }
        const int victim = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (victim >= 0) ::close(victim);
        if (spare_fd_ < 0) spare_fd_ = open_spare_fd();
        if (spare_fd_ < 0)
          stats_.spare_fd_unavailable.store(1, std::memory_order_relaxed);
        continue;
      }
      return;  // EAGAIN or a transient error: next wakeup retries
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const ConnId id = next_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    conn.last_activity_ms = now_ms();
    epoll_event ev{};
    ev.events = kConnEvents;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.active.fetch_add(1, std::memory_order_relaxed);
    if (options_.idle_timeout_ms > 0)
      wheel_.schedule(id, conn.last_activity_ms + options_.idle_timeout_ms);
    // Edge-triggered from here on: bytes may already be waiting.
    conn_readable(conn);
  }
}

void EventLoop::conn_readable(Conn& conn) {
  const ConnId id = conn.id;
  while (!conn.read_eof) {
    if (conn.in.size() >= options_.max_input_buffer) {
      conn.read_paused = true;  // resumed when the dispatch completes
      break;
    }
    char* dst = conn.in.reserve(kReadChunk);
    const ssize_t n = io::read(conn.fd, dst, kReadChunk);
    if (n > 0) {
      conn.in.commit(static_cast<std::size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      conn.last_activity_ms = now_ms();
      // Start the slow-loris clock when a request begins arriving; it
      // keeps running across drip-fed reads (unlike last_activity_ms).
      if (conn.read_start_ms == 0) conn.read_start_ms = now_ms();
      continue;
    }
    conn.in.commit(0);
    if (n == 0) {
      conn.read_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(id);
    return;
  }
  run_handler(conn);
}

void EventLoop::run_handler(Conn& conn) {
  const ConnId id = conn.id;
  const std::size_t before = conn.in.size();
  const int dispatched_before = conn.in_flight;
  if (!handler_.on_data(id, conn.in)) conn.close_when_flushed = true;
  // Re-base the slow-loris clock only when parsing made real progress
  // (bytes consumed or work dispatched); a drip-fed partial request
  // leaves the clock running from its first byte.
  if (conn.in.empty())
    conn.read_start_ms = 0;
  else if (conn.in.size() < before || conn.in_flight > dispatched_before)
    conn.read_start_ms = now_ms();
  if (!flush_output(conn)) return;
  Conn* alive = find(id);
  if (alive != nullptr) maybe_close(*alive);
}

bool EventLoop::flush_output(Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = io::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
      conn.out.consume(static_cast<std::size_t>(n));
      conn.last_activity_ms = now_ms();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(conn.id);
    return false;
  }
  if (options_.max_output_buffer > 0 &&
      conn.out.size() > options_.max_output_buffer) {
    // The peer stopped reading while responses piled up: shed the
    // connection rather than buffer without bound.
    stats_.backpressure_closed.fetch_add(1, std::memory_order_relaxed);
    close_conn(conn.id);
    return false;
  }
  update_epollout(conn);
  return true;
}

void EventLoop::update_epollout(Conn& conn) {
  const bool want = !conn.out.empty();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = kConnEvents | (want ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::process_pending_sends() {
  std::deque<PendingSend> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(pending_);
  }
  for (PendingSend& p : batch) {
    Conn* conn = find(p.id);
    if (conn == nullptr) continue;  // connection died before its answer
    if (!p.bytes.empty()) conn->out.append(p.bytes);
    if (p.close_after) conn->close_when_flushed = true;
    bool resumed = false;
    if (p.completes_dispatch) {
      --conn->in_flight;
      conn->last_activity_ms = now_ms();
      // Whatever partial request follows the answered batch gets a
      // fresh slow-loris window.
      conn->read_start_ms = conn->in.empty() ? 0 : now_ms();
      resumed = conn->in_flight == 0;
    }
    if (!flush_output(*conn)) continue;
    conn = find(p.id);
    if (conn == nullptr) continue;
    if (resumed && !conn->close_when_flushed) {
      // The batch is answered: parse the pipelined requests already
      // buffered, then pull the edge-triggered backlog if reading had
      // paused at the buffer bound.
      const bool was_paused = conn->read_paused;
      conn->read_paused = false;
      if (was_paused) {
        conn_readable(*conn);  // reads + runs the handler + may close
        continue;
      }
      run_handler(*conn);
      continue;
    }
    maybe_close(*conn);
  }
}

void EventLoop::do_drain() {
  drained_ = true;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // SHUT_RD only: buffered and in-flight requests still write their
  // responses; the next read observes EOF and the connection closes
  // once it goes quiet.
  std::vector<ConnId> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const ConnId id : ids) {
    Conn* conn = find(id);
    if (conn == nullptr) continue;
    ::shutdown(conn->fd, SHUT_RD);
    conn_readable(*conn);
  }
}

void EventLoop::expire_idle() {
  const std::int64_t now = now_ms();
  for (const ConnId id : wheel_.expire(now)) {
    Conn* conn = find(id);
    if (conn == nullptr) continue;
    const std::int64_t idle = now - conn->last_activity_ms;
    if (idle >= options_.idle_timeout_ms && conn->in_flight == 0 &&
        conn->out.empty()) {
      stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
      close_conn(id);
    } else {
      // Active (or mid-request): re-arm for the remaining idle budget.
      wheel_.schedule(
          id, now + std::max<std::int64_t>(
                        options_.idle_timeout_ms - idle, tick_ms_));
    }
  }
}

void EventLoop::expire_stalled_reads() {
  const std::int64_t now = now_ms();
  std::vector<ConnId> stalled;
  for (const auto& [id, conn] : conns_) {
    if (conn.read_start_ms == 0 || conn.in_flight > 0 ||
        conn.read_paused)
      continue;
    if (now - conn.read_start_ms >= options_.read_progress_timeout_ms)
      stalled.push_back(id);
  }
  for (const ConnId id : stalled) {
    stats_.slow_loris_closed.fetch_add(1, std::memory_order_relaxed);
    close_conn(id);
  }
}

void EventLoop::maybe_close(Conn& conn) {
  if (conn.in_flight > 0 || !conn.out.empty()) return;
  if (conn.close_when_flushed || conn.read_eof) close_conn(conn.id);
}

void EventLoop::close_conn(ConnId id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  wheel_.cancel(id);
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
  handler_.on_close(id);
  // Lock then notify so a waiter can't check `active` and block between
  // the decrement and the wakeup.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();  // wait_connections_closed watches `active`
}

void EventLoop::send(ConnId id, std::string bytes, bool completes_dispatch,
                     bool close_after) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(
        {id, std::move(bytes), completes_dispatch, close_after});
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain() {
  drain_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

std::int64_t EventLoop::heartbeat_age_ms() const {
  const std::int64_t beat = heartbeat_ms_.load(std::memory_order_relaxed);
  if (beat == 0) return -1;
  return std::max<std::int64_t>(0, now_ms() - beat);
}

bool EventLoop::wait_connections_closed(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [this] {
    return stats_.active.load(std::memory_order_relaxed) == 0;
  };
  if (timeout_ms < 0) {
    cv_.wait(lock, done);
    return true;
  }
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), done);
}

void EventLoop::mark_dispatch(ConnId id) {
  Conn* conn = find(id);
  if (conn != nullptr) ++conn->in_flight;
}

int EventLoop::in_flight(ConnId id) const {
  const auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.in_flight;
}

void EventLoop::enqueue_output(ConnId id, std::string_view bytes) {
  Conn* conn = find(id);
  if (conn != nullptr) conn->out.append(bytes);
}

}  // namespace gpuperf::net
