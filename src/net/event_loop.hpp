// Epoll-based event loop: the I/O half of the async serving core.  One
// thread multiplexes every connection — nonblocking accept4, edge-
// triggered reads into per-connection growable buffers, buffered
// writes flushed as the socket drains — while compute happens
// elsewhere: the handler dispatches parsed requests onto a worker
// pool and posts responses back through the thread-safe send(), which
// wakes the loop via an eventfd.
//
// Protocol-agnostic by design: the loop moves bytes and tracks
// connection lifecycle; framing (line vs length-prefixed binary) and
// request semantics live in the Handler (serve/server.cpp).
//
// Flow control: a connection whose input buffer reaches
// max_input_buffer stops being read (edge-triggered readiness is
// remembered, not lost) until its in-flight dispatch completes —
// pipelining floods hold a bounded number of bytes per connection.
// Idle connections are reaped by a hashed timer wheel; reads, writes
// and dispatch completions refresh the activity clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/buffer.hpp"
#include "net/timer_wheel.hpp"

namespace gpuperf::net {

using ConnId = std::uint64_t;

/// Loop-lifetime counters, all monotonic except `active`.  Relaxed
/// atomics: readers (the stats verb) tolerate slightly stale values.
struct LoopStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> active{0};
  std::atomic<std::uint64_t> epoll_wakeups{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> idle_reaped{0};
  std::atomic<std::uint64_t> accept_emfile{0};
  std::atomic<std::uint64_t> slow_loris_closed{0};
  std::atomic<std::uint64_t> backpressure_closed{0};
  std::atomic<std::uint64_t> loop_stalls{0};
  /// 1 when open_spare_fd() failed: the EMFILE recovery path is dead.
  std::atomic<std::uint64_t> spare_fd_unavailable{0};
};

class EventLoop {
 public:
  /// Callbacks run on the loop thread; they must not block.
  class Handler {
   public:
    virtual ~Handler() = default;
    /// Bytes arrived (or a dispatch completed and parsing may resume).
    /// Consume parsed requests from `in`; emit bytes via
    /// enqueue_output() and long work via mark_dispatch() + a worker
    /// that later calls send().  Return false to close the connection
    /// once its output flushes.
    virtual bool on_data(ConnId id, Buffer& in) = 0;
    /// The connection is gone (peer closed, error, reaped, or loop
    /// shutdown).  Always called exactly once per accepted connection.
    virtual void on_close(ConnId id) = 0;
  };

  struct Options {
    /// Reap a connection idle (no reads, writes, or in-flight work) for
    /// this long; 0 disables reaping.
    int idle_timeout_ms = 0;
    /// Slow-loris defense, distinct from idle reaping: a connection
    /// holding a partial request (buffered bytes, nothing dispatched)
    /// that fails to complete it within this window is closed and
    /// counted in slow_loris_closed.  Drip-feeding one byte per second
    /// defeats the idle timer (every read refreshes activity) but not
    /// this clock, which only resets when a request completes parsing.
    /// 0 disables the check.
    int read_progress_timeout_ms = 0;
    /// Per-connection input-buffer bound; reading pauses at the bound
    /// until the in-flight dispatch completes.
    std::size_t max_input_buffer = 1u << 20;
    /// Per-connection output-buffer bound: a peer that stops reading
    /// while responses accumulate past this many bytes is disconnected
    /// (backpressure_closed) instead of holding memory hostage.
    /// 0 disables the bound.
    std::size_t max_output_buffer = 8u << 20;
  };

  /// Takes ownership of `listen_fd` (nonblocking, listening).
  EventLoop(int listen_fd, Handler& handler, Options options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The loop body; call from the dedicated loop thread.  Returns after
  /// stop().  On return every connection has been closed (with
  /// on_close delivered).
  void run();

  /// Thread-safe: wake the loop and return; run() exits promptly.
  void stop();

  /// Thread-safe: queue `bytes` for connection `id` and wake the loop.
  /// `completes_dispatch` marks the end of a mark_dispatch() unit
  /// (resumes parsing); `close_after` closes the connection once the
  /// bytes flush.  Bytes for an already-closed connection are dropped.
  void send(ConnId id, std::string bytes, bool completes_dispatch,
            bool close_after);

  /// Thread-safe graceful drain: close the listener and half-close
  /// every connection for reading; in-flight work still writes its
  /// responses, then connections close as they finish.
  void drain();

  /// Block until every connection closed or `timeout_ms` elapsed.
  bool wait_connections_closed(int timeout_ms);

  // ---- loop-thread-only (call from Handler callbacks) ----------------
  /// Account one unit of in-flight work on `id`; parsing pauses until a
  /// matching send(..., completes_dispatch=true) arrives.
  void mark_dispatch(ConnId id);
  /// Outstanding dispatch units on `id`.
  int in_flight(ConnId id) const;
  /// Append bytes to the connection's output (flushed after on_data
  /// returns) — the inline fast path for cheap responses.
  void enqueue_output(ConnId id, std::string_view bytes);

  const LoopStats& stats() const { return stats_; }

  /// Watchdog heartbeat: milliseconds since the loop last completed an
  /// iteration, or -1 before run() starts.  Thread-safe; the ready
  /// probe treats a stale heartbeat (loop wedged in a handler or a
  /// stalled syscall) as not-ready.
  std::int64_t heartbeat_age_ms() const;

  /// True once drain() has been requested.  Thread-safe.
  bool draining() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

 private:
  struct Conn {
    int fd = -1;
    ConnId id = 0;
    Buffer in;
    Buffer out;
    int in_flight = 0;
    std::int64_t last_activity_ms = 0;
    // When the partial request currently being buffered started
    // arriving; 0 = no partial request pending.  Feeds the slow-loris
    // deadline (read_progress_timeout_ms).
    std::int64_t read_start_ms = 0;
    bool want_write = false;   // EPOLLOUT currently armed
    bool read_paused = false;  // input buffer at its bound
    bool read_eof = false;     // peer half-closed (or drain SHUT_RD)
    bool close_when_flushed = false;
  };

  struct PendingSend {
    ConnId id;
    std::string bytes;
    bool completes_dispatch;
    bool close_after;
  };

  static std::int64_t now_ms();

  void accept_ready();
  void conn_readable(Conn& conn);
  /// False when the connection was closed on a write error.
  bool flush_output(Conn& conn);
  void update_epollout(Conn& conn);
  void run_handler(Conn& conn);
  void process_pending_sends();
  void do_drain();
  void expire_idle();
  void expire_stalled_reads();
  void maybe_close(Conn& conn);
  void close_conn(ConnId id);
  Conn* find(ConnId id);

  Handler& handler_;
  Options options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: send()/stop()/drain() wake the loop
  int spare_fd_ = -1;  // reserved fd, sacrificed to accept under EMFILE
  std::unordered_map<ConnId, Conn> conns_;
  ConnId next_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::int64_t tick_ms_;
  TimerWheel wheel_;
  LoopStats stats_;

  std::atomic<std::int64_t> heartbeat_ms_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_requested_{false};
  bool drained_ = false;  // loop-thread: do_drain already ran

  std::mutex mutex_;  // guards pending_ and the closed-notify cv
  std::condition_variable cv_;
  std::deque<PendingSend> pending_;
};

}  // namespace gpuperf::net
