// Growable byte buffer for nonblocking socket I/O: append at the tail,
// consume from the head.  Consumption is O(1) (a head offset); the
// storage compacts lazily once the dead prefix outweighs the live
// bytes, so a long-lived connection that streams gigabytes stays at
// its working-set size.  Parsers read the live region through data()/
// size()/view() without copying — binary frames are validated in place
// (serve/binary_protocol.hpp) before a single payload byte is copied.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace gpuperf::net {

class Buffer {
 public:
  const char* data() const { return storage_.data() + head_; }
  std::size_t size() const { return storage_.size() - head_; }
  bool empty() const { return size() == 0; }
  std::string_view view() const { return {data(), size()}; }

  void append(const void* bytes, std::size_t n) {
    storage_.append(static_cast<const char*>(bytes), n);
  }
  void append(std::string_view bytes) {
    storage_.append(bytes.data(), bytes.size());
  }

  /// Reserve `n` writable bytes at the tail for a recv(); pair every
  /// reserve() with one commit(m), m <= n, to keep the bytes actually
  /// read.  The returned pointer is valid until the next mutation.
  char* reserve(std::size_t n) {
    reserved_base_ = storage_.size();
    storage_.resize(reserved_base_ + n);
    return storage_.data() + reserved_base_;
  }
  void commit(std::size_t n) { storage_.resize(reserved_base_ + n); }

  /// Drop `n` bytes from the head (n <= size()).
  void consume(std::size_t n) {
    head_ += n;
    if (head_ == storage_.size()) {
      storage_.clear();
      head_ = 0;
    } else if (head_ >= kCompactThreshold && head_ * 2 >= storage_.size()) {
      storage_.erase(0, head_);
      head_ = 0;
    }
  }

  void clear() {
    storage_.clear();
    head_ = 0;
  }

 private:
  static constexpr std::size_t kCompactThreshold = 4096;

  std::string storage_;
  std::size_t head_ = 0;
  std::size_t reserved_base_ = 0;
};

}  // namespace gpuperf::net
