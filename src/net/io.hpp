// Syscall shim for the networking layer: every read/write/accept/
// connect issued by the event loop, the blocking client and the load
// generator goes through these wrappers, which behave exactly like the
// raw syscalls — same return value, same errno — unless a `net.*`
// fault site is armed through the PR-3 framework ($GPUPERF_FAULT or
// fault::arm).  The wrappers can never throw (the event loop cannot
// unwind), so Spec actions are interpreted as forced syscall results
// instead of exceptions:
//
//   site         action    forced result
//   net.read     throw     -1 / ECONNRESET        (peer reset)
//                timeout   -1 / EINTR             (signal storm)
//                delay     sleep, then read normally (slow syscall;
//                                                  trips the loop
//                                                  watchdog — a forced
//                                                  EAGAIN would lose the
//                                                  edge-triggered
//                                                  readiness edge)
//                corrupt   short read (≤ 1 byte)  (partial I/O)
//   net.write    throw     -1 / EPIPE             (peer went away)
//                timeout   -1 / EINTR
//                delay     sleep, then -1 / EAGAIN
//                corrupt   short write (≤ 1 byte)
//   net.accept   throw     -1 / EMFILE            (fd exhaustion)
//                timeout   -1 / EINTR
//                delay     sleep, then -1 / EAGAIN
//                corrupt   -1 / ECONNABORTED      (client gave up)
//   net.connect  throw     -1 / ECONNREFUSED
//                timeout   -1 / ETIMEDOUT
//                delay     sleep delay_ms, then connect normally
//                corrupt   -1 / ECONNRESET
//
// Short reads/writes perform a REAL transfer of at most one byte, so
// injected partial I/O exercises resumption paths without ever
// corrupting bytes on the wire.  Use a finite `*count` when injecting
// EINTR: retry loops consume one firing per attempt and recover once
// the site auto-disarms.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>

namespace gpuperf::net::io {

/// recv(fd, buf, len, 0) with the `net.read` fault site.
ssize_t read(int fd, void* buf, std::size_t len);

/// send(fd, buf, len, MSG_NOSIGNAL) with the `net.write` fault site.
ssize_t write(int fd, const void* buf, std::size_t len);

/// accept4(fd, addr, addrlen, flags) with the `net.accept` fault site.
int accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags);

/// connect(fd, addr, addrlen) with the `net.connect` fault site.
int connect(int fd, const sockaddr* addr, socklen_t addrlen);

}  // namespace gpuperf::net::io
