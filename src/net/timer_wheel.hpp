// Hashed timer wheel for per-connection idle timeouts: O(1) schedule /
// cancel / reschedule, one slot scan per tick.  Entries are lazily
// validated — rescheduling a connection's timer just overwrites its
// deadline in the id map; the stale slot entry is skipped when its
// slot comes around.  Deadlines more than one revolution out simply
// re-enqueue when scanned, so the wheel handles arbitrary horizons
// with a fixed slot count.
//
// Single-threaded by design: the event loop owns it and drives expire()
// from its tick.  No locks, no allocation on the steady-state path
// (slot vectors are reused).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gpuperf::net {

class TimerWheel {
 public:
  using Id = std::uint64_t;

  TimerWheel(std::int64_t tick_ms, std::size_t slots)
      : tick_ms_(tick_ms > 0 ? tick_ms : 1), slots_(slots ? slots : 1),
        wheel_(slots_) {}

  /// Arm (or re-arm) `id` to fire at absolute time `fire_at_ms`.
  void schedule(Id id, std::int64_t fire_at_ms) {
    deadlines_[id] = fire_at_ms;
    wheel_[slot_for(fire_at_ms)].push_back(id);
  }

  /// Disarm `id`; the slot entry decays lazily.
  void cancel(Id id) { deadlines_.erase(id); }

  bool armed(Id id) const { return deadlines_.count(id) > 0; }
  std::size_t armed_count() const { return deadlines_.size(); }

  /// Advance to `now_ms` and collect every id whose deadline passed.
  /// Ids rescheduled to a later deadline are re-enqueued, cancelled ids
  /// are dropped.  Call monotonically.
  std::vector<Id> expire(std::int64_t now_ms) {
    std::vector<Id> fired;
    if (now_ms < last_ms_) now_ms = last_ms_;
    // Scan every slot the clock passed over; cap at one revolution
    // (each slot need only be scanned once per call).
    const std::int64_t ticks =
        std::min<std::int64_t>(now_ms / tick_ms_ - last_ms_ / tick_ms_,
                               static_cast<std::int64_t>(slots_));
    for (std::int64_t t = 0; t <= ticks; ++t) {
      auto& slot = wheel_[(last_ms_ / tick_ms_ + t) % slots_];
      std::size_t keep = 0;
      for (const Id id : slot) {
        const auto it = deadlines_.find(id);
        if (it == deadlines_.end()) continue;  // cancelled
        if (it->second <= now_ms) {
          deadlines_.erase(it);
          fired.push_back(id);
        } else if (slot_for(it->second) ==
                   (last_ms_ / tick_ms_ + t) % slots_) {
          slot[keep++] = id;  // >1 revolution out: stays in this slot
        } else {
          // Rescheduled to a different slot; its live entry is there.
          continue;
        }
      }
      slot.resize(keep);
    }
    last_ms_ = now_ms;
    return fired;
  }

 private:
  std::size_t slot_for(std::int64_t fire_at_ms) const {
    return static_cast<std::size_t>(fire_at_ms / tick_ms_) % slots_;
  }

  std::int64_t tick_ms_;
  std::size_t slots_;
  std::vector<std::vector<Id>> wheel_;
  std::unordered_map<Id, std::int64_t> deadlines_;
  std::int64_t last_ms_ = 0;
};

}  // namespace gpuperf::net
