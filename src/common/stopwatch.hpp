// Wall-clock stopwatch over std::chrono::steady_clock.  Used by the DSE
// timing experiment (Table IV) and the micro benches.
#pragma once

#include <chrono>

namespace gpuperf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the measurement window.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpuperf
