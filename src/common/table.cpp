#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace gpuperf {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  GP_CHECK(!header.empty());
  header_ = std::move(header);
  if (alignments_.empty()) {
    alignments_.assign(header_.size(), Align::kRight);
    alignments_.front() = Align::kLeft;
  }
}

void TextTable::set_alignments(std::vector<Align> alignments) {
  GP_CHECK(header_.empty() || alignments.size() == header_.size());
  alignments_ = std::move(alignments);
}

void TextTable::add_row(std::vector<std::string> row) {
  GP_CHECK_MSG(row.size() == header_.size(),
               "row width " << row.size() << " != header width "
                            << header_.size());
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  GP_CHECK(!header_.empty());
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.is_rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto pad = [&](const std::string& s, std::size_t w, Align a) {
    std::string out;
    const std::size_t fill = w - std::min(w, s.size());
    if (a == Align::kRight) out.append(fill, ' ');
    out += s;
    if (a == Align::kLeft) out.append(fill, ' ');
    return out;
  };
  auto rule = [&] {
    std::string out = "+";
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += ' ';
      out += pad(cell, widths[c], alignments_[c]);
      out += " |";
    }
    out += '\n';
    return out;
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  os << rule() << line(header_) << rule();
  for (const auto& row : rows_) {
    if (row.is_rule)
      os << rule();
    else
      os << line(row.cells);
  }
  os << rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace gpuperf
