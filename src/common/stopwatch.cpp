#include "common/stopwatch.hpp"

// Header-only; this TU exists so the target has a definition anchor.
