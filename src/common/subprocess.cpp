#include "common/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/check.hpp"

namespace gpuperf {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_until(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline - Clock::now())
      .count();
}

/// Field `index` (0-based) of /proc/self/statm, in pages; 0 on failure.
std::size_t statm_field(int index) {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long values[2] = {0, 0};
  const int got = std::fscanf(f, "%ld %ld", &values[0], &values[1]);
  std::fclose(f);
  if (got < index + 1 || values[index] < 0) return 0;
  return static_cast<std::size_t>(values[index]);
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  });
}

Pipe make_pipe() {
  int fds[2];
  GP_CHECK_MSG(::pipe2(fds, O_CLOEXEC) == 0,
               "pipe2 failed: " << std::strerror(errno));
  return Pipe{fds[0], fds[1]};
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);  // EINTR after close still closed the fd
  fd = -1;
}

bool write_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

std::size_t read_full(int fd, void* data, std::size_t n, bool* error) {
  if (error != nullptr) *error = false;
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = true;
      return got;
    }
    if (r == 0) return got;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return got;
}

bool poll_readable(int fd, int timeout_ms) {
  const bool forever = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(forever ? 0 : timeout_ms);
  for (;;) {
    int wait_ms = -1;
    if (!forever) {
      const std::int64_t left = ms_until(deadline);
      if (left <= 0) return false;
      wait_ms = static_cast<int>(left);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;  // re-arm with the remaining time
      return false;
    }
    if (rc == 0) return false;
    // POLLHUP/POLLERR count as readable: the read() that follows sees
    // the EOF / error and classifies it.
    return true;
  }
}

pid_t waitpid_retry(pid_t pid, int* status, int flags) {
  for (;;) {
    const pid_t got = ::waitpid(pid, status, flags);
    if (got >= 0 || errno != EINTR) return got;
  }
}

bool wait_exit(pid_t pid, int* status, int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const pid_t got = waitpid_retry(pid, status, WNOHANG);
    if (got == pid) return true;
    if (got < 0) return true;  // already reaped elsewhere: not running
    if (ms_until(deadline) <= 0) return false;
    ::usleep(2000);
  }
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status))
    return "exited " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    std::string out = "killed by signal " + std::to_string(sig);
    if (const char* name = ::strsignal(sig)) {
      out += " (";
      out += name;
      out += ")";
    }
    return out;
  }
  return "wait status " + std::to_string(status);
}

std::size_t self_rss_kb() {
  const std::size_t pages = statm_field(1);
  return pages * (static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)) / 1024);
}

std::size_t self_vsize_kb() {
  const std::size_t pages = statm_field(0);
  return pages * (static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)) / 1024);
}

}  // namespace gpuperf
