// Leveled logging to stderr.  Default level is kWarn so library users
// and tests stay quiet; examples raise it to kInfo to narrate progress.
#pragma once

#include <sstream>
#include <string>

namespace gpuperf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line ("[level] message") if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace gpuperf

#define GP_LOG(level) ::gpuperf::detail::LogMessage(::gpuperf::LogLevel::level)
