// Deterministic fault injection for the chaos test suite: named sites
// in registry I/O, the DCA pipeline and the batcher call
// GPUPERF_FAULT_POINT("site"); a test (or the GPUPERF_FAULT environment
// variable) arms a site with an action — throw, timeout, delay or
// corrupt — and the site misbehaves on demand, repeatably.
//
// Compiled in only under GPUPERF_FAULT_INJECTION (a CMake option, ON by
// default so the chaos suite runs in every build).  A disarmed site
// costs one function call and one relaxed atomic load; the healthy-path
// throughput impact is unmeasurable because sites sit at request
// granularity, not in analysis inner loops.
//
// Spec grammar (used by arm_from_spec and $GPUPERF_FAULT):
//   site=action[:param][*count][;site=action...]
// where action is one of
//   throw        the site throws FaultInjected
//   timeout      the site throws AnalysisTimeout
//   delay:MS     the site sleeps MS milliseconds (in 1 ms slices,
//                honoring the caller's Deadline when one is in scope)
//   corrupt      GPUPERF_FAULT_CORRUPT(site) returns true
// and *count fires the action that many times before auto-disarming
// (default: forever).  Example: "dca.compute=delay:100*3;store.put=throw"
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/deadline.hpp"

namespace gpuperf::fault {

enum class Action { kThrow, kTimeout, kDelay, kCorrupt };

struct Spec {
  Action action = Action::kThrow;
  int delay_ms = 0;    // kDelay only
  int remaining = -1;  // fires this many times then disarms; -1 = forever
};

/// What a kThrow site raises — a plain runtime error, so the serving
/// layer classifies it as analysis_failed, not as a timeout.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

void arm(const std::string& site, Spec spec);
void disarm(const std::string& site);
void disarm_all();

/// Times the site fired since the last arm()/disarm_all() for it.
std::uint64_t hits(const std::string& site);

/// Parse the spec grammar above and arm every site in it; throws
/// CheckError on a malformed spec.
void arm_from_spec(const std::string& spec);

/// Serialize every armed site whose name starts with `prefix` back into
/// the spec grammar ("" = all sites).  The sandbox layer ships this
/// snapshot inside each worker request so chaos sites armed in the
/// parent *after* a worker forked still fire inside that worker.
/// Firing counts are snapshotted too, but consumption happens in the
/// worker — `*count` specs are therefore per-request in isolated mode.
std::string armed_spec(const std::string& prefix = "");

/// Hold the fault registry lock across a fork() so the child never
/// inherits the registry mid-mutation (another thread rebalancing the
/// site map at the exact fork instant).  The forking thread takes this
/// guard, forks, then drops it; the child calls child_after_fork().
std::unique_lock<std::mutex> registry_fork_lock();

/// Reset the fault registry in a freshly forked child: reinitializes
/// the registry mutex (held by the forking parent thread, so the
/// child's copy is locked forever) and clears every armed site.  Must
/// be called before the child touches any fault API, and only from a
/// single-threaded child.
void child_after_fork();

/// A fault point.  Fast path (nothing armed anywhere): one relaxed
/// atomic load.  `deadline` lets a kDelay site respect the caller's
/// budget, turning the delay into a genuine deadline-driven timeout.
void point(const std::string& site, const Deadline* deadline = nullptr);

/// True when `site` is armed with kCorrupt (and consumes one firing);
/// the call site then flips bits / drops data itself.
bool corrupt(const std::string& site);

/// Non-throwing consumption for call sites that cannot unwind (the
/// event-loop syscall shim): consumes one firing of `site` regardless
/// of action and returns the Spec.  Returns false when the site is not
/// armed.  The caller interprets the action itself — e.g. net::io maps
/// kThrow to a forced ECONNRESET instead of raising.
bool consume_nonthrowing(const std::string& site, Spec& out);

/// RAII arming for tests: disarms the site on scope exit.
class ScopedFault {
 public:
  ScopedFault(std::string site, Spec spec) : site_(std::move(site)) {
    arm(site_, spec);
  }
  ~ScopedFault() { disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace gpuperf::fault

#ifdef GPUPERF_FAULT_INJECTION
#define GPUPERF_FAULT_POINT(site) ::gpuperf::fault::point(site)
#define GPUPERF_FAULT_POINT_D(site, deadline_ptr) \
  ::gpuperf::fault::point(site, deadline_ptr)
#define GPUPERF_FAULT_CORRUPT(site) ::gpuperf::fault::corrupt(site)
#else
#define GPUPERF_FAULT_POINT(site) \
  do {                            \
  } while (false)
#define GPUPERF_FAULT_POINT_D(site, deadline_ptr) \
  do {                                            \
  } while (false)
#define GPUPERF_FAULT_CORRUPT(site) false
#endif
