#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gpuperf {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro256** must not start from an all-zero state; splitmix64
  // seeding guarantees that for every seed value.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GP_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw > limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::uniform_index(std::size_t n) {
  GP_CHECK(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GP_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is nudged away from zero so log() is finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  GP_CHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

Rng Rng::split() { return Rng(next() ^ 0xd2b74407b1ce6e93ULL); }

std::uint64_t stable_hash(const char* data, std::size_t len) {
  // FNV-1a, then one splitmix64 finalizer for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

std::uint64_t stable_hash(const std::string& s) {
  return stable_hash(s.data(), s.size());
}

}  // namespace gpuperf
