// Lightweight runtime-check macros.
//
// GP_CHECK is always on and throws gpuperf::CheckError; it is used for
// API-contract violations (bad arguments, malformed inputs) that callers
// are expected to be able to trigger.  GP_DCHECK compiles out in NDEBUG
// builds and guards internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gpuperf {

/// Thrown by GP_CHECK on contract violation.  Derives from
/// std::logic_error so generic handlers keep working.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace gpuperf

#define GP_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr))                                                      \
      ::gpuperf::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define GP_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream gp_check_os_;                                   \
      gp_check_os_ << msg;                                               \
      ::gpuperf::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                      gp_check_os_.str());               \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define GP_DCHECK(expr) \
  do {                  \
  } while (false)
#else
#define GP_DCHECK(expr) GP_CHECK(expr)
#endif
