#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/check.hpp"

namespace gpuperf {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0)
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GP_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

namespace {
thread_local ThreadPool* tls_current_pool = nullptr;
}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() == 1 || n == 1 || current() == this) {
    // Run inline: single worker, trivial n, or a nested call from one
    // of this pool's own workers (queueing and blocking on siblings
    // could deadlock).  Exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-invocation context: index claim counter, completion count and
  // first error all live here, so concurrent invocations sharing the
  // pool are fully independent.
  struct Ctx {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::size_t shards = 0;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->shards = std::min(size() + 1, n);  // +1: the caller works too

  auto run_shard = [ctx, n, &fn] {
    try {
      for (std::size_t i = ctx->next.fetch_add(1); i < n;
           i = ctx->next.fetch_add(1)) {
        if (ctx->failed.load(std::memory_order_relaxed)) break;
        fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(ctx->mutex);
      if (!ctx->error) ctx->error = std::current_exception();
      ctx->failed.store(true, std::memory_order_relaxed);
    }
    if (ctx->done.fetch_add(1) + 1 == ctx->shards) {
      std::lock_guard<std::mutex> lock(ctx->mutex);
      ctx->cv.notify_all();
    }
  };

  for (std::size_t s = 0; s + 1 < ctx->shards; ++s) submit(run_shard);
  run_shard();  // caller participates instead of idling

  std::unique_lock<std::mutex> lock(ctx->mutex);
  ctx->cv.wait(lock, [&] { return ctx->done.load() == ctx->shards; });
  if (ctx->error) std::rethrow_exception(ctx->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool* ThreadPool::current() { return tls_current_pool; }

void ThreadPool::worker_loop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace gpuperf
