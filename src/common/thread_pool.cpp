#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/check.hpp"

namespace gpuperf {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0)
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GP_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (size() == 1 || n == 1) {
    // Run inline: no cross-thread hop, and exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t shards = std::min(size(), n);
  for (std::size_t s = 0; s < shards; ++s) {
    submit([next, n, &fn] {
      for (std::size_t i = next->fetch_add(1); i < n;
           i = next->fetch_add(1))
        fn(i);
    });
  }
  wait();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace gpuperf
