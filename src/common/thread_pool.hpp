// Fixed-size thread pool with a parallel_for helper.
//
// Used by RandomForest training, the dataset builder (per-(CNN, GPU)
// profiling jobs) and the simulator sweep benches.  Work is pulled from
// a single mutex-guarded deque — at the grain sizes in this project
// (whole trees, whole model profiles) queue contention is irrelevant,
// so the simple design wins per the Core Guidelines (CP: keep
// concurrency structured and boring).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuperf {

class ThreadPool {
 public:
  /// n_threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  Exceptions thrown
  /// by tasks are captured; the first one is rethrown here.
  void wait();

  /// Run fn(i) for i in [0, n), distributing across the pool and
  /// blocking until done.  Rethrows the first task exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily created).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gpuperf
