// Fixed-size thread pool with a parallel_for helper.
//
// Used by RandomForest training, the dataset builder (per-(CNN, GPU)
// profiling jobs) and the simulator sweep benches.  Work is pulled from
// a single mutex-guarded deque — at the grain sizes in this project
// (whole trees, whole model profiles) queue contention is irrelevant,
// so the simple design wins per the Core Guidelines (CP: keep
// concurrency structured and boring).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gpuperf {

class ThreadPool {
 public:
  /// n_threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Enqueue a task and get a future for its result.  Exceptions escape
  /// through the future, not through wait() — this is the right
  /// submission path when several client threads share one pool and
  /// each must observe only its own failures (wait()'s rethrow is
  /// pool-global).
  template <typename F>
  auto submit_task(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  /// Tasks enqueued but not yet picked up by a worker (a load signal
  /// for metrics; racy by nature).
  std::size_t queue_depth() const;

  /// Block until every submitted task has finished.  Exceptions thrown
  /// by tasks are captured; the first one is rethrown here.
  void wait();

  /// Run fn(i) for i in [0, n), distributing across the pool and
  /// blocking until done; the calling thread participates in the work.
  /// Rethrows the first exception thrown by any fn(i).  Error state is
  /// per-invocation (not pool-global), so concurrent parallel_for calls
  /// on a shared pool never observe each other's failures; a nested
  /// call from inside one of this pool's own workers runs inline
  /// instead of deadlocking on its own queue.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily created).
  static ThreadPool& shared();

  /// The pool whose worker is executing the calling thread, or nullptr
  /// when called from a non-worker thread.
  static ThreadPool* current();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gpuperf
