#include "common/limits.hpp"

#include <sstream>

namespace gpuperf {

const InputLimits& InputLimits::defaults() {
  static const InputLimits kDefaults{};
  return kDefaults;
}

namespace detail {

void limit_exceeded(const char* what, std::size_t requested,
                    std::size_t limit) {
  std::ostringstream os;
  os << "input limit exceeded: " << what << " = " << requested
     << " exceeds the budget of " << limit;
  throw LimitExceeded(os.str());
}

}  // namespace detail
}  // namespace gpuperf
