// Sharded single-flight LRU cache.  Originally built for the serve
// layer (static-analysis reports, DCA feature vectors, predictions);
// now shared infrastructure — the PTX instruction counter memoizes
// per-launch symbolic execution results through the same template.
//
// Design: N independent shards (hash of the key picks one), each a
// mutex-guarded LRU list + map.  Entries hold shared_futures so that
// concurrent misses on the same key compute once and everyone else
// blocks on the winner ("single-flight").  A computation that throws
// publishes the exception to current waiters and erases the entry
// (generation-tagged, so it never removes a newer entry) — failed or
// timed-out computes are retried, never cached.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace gpuperf {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
};

template <typename Value>
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  /// `capacity` is the total entry budget, split evenly across
  /// `n_shards` (each shard keeps at least one slot).
  explicit ShardedLruCache(std::size_t capacity, std::size_t n_shards = 8)
      : per_shard_capacity_(
            std::max<std::size_t>(1, (capacity + n_shards - 1) /
                                         std::max<std::size_t>(1, n_shards))),
        shards_(std::max<std::size_t>(1, n_shards)) {
    GP_CHECK(capacity > 0);
  }

  /// Look up `key`; on a miss run `compute` (outside the shard lock)
  /// and publish the result.  Concurrent callers of the same missing
  /// key block on the first caller's computation instead of repeating
  /// it.  A computation that throws is erased so later calls retry.
  ValuePtr get_or_compute(const std::string& key,
                          const std::function<ValuePtr()>& compute) {
    Shard& shard = shard_for(key);
    std::promise<ValuePtr> promise;
    std::shared_future<ValuePtr> future;
    std::uint64_t gen = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (auto* entry = find_and_touch(shard, key)) {
        ++hits_;
        future = entry->future;
      } else {
        ++misses_;
        future = promise.get_future().share();
        gen = insert_locked(shard, key, future);
      }
    }
    if (!gen) return future.get();
    try {
      ValuePtr value = compute();
      GP_CHECK_MSG(value != nullptr, "cache compute returned null");
      promise.set_value(value);
      return value;
    } catch (...) {
      promise.set_exception(std::current_exception());
      erase_generation(shard, key, gen);
      throw;
    }
  }

  /// Plain lookup; returns nullptr on a miss.  Blocks if the entry is
  /// still being computed by a get_or_compute() winner.
  ValuePtr get(const std::string& key) {
    Shard& shard = shard_for(key);
    std::shared_future<ValuePtr> future;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto* entry = find_and_touch(shard, key);
      if (!entry) {
        ++misses_;
        return nullptr;
      }
      ++hits_;
      future = entry->future;
    }
    try {
      return future.get();
    } catch (...) {
      return nullptr;  // the failed compute already erased itself
    }
  }

  /// Insert (or overwrite) a ready value.
  void put(const std::string& key, ValuePtr value) {
    GP_CHECK(value != nullptr);
    std::promise<ValuePtr> promise;
    promise.set_value(std::move(value));
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto* entry = find_and_touch(shard, key)) {
      entry->future = promise.get_future().share();
      return;
    }
    insert_locked(shard, key, promise.get_future().share());
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  CacheStats stats() const {
    CacheStats out;
    out.hits = hits_.load();
    out.misses = misses_.load();
    out.evictions = evictions_.load();
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      out.size += shard.map.size();
    }
    return out;
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::shared_future<ValuePtr> future;
    std::list<std::string>::iterator lru_it;
    std::uint64_t generation = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<std::string> lru;  // front = most recently used
    std::unordered_map<std::string, Entry> map;
  };

  Shard& shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  Entry* find_and_touch(Shard& shard, const std::string& key) {
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return nullptr;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return &it->second;
  }

  /// Insert under the shard lock; evicts from the LRU tail if over
  /// budget.  Returns the new entry's generation tag (never 0).
  std::uint64_t insert_locked(Shard& shard, const std::string& key,
                              std::shared_future<ValuePtr> future) {
    shard.lru.push_front(key);
    const std::uint64_t gen = ++generation_;
    Entry entry;
    entry.future = std::move(future);
    entry.lru_it = shard.lru.begin();
    entry.generation = gen;
    shard.map[key] = std::move(entry);
    while (shard.map.size() > per_shard_capacity_) {
      const std::string victim = shard.lru.back();
      shard.lru.pop_back();
      shard.map.erase(victim);
      ++evictions_;
    }
    return gen;
  }

  /// Remove the entry for `key` only if it is still the generation we
  /// inserted (a failed compute must not erase a newer entry).
  void erase_generation(Shard& shard, const std::string& key,
                        std::uint64_t gen) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.generation != gen) return;
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace gpuperf
