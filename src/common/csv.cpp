#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace gpuperf {

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  GP_CHECK_MSG(false, "no CSV column named '" << name << "'");
}

std::string csv_escape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

void write_row(std::ostringstream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(row[i]);
  }
  os << '\n';
}

}  // namespace

std::string csv_write(const CsvDocument& doc) {
  std::ostringstream os;
  write_row(os, doc.header);
  for (const auto& row : doc.rows) {
    GP_CHECK_MSG(row.size() == doc.header.size(),
                 "row width " << row.size() << " != header width "
                              << doc.header.size());
    write_row(os, row);
  }
  return os.str();
}

CsvDocument csv_parse(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    row_has_content = true;
  };
  auto end_row = [&] {
    if (row_has_content || !row.empty()) {
      end_field();
      records.push_back(std::move(row));
      row.clear();
      row_has_content = false;
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;  // a trailing comma implies one more field
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallowed; \r\n handled by the \n branch
    } else {
      field += c;
      row_has_content = true;
    }
  }
  GP_CHECK_MSG(!in_quotes, "unterminated quoted CSV field");
  end_row();

  CsvDocument doc;
  GP_CHECK_MSG(!records.empty(), "empty CSV document");
  doc.header = std::move(records.front());
  doc.rows.assign(std::make_move_iterator(records.begin() + 1),
                  std::make_move_iterator(records.end()));
  for (const auto& r : doc.rows)
    GP_CHECK_MSG(r.size() == doc.header.size(),
                 "CSV row width " << r.size() << " != header width "
                                  << doc.header.size());
  return doc;
}

void csv_save(const CsvDocument& doc, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GP_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << csv_write(doc);
  GP_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

CsvDocument csv_load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return csv_parse(os.str());
}

}  // namespace gpuperf
