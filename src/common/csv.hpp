// Minimal RFC-4180-style CSV reader/writer.  Used to persist generated
// training datasets and experiment outputs so runs can be inspected and
// diffed outside the binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpuperf {

/// In-memory CSV document: a header row plus data rows, all strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; GP_CHECK-fails if absent.
  std::size_t column(const std::string& name) const;
};

/// Quote a field if it contains a delimiter, quote or newline.
std::string csv_escape(const std::string& field);

/// Serialize to CSV text (header first, "\n" line endings).
std::string csv_write(const CsvDocument& doc);

/// Parse CSV text; first row is the header.  Handles quoted fields with
/// embedded commas, quotes ("" escape) and newlines.
CsvDocument csv_parse(const std::string& text);

/// File helpers (GP_CHECK-fail on I/O errors).
void csv_save(const CsvDocument& doc, const std::string& path);
CsvDocument csv_load(const std::string& path);

}  // namespace gpuperf
