// Flat compressed-sparse-row adjacency storage (docs/PERF.md "Graph
// memory layout").  A CsrGraph packs every adjacency list of a
// fixed-node-count graph into two contiguous arrays —
//
//   offsets[node] .. offsets[node+1]   indexes into   targets[]
//
// — so traversal is sequential pointer-free reads (one cache line holds
// 16 neighbors) instead of the per-node heap vectors it replaces, and
// the whole graph can live in a single MappedBuffer that spills to disk
// past the resident budget.
//
// Construction is the classic two passes through a Builder:
//   1. add_count(node, n) for every edge source  → finish_counts()
//      prefix-sums into offsets and allocates targets;
//   2. add_edge(node, target) exactly count times → finish().
// finish(sort_unique_rows=true) additionally sorts each row and
// compacts duplicates in place (graphs built from flow-insensitive
// def/use unions want set semantics without paying for a set).
//
// The builder's scratch (write cursors) comes from a caller-supplied
// Arena; the offsets/targets arrays obey a CsrMemoryPolicy (hard byte
// cap → typed LimitExceeded, resident budget → mmap spill).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/deadline.hpp"
#include "common/limits.hpp"
#include "common/mapped_buffer.hpp"

namespace gpuperf {

/// Memory rules for one graph: where (and whether) its arrays may
/// spill, and the absolute size past which it is rejected outright.
struct CsrMemoryPolicy {
  SpillConfig spill;
  std::size_t hard_cap_bytes = static_cast<std::size_t>(-1);
  const char* what = "csr graph bytes";
};

class CsrGraph {
 public:
  using Index = std::uint32_t;   // node ids and edge targets
  using Offset = std::uint64_t;  // row boundaries (edge count may be huge)

  CsrGraph() = default;
  CsrGraph(CsrGraph&&) noexcept = default;
  CsrGraph& operator=(CsrGraph&&) noexcept = default;

  std::size_t node_count() const { return nodes_; }
  std::size_t edge_count() const { return edges_; }

  std::span<const Index> row(std::size_t node) const {
    GP_DCHECK(node < nodes_);
    const Offset* offsets = offsets_ptr();
    return {targets_ptr() + offsets[node],
            static_cast<std::size_t>(offsets[node + 1] - offsets[node])};
  }

  /// Bytes held by the offsets + targets arrays (spilled or resident).
  std::size_t bytes() const {
    return offsets_mem_.size_bytes() + targets_mem_.size_bytes();
  }
  bool spilled() const { return targets_mem_.file_backed(); }

  /// Drop resident pages of a spilled graph; rows fault back on access.
  void release_resident() {
    offsets_mem_.release_resident();
    targets_mem_.release_resident();
  }

  class Builder;

 private:
  Offset* offsets_ptr() {
    return reinterpret_cast<Offset*>(offsets_mem_.data());
  }
  const Offset* offsets_ptr() const {
    return reinterpret_cast<const Offset*>(offsets_mem_.data());
  }
  Index* targets_ptr() {
    return reinterpret_cast<Index*>(targets_mem_.data());
  }
  const Index* targets_ptr() const {
    return reinterpret_cast<const Index*>(targets_mem_.data());
  }

  std::size_t nodes_ = 0;
  std::size_t edges_ = 0;
  MappedBuffer offsets_mem_;
  MappedBuffer targets_mem_;
};

// Defined outside the enclosing class so it can hold a CsrGraph by
// value (the type is incomplete until the class body closes).
class CsrGraph::Builder {
 public:
  /// `scratch` supplies the transient count/cursor arrays; it must
  /// outlive the builder and is NOT reset here (callers scope it).
  Builder(std::size_t nodes, Arena& scratch, const CsrMemoryPolicy& policy)
      : nodes_(nodes),
        policy_(policy),
        counts_(scratch.alloc_zeroed<Offset>(nodes + 1)) {
    GP_CHECK_MSG(nodes < static_cast<std::size_t>(-2),
                 "csr node count overflow");
  }

  /// Pass 1: declare that `node` will receive `n` more edges.
  void add_count(std::size_t node, std::size_t n = 1) {
    GP_DCHECK(node < nodes_);
    counts_[node] += n;
  }

  /// Prefix-sum the counts into the offsets array and allocate the
  /// (possibly spilled) storage.  Throws LimitExceeded when the graph's
  /// total bytes exceed the policy's hard cap, or exceed the resident
  /// budget with no spill directory configured.
  void finish_counts() {
    GP_CHECK_MSG(!counted_, "finish_counts called twice");
    counted_ = true;
    Offset total = 0;
    for (std::size_t i = 0; i < nodes_; ++i) total += counts_[i];
    const std::size_t bytes =
        (nodes_ + 1) * sizeof(Offset) +
        static_cast<std::size_t>(total) * sizeof(Index);
    enforce_limit(bytes, policy_.hard_cap_bytes, policy_.what);
    // One spill decision for the whole graph: both arrays share the
    // backing mode so a spilled graph is wholly reclaimable.
    SpillConfig config = policy_.spill;
    if (bytes < config.resident_budget_bytes)
      config.resident_budget_bytes = static_cast<std::size_t>(-1);
    else
      config.resident_budget_bytes = 0;  // force both arrays to spill
    graph_.offsets_mem_ = MappedBuffer::allocate(
        (nodes_ + 1) * sizeof(Offset), config, policy_.what);
    graph_.targets_mem_ = MappedBuffer::allocate(
        static_cast<std::size_t>(total) * sizeof(Index), config,
        policy_.what);
    graph_.nodes_ = nodes_;
    graph_.edges_ = static_cast<std::size_t>(total);
    // offsets[i] = start of row i; counts_ becomes the write cursors.
    Offset* offsets = graph_.offsets_ptr();
    Offset running = 0;
    for (std::size_t i = 0; i < nodes_; ++i) {
      offsets[i] = running;
      running += counts_[i];
      counts_[i] = offsets[i];
    }
    offsets[nodes_] = running;
  }

  /// Pass 2: append `target` to `node`'s row (≤ the declared count).
  void add_edge(std::size_t node, Index target) {
    GP_DCHECK(counted_);
    GP_DCHECK(node < nodes_);
    GP_DCHECK(counts_[node] < graph_.offsets_ptr()[node + 1]);
    graph_.targets_ptr()[counts_[node]++] = target;
  }

  /// Seal the graph.  With `sort_unique_rows`, each row is sorted and
  /// deduplicated and the targets array compacted in place (row order
  /// preserved); `deadline` is charged once per node during the
  /// compaction sweep.
  CsrGraph finish(bool sort_unique_rows = false,
                  const Deadline& deadline = {}) {
    GP_CHECK_MSG(counted_, "finish before finish_counts");
    if (sort_unique_rows && graph_.edges_ > 0) {
      Offset* offsets = graph_.offsets_ptr();
      Index* targets = graph_.targets_ptr();
      Offset write = 0;
      Offset row_begin = offsets[0];
      for (std::size_t i = 0; i < nodes_; ++i) {
        deadline.charge("csr.compact");
        const Offset row_end = offsets[i + 1];
        std::sort(targets + row_begin, targets + row_end);
        Index* const unique_end =
            std::unique(targets + row_begin, targets + row_end);
        const Offset len =
            static_cast<Offset>(unique_end - (targets + row_begin));
        if (write != row_begin && len > 0)
          std::memmove(targets + write, targets + row_begin,
                       static_cast<std::size_t>(len) * sizeof(Index));
        offsets[i] = write;
        write += len;
        row_begin = row_end;
      }
      offsets[nodes_] = write;
      graph_.edges_ = static_cast<std::size_t>(write);
    }
    return std::move(graph_);
  }

 private:
  std::size_t nodes_;
  CsrMemoryPolicy policy_;
  std::span<Offset> counts_;  // arena-backed; becomes write cursors
  bool counted_ = false;
  CsrGraph graph_;
};

}  // namespace gpuperf
