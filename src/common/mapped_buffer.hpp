// Out-of-core backing store for large flat analysis arrays
// (docs/PERF.md "Graph memory layout", docs/ROBUSTNESS.md "DCA spill").
//
// A MappedBuffer is a fixed-capacity byte array whose backing is chosen
// by a SpillConfig at allocation time:
//
//   - small allocations map anonymous memory (plain RAM, reclaimed on
//     destruction);
//   - allocations at or above the resident budget map an unlinked
//     temporary file in the spill directory (MAP_SHARED), so the pages
//     are page-cache-backed and reclaimable — a multi-million-
//     instruction dependency graph no longer has to fit in RSS;
//   - allocations above the budget with NO spill directory configured
//     throw a typed LimitExceeded instead of OOMing, exactly like every
//     other InputLimits budget;
//   - if the spill file cannot be created (missing directory, ENOSPC at
//     setup) the buffer falls back to anonymous memory with a one-line
//     warning — availability problems degrade, only budget violations
//     reject.
//
// grow() extends the buffer in place via ftruncate+mremap, so a builder
// that discovers its final size late never copies.  Process-wide spill
// telemetry (files created, bytes spilled, cumulative) feeds the serve
// `stats` counters `dca_spill_files` / `dca_spill_bytes`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpuperf {

/// Spill policy for one allocation family.  `resident_budget_bytes` is
/// the size at which an allocation stops being anonymous RAM; `dir`
/// names where spill files go (empty = spilling unavailable).
struct SpillConfig {
  std::string dir;
  std::size_t resident_budget_bytes = static_cast<std::size_t>(-1);
};

class MappedBuffer {
 public:
  MappedBuffer() = default;
  ~MappedBuffer();

  MappedBuffer(MappedBuffer&& other) noexcept;
  MappedBuffer& operator=(MappedBuffer&& other) noexcept;
  MappedBuffer(const MappedBuffer&) = delete;
  MappedBuffer& operator=(const MappedBuffer&) = delete;

  /// Allocate `bytes` zero-initialized bytes under `config`; `what`
  /// names the allocation in the LimitExceeded message when the budget
  /// trips without a spill directory.
  static MappedBuffer allocate(std::size_t bytes, const SpillConfig& config,
                               const char* what);

  /// Extend to `new_bytes` (>= current size) in place; the mapping may
  /// move, spans into data() must be re-derived.  A grown anonymous
  /// buffer never retroactively spills — the spill decision is made
  /// once, at allocate() time, from the caller's size estimate.
  void grow(std::size_t new_bytes);

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size_bytes() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool file_backed() const { return fd_ >= 0; }

  /// Drop the resident pages of a file-backed buffer (madvise
  /// MADV_DONTNEED).  The data survives in the page cache / file and
  /// faults back in on access; anonymous buffers are left untouched
  /// (DONTNEED would discard their contents).  Best effort.
  void release_resident();

  /// Process-wide spill telemetry: cumulative spill files created and
  /// bytes placed in them (monotonic — serve counter convention).
  static std::uint64_t spill_files_total();
  static std::uint64_t spill_bytes_total();

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;  // -1 = anonymous mapping (or empty)
};

/// Process-wide spill knobs for the DCA graph path, seeded from
/// `$GPUPERF_DCA_SPILL` (directory) and `$GPUPERF_DCA_SPILL_BUDGET`
/// (resident bytes; defaults to
/// InputLimits::defaults().max_depgraph_resident_bytes).  The serve
/// layer overrides them at startup from --dca-spill-dir /
/// --dca-spill-budget; set before analysis traffic starts.
SpillConfig dca_spill_config();
void set_dca_spill_config(SpillConfig config);

}  // namespace gpuperf
