// Small string utilities shared across the library (the PTX lexer has
// its own tokenizer; these are for CSV, table formatting and name
// handling).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gpuperf {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any ASCII whitespace run; drops empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);

/// Format a non-negative integer with thousands separators
/// ("25549352" -> "25,549,352"), as in the paper's Table I.
std::string with_commas(long long value);

/// Fixed-precision formatting of a double ("5.73").
std::string fixed(double value, int digits);

/// Parse helpers; GP_CHECK-fail on malformed input.
long long parse_int(std::string_view s);
double parse_double(std::string_view s);

}  // namespace gpuperf
