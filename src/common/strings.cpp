#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/check.hpp"

namespace gpuperf {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string with_commas(long long value) {
  GP_CHECK(value >= 0);
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fixed(double value, int digits) {
  GP_CHECK(digits >= 0 && digits <= 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  GP_CHECK_MSG(ec == std::errc() && ptr == s.data() + s.size(),
               "not an integer: '" << std::string(s) << "'");
  return v;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  GP_CHECK_MSG(ec == std::errc() && ptr == s.data() + s.size(),
               "not a number: '" << std::string(s) << "'");
  return v;
}

}  // namespace gpuperf
