// Cooperative cancellation for bounded analysis: a Deadline couples a
// wall-clock budget with an optional step budget and is threaded by
// value through the slicer, symbolic executor, interpreter and feature
// extractor.  Analysis loops call charge() per unit of work; when either
// budget is exhausted the analysis aborts with a typed AnalysisTimeout
// instead of hanging — the serving layer turns that into a machine-
// readable `analysis_timeout` or a degraded fallback prediction.
//
// A default-constructed Deadline is unlimited and charge() is a single
// branch, so every existing call site pays (nearly) nothing.  The clock
// is only consulted every kTimeCheckInterval charges: steady_clock::now
// costs ~20 ns, analysis steps ~1 ns, so hot loops keep their speed
// while expiry is still detected within a fraction of a millisecond.
#pragma once

#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gpuperf {

/// Typed abort of a bounded analysis: the deadline or step budget of a
/// Deadline was exhausted.  Deliberately NOT a CheckError — callers that
/// degrade gracefully must be able to tell "took too long" apart from
/// "the input is outside the supported fragment".
class AnalysisTimeout : public std::runtime_error {
 public:
  explicit AnalysisTimeout(const std::string& what)
      : std::runtime_error(what) {}
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires, charge() never throws.
  Deadline() = default;

  static Deadline after(Clock::duration budget) {
    Deadline out;
    out.timed_ = true;
    out.expiry_ = Clock::now() + budget;
    return out;
  }
  static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  /// Cap the number of charge() units on top of (or instead of) the
  /// wall-clock budget.  Returns *this for chaining.
  Deadline& with_step_budget(std::uint64_t steps) {
    step_budget_ = steps;
    return *this;
  }

  bool unlimited() const { return !timed_ && step_budget_ == kNoBudget; }
  bool timed() const { return timed_; }
  Clock::time_point expiry() const { return expiry_; }

  /// The configured step budget, 0 when unlimited — the sandbox layer
  /// forwards it to worker processes alongside the wall budget.
  std::uint64_t step_budget() const {
    return step_budget_ == kNoBudget ? 0 : step_budget_;
  }

  /// Wall-clock milliseconds left (clamped at 0); a large sentinel when
  /// untimed.  Useful for retry hints and for slicing waits.
  std::int64_t remaining_ms() const {
    if (!timed_) return kForeverMs;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        expiry_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  bool expired() const {
    if (steps_ > step_budget_) return true;
    return timed_ && Clock::now() >= expiry_;
  }

  /// Account `n` units of analysis work; throws AnalysisTimeout when a
  /// budget is exhausted.  `site` names the analysis for the message.
  void charge(const char* site, std::uint64_t n = 1) const {
    if (unlimited()) return;
    steps_ += n;
    if (steps_ > step_budget_) raise(site, "step budget");
    if (timed_ && steps_ >= next_time_check_) {
      next_time_check_ = steps_ + kTimeCheckInterval;
      if (Clock::now() >= expiry_) raise(site, "deadline");
    }
  }

  /// Unconditional check (no step accounting, always consults the
  /// clock).  For coarse checkpoints between analysis phases.
  void check(const char* site) const {
    if (steps_ > step_budget_) raise(site, "step budget");
    if (timed_ && Clock::now() >= expiry_) raise(site, "deadline");
  }

  /// Steps charged so far (0 for unlimited deadlines — they skip the
  /// accounting entirely).
  std::uint64_t steps_charged() const { return steps_; }

  /// The least restrictive combination of two deadlines — a batch group
  /// must honor the most generous of its members, never cut one short.
  /// A budget applies only when *both* sides carry one (otherwise one
  /// member was unbounded and the result must be too).
  static Deadline loosest(const Deadline& a, const Deadline& b) {
    Deadline out;
    if (a.timed_ && b.timed_) {
      out.timed_ = true;
      out.expiry_ = a.expiry_ > b.expiry_ ? a.expiry_ : b.expiry_;
    }
    if (a.step_budget_ != kNoBudget && b.step_budget_ != kNoBudget)
      out.step_budget_ = std::max(a.step_budget_, b.step_budget_);
    return out;
  }

 private:
  static constexpr std::uint64_t kNoBudget = UINT64_MAX;
  static constexpr std::uint64_t kTimeCheckInterval = 4096;
  static constexpr std::int64_t kForeverMs = INT64_MAX / 2;

  [[noreturn]] void raise(const char* site, const char* which) const {
    std::ostringstream os;
    os << "analysis " << which << " exceeded in " << site << " after "
       << steps_ << " steps";
    throw AnalysisTimeout(os.str());
  }

  bool timed_ = false;
  Clock::time_point expiry_{};
  std::uint64_t step_budget_ = kNoBudget;
  // Mutable so a `const Deadline&` parameter can account work: the
  // budget is logically part of the *request*, not of the analysis.
  mutable std::uint64_t steps_ = 0;
  mutable std::uint64_t next_time_check_ = kTimeCheckInterval;
};

}  // namespace gpuperf
