#include "common/crc32.hpp"

#include <array>
#include <cstring>

namespace gpuperf {

namespace {

// Slice-by-8: eight lookup tables let the hot loop fold 8 input bytes
// per iteration instead of 1 (Intel's "Slicing-by-8" construction).
// Table 0 is the classic byte-at-a-time table; the scalar tail loop
// and the slice loop produce identical CRCs.
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (int t = 1; t < 8; ++t)
      tables[t][i] =
          (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xFFu];
  return tables;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const auto kTables = make_tables();
  const auto& t = kTables;
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const char* p = data.data();
  std::size_t n = data.size();
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The word loads fold the running CRC into the low word, which is
  // only correct little-endian; big-endian falls through to the byte
  // loop (the project targets Linux on LE, so this is belt-and-braces).
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][(lo >> 24) & 0xFFu] ^
          t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][(hi >> 24) & 0xFFu];
    p += 8;
    n -= 8;
  }
#endif
  while (n--)
    crc = t[0][(crc ^ static_cast<unsigned char>(*p++)) & 0xFFu] ^
          (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace gpuperf
