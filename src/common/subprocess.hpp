// Child-process plumbing for the sandbox layer (docs/ROBUSTNESS.md
// "Crash isolation"): EINTR-safe pipe I/O, bounded poll waits, reliable
// waitpid, and process-wide SIGPIPE suppression.  Worker churn (kills,
// crashes, recycles) must never deliver a fatal signal to the serving
// parent, and no I/O loop in the parent may be derailed by a signal
// interrupting a syscall — every helper here retries EINTR internally.
//
// POSIX/Linux only, like the rest of the net layer.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpuperf {

/// Ignore SIGPIPE process-wide (idempotent, thread-safe).  A worker
/// that dies mid-request leaves the parent writing into a broken pipe;
/// with SIGPIPE ignored that surfaces as an EPIPE return the caller
/// classifies, instead of killing the whole server.  Called by the
/// worker pool constructor and by `gpuperf serve` at startup.
void ignore_sigpipe();

/// A unidirectional pipe with close-on-exec ends.  Owns nothing —
/// callers close the fds (close_fd tolerates -1).
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};

/// pipe2(O_CLOEXEC); throws CheckError on failure (fd exhaustion).
Pipe make_pipe();

/// close() that retries nothing (Linux close must not be retried on
/// EINTR) and tolerates fd < 0.  Sets fd to -1.
void close_fd(int& fd);

/// Write exactly `n` bytes, retrying short writes and EINTR.  Returns
/// false on any hard error (EPIPE when the reader died, EBADF, ...);
/// errno is preserved for the caller.
bool write_full(int fd, const void* data, std::size_t n);

/// Read exactly `n` bytes, retrying short reads and EINTR.  Returns
/// the byte count actually read: n on success, < n on EOF, and -1 cast
/// to size_t never — hard errors return the bytes read so far with
/// errno set and `*error` (when non-null) set true.
std::size_t read_full(int fd, void* data, std::size_t n,
                      bool* error = nullptr);

/// poll() for readability with an absolute patience of `timeout_ms`
/// (<0 = forever), re-arming after EINTR with the remaining time so a
/// signal storm cannot stretch the wait.  Returns true when readable
/// (or the peer hung up — the subsequent read sees EOF), false on
/// timeout.
bool poll_readable(int fd, int timeout_ms);

/// waitpid retrying EINTR.  Returns the reaped pid, 0 (WNOHANG, still
/// running) or -1 (no such child).
pid_t waitpid_retry(pid_t pid, int* status, int flags);

/// Block up to `timeout_ms` for `pid` to exit, polling WNOHANG in
/// small slices (there is no portable timed waitpid).  Returns true
/// when the child was reaped, false on timeout (the child is still
/// running; `status` is untouched).
bool wait_exit(pid_t pid, int* status, int timeout_ms);

/// Human-readable description of a waitpid status ("exited 1",
/// "killed by signal 11 (SIGSEGV)").
std::string describe_wait_status(int status);

/// Resident set size of this process in KiB (from /proc/self/statm);
/// 0 when unreadable.  Workers self-report this after every request so
/// the parent can enforce the RSS recycle ceiling.
std::size_t self_rss_kb();

/// Virtual address-space size of this process in KiB; 0 when
/// unreadable.  Tests use it to pick an RLIMIT_AS that leaves
/// headroom over the already-mapped parent image.
std::size_t self_vsize_kb();

}  // namespace gpuperf
