// Shared resource-budget facility for every byte-ingesting layer
// (docs/ROBUSTNESS.md "Input limits"): the PTX lexer/parser, the serve
// line protocol, the ml/cnn model deserializers and the registry
// manifest / feature-store parsers all charge their work against the
// budgets defined here, so a malformed or adversarial input yields a
// typed error — never an OOM, a hang, or undefined behavior.
//
// Two exception types form the contract:
//
//   InputRejected  — the bytes are malformed (bad header, bad syntax,
//                    inconsistent counts).  Derives from CheckError so
//                    existing "malformed input fails loudly" handlers
//                    keep working.
//   LimitExceeded  — the bytes may even be well-formed but ask for more
//                    resources than the configured budget (too many
//                    bytes, tokens, records, nesting levels, or
//                    allocated memory).  Derives from InputRejected.
//
// Limits are plain data (InputLimits); parsers take them as a defaulted
// parameter so tests can tighten them and fuzz harnesses can exercise
// the enforcement paths deterministically.
#pragma once

#include <cstddef>
#include <string>

#include "common/check.hpp"

namespace gpuperf {

/// Malformed or unparsable input.  Retrying the same bytes can never
/// succeed; callers surface it as a typed "invalid input" failure.
class InputRejected : public CheckError {
 public:
  explicit InputRejected(const std::string& what) : CheckError(what) {}
};

/// A resource budget trip: the input wants more bytes / tokens /
/// records / memory / nesting than allowed.
class LimitExceeded : public InputRejected {
 public:
  explicit LimitExceeded(const std::string& what) : InputRejected(what) {}
};

/// Every ingestion budget in one struct.  The defaults are generous —
/// an order of magnitude past anything the pipeline legitimately
/// produces — so they only ever fire on corrupt or adversarial input.
struct InputLimits {
  // ---- raw input sizes -------------------------------------------------
  /// PTX text handed to lex()/parse_ptx().
  std::size_t max_ptx_bytes = 16u << 20;  // 16 MiB
  /// Serialized regressor text (ml::deserialize_regressor).
  std::size_t max_model_bytes = 256u << 20;  // 256 MiB (knn embeds rows)
  /// Serialized CNN topology (cnn::deserialize_model).
  std::size_t max_cnn_bytes = 8u << 20;
  /// Registry MANIFEST file.
  std::size_t max_manifest_bytes = 64u << 10;
  /// One feature-store journal record payload.
  std::size_t max_store_record_bytes = 64u << 10;
  /// One serve request line (server side; see TcpServer::Options).
  std::size_t max_request_line_bytes = 64u << 10;
  /// One binary-protocol frame payload (serve/binary_protocol.hpp);
  /// enforced from the frame header, before any payload is buffered.
  std::size_t max_frame_payload_bytes = 64u << 10;
  /// One serve response line (client side; see TcpClient::Options).
  std::size_t max_response_bytes = 8u << 20;

  // ---- structural counts ----------------------------------------------
  std::size_t max_tokens = 4u << 20;            ///< PTX tokens per input
  std::size_t max_identifier_bytes = 4096;      ///< one PTX identifier
  std::size_t max_kernels = 4096;               ///< kernels per module
  std::size_t max_instructions = 1u << 20;      ///< instructions per module
  std::size_t max_params = 256;                 ///< params per kernel
  std::size_t max_operands = 64;                ///< operands per instruction
  std::size_t max_cnn_nodes = 1u << 16;         ///< layers per CNN
  std::size_t max_trees = 4096;                 ///< trees per ensemble
  std::size_t max_tree_nodes = 4u << 20;        ///< nodes per tree
  std::size_t max_rows = 1u << 20;              ///< knn training rows
  std::size_t max_features = 4096;              ///< feature-vector width
  std::size_t max_manifest_fields = 256;        ///< manifest key/value lines

  // ---- DCA graph memory -----------------------------------------------
  /// Resident bytes a dependency graph's CSR arrays may occupy before
  /// they must spill to a mapped file (common/mapped_buffer.hpp); with
  /// no spill directory configured, crossing this budget throws
  /// LimitExceeded instead.  Overridable via $GPUPERF_DCA_SPILL_BUDGET /
  /// --dca-spill-budget.
  std::size_t max_depgraph_resident_bytes = 512u << 20;  // 512 MiB
  /// Absolute cap on one graph's CSR bytes, spilled or not — past this
  /// the module is rejected outright rather than ground through disk.
  std::size_t max_depgraph_bytes = std::size_t{8} << 30;  // 8 GiB

  // ---- recursion / allocation ----------------------------------------
  /// Nesting/recursion depth guard for any parser that recurses.
  std::size_t max_depth = 64;
  /// Total bytes a deserializer may allocate for parsed structures
  /// (accounting is approximate — element counts × element sizes — but
  /// bounds the worst case long before an OOM kill).
  std::size_t max_alloc_bytes = 1u << 30;  // 1 GiB

  /// The process-wide defaults used when no explicit limits are passed.
  static const InputLimits& defaults();
};

namespace detail {
[[noreturn]] void limit_exceeded(const char* what, std::size_t requested,
                                 std::size_t limit);
}  // namespace detail

/// Throws LimitExceeded when `requested > limit`; `what` names the
/// budget in the error message ("PTX tokens", "tree nodes", ...).
inline void enforce_limit(std::size_t requested, std::size_t limit,
                          const char* what) {
  if (requested > limit) detail::limit_exceeded(what, requested, limit);
}

/// Incremental budget accounting for a single parse: counters for
/// tokens / instructions / kernels / allocated bytes plus an RAII
/// recursion-depth guard.  Cheap enough to thread through hot parsing
/// loops (one add + one compare per charge).
class ResourceBudget {
 public:
  explicit ResourceBudget(
      const InputLimits& limits = InputLimits::defaults())
      : limits_(&limits) {}

  const InputLimits& limits() const { return *limits_; }

  void charge_tokens(std::size_t n = 1) {
    tokens_ += n;
    enforce_limit(tokens_, limits_->max_tokens, "input tokens");
  }
  void charge_instructions(std::size_t n = 1) {
    instructions_ += n;
    enforce_limit(instructions_, limits_->max_instructions,
                  "instructions");
  }
  void charge_kernels(std::size_t n = 1) {
    kernels_ += n;
    enforce_limit(kernels_, limits_->max_kernels, "kernels");
  }
  /// Approximate allocation accounting: charge element-count ×
  /// element-size before reserving/creating the container.
  void charge_alloc(std::size_t bytes) {
    alloc_bytes_ += bytes;
    enforce_limit(alloc_bytes_, limits_->max_alloc_bytes,
                  "allocated bytes");
  }

  std::size_t tokens() const { return tokens_; }
  std::size_t instructions() const { return instructions_; }
  std::size_t kernels() const { return kernels_; }
  std::size_t alloc_bytes() const { return alloc_bytes_; }
  std::size_t depth() const { return depth_; }

  /// RAII recursion guard: construction charges one nesting level (and
  /// throws LimitExceeded past max_depth), destruction releases it.
  class DepthScope {
   public:
    explicit DepthScope(ResourceBudget& budget) : budget_(budget) {
      // Enforce before incrementing: a throwing constructor never runs
      // its destructor, so a post-increment check would leak the level.
      enforce_limit(budget_.depth_ + 1, budget_.limits_->max_depth,
                    "nesting depth");
      ++budget_.depth_;
    }
    ~DepthScope() { --budget_.depth_; }
    DepthScope(const DepthScope&) = delete;
    DepthScope& operator=(const DepthScope&) = delete;

   private:
    ResourceBudget& budget_;
  };
  DepthScope enter_depth() { return DepthScope(*this); }

 private:
  const InputLimits* limits_;
  std::size_t tokens_ = 0;
  std::size_t instructions_ = 0;
  std::size_t kernels_ = 0;
  std::size_t alloc_bytes_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace gpuperf
