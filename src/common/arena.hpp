// Chunked bump allocator for analysis scratch memory.  The dependency-
// graph builder and the slicer allocate short-lived flat arrays (counts,
// cursors, worklists) thousands of times per process; an Arena turns
// each of those into a pointer bump inside a reused chunk instead of a
// malloc/free pair, and a ResetScope returns the whole allocation in
// O(chunks) on scope exit.  Only trivially-destructible element types
// are supported — reset never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace gpuperf {

class Arena {
 public:
  /// `min_chunk_bytes` is the size of the first chunk; later chunks
  /// double (capped at kMaxChunkBytes) so a growing workload settles
  /// into O(log n) chunk allocations, ever.
  explicit Arena(std::size_t min_chunk_bytes = 64u << 10)
      : next_chunk_bytes_(min_chunk_bytes ? min_chunk_bytes : 1) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    GP_DCHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;  // distinct non-null pointers
    std::size_t cursor = aligned_cursor(align);
    if (current_ == nullptr || cursor + bytes > current_->size) {
      grow(bytes + align);
      cursor = aligned_cursor(align);
    }
    std::byte* out = current_->data.get() + cursor;
    cursor_ = cursor + bytes;
    used_ += bytes;
    return out;
  }

  /// Uninitialized array of a trivially-destructible type.
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return {static_cast<T*>(allocate(n * sizeof(T), alignof(T))), n};
  }

  /// Zero-initialized array (counts, visited flags, prefix sums).
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t n) {
    std::span<T> out = alloc_array<T>(n);
    std::memset(static_cast<void*>(out.data()), 0, n * sizeof(T));
    return out;
  }

  /// Drop every allocation.  The largest chunk is retained so steady-
  /// state reuse (one graph build per launch analysis) never re-mallocs;
  /// the rest are released to the heap.
  void reset() {
    if (chunks_.empty()) return;
    std::size_t largest = 0;
    for (std::size_t i = 1; i < chunks_.size(); ++i)
      if (chunks_[i].size > chunks_[largest].size) largest = i;
    if (largest != 0) std::swap(chunks_[0], chunks_[largest]);
    chunks_.resize(1);
    current_ = &chunks_[0];
    cursor_ = 0;
    used_ = 0;
  }

  /// Live bytes handed out since the last reset.
  std::size_t bytes_used() const { return used_; }
  /// Total chunk capacity currently held (reserved from the heap).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// RAII reset: everything allocated after construction is returned
  /// when the scope ends.  Scopes must not interleave with allocations
  /// that outlive them (plain bump semantics — the arena rewinds fully).
  class ResetScope {
   public:
    explicit ResetScope(Arena& arena) : arena_(arena) {}
    ~ResetScope() { arena_.reset(); }
    ResetScope(const ResetScope&) = delete;
    ResetScope& operator=(const ResetScope&) = delete;

   private:
    Arena& arena_;
  };

 private:
  static constexpr std::size_t kMaxChunkBytes = 64u << 20;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// The cursor advanced so the *absolute* address is `align`-aligned
  /// (new[] only guarantees alignof(max_align_t) for the chunk base).
  std::size_t aligned_cursor(std::size_t align) const {
    if (current_ == nullptr) return 0;
    const auto base = reinterpret_cast<std::uintptr_t>(current_->data.get());
    return ((base + cursor_ + align - 1) & ~(align - 1)) - base;
  }

  void grow(std::size_t at_least) {
    std::size_t size = next_chunk_bytes_;
    while (size < at_least) size *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    current_ = &chunks_.back();
    cursor_ = 0;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ = size * 2;
  }

  std::vector<Chunk> chunks_;
  Chunk* current_ = nullptr;
  std::size_t cursor_ = 0;
  std::size_t used_ = 0;
  std::size_t next_chunk_bytes_;
};

}  // namespace gpuperf
