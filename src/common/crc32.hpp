// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
// integrity check of the feature-store journal (docs/FILE_FORMATS.md).
// Chosen over FNV for persistence because single-bit and burst errors
// are guaranteed detected; FNV remains the content-address hash.
#pragma once

#include <cstdint>
#include <string_view>

namespace gpuperf {

/// Running CRC: pass the previous result as `seed` to extend.  The
/// empty string maps to 0.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace gpuperf
