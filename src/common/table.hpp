// Fixed-width text table printer.  The bench binaries use it to print
// the paper's tables (I-IV) in a layout that is easy to eyeball against
// the published rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpuperf {

enum class Align { kLeft, kRight };

/// A simple column-aligned table with an optional title and a header
/// separator line.
class TextTable {
 public:
  explicit TextTable(std::string title = "");

  /// Set the header row; column count is fixed from here on.
  void set_header(std::vector<std::string> header);

  /// Per-column alignment; defaults to left for the first column and
  /// right for the rest (the common "name | numbers..." layout).
  void set_alignments(std::vector<Align> alignments);

  /// Append a row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Insert a horizontal rule before the next row.
  void add_rule();

  std::size_t row_count() const { return rows_.size(); }

  /// Render with single-space-padded ASCII borders.
  std::string render() const;

  /// Render straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace gpuperf
