#include "common/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::fault {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, Spec> sites;
  std::map<std::string, std::uint64_t> hit_counts;
  // Mirrors sites.size() so point() can bail without the mutex.
  std::atomic<std::size_t> armed_count{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// $GPUPERF_FAULT is parsed exactly once, before the first lookup, so
/// env-armed sites behave identically to programmatically armed ones.
void ensure_env_parsed() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    if (const char* spec = std::getenv("GPUPERF_FAULT"))
      if (*spec != '\0') arm_from_spec(spec);
  });
}

/// Looks up `site`, consumes one firing, returns the action to take.
/// Returns false when the site is not armed (or its count ran out).
bool consume(const std::string& site, bool corrupt_only, Spec& out) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  if (corrupt_only != (it->second.action == Action::kCorrupt)) return false;
  out = it->second;
  r.hit_counts[site] += 1;
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    r.sites.erase(it);
    r.armed_count.store(r.sites.size(), std::memory_order_relaxed);
  }
  return true;
}

}  // namespace

void arm(const std::string& site, Spec spec) {
  // No ensure_env_parsed() here: the env parser itself arms sites, and
  // re-entering the call_once from inside its own lambda would
  // deadlock.  point()/corrupt() parse the env before any lookup, so
  // env-armed sites are still in place before they can fire.
  GP_CHECK_MSG(!site.empty(), "fault site name must not be empty");
  GP_CHECK_MSG(spec.remaining != 0, "arming a fault with zero firings");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites[site] = spec;
  r.hit_counts[site] = 0;
  r.armed_count.store(r.sites.size(), std::memory_order_relaxed);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.erase(site);
  r.armed_count.store(r.sites.size(), std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
  r.hit_counts.clear();
  r.armed_count.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.hit_counts.find(site);
  return it == r.hit_counts.end() ? 0 : it->second;
}

void arm_from_spec(const std::string& spec) {
  for (const auto& part : split(spec, ';')) {
    const std::string entry = std::string(trim(part));
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    GP_CHECK_MSG(eq != std::string::npos,
                 "bad fault spec '" << entry << "' (want site=action)");
    const std::string site = entry.substr(0, eq);
    std::string action = entry.substr(eq + 1);

    Spec out;
    if (const auto star = action.rfind('*'); star != std::string::npos) {
      out.remaining =
          static_cast<int>(parse_int(action.substr(star + 1)));
      GP_CHECK_MSG(out.remaining > 0,
                   "bad fault count in '" << entry << "'");
      action = action.substr(0, star);
    }
    if (const auto colon = action.find(':'); colon != std::string::npos) {
      out.delay_ms =
          static_cast<int>(parse_int(action.substr(colon + 1)));
      action = action.substr(0, colon);
    }
    if (action == "throw") out.action = Action::kThrow;
    else if (action == "timeout") out.action = Action::kTimeout;
    else if (action == "delay") out.action = Action::kDelay;
    else if (action == "corrupt") out.action = Action::kCorrupt;
    else
      GP_CHECK_MSG(false, "unknown fault action '" << action << "' in '"
                                                   << entry << "'");
    arm(site, out);
  }
}

std::string armed_spec(const std::string& prefix) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::string out;
  for (const auto& [site, spec] : r.sites) {
    if (site.compare(0, prefix.size(), prefix) != 0) continue;
    if (!out.empty()) out += ';';
    out += site;
    out += '=';
    switch (spec.action) {
      case Action::kThrow: out += "throw"; break;
      case Action::kTimeout: out += "timeout"; break;
      case Action::kDelay:
        out += "delay:" + std::to_string(spec.delay_ms);
        break;
      case Action::kCorrupt: out += "corrupt"; break;
    }
    if (spec.remaining > 0) out += "*" + std::to_string(spec.remaining);
  }
  return out;
}

std::unique_lock<std::mutex> registry_fork_lock() {
  ensure_env_parsed();
  return std::unique_lock<std::mutex>(registry().mutex);
}

void child_after_fork() {
  Registry& r = registry();
  // The forking parent thread held the registry lock (registry_fork_lock)
  // at the fork instant, so the child's copy of the mutex is locked by a
  // thread that does not exist here and would never be released.
  // Re-initializing it in the single-threaded child is the standard
  // pthread_atfork-style remedy; the maps themselves are consistent
  // because the lock holder was forking, not mutating.
  new (&r.mutex) std::mutex;
  r.sites.clear();
  r.hit_counts.clear();
  r.armed_count.store(0, std::memory_order_relaxed);
}

void point(const std::string& site, const Deadline* deadline) {
  ensure_env_parsed();
  Registry& r = registry();
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return;
  Spec spec;
  if (!consume(site, /*corrupt_only=*/false, spec)) return;
  switch (spec.action) {
    case Action::kThrow:
      throw FaultInjected(site);
    case Action::kTimeout:
      throw AnalysisTimeout("injected timeout at " + site);
    case Action::kDelay: {
      // Sleep in 1 ms slices so an in-scope Deadline converts the
      // injected slowness into a genuine AnalysisTimeout mid-delay.
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(spec.delay_ms);
      while (std::chrono::steady_clock::now() < until) {
        if (deadline != nullptr) deadline->check(site.c_str());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      break;
    }
    case Action::kCorrupt:
      break;  // only fires through corrupt()
  }
}

bool corrupt(const std::string& site) {
  ensure_env_parsed();
  Registry& r = registry();
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return false;
  Spec spec;
  return consume(site, /*corrupt_only=*/true, spec);
}

bool consume_nonthrowing(const std::string& site, Spec& out) {
  ensure_env_parsed();
  Registry& r = registry();
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  out = it->second;
  r.hit_counts[site] += 1;
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    r.sites.erase(it);
    r.armed_count.store(r.sites.size(), std::memory_order_relaxed);
  }
  return true;
}

}  // namespace gpuperf::fault
