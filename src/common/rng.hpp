// Deterministic random number generation.
//
// All stochastic components of the library (dataset shuffles, forest
// bootstraps, simulator measurement noise) draw from Rng so that every
// experiment reproduces bit-identically from its seed.  The generator is
// xoshiro256** seeded via splitmix64, which has better statistical
// quality than std::minstd and, unlike std::mt19937, a guaranteed
// cross-platform stream for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpuperf {

/// splitmix64 step; used standalone for hashing and for seeding Rng.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit draw.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A fresh generator with a stream derived from this one; use to hand
  /// independent deterministic streams to worker threads.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stable 64-bit hash of a byte string (FNV-1a folded through
/// splitmix64).  Used to derive per-entity seeds, e.g. per-(CNN, GPU)
/// measurement-noise streams.
std::uint64_t stable_hash(const char* data, std::size_t len);
std::uint64_t stable_hash(const std::string& s);

}  // namespace gpuperf
