#include "common/mapped_buffer.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "common/limits.hpp"
#include "common/log.hpp"

namespace gpuperf {

namespace {

std::atomic<std::uint64_t> g_spill_files{0};
std::atomic<std::uint64_t> g_spill_bytes{0};

/// Create-and-unlink a spill file in `dir`; returns -1 on any failure
/// (the caller falls back to anonymous memory).
int open_spill_file(const std::string& dir, std::size_t bytes) {
  std::string path = dir + "/gpuperf-spill-XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) return -1;
  // Unlink immediately: the mapping keeps the inode alive and the disk
  // space is reclaimed automatically when the buffer dies, even on
  // crash.
  ::unlink(path.c_str());
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::mutex g_spill_config_mutex;

SpillConfig& spill_config_storage() {
  static SpillConfig* config = [] {
    auto* out = new SpillConfig;
    if (const char* dir = std::getenv("GPUPERF_DCA_SPILL")) out->dir = dir;
    out->resident_budget_bytes =
        InputLimits::defaults().max_depgraph_resident_bytes;
    if (const char* budget = std::getenv("GPUPERF_DCA_SPILL_BUDGET")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(budget, &end, 10);
      if (end != budget && *end == '\0')
        out->resident_budget_bytes = static_cast<std::size_t>(v);
    }
    return out;
  }();
  return *config;
}

}  // namespace

MappedBuffer::~MappedBuffer() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
}

MappedBuffer::MappedBuffer(MappedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fd_(std::exchange(other.fd_, -1)) {}

MappedBuffer& MappedBuffer::operator=(MappedBuffer&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    if (fd_ >= 0) ::close(fd_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

MappedBuffer MappedBuffer::allocate(std::size_t bytes,
                                    const SpillConfig& config,
                                    const char* what) {
  MappedBuffer out;
  if (bytes == 0) return out;

  const bool over_budget = bytes >= config.resident_budget_bytes;
  if (over_budget && config.dir.empty())
    detail::limit_exceeded(what, bytes, config.resident_budget_bytes);

  int fd = -1;
  if (over_budget) {
    fd = open_spill_file(config.dir, bytes);
    if (fd < 0)
      GP_LOG(kWarn) << "spill file creation failed in '" << config.dir
                    << "' (" << std::strerror(errno)
                    << "); falling back to anonymous memory for " << bytes
                    << " bytes of " << what;
  }

  void* mapping =
      fd >= 0
          ? ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0)
          : ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mapping == MAP_FAILED && fd >= 0) {
    // File mapped but mmap refused (e.g. filesystem without mmap
    // support): same availability fallback as a failed create.
    ::close(fd);
    fd = -1;
    GP_LOG(kWarn) << "spill mmap failed (" << std::strerror(errno)
                  << "); falling back to anonymous memory for " << bytes
                  << " bytes of " << what;
    mapping = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  }
  GP_CHECK_MSG(mapping != MAP_FAILED,
               "mmap of " << bytes << " bytes failed for " << what << ": "
                          << std::strerror(errno));

  out.data_ = static_cast<std::byte*>(mapping);
  out.size_ = bytes;
  out.fd_ = fd;
  if (fd >= 0) {
    g_spill_files.fetch_add(1, std::memory_order_relaxed);
    g_spill_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  return out;
}

void MappedBuffer::grow(std::size_t new_bytes) {
  GP_CHECK(new_bytes >= size_);
  if (new_bytes == size_) return;
  if (data_ == nullptr) {
    // Empty buffers have no backing policy; grow anonymously.
    void* mapping = ::mmap(nullptr, new_bytes, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    GP_CHECK_MSG(mapping != MAP_FAILED, "mmap of " << new_bytes
                                                   << " bytes failed: "
                                                   << std::strerror(errno));
    data_ = static_cast<std::byte*>(mapping);
    size_ = new_bytes;
    return;
  }
  if (fd_ >= 0) {
    GP_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(new_bytes)) == 0,
                 "spill file extend to " << new_bytes << " bytes failed: "
                                         << std::strerror(errno));
    g_spill_bytes.fetch_add(new_bytes - size_, std::memory_order_relaxed);
  }
  void* mapping = ::mremap(data_, size_, new_bytes, MREMAP_MAYMOVE);
  GP_CHECK_MSG(mapping != MAP_FAILED,
               "mremap to " << new_bytes
                            << " bytes failed: " << std::strerror(errno));
  data_ = static_cast<std::byte*>(mapping);
  size_ = new_bytes;
}

void MappedBuffer::release_resident() {
  if (fd_ < 0 || data_ == nullptr) return;
  ::madvise(data_, size_, MADV_DONTNEED);
}

std::uint64_t MappedBuffer::spill_files_total() {
  return g_spill_files.load(std::memory_order_relaxed);
}

std::uint64_t MappedBuffer::spill_bytes_total() {
  return g_spill_bytes.load(std::memory_order_relaxed);
}

SpillConfig dca_spill_config() {
  std::lock_guard<std::mutex> lock(g_spill_config_mutex);
  return spill_config_storage();
}

void set_dca_spill_config(SpillConfig config) {
  std::lock_guard<std::mutex> lock(g_spill_config_mutex);
  spill_config_storage() = std::move(config);
}

}  // namespace gpuperf
