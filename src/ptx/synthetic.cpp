#include "ptx/synthetic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuperf::ptx {

PtxModule synthetic_module(const SyntheticSpec& spec) {
  GP_CHECK(spec.seed_registers > 0 && spec.data_registers > 0);
  const std::size_t seeds = spec.seed_registers;
  const std::size_t datas = spec.data_registers;

  PtxKernel k;
  k.name = spec.kernel_name;
  k.params.push_back(KernelParam{"p_n", PtxType::kU32, false});
  k.reg_decls.push_back(RegDecl{PtxType::kPred, "%p", 2});
  k.reg_decls.push_back(
      RegDecl{PtxType::kF32, "%f", static_cast<int>(seeds + datas) + 1});
  k.reg_decls.push_back(RegDecl{PtxType::kU32, "%r", 3});
  k.instructions.reserve(spec.body_instructions + seeds + 6);

  auto reg = [](const char* prefix, std::size_t i) {
    return Operand{RegOperand{prefix + std::to_string(i)}};
  };
  auto imm_f = [](double v) { return Operand{ImmOperand{v, true}}; };
  auto emit = [&](Opcode op, PtxType type, std::vector<Operand> dsts,
                  std::vector<Operand> srcs,
                  StateSpace space = StateSpace::kNone) -> Instruction& {
    Instruction inst;
    inst.opcode = op;
    inst.type = type;
    inst.space = space;
    inst.dsts = std::move(dsts);
    inst.srcs = std::move(srcs);
    k.instructions.push_back(std::move(inst));
    return k.instructions.back();
  };

  // Prelude: i = 0; n = p_n; seed pool (each seed defined exactly once —
  // the body reads only these, so dependency edges stay linear).
  emit(Opcode::kMov, PtxType::kU32, {reg("%r", 1)},
       {Operand{ImmOperand{0.0, false}}});
  emit(Opcode::kLd, PtxType::kU32, {reg("%r", 2)},
       {Operand{MemOperand{"p_n", 0}}}, StateSpace::kParam);
  for (std::size_t s = 0; s < seeds; ++s)
    emit(Opcode::kMov, PtxType::kF32, {reg("%f", s + 1)},
         {imm_f(1.0 + static_cast<double>(s))});

  // LOOP: body of write-only float adds over the seed pool.  Data
  // registers %f{seeds+1}.. rotate as destinations and are never read,
  // so the flow-insensitive graph gives each body instruction exactly
  // two dependency edges (its two seed movs).
  k.labels["LOOP"] = k.instructions.size();
  for (std::size_t i = 0; i < spec.body_instructions; ++i) {
    const std::size_t dst = seeds + 1 + (i % datas);
    const std::size_t a = 1 + (i % seeds);
    const std::size_t b = 1 + ((i * 7 + 3) % seeds);
    emit(Opcode::kAdd, PtxType::kF32, {reg("%f", dst)},
         {reg("%f", a), reg("%f", b)});
  }

  // i += 1; p = i < n; @p bra LOOP; ret  (do-while: body runs >= once).
  emit(Opcode::kAdd, PtxType::kS32, {reg("%r", 1)},
       {reg("%r", 1), Operand{ImmOperand{1.0, false}}});
  Instruction& setp =
      emit(Opcode::kSetp, PtxType::kS32, {reg("%p", 1)},
           {reg("%r", 1), reg("%r", 2)});
  setp.cmp = CompareOp::kLt;
  Instruction& bra = emit(Opcode::kBra, PtxType::kU32, {},
                          {Operand{LabelOperand{"LOOP"}}});
  bra.guard = "%p1";
  emit(Opcode::kRet, PtxType::kU32, {}, {});

  k.intern_registers();

  PtxModule module;
  module.kernels.push_back(std::move(k));
  return module;
}

std::int64_t synthetic_dynamic_instructions(const SyntheticSpec& spec,
                                            std::int64_t n,
                                            std::int64_t total_threads) {
  const std::int64_t trips = std::max<std::int64_t>(n, 1);
  const std::int64_t per_thread =
      2 + static_cast<std::int64_t>(spec.seed_registers) +
      trips * (static_cast<std::int64_t>(spec.body_instructions) + 3) + 1;
  return per_thread * total_threads;
}

}  // namespace gpuperf::ptx
