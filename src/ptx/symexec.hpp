// Symbolic execution of sliced PTX kernels — the paper's dynamic code
// analysis engine.  Only slice instructions (those feeding branch
// decisions) are evaluated; every other instruction is merely counted.
//
// The value domain is affine in the thread coordinates:
//     v = c0 + c_ct * ctaid.x + c_t * tid.x
// which covers everything CNN kernels branch on (thread-id guards and
// parameter-bound loop counters).  Thread divergence is handled by
// splitting the (ctaid, tid) launch box at predicate boundaries, and
// long loops are summarized by affine acceleration: once three
// consecutive back-edge evaluations show constant register/count
// deltas, the remaining trip count is solved in closed form.  The
// result is exact — equal to brute-force interpretation of every
// thread — at a cost near-independent of tensor sizes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/deadline.hpp"
#include "ptx/cfg.hpp"
#include "ptx/module.hpp"
#include "ptx/slicer.hpp"

namespace gpuperf::ptx {

struct ExecutionCounts {
  /// Thread-level dynamic instructions, summed over every thread.
  std::int64_t total = 0;
  std::array<std::int64_t, kOpClassCount> by_class{};
  /// Per-basic-block execution counts (thread-level).
  std::vector<std::int64_t> block_exec;

  ExecutionCounts& operator+=(const ExecutionCounts& other);
};

class SymbolicExecutor {
 public:
  /// Analyzes the kernel once (CFG, dependency graph, slice); run() can
  /// then be called for many launches.  `deadline` bounds the one-time
  /// analysis (it is not retained).
  explicit SymbolicExecutor(const PtxKernel& kernel,
                            const Deadline& deadline = {});
  /// Move overload for giant (e.g. synthetic multi-million-instruction)
  /// kernels: adopts the kernel instead of copying its instruction
  /// stream.
  explicit SymbolicExecutor(PtxKernel&& kernel,
                            const Deadline& deadline = {});
  ~SymbolicExecutor();

  SymbolicExecutor(SymbolicExecutor&&) noexcept;
  SymbolicExecutor& operator=(SymbolicExecutor&&) noexcept;

  /// Count the dynamic instructions of one launch.  GP_CHECK-fails on
  /// kernels outside the supported fragment (branches on loaded data,
  /// non-affine divergence) and on diverging loops.  Throws
  /// AnalysisTimeout when `deadline` expires mid-run (one charge() per
  /// symbolic block step).
  ExecutionCounts run(const KernelLaunch& launch,
                      const Deadline& deadline = {}) const;

  const Cfg& cfg() const;
  const Slice& slice() const;
  const PtxKernel& kernel() const;

  /// Kernel parameters read by in-slice ld.param instructions — the
  /// only launch arguments that can change run()'s result.  Launches
  /// differing solely in other arguments (e.g. buffer pointers) yield
  /// identical counts, which is what makes launch-config memoization
  /// effective.
  const std::vector<std::string>& slice_params() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gpuperf::ptx
