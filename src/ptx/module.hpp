// Parsed / generated PTX program structure: kernels with parameters,
// register declarations, labeled instruction streams; plus the launch
// descriptors that bind a kernel to a grid and concrete parameter
// values (what the host code would pass at cuLaunchKernel time).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptx/instruction.hpp"

namespace gpuperf::ptx {

struct KernelParam {
  std::string name;
  PtxType type = PtxType::kU64;
  bool is_pointer = false;
};

struct RegDecl {
  PtxType type = PtxType::kU32;
  std::string prefix;  // "%r", "%rd", "%f", "%p"
  int count = 0;
};

class PtxKernel {
 public:
  std::string name;
  std::vector<KernelParam> params;
  std::vector<RegDecl> reg_decls;
  int reqntid = 0;  // .reqntid block size hint, 0 = unset
  std::int64_t shared_bytes = 0;

  std::vector<Instruction> instructions;
  /// label -> index of the first instruction at/after the label.
  std::map<std::string, std::size_t> labels;

  const KernelParam* find_param(const std::string& name) const;

  /// Index a branch target; GP_CHECK-fails on unknown labels.
  std::size_t label_target(const std::string& label) const;

  /// Render as PTX text (entry directive, params, reg decls, body).
  std::string to_ptx() const;

  /// Assign dense kernel-local ids to every virtual register (operands,
  /// memory bases, guards) in first-appearance order and stamp them
  /// into the instruction stream.  Idempotent; both the parser and the
  /// code generator call this, so downstream analyses (depgraph,
  /// slicer, symexec, interpreter) can index vectors instead of
  /// hashing register-name strings.
  void intern_registers();
  bool registers_interned() const { return interned_; }

  /// Number of distinct virtual registers; names are indexed by id.
  std::size_t register_count() const { return register_names.size(); }
  std::vector<std::string> register_names;

  /// Interned id of a register name, or -1 when unknown / not yet
  /// interned.  O(1) — the lookup map built by intern_registers() is
  /// kept, so diagnostics and tests no longer scan register_names.
  int register_id(const std::string& reg) const;

 private:
  bool interned_ = false;
  std::unordered_map<std::string, int> register_ids_;
};

class PtxModule {
 public:
  std::string version = "7.0";
  std::string target = "sm_70";
  int address_size = 64;
  std::vector<PtxKernel> kernels;

  const PtxKernel* find_kernel(const std::string& name) const;
  const PtxKernel& kernel(const std::string& name) const;

  std::string to_ptx() const;
};

/// One kernel launch: grid geometry plus concrete scalar parameter
/// values (pointers get synthetic non-zero base addresses).
struct KernelLaunch {
  std::string kernel;
  std::int64_t grid_dim = 1;   // blocks (x only; index spaces linearized)
  std::int64_t block_dim = 1;  // threads per block
  std::map<std::string, std::int64_t> args;

  std::int64_t total_threads() const { return grid_dim * block_dim; }
};

}  // namespace gpuperf::ptx
